#!/bin/sh
# Regenerate every table and figure of the paper (results/ + stdout log).
# Default scales favour simulation speed; pass-through args (e.g. --div 1)
# reach every binary.
set -e
cd "$(dirname "$0")"
for exp in exp-breakdown exp-table2 exp-table3 exp-fig6 exp-fig7 exp-lanes \
           exp-headline exp-table4 exp-fig8 exp-winograd-a64fx exp-fig9 exp-fig10 \
           exp-algos exp-tilesize exp-l2lat exp-energy exp-stream exp-resnet \
           exp-whatif exp-serve exp-scale; do
  echo "=== $exp ==="
  cargo run --release -p lva-bench --bin "$exp" -- "$@" 2>/dev/null
  echo
done
