//! End-to-end contracts of the retime engine: bit-identity against the
//! full simulator across design points, memo determinism, and the
//! certificate-gated fallback.

use lva_check::KernelCase;
use lva_core::{
    ConvPolicy, EnergyModel, Experiment, GemmVariant, HwTarget, ModelId, RetimeOpt, Workload,
};
use lva_kernels::aux::fill_vec;
use lva_retime::{CertGate, RetimeEngine};
use lva_sim::IdealKnob;

fn workload() -> Workload {
    Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) }
}

fn exp(hw: HwTarget) -> Experiment {
    Experiment::new(hw, ConvPolicy::gemm_only(GemmVariant::opt3()), workload())
}

/// A Table II-flavoured design-point grid: two RVV points per timing axis
/// (lanes, L2), an idealized counterfactual, an SVE point, and A64FX.
fn design_points() -> Vec<Experiment> {
    vec![
        exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 }),
        exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 4, l2_bytes: 1 << 20 }),
        exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 4 << 20 }),
        exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 4, l2_bytes: 4 << 20 }),
        exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 })
            .with_ideal(IdealKnob::PerfectL2.spec()),
        exp(HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 }),
        exp(HwTarget::A64fx),
    ]
}

/// `--retime=verify` semantics: every design point re-timed AND fully
/// simulated, asserting bit-identical cycles, stall breakdowns, VPU
/// statistics, cache statistics and per-layer reports (the assertions
/// live inside the engine's verify path).
#[test]
fn verify_mode_is_bit_identical_across_design_points() {
    let mut engine = RetimeEngine::with_gate(RetimeOpt::Verify, CertGate::decided(Ok(())));
    let points = design_points();
    for e in &points {
        engine.run(e);
    }
    let c = engine.counters();
    assert_eq!(c.verified, points.len() as u64, "every run verified against the full simulator");
    // Three semantic streams → three captures; the shared-stream RVV
    // points split between tape refits (same cache geometry as a stored
    // tape) and one live replay (first visit to the 4 MB geometry).
    assert_eq!(c.captures, 3);
    assert_eq!(c.live_replays, 1);
    assert_eq!(c.tape_refits, 3);
    assert_eq!(c.refused_runs, 0);
}

/// Eviction-free determinism: running the same sweep twice produces
/// byte-identical reports, with the second pass served entirely from the
/// run memo.
#[test]
fn second_pass_is_all_hits_and_byte_identical() {
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::decided(Ok(())));
    let points = design_points();
    let pass1: Vec<String> = points
        .iter()
        .map(|e| {
            let s = engine.run(e);
            lva_core::RunReport::new("t", e, &s).to_json().to_string_pretty()
        })
        .collect();
    let hits_before = engine.counters().run_memo_hits;
    assert_eq!(hits_before, 0, "first pass cannot hit the run memo");
    let pass2: Vec<String> = points
        .iter()
        .map(|e| {
            let s = engine.run(e);
            lva_core::RunReport::new("t", e, &s).to_json().to_string_pretty()
        })
        .collect();
    assert_eq!(pass1, pass2, "retimed sweep must be deterministic");
    assert_eq!(
        engine.counters().run_memo_hits,
        points.len() as u64,
        "second pass is 100% run-memo hits"
    );
    // The layer memo observed real traffic and reports it.
    let report = engine.report().to_string_pretty();
    assert!(report.contains("layer_memo"), "report carries memo counters: {report}");
}

/// A kernel whose semantic stream depends on the design point (here: the
/// L2 capacity steers the op count) must fail certification; the engine
/// refuses retiming, falls back to full simulation, and surfaces the
/// reason in its JSON report.
fn run_config_varying(m: &mut lva_isa::Machine) {
    let n = if m.config().mem.l2.bytes >= (4 << 20) { 100 } else { 60 };
    let x = m.mem.alloc_named("x", 128);
    fill_vec(m, x, 0, n, 1.0);
}

#[test]
fn config_varying_kernel_is_refused_and_falls_back() {
    let bad = KernelCase {
        name: "config_varying",
        shape: "n60|n100",
        isa: None,
        run: run_config_varying,
    };
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::with_cases(vec![bad]));
    let e = exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 });
    let (s, path) = engine.run_explained(&e);
    assert_eq!(path, "refused");
    let full = e.run();
    assert_eq!(s.cycles, full.cycles, "fallback is the full simulator");
    assert_eq!(s.report, full.report);
    assert_eq!(engine.counters().refused_runs, 1);
    assert_eq!(engine.counters().captures, 0, "no capture may happen under refusal");
    let reason = engine.refusal().expect("refusal reason recorded");
    assert!(reason.contains("config_varying"), "reason names the kernel: {reason}");
    let json = engine.report().to_string_pretty();
    assert!(json.contains("refusal"), "refusal surfaces in --json: {json}");
    assert!(json.contains("config_varying"), "kernel named in --json: {json}");
}

/// Multi-core refusal: the engine categorically declines to retime a
/// shared-port simulation — certificates are single-core timing proofs —
/// records the named reason, and surfaces it in the JSON report. The
/// caller (exp-scale --retime) then runs the full SoC simulation, so the
/// output stays byte-identical to the unretimed path (pinned again on the
/// whole scaling record in `lva-bench`).
#[test]
fn shared_port_contention_is_refused_with_a_named_reason() {
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::decided(Ok(())));
    let reason = engine.refuse_contention();
    assert_eq!(reason, lva_retime::CONTENTION_REFUSAL);
    assert!(reason.contains("single-core timing proofs"), "reason names the limit: {reason}");
    assert!(reason.contains("falling back to full SoC simulation"), "names the fallback: {reason}");
    assert_eq!(engine.refusal(), Some(lva_retime::CONTENTION_REFUSAL));
    assert_eq!(engine.counters().refused_runs, 1);
    let json = engine.report().to_string_pretty();
    assert!(json.contains("single-core timing proofs"), "refusal surfaces in --json: {json}");
    // A second refusal bumps the counter but keeps the first reason.
    engine.refuse_contention();
    assert_eq!(engine.counters().refused_runs, 2);
    assert_eq!(engine.refusal(), Some(lva_retime::CONTENTION_REFUSAL));
}

/// The positive gate: a well-behaved registry kernel certifies, and the
/// engine retimes.
#[test]
fn certified_kernel_gate_allows_retiming() {
    let good: Vec<KernelCase> =
        lva_check::registered_kernels().into_iter().filter(|c| c.name == "gemm_naive").collect();
    assert_eq!(good.len(), 1);
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::with_cases(good));
    let e = exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 });
    let (_, path) = engine.run_explained(&e);
    assert_eq!(path, "capture", "certified gate admits the retime path");
    assert!(engine.refusal().is_none());
}

/// Energy through the engine: live replay with the probe attached at the
/// setup boundary reproduces the full probed run bit-for-bit — summary,
/// per-layer attribution, and the streamed total.
#[test]
fn retimed_energy_attribution_is_bit_identical() {
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::decided(Ok(())));
    let model = EnergyModel::default();
    let e = exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 });
    let (s_full, a_full) = e.run_energy(&model);
    let (s_rt, a_rt) = engine.run_energy(&e, &model);
    assert_eq!(s_rt.cycles, s_full.cycles);
    assert_eq!(s_rt.report, s_full.report);
    assert_eq!(a_rt.total.total_j().to_bits(), a_full.total.total_j().to_bits());
    assert_eq!(a_rt.layers.len(), a_full.layers.len());
    for (l, r) in a_rt.layers.iter().zip(&a_full.layers) {
        assert_eq!(l.counts, r.counts, "layer {} counts diverged", l.index);
        assert_eq!(l.breakdown.total_j().to_bits(), r.breakdown.total_j().to_bits());
    }
    assert_eq!(engine.counters().energy_retimes, 1);
}

/// Streams through the engine: multi-frame capture, then a memoized
/// stream refit at another timing-only point, both bit-identical to
/// `run_stream`.
#[test]
fn retimed_streams_match_run_stream() {
    let mut engine = RetimeEngine::with_gate(RetimeOpt::On, CertGate::decided(Ok(())));
    let a = exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 });
    let b = exp(HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 4, l2_bytes: 1 << 20 });
    for e in [&a, &b] {
        let got = engine.run_stream(e, 2);
        let want = e.run_stream(2);
        assert_eq!(got.per_frame_cycles, want.per_frame_cycles);
        assert_eq!(got.steady.report, want.steady.report);
    }
    let c = engine.counters();
    assert_eq!(c.stream_captures, 1, "one capture per (stream, frames)");
    assert_eq!(c.stream_refits, 1, "same-geometry point refits the stream tape");
    // Asking again is a memo hit.
    engine.run_stream(&a, 2);
    assert_eq!(engine.counters().run_memo_hits, 1);
}
