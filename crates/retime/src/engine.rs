//! The retime engine: one front door for experiment execution that
//! transparently picks the cheapest sound path.
//!
//! Dispatch per request, in order:
//!
//! 1. mode `Off` → full simulation (the engine is a no-op).
//! 2. certificate gate refused → full simulation, refusal recorded.
//! 3. run memo hit → cloned summary.
//! 4. no recording for the stream → capture (one full simulation under
//!    the recorder; its summary *is* the answer).
//! 5. recording + a tape at this geometry → memoized tape refit.
//! 6. recording, no tape at this geometry → live replay, recording a
//!    fresh tape so the next run at this geometry refits.
//!
//! Under mode `Verify` every request additionally runs the full
//! simulator and asserts the results are bit-identical — cycles, flops,
//! the complete per-layer report with stall breakdowns, VPU statistics
//! and cache statistics.
//!
//! Results are independent of memo state (every path is bit-identical),
//! so a sweep driven through the engine produces byte-identical reports
//! for any execution order or warm/cold store.

use crate::cert::CertGate;
use crate::key::{ConfigKey, StreamKey};
use crate::store::RetimeStore;
use lva_core::{Experiment, RetimeOpt, RunSummary, StreamSummary};
use lva_trace::Json;
use std::sync::Arc;

/// Aggregate path counters, all monotone.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    pub full_runs: u64,
    pub refused_runs: u64,
    pub run_memo_hits: u64,
    pub captures: u64,
    pub tape_refits: u64,
    pub live_replays: u64,
    pub verified: u64,
    pub stream_captures: u64,
    pub stream_refits: u64,
    pub stream_live_replays: u64,
    pub energy_retimes: u64,
}

/// See the module docs.
#[derive(Debug)]
pub struct RetimeEngine {
    mode: RetimeOpt,
    gate: CertGate,
    store: RetimeStore,
    counters: Counters,
    /// First refusal reason observed, if any (stable across runs: the
    /// gate verdict is computed once).
    refusal: Option<String>,
}

fn mem_fingerprint(e: &Experiment) -> String {
    e.hw.machine_config().mem.state_fingerprint()
}

impl RetimeEngine {
    pub fn new(mode: RetimeOpt) -> Self {
        Self::with_gate(mode, CertGate::standard())
    }

    /// An engine with an explicit certificate gate (tests inject synthetic
    /// kernel sets or pre-decided verdicts).
    pub fn with_gate(mode: RetimeOpt, gate: CertGate) -> Self {
        RetimeEngine {
            mode,
            gate,
            store: RetimeStore::new(),
            counters: Counters::default(),
            refusal: None,
        }
    }

    /// Cap the recording store's byte budget.
    #[must_use]
    pub fn with_store(mut self, store: RetimeStore) -> Self {
        self.store = store;
        self
    }

    pub fn mode(&self) -> RetimeOpt {
        self.mode
    }

    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    pub fn store(&self) -> &RetimeStore {
        &self.store
    }

    /// The refusal reason, if the certificate gate refused retiming.
    pub fn refusal(&self) -> Option<&str> {
        self.refusal.as_deref()
    }

    /// Refuse to retime a shared-port (multi-core) simulation and record
    /// why. Kernel certificates prove a stream is invariant under
    /// *single-core* timing perturbations; with N cores contending on one
    /// L2/DRAM port, each core's timing depends on every other core's
    /// interleaved traffic — a global property no per-kernel certificate
    /// covers. Callers (`exp-scale --retime`) invoke this once per sweep
    /// and fall back to the full SoC simulation, which is exactly the
    /// engine's contract for any refusal: bit-identical output, no
    /// speedup. Returns the recorded reason.
    pub fn refuse_contention(&mut self) -> &'static str {
        self.counters.refused_runs += 1;
        if self.refusal.is_none() {
            self.refusal = Some(crate::cert::CONTENTION_REFUSAL.to_string());
        }
        crate::cert::CONTENTION_REFUSAL
    }

    /// `Ok` if retiming is certified; records the refusal otherwise.
    fn gate_ok(&mut self) -> bool {
        match self.gate.check() {
            Ok(()) => true,
            Err(reason) => {
                self.refusal = Some(reason);
                false
            }
        }
    }

    /// Run one experiment through the engine (see module docs for the
    /// dispatch order). Bit-identical to [`Experiment::run`] on every
    /// path; asserted per run under mode `Verify`.
    pub fn run(&mut self, e: &Experiment) -> RunSummary {
        self.run_explained(e).0
    }

    /// [`Self::run`], also naming the path that produced the result.
    pub fn run_explained(&mut self, e: &Experiment) -> (RunSummary, &'static str) {
        if !self.mode.enabled() {
            self.counters.full_runs += 1;
            return (e.run(), "full");
        }
        if !self.gate_ok() {
            self.counters.refused_runs += 1;
            return (e.run(), "refused");
        }
        let sk = StreamKey::of(e);
        let ck = ConfigKey::of(e);
        if let Some(s) = self.store.run_cached(&sk, &ck) {
            self.counters.run_memo_hits += 1;
            self.verify(e, &s);
            return (s, "run-memo");
        }
        let fp = mem_fingerprint(e);
        let (summary, path) = match self.store.lookup(&sk, &fp, e.refit_geometry()) {
            None => {
                let cap = e.run_traced();
                let s = cap.summary.clone();
                self.store.insert_trace(sk.clone(), cap, fp);
                self.counters.captures += 1;
                (s, "capture")
            }
            Some((cap, Some(tape), plan)) => {
                let memo = self.store.layer_memo_mut(ck.clone());
                let s = e
                    .retime_tape_memoized_with(&cap, &tape, &plan, memo)
                    .expect("tape indexed under this geometry fingerprint");
                self.counters.tape_refits += 1;
                (s, "tape-refit")
            }
            Some((cap, None, _plan)) => {
                let (s, tape) = e.retime_live_recording(&cap);
                self.store.add_tape(&sk, fp, Arc::new(tape));
                self.counters.live_replays += 1;
                (s, "live-replay")
            }
        };
        self.verify(e, &summary);
        self.store.store_run(sk, ck, summary.clone());
        (summary, path)
    }

    /// [`Experiment::run_stream`] through the engine: streaming captures
    /// are recorded per (stream, frame count) and re-timed like runs.
    pub fn run_stream(&mut self, e: &Experiment, frames: usize) -> StreamSummary {
        if !self.mode.enabled() {
            self.counters.full_runs += 1;
            return e.run_stream(frames);
        }
        if !self.gate_ok() {
            self.counters.refused_runs += 1;
            return e.run_stream(frames);
        }
        let sk = StreamKey::of(e);
        let ck = ConfigKey::of(e);
        if let Some(s) = self.store.stream_cached(&sk, frames, &ck) {
            self.counters.run_memo_hits += 1;
            self.verify_stream(e, frames, &s);
            return s;
        }
        let fp = mem_fingerprint(e);
        let summary = match self.store.lookup_stream(&sk, frames, e.refit_geometry()) {
            None => {
                let cap = e.run_stream_traced(frames);
                let s = cap.summary.clone();
                self.store.insert_stream(sk.clone(), frames, cap, fp);
                self.counters.stream_captures += 1;
                s
            }
            Some((cap, tape_fp, plan)) => {
                if tape_fp == fp {
                    let memo = self.store.layer_memo_mut(ck.clone());
                    self.counters.stream_refits += 1;
                    e.retime_stream_tape_memoized(&cap, &plan, memo)
                        .expect("fingerprint-matched stream tape")
                } else {
                    self.counters.stream_live_replays += 1;
                    e.retime_stream_live(&cap)
                }
            }
        };
        self.verify_stream(e, frames, &summary);
        self.store.store_stream_run(sk, frames, ck, summary.clone());
        summary
    }

    /// [`Experiment::run_energy`] through the engine. The energy probe
    /// consumes the live event stream, so this path live-replays the
    /// recording with the probe attached at the setup boundary (skipping
    /// functional execution); attribution and summary are bit-identical
    /// to the full probed run.
    pub fn run_energy(
        &mut self,
        e: &Experiment,
        model: &lva_core::EnergyModel,
    ) -> (RunSummary, lva_core::EnergyAttribution) {
        if !self.mode.enabled() {
            self.counters.full_runs += 1;
            return e.run_energy(model);
        }
        if !self.gate_ok() {
            self.counters.refused_runs += 1;
            return e.run_energy(model);
        }
        let sk = StreamKey::of(e);
        let ck = ConfigKey::of(e);
        let fp = mem_fingerprint(e);
        if self.store.lookup(&sk, &fp, e.refit_geometry()).is_none() {
            let cap = e.run_traced();
            self.store.insert_trace(sk.clone(), cap, fp.clone());
            self.counters.captures += 1;
        }
        let (cap, _, _) =
            self.store.lookup(&sk, &fp, e.refit_geometry()).expect("trace just ensured");
        let (summary, att) = e.retime_energy(&cap, model);
        self.counters.energy_retimes += 1;
        self.verify(e, &summary);
        self.store.store_run(sk, ck, summary.clone());
        (summary, att)
    }

    /// Mode `Verify`: run the full simulator and require bit-identity.
    fn verify(&mut self, e: &Experiment, got: &RunSummary) {
        if self.mode != RetimeOpt::Verify {
            return;
        }
        let full = e.run();
        assert_eq!(
            got.cycles,
            full.cycles,
            "retime verify: cycles diverged at {} ({})",
            e.hw.describe(),
            e.workload.describe()
        );
        assert_eq!(got.flops, full.flops, "retime verify: flops diverged at {}", e.hw.describe());
        assert_eq!(
            got.report,
            full.report,
            "retime verify: report diverged at {} ({})",
            e.hw.describe(),
            e.workload.describe()
        );
        assert_eq!(
            got.avg_vlen_bits.to_bits(),
            full.avg_vlen_bits.to_bits(),
            "retime verify: avg vlen diverged at {}",
            e.hw.describe()
        );
        assert_eq!(
            (got.l1_miss_rate.to_bits(), got.l2_miss_rate.to_bits()),
            (full.l1_miss_rate.to_bits(), full.l2_miss_rate.to_bits()),
            "retime verify: miss rates diverged at {}",
            e.hw.describe()
        );
        self.counters.verified += 1;
    }

    fn verify_stream(&mut self, e: &Experiment, frames: usize, got: &StreamSummary) {
        if self.mode != RetimeOpt::Verify {
            return;
        }
        let full = e.run_stream(frames);
        assert_eq!(
            got.per_frame_cycles,
            full.per_frame_cycles,
            "retime verify: per-frame cycles diverged at {}",
            e.hw.describe()
        );
        assert_eq!(
            got.steady.report,
            full.steady.report,
            "retime verify: steady report diverged at {}",
            e.hw.describe()
        );
        self.counters.verified += 1;
    }

    /// The engine's provenance report — the `retime` section of run
    /// reports and the wallclock benchmark.
    pub fn report(&self) -> Json {
        let c = &self.counters;
        let (configs, entries, hits, misses, bytes) = self.store.layer_memo_totals();
        let looked = hits + misses;
        let hit_rate = if looked == 0 { 0.0 } else { hits as f64 / looked as f64 };
        let mode = match self.mode {
            RetimeOpt::Off => "off",
            RetimeOpt::On => "on",
            RetimeOpt::Verify => "verify",
        };
        let mut j = Json::obj()
            .field("mode", mode)
            .field(
                "paths",
                Json::obj()
                    .field("full", c.full_runs)
                    .field("refused", c.refused_runs)
                    .field("run_memo_hits", c.run_memo_hits)
                    .field("captures", c.captures)
                    .field("tape_refits", c.tape_refits)
                    .field("live_replays", c.live_replays)
                    .field("stream_captures", c.stream_captures)
                    .field("stream_refits", c.stream_refits)
                    .field("stream_live_replays", c.stream_live_replays)
                    .field("energy_retimes", c.energy_retimes)
                    .field("verified", c.verified),
            )
            .field(
                "run_memo",
                Json::obj()
                    .field("hits", self.store.run_hits)
                    .field("misses", self.store.run_misses),
            )
            .field(
                "layer_memo",
                Json::obj()
                    .field("configs", configs as u64)
                    .field("entries", entries as u64)
                    .field("hits", hits)
                    .field("misses", misses)
                    .field("hit_rate", hit_rate)
                    .field("approx_bytes", bytes as u64),
            )
            .field(
                "store",
                Json::obj()
                    .field("recordings", self.store.trace_count() as u64)
                    .field("approx_bytes", self.store.approx_bytes() as u64)
                    .field("capacity_bytes", self.store.capacity_bytes() as u64)
                    .field("evictions", self.store.evictions),
            )
            .field("cert_ms", self.gate.cert_ms);
        if let Some(r) = &self.refusal {
            j = j.field("refusal", r.as_str());
        }
        j
    }
}
