//! The certificate gate: retiming is only sound if streams are
//! design-point invariant, and that is a *proven* property, not an
//! assumption.
//!
//! `lva-depgraph` already certifies every kernel in the `lva-check`
//! registry: per kernel × design point it re-records the semantic stream
//! under timing perturbations (L2 capacity, halved lanes, reference
//! model, full idealization) and requires it not to move, plus VL
//! equivalence across the swept vector lengths. The gate runs that
//! certification once per engine (lazily, on the first retime request)
//! and refuses — naming the offending kernels — if any certificate comes
//! back invalid. A refused engine falls back to full simulation for every
//! run, so a stream-varying kernel can never corrupt results; it only
//! costs the speedup.

use lva_check::{registered_kernels, sweep_configs, KernelCase};
use lva_depgraph::certify_kernel;
use std::time::Instant;

/// The refusal reason recorded when a caller asks the engine to retime a
/// *multi-core* (shared-port) simulation. Certificates prove stream
/// invariance under single-core timing perturbations; they say nothing
/// about cross-core interleaving, so the gate refuses categorically
/// rather than per-kernel ([`crate::RetimeEngine::refuse_contention`]).
pub const CONTENTION_REFUSAL: &str =
    "retime certificates are single-core timing proofs: under shared-port contention a core's \
     timing depends on every other core's interleaved traffic, which no per-kernel certificate \
     covers; falling back to full SoC simulation";

/// Lazily-evaluated certification verdict over a set of kernel cases.
pub struct CertGate {
    cases: Vec<KernelCase>,
    verdict: Option<Result<(), String>>,
    /// Host milliseconds the (one-time) certification pass took.
    pub cert_ms: f64,
    /// (kernel, shape, certified) per case, filled when the gate runs.
    pub certificates: Vec<(String, String, bool)>,
}

impl std::fmt::Debug for CertGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertGate")
            .field("cases", &self.cases.len())
            .field("verdict", &self.verdict)
            .finish()
    }
}

impl CertGate {
    /// The production gate: every kernel in the `lva-check` registry.
    pub fn standard() -> Self {
        Self::with_cases(registered_kernels())
    }

    /// A gate over explicit cases (tests inject synthetic kernels here).
    pub fn with_cases(cases: Vec<KernelCase>) -> Self {
        CertGate { cases, verdict: None, cert_ms: 0.0, certificates: Vec::new() }
    }

    /// A gate with a pre-decided verdict (no certification run). Used to
    /// skip the one-time cost when the caller has already run
    /// `lint-dataflow` in the same pipeline.
    pub fn decided(verdict: Result<(), String>) -> Self {
        CertGate {
            cases: Vec::new(),
            verdict: Some(verdict),
            cert_ms: 0.0,
            certificates: Vec::new(),
        }
    }

    /// Certify (once) and return the gate verdict: `Ok(())` if every case
    /// holds a valid certificate, else the refusal reason.
    pub fn check(&mut self) -> Result<(), String> {
        if self.verdict.is_none() {
            let t0 = Instant::now();
            let sweep = sweep_configs();
            let mut failed: Vec<String> = Vec::new();
            for case in &self.cases {
                let (cert, _findings) = certify_kernel(case, &sweep);
                if !cert.certified {
                    failed.push(format!("{}[{}]", cert.kernel, cert.shape));
                }
                self.certificates.push((cert.kernel, cert.shape, cert.certified));
            }
            self.cert_ms = t0.elapsed().as_secs_f64() * 1e3;
            self.verdict = Some(if failed.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "stream-invariance certification failed for {} kernel(s): {} \
                     — their semantic streams vary with the design point, so \
                     retiming would be unsound; falling back to full simulation",
                    failed.len(),
                    failed.join(", ")
                ))
            });
        }
        self.verdict.clone().expect("just decided")
    }
}
