//! The memoizing retime store: recordings, per-geometry tapes and plans,
//! run-level results, and per-config layer memos.
//!
//! Three tiers, cheapest hit first:
//!
//! 1. **Run memo** — `(StreamKey, ConfigKey) → RunSummary`. A design
//!    point asked twice (sweep grids overlap; verification re-runs) is a
//!    clone.
//! 2. **Layer memo** — per [`ConfigKey`], the `lva_isa::LayerMemo` of
//!    layer-region timing effects. Shared across streams at the same
//!    config (the `MemoKey` folds all stream content the effect depends
//!    on), so a repeated layer shape pays its timing once per config.
//! 3. **Recordings** — per [`StreamKey`], the captured trace plus probe
//!    tapes keyed by the memory-geometry fingerprint they were recorded
//!    at, and refit plans keyed by [`RefitGeometry`].
//!
//! Recordings dominate the footprint, so the store enforces a byte budget
//! over them with least-recently-used eviction; run and layer memos are
//! orders of magnitude smaller and are never evicted (eviction-free
//! determinism: a sweep's results are independent of hit/miss history).

use crate::key::{ConfigKey, StreamKey};
use lva_core::experiment::{CapturedRun, CapturedStream};
use lva_core::{RunSummary, StreamSummary};
use lva_isa::{LayerMemo, ProbeTape, RefitGeometry, RefitPlan};
use std::collections::HashMap;
use std::sync::Arc;

/// What [`RetimeStore::lookup`] hands back for a refit: the capture, the
/// stored tape matching the requested geometry fingerprint (if any), and
/// the refit plan for the geometry (built on first use).
pub type TraceLookup = (Arc<CapturedRun>, Option<Arc<ProbeTape>>, Arc<RefitPlan>);

/// Default recording budget: generous for full sweeps at the benchmark
/// scales while bounding a runaway grid on a small host.
pub const DEFAULT_CAPACITY_BYTES: usize = 6 << 30;

/// One captured semantic stream with its per-geometry derivatives.
#[derive(Debug)]
pub struct TraceEntry {
    pub cap: Arc<CapturedRun>,
    /// Probe tapes by `MemSystemConfig::state_fingerprint()` — the
    /// capture's own tape plus any recorded by live replays at other
    /// geometries.
    pub tapes: HashMap<String, Arc<ProbeTape>>,
    /// Refit plans by probe-count geometry (line size × hw-prefetch).
    pub plans: HashMap<RefitGeometry, Arc<RefitPlan>>,
    last_use: u64,
}

impl TraceEntry {
    fn approx_bytes(&self) -> usize {
        self.cap.approx_bytes() + self.tapes.values().map(|t| t.approx_bytes()).sum::<usize>()
    }
}

/// A captured multi-frame stream (`lva-serve`'s unit of work). Streams
/// keep only their capture-geometry tape: serving ladders re-time across
/// timing axes, and a geometry change falls back to live replay.
#[derive(Debug)]
pub struct StreamEntry {
    pub cap: Arc<CapturedStream>,
    /// Fingerprint of the geometry the capture tape is valid at.
    pub tape_fp: String,
    pub plans: HashMap<RefitGeometry, Arc<RefitPlan>>,
    last_use: u64,
}

impl StreamEntry {
    fn approx_bytes(&self) -> usize {
        self.cap.approx_bytes()
    }
}

/// The engine's state. See the module docs for the tier structure.
#[derive(Debug)]
pub struct RetimeStore {
    traces: HashMap<StreamKey, TraceEntry>,
    /// Streaming captures, keyed by stream identity × frame count.
    streams: HashMap<(StreamKey, usize), StreamEntry>,
    run_memo: HashMap<(StreamKey, ConfigKey), RunSummary>,
    stream_memo: HashMap<(StreamKey, usize, ConfigKey), StreamSummary>,
    layer_memos: HashMap<ConfigKey, LayerMemo>,
    capacity_bytes: usize,
    tick: u64,
    /// Recordings dropped to stay under the byte budget.
    pub evictions: u64,
    /// Run-memo counters (layer-memo counters live on each [`LayerMemo`]).
    pub run_hits: u64,
    pub run_misses: u64,
}

impl RetimeStore {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_BYTES)
    }

    /// A store with an explicit recording byte budget.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        RetimeStore {
            traces: HashMap::new(),
            streams: HashMap::new(),
            run_memo: HashMap::new(),
            stream_memo: HashMap::new(),
            layer_memos: HashMap::new(),
            capacity_bytes,
            tick: 0,
            evictions: 0,
            run_hits: 0,
            run_misses: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Approximate bytes held by recordings (the evictable tier).
    pub fn approx_bytes(&self) -> usize {
        self.traces.values().map(TraceEntry::approx_bytes).sum::<usize>()
            + self.streams.values().map(StreamEntry::approx_bytes).sum::<usize>()
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    pub fn trace_count(&self) -> usize {
        self.traces.len() + self.streams.len()
    }

    // ---- run memo ----------------------------------------------------

    pub fn run_cached(&mut self, sk: &StreamKey, ck: &ConfigKey) -> Option<RunSummary> {
        let hit = self.run_memo.get(&(sk.clone(), ck.clone())).cloned();
        if hit.is_some() {
            self.run_hits += 1;
        } else {
            self.run_misses += 1;
        }
        hit
    }

    pub fn store_run(&mut self, sk: StreamKey, ck: ConfigKey, s: RunSummary) {
        self.run_memo.insert((sk, ck), s);
    }

    pub fn stream_cached(
        &mut self,
        sk: &StreamKey,
        frames: usize,
        ck: &ConfigKey,
    ) -> Option<StreamSummary> {
        let hit = self.stream_memo.get(&(sk.clone(), frames, ck.clone())).cloned();
        if hit.is_some() {
            self.run_hits += 1;
        } else {
            self.run_misses += 1;
        }
        hit
    }

    pub fn store_stream_run(
        &mut self,
        sk: StreamKey,
        frames: usize,
        ck: ConfigKey,
        s: StreamSummary,
    ) {
        self.stream_memo.insert((sk, frames, ck), s);
    }

    // ---- layer memos -------------------------------------------------

    pub fn layer_memo_mut(&mut self, ck: ConfigKey) -> &mut LayerMemo {
        self.layer_memos.entry(ck).or_default()
    }

    /// Aggregate (configs, entries, hits, misses, bytes) over all layer
    /// memos.
    pub fn layer_memo_totals(&self) -> (usize, usize, u64, u64, usize) {
        let mut entries = 0;
        let mut hits = 0;
        let mut misses = 0;
        let mut bytes = 0;
        for m in self.layer_memos.values() {
            entries += m.len();
            hits += m.hits;
            misses += m.misses;
            bytes += m.approx_bytes();
        }
        (self.layer_memos.len(), entries, hits, misses, bytes)
    }

    // ---- recordings --------------------------------------------------

    pub fn has_trace(&self, sk: &StreamKey) -> bool {
        self.traces.contains_key(sk)
    }

    pub fn has_stream(&self, sk: &StreamKey, frames: usize) -> bool {
        self.streams.contains_key(&(sk.clone(), frames))
    }

    /// Insert a fresh capture; its own tape is indexed under `tape_fp`.
    pub fn insert_trace(&mut self, sk: StreamKey, cap: CapturedRun, tape_fp: String) {
        let tick = self.next_tick();
        let mut tapes = HashMap::new();
        tapes.insert(tape_fp, Arc::clone(&cap.tape));
        self.traces.insert(
            sk,
            TraceEntry { cap: Arc::new(cap), tapes, plans: HashMap::new(), last_use: tick },
        );
        self.enforce_budget();
    }

    pub fn insert_stream(
        &mut self,
        sk: StreamKey,
        frames: usize,
        cap: CapturedStream,
        tape_fp: String,
    ) {
        let tick = self.next_tick();
        self.streams.insert(
            (sk, frames),
            StreamEntry { cap: Arc::new(cap), tape_fp, plans: HashMap::new(), last_use: tick },
        );
        self.enforce_budget();
    }

    /// Look up a recording for a refit at geometry fingerprint `fp`:
    /// returns the capture, the matching tape (if one is stored), and the
    /// refit plan for `geom` (built on first use). Touches the LRU clock.
    pub fn lookup(&mut self, sk: &StreamKey, fp: &str, geom: RefitGeometry) -> Option<TraceLookup> {
        let tick = self.next_tick();
        let e = self.traces.get_mut(sk)?;
        e.last_use = tick;
        let plan = Arc::clone(
            e.plans.entry(geom).or_insert_with(|| Arc::new(RefitPlan::build(&e.cap.trace, geom))),
        );
        Some((Arc::clone(&e.cap), e.tapes.get(fp).cloned(), plan))
    }

    pub fn lookup_stream(
        &mut self,
        sk: &StreamKey,
        frames: usize,
        geom: RefitGeometry,
    ) -> Option<(Arc<CapturedStream>, String, Arc<RefitPlan>)> {
        let tick = self.next_tick();
        let e = self.streams.get_mut(&(sk.clone(), frames))?;
        e.last_use = tick;
        let plan = Arc::clone(
            e.plans.entry(geom).or_insert_with(|| Arc::new(RefitPlan::build(&e.cap.trace, geom))),
        );
        Some((Arc::clone(&e.cap), e.tape_fp.clone(), plan))
    }

    /// Index a tape recorded by a live replay at geometry `fp`.
    pub fn add_tape(&mut self, sk: &StreamKey, fp: String, tape: Arc<ProbeTape>) {
        if let Some(e) = self.traces.get_mut(sk) {
            e.tapes.insert(fp, tape);
        }
        self.enforce_budget();
    }

    /// Drop least-recently-used recordings until under budget, always
    /// keeping the most recent one (the caller is about to use it).
    fn enforce_budget(&mut self) {
        while self.trace_count() > 1 && self.approx_bytes() > self.capacity_bytes {
            let oldest_trace = self
                .traces
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, e)| (k.clone(), e.last_use));
            let oldest_stream = self
                .streams
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, e)| (k.clone(), e.last_use));
            match (oldest_trace, oldest_stream) {
                (Some((tk, tu)), Some((sk, su))) => {
                    if tu <= su {
                        self.traces.remove(&tk);
                    } else {
                        self.streams.remove(&sk);
                    }
                }
                (Some((tk, _)), None) => {
                    self.traces.remove(&tk);
                }
                (None, Some((sk, _))) => {
                    self.streams.remove(&sk);
                }
                (None, None) => return,
            }
            self.evictions += 1;
        }
    }
}

impl Default for RetimeStore {
    fn default() -> Self {
        Self::new()
    }
}
