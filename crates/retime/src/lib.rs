//! # lva-retime — trace once, retime many
//!
//! Sweeping the co-design space re-executes every kernel at every design
//! point, yet almost nothing a design point changes reaches the kernels:
//! lanes, latency constants, L2 capacity, prefetch policy and the
//! `IdealSpec` counterfactual knobs are *timing* inputs, not semantic ones.
//! This crate exploits that split end to end:
//!
//! 1. **Trace once.** Each distinct semantic stream — (platform class,
//!    vector length, policy, workload, seed) — is executed functionally a
//!    single time under the semantic recorder ([`lva_core::CapturedRun`]).
//! 2. **Retime many.** Every further design point of the same stream is
//!    re-timed from the recording: a probe-tape refit when the cache
//!    geometry matches a stored tape, a live replay (recording a fresh
//!    tape for next time) when it does not — both bit-identical to the
//!    full simulator.
//! 3. **Memoize layers.** Repeated layers inside a run, across runs, and
//!    across sweep grids hit the per-config [`lva_isa::LayerMemo`]: a
//!    layer whose reduced op region, tape slice and relative entry state
//!    were timed before is applied as a stored state delta (translation
//!    invariance of the timing automaton; see `lva_isa::refit`).
//!
//! Soundness is **certificate-gated**: retiming is only taken when every
//! kernel in the `lva-check` registry holds a valid
//! [`lva_depgraph::RetimeCertificate`] — the machine-checked proof that
//! its semantic stream does not move under the design-point perturbations
//! being swept. A kernel whose stream *does* vary with configuration
//! fails certification and the engine falls back to full simulation,
//! reporting the refusal reason.
//!
//! `--retime=verify` runs both paths for every request and asserts the
//! results are bit-identical (cycles, stall breakdowns, VPU statistics,
//! cache statistics, per-layer reports) — the CI mode.

#![forbid(unsafe_code)]

pub mod cert;
pub mod engine;
pub mod key;
pub mod store;

pub use cert::{CertGate, CONTENTION_REFUSAL};
pub use engine::RetimeEngine;
pub use key::{ConfigKey, StreamKey};
pub use lva_core::RetimeOpt as RetimeMode;
pub use store::RetimeStore;
