//! Memoization keys: which recordings and timings can be shared.
//!
//! The engine's soundness rests on two equivalences, each captured by a
//! key type:
//!
//! * [`StreamKey`] — two experiments share a *semantic stream* (and hence
//!   one recording) iff their kernels make identical decisions. Kernels
//!   see the ISA profile, the granted vector lengths, the conv policy and
//!   the workload data — but never lanes, latencies, cache capacities or
//!   `IdealSpec` knobs (that independence is exactly what the
//!   `lva-depgraph` certificates prove, and what `--retime=verify`
//!   re-checks end to end).
//! * [`ConfigKey`] — two runs share *timing* (and hence a layer memo) iff
//!   they agree on every timing input: the full hardware point plus the
//!   idealization spec.

use lva_core::{Experiment, HwTarget};

/// Identity of a semantic op stream: everything a kernel's control flow
/// can observe. Lanes and L2 capacity are deliberately absent (they are
/// timing-only; the certificate gate refuses retiming if any registered
/// kernel lets them leak into its stream). The A64FX profile is its own
/// class — its prefetch-enabled kernel paths differ from gem5-SVE at the
/// same vector length.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamKey(String);

impl StreamKey {
    pub fn of(e: &Experiment) -> Self {
        let class = match e.hw {
            HwTarget::RvvGem5 { vlen_bits, .. } => format!("rvv/{vlen_bits}b"),
            HwTarget::SveGem5 { vlen_bits, .. } => format!("sve/{vlen_bits}b"),
            HwTarget::A64fx => "a64fx".into(),
        };
        StreamKey(format!("{class}|{:?}|{:?}|seed={}", e.policy, e.workload, e.seed))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Identity of a timing configuration: the complete design point
/// (including the axes [`StreamKey`] ignores) plus the `IdealSpec`.
/// Layer memos are scoped per `ConfigKey` and shared across streams —
/// sound because the layer `MemoKey` already folds the stream content
/// (op signatures, tape slice, entry state) the effect depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigKey(String);

impl ConfigKey {
    pub fn of(e: &Experiment) -> Self {
        ConfigKey(format!("{:?}|{:?}", e.hw, e.ideal))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_core::{scaled_input, Workload};
    use lva_kernels::GemmVariant;
    use lva_nn::{ConvPolicy, ModelId};
    use lva_sim::IdealKnob;

    fn base() -> Experiment {
        Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload {
                model: ModelId::Yolov3Tiny,
                input_hw: scaled_input(ModelId::Yolov3Tiny, 13),
                layer_limit: Some(2),
            },
        )
    }

    #[test]
    fn stream_key_ignores_timing_axes_only() {
        let e = base();
        let mut lanes = e.clone();
        lanes.hw = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 4, l2_bytes: 1 << 20 };
        let mut l2 = e.clone();
        l2.hw = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 4 << 20 };
        let ideal = e.clone().with_ideal(IdealKnob::PerfectL2.spec());
        // Timing-only changes share the stream...
        assert_eq!(StreamKey::of(&e), StreamKey::of(&lanes));
        assert_eq!(StreamKey::of(&e), StreamKey::of(&l2));
        assert_eq!(StreamKey::of(&e), StreamKey::of(&ideal));
        // ...but never the timing config.
        assert_ne!(ConfigKey::of(&e), ConfigKey::of(&lanes));
        assert_ne!(ConfigKey::of(&e), ConfigKey::of(&l2));
        assert_ne!(ConfigKey::of(&e), ConfigKey::of(&ideal));
    }

    #[test]
    fn stream_key_splits_semantic_axes() {
        let e = base();
        let mut vlen = e.clone();
        vlen.hw = HwTarget::RvvGem5 { vlen_bits: 4096, lanes: 8, l2_bytes: 1 << 20 };
        let mut isa = e.clone();
        isa.hw = HwTarget::SveGem5 { vlen_bits: 2048, l2_bytes: 1 << 20 };
        let mut seed = e.clone();
        seed.seed = 7;
        let mut shape = e.clone();
        shape.workload.layer_limit = Some(3);
        for other in [&vlen, &isa, &seed, &shape] {
            assert_ne!(StreamKey::of(&e), StreamKey::of(other));
        }
    }
}
