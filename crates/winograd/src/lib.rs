//! # lva-winograd — Winograd convolution F(6x6, 3x3) on 8x8 tiles
//!
//! The paper's §IV-B/§VII algorithmic alternative to im2col+GEMM for 3x3
//! convolutions, built from scratch:
//!
//! * [`cooktoom`] — an exact-rational Cook–Toom generator for the
//!   `B^T`/`G`/`A^T` transform matrices of any `F(m, r)`, instantiated at
//!   the NNPACK operating point `F(6, 3)` (8x8 tiles, interpolation points
//!   `{0, ±1, ±2, ±1/2, ∞}`), plus `F(2,3)` and `F(4,3)`;
//! * [`scalar`] — a host reference implementation (tiling, nested 1D
//!   transforms, tuple multiplication) validated against direct convolution;
//! * [`vla`] — the paper's vector-length-agnostic implementation on the
//!   simulated SVE machine, with **inter-tile parallelism across channels**
//!   (Fig. 4/5): `VL/4` channels are packed per vector (two 8x4 tile
//!   half-rows per channel), the row transform is applied to whole packed
//!   buffers with `vfmacc`, and the tuple multiplication is vectorized
//!   across the 64 tile frequencies (64 SP elements = the full 2048-bit SVE
//!   vector, §IV-B).
//!
//! Stride-2 3x3 layers are supported by computing the dense stride-1
//! Winograd output and decimating (see DESIGN.md: the paper reports Winograd
//! is 1.4x *slower* than im2col+GEMM for its 6 stride-2 layers, which this
//! realization reproduces; the paper does not specify its stride-2 scheme).

#![forbid(unsafe_code)]
pub mod cooktoom;
pub mod scalar;
pub mod vla;

pub use cooktoom::{f2x3, f4x3, f6x3, Rat, WinogradTransform};
pub use scalar::winograd_conv_ref;
pub use vla::{winograd_conv_vla, WinogradPlan, WinogradScratch};
