//! The paper's VLA-vectorized Winograd on the simulated SVE machine.
//!
//! ## Inter-tile parallelism across channels (Fig. 4 / Fig. 5)
//!
//! Vectorizing an 8x8 tile transform alone cannot exploit vectors longer
//! than 256 bits without growing the tile (which hurts accuracy, §IV-B).
//! Instead, the transforms pack the *same* 8x4 half-row from
//! `interchannels = VL/4` different channels into one vector (`buff1` holds
//! columns 0..4, `buff2` columns 4..8), so one `vfmacc` applies a transform
//! coefficient to `VL/4` tiles at once. With 512-bit vectors that is 4
//! channels; with 2048-bit vectors, 16 (exactly the paper's example).
//!
//! Both transform passes are row transforms: pass 1 computes `P = B^T d`
//! and scatters `P` transposed into a scratch tile, pass 2 re-gathers the
//! scratch rows (i.e. the columns of `P`) and applies `B^T` again, which
//! yields `V = B^T d B` in natural orientation. The output transform does
//! the same with `A^T` (6 output rows). Gathers/scatters use predicated
//! lanes (`u32::MAX` sentinel) for tile positions that fall outside the
//! output, so ragged borders need no scalar epilogue.
//!
//! ## Tuple multiplication (§IV-B)
//!
//! `M[oc] = sum_ic U[oc][ic] ⊙ V[ic]` is vectorized across the 64 tile
//! frequencies — "16 blocks with 4 elements in each block", i.e. 64 SP
//! elements filling the full 2048-bit SVE vector; shorter vector lengths
//! process the 64 frequencies in `64/VL` register chunks.
//!
//! ## Strides
//!
//! Stride-1 3x3 layers run natively. Stride-2 layers compute the dense
//! stride-1 output and decimate (see crate docs): the paper observed such
//! layers are ~1.4x slower with Winograd than with im2col+GEMM, and this
//! realization reproduces that behaviour.

use crate::cooktoom::{f6x3, WinogradTransform};
use lva_isa::{IsaKind, KernelPhase, Machine, VReg};
use lva_kernels::ConvParams;
use lva_sim::Buf;
use lva_tensor::Tensor;

/// Tile size (8) and frequency count (64) of F(6x6, 3x3).
const N: usize = 8;
const FREQ: usize = N * N;
/// Outputs per tile dimension (6).
const M_OUT: usize = 6;
/// Elements per packed half-row ("elements = 4" in Fig. 4).
const GROUP: usize = 4;
/// Padding (in f32 words) appended to each output channel's row of
/// transformed weights: one full 256 B line. Staggers the parallel U
/// streams of the blocked tuple multiplication across cache sets — without
/// it the streams sit exactly `in_c * 256 B` apart and conflict in the
/// same associativity ways.
const U_ROW_PAD: usize = 64;

// Register map of the packed transforms.
const IN0: VReg = 0; // v0..v7: half-row 0..4 of tile rows 0..8
const IN8: VReg = 8; // v8..v15: half-row 4..8
const OUT0: VReg = 16; // v16..: transformed rows (8 or 6 per half)

// Register map of the tuple multiplication: V chunks are loaded once per
// input channel and reused across a block of OCB output channels, so the
// U-row load is the only per-FMA memory operand (NNPACK-style register
// blocking — the paper's "16 blocks with 4 elements in each block").
const VU: VReg = 0;
const VV0: VReg = 1; // up to 4 chunks of the 64 frequencies
const VACC0: VReg = 8; // OCB x chunks accumulators
/// Output channels blocked per tuple-multiplication pass.
const OCB: usize = 4;

/// Pre-built state for running one convolutional layer with Winograd.
#[derive(Debug)]
pub struct WinogradPlan {
    /// The layer this plan was built for.
    pub params: ConvParams,
    /// Stride-1 equivalent geometry (identical when `params.stride == 1`).
    s1: ConvParams,
    /// The F(6,3) transform matrices.
    pub transform: WinogradTransform,
    tiles_y: usize,
    tiles_x: usize,
    ph: usize,
    pw: usize,
    padded: Buf,
    /// Transformed weights `[oc][ic][64]`, produced offline (§VII-A: the
    /// weight transform is performed offline for inference and excluded
    /// from the measurements).
    pub u: Buf,
    v_all: Buf,
    m_all: Buf,
    scratch: Buf,
    /// Dense stride-1 output staging for stride-2 layers.
    dense: Option<Buf>,
    idx: Vec<u32>,
    /// Source weights (`[oc][ic][9]`); kept for shared-scratch plans that
    /// must re-transform on every forward.
    weights: Buf,
    /// Whether `u` is private to this plan (transformed once at build) or a
    /// shared buffer that other layers overwrite between forwards.
    owns_u: bool,
}

/// Shared Winograd working buffers, sized for the largest layer of a
/// network. Per-layer transformed weights for a full YOLOv3 would need
/// gigabytes of simulated memory; since the weight transform is offline and
/// untimed anyway (§VII-A), network runs share one set of buffers and
/// re-transform per forward (functionally only).
#[derive(Debug, Clone, Copy)]
pub struct WinogradScratch {
    u: Buf,
    v_all: Buf,
    m_all: Buf,
    tile: Buf,
    padded: Buf,
    dense: Buf,
}

impl WinogradScratch {
    /// Allocate scratch able to serve every 3x3 layer in `layers`.
    ///
    /// # Panics
    /// Panics if `layers` is empty.
    pub fn for_layers<I: IntoIterator<Item = ConvParams>>(m: &mut Machine, layers: I) -> Self {
        let mut u_w = 0;
        let mut v_w = 0;
        let mut m_w = 0;
        let mut pad_w = 0;
        let mut dense_w = 1;
        let mut any = false;
        for p in layers {
            any = true;
            assert_eq!(p.k, 3, "Winograd scratch is for 3x3 layers");
            let s1 = ConvParams { stride: 1, ..p };
            let (oh1, ow1) = s1.out_hw();
            let ty = oh1.div_ceil(M_OUT);
            let tx = ow1.div_ceil(M_OUT);
            let tiles = ty * tx;
            u_w = u_w.max(p.out_c * (p.in_c * FREQ + U_ROW_PAD));
            v_w = v_w.max(tiles * p.in_c * FREQ);
            m_w = m_w.max(tiles * p.out_c * FREQ);
            pad_w = pad_w.max(p.in_c * (ty * M_OUT + 2) * (tx * M_OUT + 2));
            if p.stride == 2 {
                dense_w = dense_w.max(p.out_c * oh1 * ow1);
            }
        }
        assert!(any, "no layers supplied");
        let cb = WinogradPlan::channels_per_block(m);
        WinogradScratch {
            u: m.mem.alloc(u_w),
            v_all: m.mem.alloc(v_w),
            m_all: m.mem.alloc(m_w),
            tile: m.mem.alloc(cb * FREQ),
            padded: m.mem.alloc(pad_w),
            dense: m.mem.alloc(dense_w),
        }
    }
}

impl WinogradPlan {
    /// Channels packed per vector: `interchannels = VL / 4` (Fig. 4 l. 4).
    fn channels_per_block(m: &Machine) -> usize {
        (m.vlen_elems() / GROUP).max(1)
    }

    /// Words per output channel in the padded `u` layout.
    fn u_row_words(&self) -> usize {
        self.params.in_c * FREQ + U_ROW_PAD
    }

    /// Build a plan for a 3x3 stride-1/2 layer, transforming `weights`
    /// (`[oc][ic][3][3]` flattened, i.e. the GEMM `M x K` layout) offline.
    ///
    /// # Panics
    /// Panics if the layer is not 3x3 with stride 1 or 2, or if the machine
    /// is not an SVE profile (the paper's RVV lacks the required intrinsics
    /// and is excluded from the Winograd analysis, §VII).
    pub fn new(m: &mut Machine, p: ConvParams, weights: Buf) -> Self {
        assert_eq!(p.k, 3, "Winograd F(6,3) requires 3x3 kernels");
        assert!(p.stride == 1 || p.stride == 2, "stride 1 or 2 only");
        assert_eq!(
            m.config().vpu.isa,
            IsaKind::Sve,
            "Winograd runs on ARM-SVE only (no tuple/transpose support on RISC-V Vector, §VII)"
        );
        assert_eq!(weights.words, p.out_c * p.in_c * 9, "weight shape mismatch");
        let transform = f6x3();
        let s1 = ConvParams { stride: 1, ..p };
        let (oh1, ow1) = s1.out_hw();
        let tiles_y = oh1.div_ceil(M_OUT);
        let tiles_x = ow1.div_ceil(M_OUT);
        let (ph, pw) = (tiles_y * M_OUT + 2, tiles_x * M_OUT + 2);
        let padded = m.mem.alloc(p.in_c * ph * pw);
        let u_row = p.in_c * FREQ + U_ROW_PAD;
        let u = m.mem.alloc(p.out_c * u_row);
        // Offline weight transform (functional only, untimed).
        {
            let w_host = m.mem.slice(weights).to_vec();
            for oc in 0..p.out_c {
                for ic in 0..p.in_c {
                    let f = oc * p.in_c + ic;
                    let u2d = transform.transform_filter_2d(&w_host[f * 9..(f + 1) * 9]);
                    m.mem.slice_mut(u)[oc * u_row + ic * FREQ..oc * u_row + (ic + 1) * FREQ]
                        .copy_from_slice(&u2d);
                }
            }
        }
        let v_all = m.mem.alloc(tiles_y * tiles_x * p.in_c * FREQ);
        let m_all = m.mem.alloc(tiles_y * tiles_x * p.out_c * FREQ);
        let cb = Self::channels_per_block(m);
        let scratch = m.mem.alloc(cb * FREQ);
        let dense = if p.stride == 2 { Some(m.mem.alloc(p.out_c * oh1 * ow1)) } else { None };
        WinogradPlan {
            params: p,
            s1,
            transform,
            tiles_y,
            tiles_x,
            ph,
            pw,
            padded,
            u,
            v_all,
            m_all,
            scratch,
            dense,
            idx: vec![0; m.vlen_elems()],
            weights,
            owns_u: true,
        }
    }

    /// Build a plan over shared [`WinogradScratch`] buffers. The weight
    /// transform is deferred to each forward (other layers overwrite the
    /// shared `u` in between); it stays functional-only/untimed.
    pub fn new_shared(
        m: &mut Machine,
        p: ConvParams,
        weights: Buf,
        shared: &WinogradScratch,
    ) -> Self {
        assert_eq!(p.k, 3, "Winograd F(6,3) requires 3x3 kernels");
        assert!(p.stride == 1 || p.stride == 2, "stride 1 or 2 only");
        assert_eq!(
            m.config().vpu.isa,
            IsaKind::Sve,
            "Winograd runs on ARM-SVE only (no tuple/transpose support on RISC-V Vector, §VII)"
        );
        assert_eq!(weights.words, p.out_c * p.in_c * 9, "weight shape mismatch");
        let transform = f6x3();
        let s1 = ConvParams { stride: 1, ..p };
        let (oh1, ow1) = s1.out_hw();
        let tiles_y = oh1.div_ceil(M_OUT);
        let tiles_x = ow1.div_ceil(M_OUT);
        let (ph, pw) = (tiles_y * M_OUT + 2, tiles_x * M_OUT + 2);
        let cb = Self::channels_per_block(m);
        WinogradPlan {
            params: p,
            s1,
            transform,
            tiles_y,
            tiles_x,
            ph,
            pw,
            padded: shared.padded.slice(0, p.in_c * ph * pw),
            u: shared.u.slice(0, p.out_c * (p.in_c * FREQ + U_ROW_PAD)),
            v_all: shared.v_all.slice(0, tiles_y * tiles_x * p.in_c * FREQ),
            m_all: shared.m_all.slice(0, tiles_y * tiles_x * p.out_c * FREQ),
            scratch: shared.tile.slice(0, cb * FREQ),
            dense: if p.stride == 2 {
                Some(shared.dense.slice(0, p.out_c * oh1 * ow1))
            } else {
                None
            },
            idx: vec![0; m.vlen_elems()],
            weights,
            owns_u: false,
        }
    }

    /// Arena words this plan's buffers occupy (reporting).
    pub fn footprint_words(&self) -> usize {
        self.padded.words
            + self.u.words
            + self.v_all.words
            + self.m_all.words
            + self.scratch.words
            + self.dense.map_or(0, |d| d.words)
    }
}

/// Apply a packed row transform: `out_row[i] = sum_r coeffs[i*8+r] * in_row[r]`
/// on both half-row register groups, exploiting coefficient sparsity.
///
/// The accumulation is interleaved across the (independent) output rows —
/// input-row index outermost — so consecutive instructions never extend the
/// same dependency chain; on the in-order gem5 profiles this hides the
/// FMA pipeline latency exactly like the GEMM micro-kernel's unrolling.
fn apply_packed_transform(m: &mut Machine, coeffs: &[f32], rows_out: usize, vl: usize) {
    debug_assert_eq!(coeffs.len(), rows_out * N);
    let mut started = [false; 2 * 8];
    for r in 0..N {
        for half in 0..2 {
            let in_base = if half == 0 { IN0 } else { IN8 };
            for i in 0..rows_out {
                let c = coeffs[i * N + r];
                if c == 0.0 {
                    continue;
                }
                let slot = half * rows_out + i;
                let out = OUT0 + slot;
                if started[slot] {
                    m.vfmacc_vf(out, c, in_base + r, vl);
                } else {
                    m.vfmul_vf(out, in_base + r, c, vl);
                    started[slot] = true;
                }
            }
        }
    }
    for (slot, st) in started.iter().enumerate().take(2 * rows_out) {
        if !st {
            m.vbroadcast(OUT0 + slot, 0.0, vl);
        }
    }
}

/// Forward convolution with the plan. `out` receives `oc x oh x ow`
/// (overwritten, not accumulated).
pub fn winograd_conv_vla(m: &mut Machine, plan: &mut WinogradPlan, input: &Tensor, out: Buf) {
    let p = plan.params;
    assert_eq!(input.shape.len(), p.in_c * p.in_h * p.in_w, "input shape mismatch");
    let (oh, ow) = p.out_hw();
    assert!(out.words >= p.out_c * oh * ow, "output buffer too small");
    let (oh1, ow1) = plan.s1.out_hw();
    let target = plan.dense.unwrap_or(out);

    if !plan.owns_u {
        // Shared scratch: re-run the offline (untimed) weight transform.
        let w_host = m.mem.slice(plan.weights).to_vec();
        let u_row = plan.u_row_words();
        for oc in 0..p.out_c {
            for ic in 0..p.in_c {
                let f = oc * p.in_c + ic;
                let u2d = plan.transform.transform_filter_2d(&w_host[f * 9..(f + 1) * 9]);
                m.mem.slice_mut(plan.u)[oc * u_row + ic * FREQ..oc * u_row + (ic + 1) * FREQ]
                    .copy_from_slice(&u2d);
            }
        }
        // The shared padded buffer may hold another layer's data: clear the
        // border cells that the input copy below does not overwrite. This is
        // functional-only bookkeeping of buffer reuse, so it is untimed.
        m.mem.slice_mut(plan.padded).fill(0.0);
    }

    // Stage the input into the zero-padded tile grid (counted with the
    // input transform, as in NNPACK).
    m.phase(KernelPhase::WinogradInputTransform, |m| {
        for ci in 0..p.in_c {
            for y in 0..p.in_h {
                lva_kernels::aux::copy_vec(
                    m,
                    input.buf,
                    (ci * p.in_h + y) * p.in_w,
                    plan.padded,
                    (ci * plan.ph + y + p.pad) * plan.pw + p.pad,
                    p.in_w,
                );
            }
        }
    });

    let cb_max = WinogradPlan::channels_per_block(m);
    // NNPACK structure: transform every tile, then one blocked tuple
    // multiplication over all tiles (GEMM-like operand reuse), then the
    // inverse transform of every tile.
    for ty in 0..plan.tiles_y {
        for tx in 0..plan.tiles_x {
            input_transform_tile(m, plan, ty, tx, cb_max);
        }
    }
    tuple_multiply(m, plan);
    for ty in 0..plan.tiles_y {
        for tx in 0..plan.tiles_x {
            output_transform_tile(m, plan, ty, tx, cb_max, target, oh1, ow1);
        }
    }

    // Stride-2: decimate the dense stride-1 output.
    if let Some(dense) = plan.dense {
        m.phase(KernelPhase::Other, |m| {
            let s = p.stride;
            for oc in 0..p.out_c {
                for oy in 0..oh {
                    let src_row = (oc * oh1 + oy * s) * ow1;
                    let dst_row = (oc * oh + oy) * ow;
                    let mut x = 0;
                    while x < ow {
                        let gvl = m.setvl(ow - x);
                        m.vlse(IN0, dense.addr(src_row + x * s), 4 * s as u64, gvl);
                        m.vse(IN0, out.addr(dst_row + x), gvl);
                        x += gvl;
                    }
                }
            }
        });
    }
}

/// Pass 1 + pass 2 of the input transform for one tile position, all input
/// channels, in blocks of `VL/4` channels (Fig. 4).
fn input_transform_tile(
    m: &mut Machine,
    plan: &mut WinogradPlan,
    ty: usize,
    tx: usize,
    cb_max: usize,
) {
    let p = plan.params;
    let bt: Vec<f32> = plan.transform.bt.clone();
    let (ph, pw) = (plan.ph, plan.pw);
    let (iy0, ix0) = (ty * M_OUT, tx * M_OUT);
    m.phase(KernelPhase::WinogradInputTransform, |m| {
        let mut c0 = 0;
        while c0 < p.in_c {
            let cb = cb_max.min(p.in_c - c0);
            // SVE discipline: the packed-lane count of a tail block comes
            // from a `whilelt` grant over channel-lanes (Fig. 4 line 5),
            // not from an ungoverned partial vector length.
            let vl = m.whilelt(c0 * GROUP, p.in_c * GROUP).active;
            debug_assert_eq!(vl, cb * GROUP);
            // Pass 1: gather tile rows from the padded image.
            for r in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (((c0 + ch) * ph + iy0 + r) * pw + ix0 + col) as u32;
                    }
                    m.charge_scalar_ops((vl / GROUP) as u64 + 1); // pack bookkeeping
                    let reg = if half == 0 { IN0 + r } else { IN8 + r };
                    m.vgather4(reg, plan.padded.base, &plan.idx[..vl], vl);
                }
            }
            apply_packed_transform(m, &bt, N, vl);
            // Scatter P transposed into the scratch tile.
            for i in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (ch * FREQ + col * N + i) as u32;
                    }
                    m.vscatter4(OUT0 + half * N + i, plan.scratch.base, &plan.idx[..vl], vl);
                }
            }
            // Pass 2: gather the columns of P (rows of the scratch).
            for r in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (ch * FREQ + r * N + col) as u32;
                    }
                    let reg = if half == 0 { IN0 + r } else { IN8 + r };
                    m.vgather4(reg, plan.scratch.base, &plan.idx[..vl], vl);
                }
            }
            apply_packed_transform(m, &bt, N, vl);
            // Scatter V (natural orientation) into this tile's region.
            let tbase = (ty * plan.tiles_x + tx) * p.in_c * FREQ;
            for i in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (tbase + (c0 + ch) * FREQ + col * N + i) as u32;
                    }
                    m.vscatter4(OUT0 + half * N + i, plan.v_all.base, &plan.idx[..vl], vl);
                }
            }
            c0 += cb;
        }
    });
}

/// Tuple multiplication over all tiles:
/// `M[t][oc][f] = sum_ic U[oc][ic][f] * V[t][ic][f]`,
/// vectorized over the 64 frequencies, register-blocked
/// over [`OCB`] output channels (each V chunk loaded once per input
/// channel), and with the tile/channel loop order chosen to keep the
/// smaller operand resident in cache: when the transformed weights are the
/// larger operand (deep layers), the output-channel block loop runs
/// outermost so each 4-row U panel is re-read tile after tile from cache;
/// when the transformed input is larger (early layers with many tiles),
/// the tile loop runs outermost.
fn tuple_multiply(m: &mut Machine, plan: &WinogradPlan) {
    let p = plan.params;
    let tiles = plan.tiles_y * plan.tiles_x;
    // Two-level cache blocking, like a GEMM with N = tiles: the tile loop
    // is blocked so that one block's transformed inputs (TB * ic * 256 B)
    // stay L2-resident across the whole output-channel sweep, and within a
    // block each OCB-row U panel is re-read tile after tile from cache.
    let l2 = m.config().mem.l2.bytes;
    let v_tile_bytes = p.in_c * FREQ * 4;
    let tb = (l2 / 2 / v_tile_bytes).clamp(1, tiles);
    m.phase(KernelPhase::WinogradTupleMul, |m| {
        let mut t0 = 0;
        while t0 < tiles {
            let tbn = tb.min(tiles - t0);
            let mut oc0 = 0;
            while oc0 < p.out_c {
                let ob = OCB.min(p.out_c - oc0);
                for t in t0..t0 + tbn {
                    tuple_block(m, plan, t, oc0, ob);
                }
                oc0 += ob;
            }
            t0 += tbn;
        }
    });
}

/// One (tile, output-channel block) accumulation of the tuple
/// multiplication.
fn tuple_block(m: &mut Machine, plan: &WinogradPlan, t: usize, oc0: usize, ob: usize) {
    let p = plan.params;
    let u_row = plan.u_row_words();
    let vlen = m.vlen_elems().min(FREQ);
    let chunks = FREQ.div_ceil(vlen);
    debug_assert!(chunks <= 4);
    let vbase = t * p.in_c * FREQ;
    let mbase = t * p.out_c * FREQ;
    for r in 0..ob * chunks {
        let vl = vlen.min(FREQ - (r % chunks) * vlen);
        m.vbroadcast(VACC0 + r, 0.0, vl);
    }
    for ic in 0..p.in_c {
        m.charge_scalar_ops(1);
        // Load the V chunks once for this input channel.
        for ch in 0..chunks {
            let vl = vlen.min(FREQ - ch * vlen);
            m.vle(VV0 + ch, plan.v_all.addr(vbase + ic * FREQ + ch * vlen), vl);
        }
        for o in 0..ob {
            for ch in 0..chunks {
                let vl = vlen.min(FREQ - ch * vlen);
                let off = ch * vlen;
                m.vle(VU, plan.u.addr((oc0 + o) * u_row + ic * FREQ + off), vl);
                m.vfmacc_vv(VACC0 + o * chunks + ch, VU, VV0 + ch, vl);
            }
        }
    }
    for o in 0..ob {
        for ch in 0..chunks {
            let vl = vlen.min(FREQ - ch * vlen);
            m.vse(
                VACC0 + o * chunks + ch,
                plan.m_all.addr(mbase + (oc0 + o) * FREQ + ch * vlen),
                vl,
            );
        }
    }
}

/// Output transform for one tile: `Y = A^T M A` across output channels in
/// blocks of `VL/4`, with predicated scatter for ragged borders.
#[allow(clippy::too_many_arguments)]
fn output_transform_tile(
    m: &mut Machine,
    plan: &mut WinogradPlan,
    ty: usize,
    tx: usize,
    cb_max: usize,
    target: Buf,
    oh1: usize,
    ow1: usize,
) {
    let p = plan.params;
    let at: Vec<f32> = plan.transform.at.clone();
    m.phase(KernelPhase::WinogradOutputTransform, |m| {
        let mut o0 = 0;
        while o0 < p.out_c {
            let cb = cb_max.min(p.out_c - o0);
            // Same `whilelt` tail discipline as the input transform.
            let vl = m.whilelt(o0 * GROUP, p.out_c * GROUP).active;
            debug_assert_eq!(vl, cb * GROUP);
            // Pass 1: gather M rows of this tile.
            let mbase = (ty * plan.tiles_x + tx) * p.out_c * FREQ;
            for r in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (mbase + (o0 + ch) * FREQ + r * N + col) as u32;
                    }
                    let reg = if half == 0 { IN0 + r } else { IN8 + r };
                    m.vgather4(reg, plan.m_all.base, &plan.idx[..vl], vl);
                }
            }
            apply_packed_transform(m, &at, M_OUT, vl);
            // Scatter P2 = A^T M transposed (6 valid positions per row).
            for i in 0..M_OUT {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] = (ch * FREQ + col * N + i) as u32;
                    }
                    m.vscatter4(OUT0 + half * M_OUT + i, plan.scratch.base, &plan.idx[..vl], vl);
                }
            }
            // Pass 2: gather rows of P2^T (columns 6,7 are predicated out).
            for r in 0..N {
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, col) = (l / GROUP, l % GROUP + 4 * half);
                        plan.idx[l] =
                            if col < M_OUT { (ch * FREQ + r * N + col) as u32 } else { u32::MAX };
                    }
                    let reg = if half == 0 { IN0 + r } else { IN8 + r };
                    m.vgather4(reg, plan.scratch.base, &plan.idx[..vl], vl);
                }
            }
            apply_packed_transform(m, &at, M_OUT, vl);
            // Scatter Y (out_row i lane (ch, j) = Y[j][i]) with border clip.
            for i in 0..M_OUT {
                let ox = tx * M_OUT + i;
                for half in 0..2 {
                    for l in 0..vl {
                        let (ch, j) = (l / GROUP, l % GROUP + 4 * half);
                        let oy = ty * M_OUT + j;
                        plan.idx[l] = if j < M_OUT && oy < oh1 && ox < ow1 {
                            (((o0 + ch) * oh1 + oy) * ow1 + ox) as u32
                        } else {
                            u32::MAX
                        };
                    }
                    m.charge_scalar_ops((vl / GROUP) as u64 + 1);
                    m.vscatter4(OUT0 + half * M_OUT + i, target.base, &plan.idx[..vl], vl);
                }
            }
            o0 += cb;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::winograd_conv_ref;
    use lva_isa::MachineConfig;
    use lva_kernels::reference::conv_direct_ref;
    use lva_tensor::{approx_eq, Matrix, Shape};

    fn machine(vlen: usize) -> Machine {
        Machine::new(MachineConfig::sve_gem5(vlen, 1 << 20))
    }

    fn run_vla(vlen: usize, p: ConvParams) -> (Vec<f32>, Vec<f32>, u64) {
        let mut m = machine(vlen);
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 21);
        let w = Matrix::random(&mut m, p.out_c, p.in_c * 9, 22);
        let (oh, ow) = p.out_hw();
        let out = m.mem.alloc(p.out_c * oh * ow);
        let mut plan = WinogradPlan::new(&mut m, p, w.buf);
        winograd_conv_vla(&mut m, &mut plan, &img, out);
        let direct = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        (m.mem.slice(out).to_vec(), direct, m.cycles())
    }

    #[test]
    fn vla_matches_direct_s1_512b() {
        let p = ConvParams { in_c: 3, in_h: 13, in_w: 10, out_c: 5, k: 3, stride: 1, pad: 1 };
        let (got, want, _) = run_vla(512, p);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3), "mismatch");
    }

    #[test]
    fn vla_matches_direct_s1_2048b() {
        // 16 channels per block with 2048-bit vectors (the paper's example).
        let p = ConvParams { in_c: 20, in_h: 12, in_w: 12, out_c: 7, k: 3, stride: 1, pad: 1 };
        let (got, want, _) = run_vla(2048, p);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn vla_matches_scalar_winograd() {
        let p = ConvParams { in_c: 4, in_h: 9, in_w: 9, out_c: 3, k: 3, stride: 1, pad: 1 };
        let mut m = machine(1024);
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 31);
        let w = Matrix::random(&mut m, p.out_c, p.in_c * 9, 32);
        let (oh, ow) = p.out_hw();
        let out = m.mem.alloc(p.out_c * oh * ow);
        let mut plan = WinogradPlan::new(&mut m, p, w.buf);
        winograd_conv_vla(&mut m, &mut plan, &img, out);
        let sref = winograd_conv_ref(&plan.transform, &p, &img.to_host(&m), &w.to_host(&m));
        assert!(approx_eq(m.mem.slice(out), &sref, 1e-3, 1e-4));
    }

    #[test]
    fn vla_matches_direct_s2() {
        let p = ConvParams { in_c: 3, in_h: 14, in_w: 14, out_c: 4, k: 3, stride: 2, pad: 1 };
        let (got, want, _) = run_vla(512, p);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn vla_unpadded_layer() {
        let p = ConvParams { in_c: 2, in_h: 10, in_w: 16, out_c: 2, k: 3, stride: 1, pad: 0 };
        let (got, want, _) = run_vla(512, p);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn single_channel_small_count_fallback() {
        // Fig. 4's `count < 4` path: fewer channels than one block.
        let p = ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 3, stride: 1, pad: 1 };
        let (got, want, _) = run_vla(2048, p);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn longer_vectors_are_faster() {
        let p = ConvParams { in_c: 16, in_h: 18, in_w: 18, out_c: 16, k: 3, stride: 1, pad: 1 };
        let (_, _, t512) = run_vla(512, p);
        let (_, _, t2048) = run_vla(2048, p);
        assert!(t2048 < t512, "2048-bit ({t2048}) should beat 512-bit ({t512}) on Winograd");
    }

    #[test]
    fn shared_scratch_plans_match_direct_across_layers() {
        // Two layers alternately using the same scratch must both be right.
        let p1 = ConvParams { in_c: 3, in_h: 10, in_w: 10, out_c: 6, k: 3, stride: 1, pad: 1 };
        let p2 = ConvParams { in_c: 6, in_h: 12, in_w: 12, out_c: 4, k: 3, stride: 2, pad: 1 };
        let mut m = machine(512);
        let img1 = Tensor::random(&mut m, Shape::new(p1.in_c, p1.in_h, p1.in_w), 41);
        let img2 = Tensor::random(&mut m, Shape::new(p2.in_c, p2.in_h, p2.in_w), 42);
        let w1 = Matrix::random(&mut m, p1.out_c, p1.in_c * 9, 43);
        let w2 = Matrix::random(&mut m, p2.out_c, p2.in_c * 9, 44);
        let shared = WinogradScratch::for_layers(&mut m, [p1, p2]);
        let (oh1, ow1) = p1.out_hw();
        let (oh2, ow2) = p2.out_hw();
        let out1 = m.mem.alloc(p1.out_c * oh1 * ow1);
        let out2 = m.mem.alloc(p2.out_c * oh2 * ow2);
        let mut plan1 = WinogradPlan::new_shared(&mut m, p1, w1.buf, &shared);
        let mut plan2 = WinogradPlan::new_shared(&mut m, p2, w2.buf, &shared);
        winograd_conv_vla(&mut m, &mut plan1, &img1, out1);
        winograd_conv_vla(&mut m, &mut plan2, &img2, out2);
        // Re-run layer 1 after layer 2 clobbered the scratch.
        winograd_conv_vla(&mut m, &mut plan1, &img1, out1);
        let want1 = conv_direct_ref(&p1, &img1.to_host(&m), &w1.to_host(&m));
        let want2 = conv_direct_ref(&p2, &img2.to_host(&m), &w2.to_host(&m));
        assert!(approx_eq(m.mem.slice(out1), &want1, 5e-3, 5e-3));
        assert!(approx_eq(m.mem.slice(out2), &want2, 5e-3, 5e-3));
    }

    #[test]
    #[should_panic(expected = "ARM-SVE only")]
    fn rvv_machines_rejected() {
        let mut m = Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20));
        let p = ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 3, stride: 1, pad: 1 };
        let w = Matrix::random(&mut m, 1, 9, 1);
        let _ = WinogradPlan::new(&mut m, p, w.buf);
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn non_3x3_rejected() {
        let mut m = machine(512);
        let p = ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 5, stride: 1, pad: 2 };
        let w = Matrix::random(&mut m, 1, 25, 1);
        let _ = WinogradPlan::new(&mut m, p, w.buf);
    }
}
