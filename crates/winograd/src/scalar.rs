//! Host reference Winograd convolution (tiling + nested 1D transforms +
//! tuple multiplication), the ground truth for the VLA implementation.

use crate::cooktoom::WinogradTransform;
use lva_kernels::ConvParams;

/// Stride-1 Winograd convolution of a CHW image with `[oc][ic][r][r]`
/// weights, semantics identical to `lva_kernels::reference::conv_direct_ref`.
///
/// # Panics
/// Panics unless `p.k == t.r` and `p.stride == 1`.
pub fn winograd_conv_ref(
    t: &WinogradTransform,
    p: &ConvParams,
    image: &[f32],
    weights: &[f32],
) -> Vec<f32> {
    assert_eq!(p.k, t.r, "filter size mismatch");
    assert_eq!(p.stride, 1, "scalar reference is stride-1 only");
    assert_eq!(image.len(), p.in_c * p.in_h * p.in_w);
    assert_eq!(weights.len(), p.out_c * p.in_c * p.k * p.k);
    let (oh, ow) = p.out_hw();
    let (n, m) = (t.n, t.m);
    let tiles_y = oh.div_ceil(m);
    let tiles_x = ow.div_ceil(m);

    // Offline filter transform U[oc][ic][n*n].
    let u: Vec<Vec<f32>> = (0..p.out_c * p.in_c)
        .map(|f| {
            let w = &weights[f * p.k * p.k..(f + 1) * p.k * p.k];
            t.transform_filter_2d(w)
        })
        .collect();

    let mut out = vec![0.0f32; p.out_c * oh * ow];
    let mut dtile = vec![0.0f32; n * n];
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            // Input tile top-left in image coordinates (can be negative
            // because of padding).
            let iy0 = ty as isize * m as isize - p.pad as isize;
            let ix0 = tx as isize * m as isize - p.pad as isize;
            // V[ic][n*n] for this tile position.
            let v: Vec<Vec<f32>> = (0..p.in_c)
                .map(|ci| {
                    for r in 0..n {
                        for c in 0..n {
                            let y = iy0 + r as isize;
                            let x = ix0 + c as isize;
                            dtile[r * n + c] = if y >= 0
                                && x >= 0
                                && (y as usize) < p.in_h
                                && (x as usize) < p.in_w
                            {
                                image[(ci * p.in_h + y as usize) * p.in_w + x as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                    t.transform_data_2d(&dtile)
                })
                .collect();
            for oc in 0..p.out_c {
                // Tuple multiplication: M = sum_ic U[oc][ic] ⊙ V[ic].
                let mut prod = vec![0.0f32; n * n];
                for ci in 0..p.in_c {
                    let uoc = &u[oc * p.in_c + ci];
                    let vic = &v[ci];
                    for f in 0..n * n {
                        prod[f] += uoc[f] * vic[f];
                    }
                }
                let y = t.transform_output_2d(&prod);
                // Scatter the m x m outputs, clipping at the borders.
                for ry in 0..m {
                    let oy = ty * m + ry;
                    if oy >= oh {
                        break;
                    }
                    for rx in 0..m {
                        let ox = tx * m + rx;
                        if ox >= ow {
                            break;
                        }
                        out[(oc * oh + oy) * ow + ox] = y[ry * m + rx];
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooktoom::{f2x3, f4x3, f6x3};
    use lva_kernels::reference::conv_direct_ref;
    use lva_tensor::host_random;

    fn check(t: &WinogradTransform, p: ConvParams, tol: f32) {
        let img = host_random(p.in_c * p.in_h * p.in_w, 11);
        let w = host_random(p.out_c * p.in_c * p.k * p.k, 12);
        let got = winograd_conv_ref(t, &p, &img, &w);
        let want = conv_direct_ref(&p, &img, &w);
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < tol, "idx {i}: {a} vs {b} ({p:?})");
        }
    }

    #[test]
    fn f6x3_matches_direct_pad1() {
        check(
            &f6x3(),
            ConvParams { in_c: 3, in_h: 13, in_w: 10, out_c: 4, k: 3, stride: 1, pad: 1 },
            5e-3,
        );
    }

    #[test]
    fn f6x3_matches_direct_nopad() {
        check(
            &f6x3(),
            ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 2, k: 3, stride: 1, pad: 0 },
            5e-3,
        );
    }

    #[test]
    fn f6x3_exact_tile_multiple() {
        // 12x12 output = exactly 2x2 tiles of 6x6.
        check(
            &f6x3(),
            ConvParams { in_c: 1, in_h: 12, in_w: 12, out_c: 1, k: 3, stride: 1, pad: 1 },
            5e-3,
        );
    }

    #[test]
    fn f4x3_and_f2x3_match_direct() {
        check(
            &f4x3(),
            ConvParams { in_c: 2, in_h: 9, in_w: 9, out_c: 3, k: 3, stride: 1, pad: 1 },
            2e-3,
        );
        check(
            &f2x3(),
            ConvParams { in_c: 2, in_h: 7, in_w: 9, out_c: 3, k: 3, stride: 1, pad: 1 },
            1e-3,
        );
    }

    #[test]
    fn single_pixel_output() {
        check(
            &f6x3(),
            ConvParams { in_c: 1, in_h: 3, in_w: 3, out_c: 1, k: 3, stride: 1, pad: 0 },
            1e-3,
        );
    }
}
