//! Exact Cook–Toom construction of Winograd convolution transforms.
//!
//! For `F(m, r)` (m outputs per tile from an r-tap filter) with
//! `n = m + r - 1`, pick `n - 1` distinct finite interpolation points plus
//! the point at infinity and build
//!
//! * `G  (n x r)` — filter transform: row `j` is `[1, p_j, …, p_j^{r-1}] / N_j`
//!   with `N_j = prod_{i != j} (p_j - p_i)`; the infinity row is `e_{r-1}`;
//! * `B^T (n x n)` — data transform: row `j` holds the ascending coefficients
//!   of `prod_{i != j} (x - p_i)`; the infinity row those of
//!   `prod_i (x - p_i)`;
//! * `A^T (m x n)` — output transform: `A^T[i][j] = p_j^i`, and the infinity
//!   column is `e_{m-1}`.
//!
//! Then `y = A^T [ (G g) ⊙ (B^T d) ]` computes the length-`m` valid
//! correlation of `d` (length `n`) with `g` (length `r`). All arithmetic is
//! exact rational (`i128`), converted to `f32` only at the end, so the
//! generated matrices are bit-reproducible.
//!
//! The 2D form nests the 1D transforms: `V = B^T d B`, `U = G g G^T`,
//! `Y = A^T (U ⊙ V) A`.

use std::ops::{Add, Mul, Neg, Sub};

/// An exact rational number over `i128`, always kept reduced with a
/// positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    pub num: i128,
    pub den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let s = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Rat { num: s * num / g, den: s * den / g }
    }

    pub fn int(v: i128) -> Self {
        Rat { num: v, den: 1 }
    }

    pub fn recip(self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    pub fn to_f32(self) -> f32 {
        self.num as f32 / self.den as f32
    }

    pub fn pow(self, e: usize) -> Self {
        let mut acc = Rat::ONE;
        for _ in 0..e {
            acc = acc * self;
        }
        acc
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

/// Ascending coefficients of `prod (x - roots[i])`.
fn poly_from_roots(roots: &[Rat]) -> Vec<Rat> {
    let mut coeffs = vec![Rat::ONE]; // constant polynomial 1
    for &root in roots {
        // Multiply by (x - root).
        let mut next = vec![Rat::ZERO; coeffs.len() + 1];
        for (k, &c) in coeffs.iter().enumerate() {
            next[k + 1] = next[k + 1] + c;
            next[k] = next[k] - c * root;
        }
        coeffs = next;
    }
    coeffs
}

/// The generated transform triple for one `F(m, r)`.
#[derive(Debug, Clone)]
pub struct WinogradTransform {
    /// Outputs per tile (per dimension).
    pub m: usize,
    /// Filter taps (per dimension).
    pub r: usize,
    /// Tile size `n = m + r - 1`.
    pub n: usize,
    /// `A^T`, `m x n`, row-major.
    pub at: Vec<f32>,
    /// `G`, `n x r`, row-major.
    pub g: Vec<f32>,
    /// `B^T`, `n x n`, row-major.
    pub bt: Vec<f32>,
}

impl WinogradTransform {
    /// Build `F(m, r)` from `m + r - 2` distinct finite points (the point at
    /// infinity is implicit).
    ///
    /// # Panics
    /// Panics if the points are not distinct or the count is wrong.
    pub fn generate(m: usize, r: usize, points: &[Rat]) -> Self {
        let n = m + r - 1;
        assert_eq!(points.len(), n - 1, "need n-1 finite interpolation points");
        for (i, a) in points.iter().enumerate() {
            for b in &points[i + 1..] {
                assert!(a != b, "interpolation points must be distinct");
            }
        }
        // G.
        let mut g = vec![0.0f32; n * r];
        for (j, &p) in points.iter().enumerate() {
            let mut nj = Rat::ONE;
            for (i, &q) in points.iter().enumerate() {
                if i != j {
                    nj = nj * (p - q);
                }
            }
            let inv = nj.recip();
            for k in 0..r {
                g[j * r + k] = (p.pow(k) * inv).to_f32();
            }
        }
        g[(n - 1) * r + (r - 1)] = 1.0;
        // B^T.
        let mut bt = vec![0.0f32; n * n];
        for j in 0..n - 1 {
            let others: Vec<Rat> =
                points.iter().enumerate().filter(|&(i, _)| i != j).map(|(_, &p)| p).collect();
            let coeffs = poly_from_roots(&others);
            for (k, &c) in coeffs.iter().enumerate() {
                bt[j * n + k] = c.to_f32();
            }
        }
        let full = poly_from_roots(points);
        for (k, &c) in full.iter().enumerate() {
            bt[(n - 1) * n + k] = c.to_f32();
        }
        // A^T.
        let mut at = vec![0.0f32; m * n];
        for i in 0..m {
            for (j, &p) in points.iter().enumerate() {
                at[i * n + j] = p.pow(i).to_f32();
            }
        }
        at[(m - 1) * n + (n - 1)] = 1.0;
        WinogradTransform { m, r, n, at, g, bt }
    }

    /// 1D Winograd correlation of `d` (length `n`) with `g` (length `r`):
    /// `y = A^T [(G g) ⊙ (B^T d)]`. Used by tests and as executable
    /// documentation of the identity.
    pub fn correlate_1d(&self, d: &[f32], filt: &[f32]) -> Vec<f32> {
        assert_eq!(d.len(), self.n);
        assert_eq!(filt.len(), self.r);
        let u: Vec<f32> = (0..self.n)
            .map(|j| (0..self.r).map(|k| self.g[j * self.r + k] * filt[k]).sum())
            .collect();
        let v: Vec<f32> = (0..self.n)
            .map(|j| (0..self.n).map(|k| self.bt[j * self.n + k] * d[k]).sum())
            .collect();
        (0..self.m)
            .map(|i| (0..self.n).map(|j| self.at[i * self.n + j] * u[j] * v[j]).sum())
            .collect()
    }

    /// 2D filter transform `U = G g G^T` for an `r x r` filter → `n x n`.
    pub fn transform_filter_2d(&self, filt: &[f32]) -> Vec<f32> {
        assert_eq!(filt.len(), self.r * self.r);
        let (n, r) = (self.n, self.r);
        // tmp = G * g  (n x r)
        let mut tmp = vec![0.0f32; n * r];
        for i in 0..n {
            for j in 0..r {
                let mut s = 0.0;
                for k in 0..r {
                    s += self.g[i * r + k] * filt[k * r + j];
                }
                tmp[i * r + j] = s;
            }
        }
        // U = tmp * G^T  (n x n)
        let mut u = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..r {
                    s += tmp[i * r + k] * self.g[j * r + k];
                }
                u[i * n + j] = s;
            }
        }
        u
    }

    /// 2D data transform `V = B^T d B` for an `n x n` tile.
    pub fn transform_data_2d(&self, d: &[f32]) -> Vec<f32> {
        assert_eq!(d.len(), self.n * self.n);
        let n = self.n;
        let mut tmp = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.bt[i * n + k] * d[k * n + j];
                }
                tmp[i * n + j] = s;
            }
        }
        let mut v = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += tmp[i * n + k] * self.bt[j * n + k];
                }
                v[i * n + j] = s;
            }
        }
        v
    }

    /// 2D output transform `Y = A^T M A` for an `n x n` product tile → `m x m`.
    pub fn transform_output_2d(&self, prod: &[f32]) -> Vec<f32> {
        assert_eq!(prod.len(), self.n * self.n);
        let (n, m) = (self.n, self.m);
        let mut tmp = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.at[i * n + k] * prod[k * n + j];
                }
                tmp[i * n + j] = s;
            }
        }
        let mut y = vec![0.0f32; m * m];
        for i in 0..m {
            for j in 0..m {
                let mut s = 0.0;
                for k in 0..n {
                    s += tmp[i * n + k] * self.at[j * n + k];
                }
                y[i * m + j] = s;
            }
        }
        y
    }

    /// Multiplication count reduction versus direct convolution:
    /// `m^2 r^2 / n^2` (≈5.06 for F(6,3)).
    pub fn mult_reduction(&self) -> f64 {
        (self.m * self.m * self.r * self.r) as f64 / (self.n * self.n) as f64
    }
}

fn r(num: i128, den: i128) -> Rat {
    Rat::new(num, den)
}

/// `F(2, 3)` — 4x4 tiles, points `{0, 1, -1, ∞}` (Lavin & Gray's minimal).
pub fn f2x3() -> WinogradTransform {
    WinogradTransform::generate(2, 3, &[r(0, 1), r(1, 1), r(-1, 1)])
}

/// `F(4, 3)` — 6x6 tiles, points `{0, ±1, ±2, ∞}`.
pub fn f4x3() -> WinogradTransform {
    WinogradTransform::generate(4, 3, &[r(0, 1), r(1, 1), r(-1, 1), r(2, 1), r(-2, 1)])
}

/// `F(6, 3)` — the NNPACK operating point used throughout the paper:
/// 8x8 tiles, 6x6 outputs, points `{0, ±1, ±2, ±1/2, ∞}`.
pub fn f6x3() -> WinogradTransform {
    WinogradTransform::generate(
        6,
        3,
        &[r(0, 1), r(1, 1), r(-1, 1), r(2, 1), r(-2, 1), r(1, 2), r(-1, 2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_tensor::host_random;

    fn direct_correlate(d: &[f32], g: &[f32]) -> Vec<f32> {
        let m = d.len() - g.len() + 1;
        (0..m).map(|i| g.iter().enumerate().map(|(k, &gk)| gk * d[i + k]).sum()).collect()
    }

    #[test]
    fn rat_arithmetic_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(1, -2), r(-1, 2));
        assert_eq!((r(1, 2) + r(1, 3)), r(5, 6));
        assert_eq!((r(1, 2) * r(2, 3)), r(1, 3));
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-2, 3).pow(2), r(4, 9));
    }

    #[test]
    fn poly_from_roots_expands() {
        // (x-1)(x+1) = -1 + 0x + x^2
        let c = poly_from_roots(&[r(1, 1), r(-1, 1)]);
        assert_eq!(c, vec![r(-1, 1), r(0, 1), r(1, 1)]);
    }

    #[test]
    fn f2x3_matches_direct_1d() {
        let t = f2x3();
        let d = host_random(t.n, 1);
        let g = host_random(t.r, 2);
        let y = t.correlate_1d(&d, &g);
        let want = direct_correlate(&d, &g);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn f4x3_matches_direct_1d() {
        let t = f4x3();
        let d = host_random(t.n, 3);
        let g = host_random(t.r, 4);
        let y = t.correlate_1d(&d, &g);
        let want = direct_correlate(&d, &g);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn f6x3_matches_direct_1d() {
        let t = f6x3();
        assert_eq!(t.n, 8);
        let d = host_random(t.n, 5);
        let g = host_random(t.r, 6);
        let y = t.correlate_1d(&d, &g);
        let want = direct_correlate(&d, &g);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn f6x3_2d_tile_matches_direct_2d() {
        let t = f6x3();
        let d = host_random(64, 7);
        let g = host_random(9, 8);
        let u = t.transform_filter_2d(&g);
        let v = t.transform_data_2d(&d);
        let prod: Vec<f32> = u.iter().zip(&v).map(|(a, b)| a * b).collect();
        let y = t.transform_output_2d(&prod);
        // Direct 2D valid correlation.
        for oy in 0..6 {
            for ox in 0..6 {
                let mut s = 0.0f32;
                for ky in 0..3 {
                    for kx in 0..3 {
                        s += d[(oy + ky) * 8 + ox + kx] * g[ky * 3 + kx];
                    }
                }
                let got = y[oy * 6 + ox];
                assert!((got - s).abs() < 2e-3, "({oy},{ox}): {got} vs {s}");
            }
        }
    }

    #[test]
    fn f6x3_known_g_rows() {
        // Spot-check the filter transform against the canonical constants
        // (the generator folds signs differently only in B^T/G pairs that
        // cancel; G rows for points 1, 2, 1/2 are sign-definite).
        let t = f6x3();
        let row = |j: usize| &t.g[j * 3..j * 3 + 3];
        let close = |a: &[f32], b: [f32; 3]| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-6);
        assert!(close(row(1), [-2.0 / 9.0, -2.0 / 9.0, -2.0 / 9.0]));
        assert!(close(row(3), [1.0 / 90.0, 1.0 / 45.0, 2.0 / 45.0]));
        assert!(close(row(5), [32.0 / 45.0, 16.0 / 45.0, 8.0 / 45.0]));
        assert!(close(row(7), [0.0, 0.0, 1.0]));
    }

    #[test]
    fn mult_reduction_f6x3() {
        assert!((f6x3().mult_reduction() - 5.0625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_points_rejected() {
        let _ = WinogradTransform::generate(2, 3, &[r(0, 1), r(0, 1), r(1, 1)]);
    }
}
