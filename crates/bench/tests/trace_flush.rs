//! Exit-path telemetry: `emit()` must flush the active trace sink so
//! `--trace FILE` output is complete even though the `exp-*` binaries
//! never call `disable()` before exiting.

use lva_bench::{emit, Opts, Table};

fn opts() -> Opts {
    Opts {
        div: 1,
        layers: None,
        csv: false,
        json: false,
        profile: false,
        chrome: None,
        jobs: 1,
        wallclock: false,
        whatif: false,
        energy: false,
        retime: lva_core::RetimeOpt::Off,
    }
}

// The trace sink is process-global; exercise both sinks in one #[test] to
// avoid cross-test interference under the parallel runner.
#[test]
fn emit_flushes_trace_sinks() {
    // Memory sink: spans recorded before emit() are all retrievable after.
    lva_trace::enable_to_memory();
    {
        let mut sp = lva_trace::span("unit_span");
        sp.set("cycles", 7u64);
    }
    let table = Table::new("flush test", &["col"]);
    emit(&table, "flush_test", &opts());
    let lines = lva_trace::take_memory();
    assert!(
        lines.iter().any(|l| l.contains(r#""name":"unit_span""#)),
        "span missing from memory sink: {lines:?}"
    );
    lva_trace::disable();

    // File sink: emit()'s flush makes the span visible on disk *before*
    // process exit (exp-* binaries rely on this; they never disable()).
    let path = std::env::temp_dir().join(format!("lva_trace_flush_{}.jsonl", std::process::id()));
    lva_trace::enable_to_file(&path).expect("create trace file");
    {
        let _sp = lva_trace::span("file_span");
    }
    emit(&table, "flush_test", &opts());
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    assert!(text.contains(r#""name":"file_span""#), "flush did not reach disk: {text:?}");
    lva_trace::disable();
    let _ = std::fs::remove_file(&path);
}
