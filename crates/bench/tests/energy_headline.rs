//! The energy contract at experiment granularity, over the real headline
//! suite: on every §VI design point, (a) attaching the streaming energy
//! probe leaves the cycle count bit-identical to a plain run, and (b) the
//! streamed per-layer attribution reconciles with the aggregate
//! `EnergyModel` estimate within 1e-6 relative — the sum-to-total
//! invariant the ISSUE gates on "every headline-suite run".

use lva_bench::headline_specs;
use lva_core::EnergyModel;

#[test]
fn headline_suite_reconciles_and_stays_timing_neutral() {
    let model = EnergyModel::default();
    // Reduced scale (div 16, 4-layer prefix) keeps the nine-point suite
    // fast in debug CI while still exercising all three hardware targets
    // and both gemm variants.
    for (name, e) in headline_specs(16, Some(4)) {
        let plain = e.run();
        let (s, att) = e.run_energy(&model);
        assert_eq!(plain.cycles, s.cycles, "{name}: energy accounting changed the cycle count");
        let err = att.reconciliation_rel_err();
        assert!(
            err < 1e-6,
            "{name}: streamed {} J vs aggregate {} J (rel err {err:e})",
            att.total.total_j(),
            att.report.total_j()
        );
        assert!(!att.layers.is_empty(), "{name}: expected per-layer attribution");
        assert!(att.total.total_j() > 0.0, "{name}: a real run burns energy");
        // Per-layer totals plus the outside bucket make up the whole run.
        let layer_sum: f64 = att.layers.iter().map(|l| l.breakdown.total_j()).sum();
        let whole = layer_sum + att.outside.total_j();
        assert!(
            (whole - att.total.total_j()).abs() <= 1e-9 * att.total.total_j(),
            "{name}: layers + outside must equal the run total"
        );
    }
}
