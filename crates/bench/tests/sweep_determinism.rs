//! The parallel sweep executor contract: `--jobs N` may only change who
//! executes what when. For the full nine-point headline suite, the
//! machine-readable reports produced from a serial run and a `--jobs 4` run
//! must be **byte-identical** — same cycles, same stats, same JSON text.

use lva_bench::{
    run_sweep, scaled_input, ConvPolicy, Experiment, GemmVariant, HwTarget, Json, ModelId,
    RunReport, Workload,
};

/// The nine headline design points (same grid as `exp-headline`), scaled
/// down hard so the suite stays test-sized.
fn headline_specs() -> Vec<(String, Experiment)> {
    let div = 32;
    let tiny = Workload {
        model: ModelId::Yolov3Tiny,
        input_hw: scaled_input(ModelId::Yolov3Tiny, div),
        layer_limit: None,
    };
    let yolo = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, div),
        layer_limit: Some(8),
    };
    let naive = ConvPolicy::gemm_only(GemmVariant::Naive);
    let opt3 = ConvPolicy::gemm_only(GemmVariant::opt3());
    let opt6 = ConvPolicy::gemm_only(GemmVariant::opt6());
    let rvv = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };
    let ax = HwTarget::A64fx;
    let sve = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 };
    [
        ("rvv_tiny_naive", Experiment::new(rvv, naive, tiny)),
        ("rvv_tiny_opt3", Experiment::new(rvv, opt3, tiny)),
        ("a64fx_yolo_naive", Experiment::new(ax, naive, yolo)),
        ("a64fx_yolo_opt3", Experiment::new(ax, opt3, yolo)),
        ("a64fx_yolo_opt6", Experiment::new(ax, opt6, yolo)),
        ("sve512_yolo_opt3", Experiment::new(sve, opt3, yolo)),
        ("sve512_yolo_opt6", Experiment::new(sve, opt6, yolo)),
        ("rvv_yolo_opt3", Experiment::new(rvv, opt3, yolo)),
        ("rvv_yolo_opt6", Experiment::new(rvv, opt6, yolo)),
    ]
    .into_iter()
    .map(|(n, e)| (n.to_string(), e))
    .collect()
}

/// The serialized report suite for one `jobs` setting, exactly as the
/// `--json` path of `exp-headline` would assemble it.
fn report_bytes(jobs: usize) -> String {
    let specs = headline_specs();
    let results = run_sweep(&specs, jobs, false, true);
    assert_eq!(results.len(), specs.len());
    let reports: Vec<Json> = specs
        .iter()
        .zip(&results)
        .map(|((name, e), r)| RunReport::new(name.clone(), e, &r.summary).to_json())
        .collect();
    Json::Arr(reports).to_string_pretty()
}

#[test]
fn serial_and_jobs4_reports_are_byte_identical() {
    let serial = report_bytes(1);
    let parallel = report_bytes(4);
    assert!(serial.len() > 1000, "suite report suspiciously small");
    assert_eq!(serial, parallel, "--jobs 4 must not change a single byte of the reports");
}
