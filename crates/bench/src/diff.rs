//! Benchmark regression diffing: compare two `BENCH_headline.json`-style
//! reports under a tolerance policy.
//!
//! The simulator is deterministic, so at a pinned configuration a committed
//! baseline compares *exactly* — the tolerances exist to separate "this
//! change made layer 7 five percent slower" (a gated regression) from noise
//! introduced by intentional re-baselining at slightly different scales.
//!
//! Compared per run (matched by `name`):
//! * `totals.cycles` — relative, default ±2%;
//! * each `layers[i].cycles` — relative, default ±5%;
//! * each `caches.<level>.hit_rate` — absolute, default ±0.01;
//! * `stalls.total` — relative, default ±10%.
//!
//! Cycles or stalls *up*, or hit rate *down*, beyond tolerance is a
//! **regression** (fatal). Movement in the good direction is reported as an
//! **improvement** (informational — a nudge to re-baseline). Missing runs,
//! layers, or sections are **structural** findings (fatal: a silently
//! shrunken benchmark must not pass the gate).

use lva_trace::Json;

/// Tolerance policy for [`compare`]. Percentages are relative (`5.0` =
/// ±5%); `hit_rate_abs` is absolute on a 0..1 rate.
#[derive(Debug, Clone)]
pub struct Tolerance {
    pub total_cycles_pct: f64,
    pub layer_cycles_pct: f64,
    pub hit_rate_abs: f64,
    pub stall_pct: f64,
    /// Per-point total energy, relative percent (`BENCH_energy.json` gate).
    pub energy_pct: f64,
    /// Per-point energy-delay product, relative percent. EDP compounds the
    /// cycle and energy drifts, so its default is looser than either alone.
    pub edp_pct: f64,
    /// Per-cell overall p50 latency, relative percent (`BENCH_serving.json`
    /// gate). The median is a stable statistic, so it gets the tight gate.
    pub p50_pct: f64,
    /// Per-cell overall p99 latency, relative percent. The tail sits on
    /// log-bucket edges, so a tolerance looser than p50's absorbs a sample
    /// stepping one sub-bucket without letting a real regression through.
    pub p99_pct: f64,
    /// Per-cell SoC throughput (frames/kcycle), relative percent
    /// (`BENCH_scaling.json` gate). Lower is worse.
    pub throughput_pct: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            total_cycles_pct: 2.0,
            layer_cycles_pct: 5.0,
            hit_rate_abs: 0.01,
            stall_pct: 10.0,
            energy_pct: 2.0,
            edp_pct: 4.0,
            p50_pct: 2.0,
            p99_pct: 5.0,
            throughput_pct: 2.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Beyond tolerance in the bad direction — fails the gate.
    Regression,
    /// Beyond tolerance in the good direction — informational.
    Improvement,
    /// The two reports do not have the same shape — fails the gate.
    Structural,
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub message: String,
}

/// Outcome of a comparison; `is_pass` gates CI.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub findings: Vec<Finding>,
    /// Number of metric comparisons performed (a sanity floor: comparing
    /// two empty files passes every tolerance while checking nothing).
    pub compared: usize,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.count(Severity::Regression)
    }

    pub fn structural(&self) -> usize {
        self.count(Severity::Structural)
    }

    pub fn is_pass(&self) -> bool {
        self.regressions() == 0 && self.structural() == 0 && self.compared > 0
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    fn push(&mut self, severity: Severity, message: String) {
        self.findings.push(Finding { severity, message });
    }
}

fn rel_delta_pct(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (cur - base) / base
    }
}

/// Render a metric value readably whether it is a cycle count or a
/// sub-unit float (joules, joule-seconds).
fn fmt_metric(v: f64) -> String {
    if v.abs() >= 1000.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

/// Compare a "higher is worse" metric under a relative tolerance.
fn check_higher_worse(out: &mut DiffReport, what: &str, base: f64, cur: f64, tol_pct: f64) {
    out.compared += 1;
    let d = rel_delta_pct(base, cur);
    if d.abs() <= tol_pct {
        return;
    }
    let sev = if d > 0.0 { Severity::Regression } else { Severity::Improvement };
    out.push(
        sev,
        format!("{what}: {} -> {} ({d:+.1}%, tol ±{tol_pct}%)", fmt_metric(base), fmt_metric(cur)),
    );
}

/// Compare a "lower is worse" metric (throughput) under a relative
/// tolerance.
fn check_lower_worse(out: &mut DiffReport, what: &str, base: f64, cur: f64, tol_pct: f64) {
    out.compared += 1;
    let d = rel_delta_pct(base, cur);
    if d.abs() <= tol_pct {
        return;
    }
    let sev = if d < 0.0 { Severity::Regression } else { Severity::Improvement };
    out.push(
        sev,
        format!("{what}: {} -> {} ({d:+.1}%, tol ±{tol_pct}%)", fmt_metric(base), fmt_metric(cur)),
    );
}

fn run_name(run: &Json) -> &str {
    run.get("name").and_then(Json::as_str).unwrap_or("<unnamed>")
}

fn compare_runs(out: &mut DiffReport, base: &Json, cur: &Json, tol: &Tolerance) {
    let name = run_name(base);

    // totals.cycles
    let total = |r: &Json| r.get("totals").and_then(|t| t.get("cycles")).and_then(Json::as_f64);
    match (total(base), total(cur)) {
        (Some(b), Some(c)) => {
            check_higher_worse(out, &format!("{name}: total cycles"), b, c, tol.total_cycles_pct);
        }
        _ => out.push(Severity::Structural, format!("{name}: missing totals.cycles")),
    }

    // stalls.total
    let stall = |r: &Json| r.get("stalls").and_then(|s| s.get("total")).and_then(Json::as_f64);
    if let (Some(b), Some(c)) = (stall(base), stall(cur)) {
        check_higher_worse(out, &format!("{name}: stall cycles"), b, c, tol.stall_pct);
    }

    // caches.<level>.hit_rate, for every level the baseline has.
    if let Some(Json::Obj(levels)) = base.get("caches") {
        for (level, bc) in levels {
            let b_hr = bc.get("hit_rate").and_then(Json::as_f64);
            let c_hr = cur
                .get("caches")
                .and_then(|c| c.get(level))
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64);
            match (b_hr, c_hr) {
                (Some(b), Some(c)) => {
                    out.compared += 1;
                    let d = c - b;
                    if d.abs() > tol.hit_rate_abs {
                        let sev =
                            if d < 0.0 { Severity::Regression } else { Severity::Improvement };
                        out.push(
                            sev,
                            format!(
                                "{name}: {level} hit rate {b:.4} -> {c:.4} ({d:+.4}, tol ±{:.4})",
                                tol.hit_rate_abs
                            ),
                        );
                    }
                }
                _ => out.push(
                    Severity::Structural,
                    format!("{name}: cache level {level} missing from current report"),
                ),
            }
        }
    }

    // Per-layer cycles, matched by index.
    fn layers(r: &Json) -> &[Json] {
        r.get("layers").and_then(Json::as_arr).unwrap_or(&[])
    }
    let (bl, cl) = (layers(base), layers(cur));
    if bl.len() != cl.len() {
        out.push(Severity::Structural, format!("{name}: layer count {} -> {}", bl.len(), cl.len()));
    }
    for (i, (b, c)) in bl.iter().zip(cl).enumerate() {
        let cyc = |l: &Json| l.get("cycles").and_then(Json::as_f64);
        match (cyc(b), cyc(c)) {
            (Some(bv), Some(cv)) => {
                let desc = b.get("desc").and_then(Json::as_str).unwrap_or("?");
                check_higher_worse(
                    out,
                    &format!("{name}: layer {i} ({desc}) cycles"),
                    bv,
                    cv,
                    tol.layer_cycles_pct,
                );
            }
            _ => out.push(Severity::Structural, format!("{name}: layer {i} missing cycles")),
        }
    }
}

/// Compare two benchmark reports (the top-level objects of
/// `BENCH_headline.json`). Runs are matched by name; a run present in the
/// baseline but not the current report is structural (fatal), a run only
/// in the current report is reported informationally.
pub fn compare(base: &Json, cur: &Json, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    let runs =
        |j: &Json| j.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default();
    let (base_runs, cur_runs) = (runs(base), runs(cur));
    if base_runs.is_empty() {
        out.push(Severity::Structural, "baseline has no runs".to_string());
        return out;
    }
    for b in &base_runs {
        match cur_runs.iter().find(|c| run_name(c) == run_name(b)) {
            Some(c) => compare_runs(&mut out, b, c, tol),
            None => out.push(
                Severity::Structural,
                format!("run {} missing from current report", run_name(b)),
            ),
        }
    }
    for c in &cur_runs {
        if !base_runs.iter().any(|b| run_name(b) == run_name(c)) {
            out.push(
                Severity::Improvement,
                format!("run {} is new (not in baseline)", run_name(c)),
            );
        }
    }
    out
}

/// The `bench` tag of a report's top-level object, used by `bench-diff` to
/// autodetect which comparison applies. Reports written before the tag
/// existed are headline-shaped, so that is the fallback.
pub fn report_kind(j: &Json) -> &str {
    j.get("bench").and_then(Json::as_str).unwrap_or("headline")
}

/// Compare two `BENCH_energy.json` grid records. Networks and design
/// points are matched by name; per point, `cycles`, `total_j`, and
/// `edp_js` are gated as higher-is-worse relative drifts. Either optimum
/// moving to a different design point is **structural** (fatal): the
/// committed baseline encodes the headline finite-EDP-optimum claim, so a
/// shifted optimum must be re-baselined deliberately, not slide through.
pub fn compare_energy(base: &Json, cur: &Json, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    let nets = |j: &Json| {
        j.get("networks").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let (base_nets, cur_nets) = (nets(base), nets(cur));
    if base_nets.is_empty() {
        out.push(Severity::Structural, "baseline has no networks".to_string());
        return out;
    }
    for b in &base_nets {
        let name = run_name(b);
        let Some(c) = cur_nets.iter().find(|c| run_name(c) == name) else {
            out.push(Severity::Structural, format!("network {name} missing from current report"));
            continue;
        };
        for opt in ["cycles_optimal", "edp_optimal"] {
            let pick = |j: &Json| j.get(opt).and_then(Json::as_str).unwrap_or("?").to_string();
            let (bo, co) = (pick(b), pick(c));
            out.compared += 1;
            if bo != co {
                out.push(Severity::Structural, format!("{name}: {opt} moved {bo} -> {co}"));
            }
        }
        let points = |j: &Json| {
            j.get("points").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
        };
        let (bp, cp) = (points(b), points(c));
        if bp.len() != cp.len() {
            out.push(
                Severity::Structural,
                format!("{name}: point count {} -> {}", bp.len(), cp.len()),
            );
        }
        for pb in &bp {
            let pname = run_name(pb);
            let Some(pc) = cp.iter().find(|p| run_name(p) == pname) else {
                out.push(Severity::Structural, format!("{name}/{pname}: point missing"));
                continue;
            };
            let metric = |p: &Json, k: &str| p.get(k).and_then(Json::as_f64);
            for (key, what, pct) in [
                ("cycles", "cycles", tol.total_cycles_pct),
                ("total_j", "energy", tol.energy_pct),
                ("edp_js", "EDP", tol.edp_pct),
            ] {
                match (metric(pb, key), metric(pc, key)) {
                    (Some(bv), Some(cv)) => {
                        check_higher_worse(
                            &mut out,
                            &format!("{name}/{pname}: {what}"),
                            bv,
                            cv,
                            pct,
                        );
                    }
                    _ => out.push(Severity::Structural, format!("{name}/{pname}: missing {key}")),
                }
            }
        }
    }
    out
}

/// Compare two `BENCH_serving.json` records. Design points are matched by
/// name and their load cells by index (the intensity grid is part of the
/// record's shape — a changed grid is structural). Per cell, the overall
/// `p50_ms` / `p99_ms` are gated as higher-is-worse relative drifts and
/// `deadline_misses` must match **exactly**: the simulator is
/// deterministic, so a single extra miss at a pinned configuration is a
/// behavior change, not noise. The SLO recommendation moving to a
/// different design point is structural (fatal) — the committed baseline
/// encodes the headline cheapest-point claim, so a shifted recommendation
/// must be re-baselined deliberately.
pub fn compare_serving(base: &Json, cur: &Json, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    let points =
        |j: &Json| j.get("points").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default();
    let (bp, cp) = (points(base), points(cur));
    if bp.is_empty() {
        out.push(Severity::Structural, "baseline has no design points".to_string());
        return out;
    }

    // The recommendation gate first: it is the record's headline claim.
    let pick = |j: &Json| {
        j.get("slo_recommendation")
            .and_then(|r| r.get("recommended"))
            .and_then(|p| p.get("point"))
            .and_then(Json::as_str)
            .unwrap_or("<none>")
            .to_string()
    };
    let (br, cr) = (pick(base), pick(cur));
    out.compared += 1;
    if br != cr {
        out.push(Severity::Structural, format!("slo recommendation moved {br} -> {cr}"));
    }

    for b in &bp {
        let name = run_name(b);
        let Some(c) = cp.iter().find(|c| run_name(c) == name) else {
            out.push(Severity::Structural, format!("point {name} missing from current report"));
            continue;
        };
        let loads = |j: &Json| {
            j.get("loads").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
        };
        let (bl, cl) = (loads(b), loads(c));
        if bl.len() != cl.len() {
            out.push(
                Severity::Structural,
                format!("{name}: load count {} -> {}", bl.len(), cl.len()),
            );
        }
        for (i, (lb, lc)) in bl.iter().zip(&cl).enumerate() {
            let rho = |l: &Json| l.get("intensity").and_then(Json::as_f64);
            if rho(lb) != rho(lc) {
                out.push(Severity::Structural, format!("{name}: load {i} intensity changed"));
                continue;
            }
            let cell = format!("{name}@{}x", rho(lb).unwrap_or(0.0));
            let overall =
                |l: &Json, k: &str| l.get("overall").and_then(|o| o.get(k)).and_then(Json::as_f64);
            for (key, what, pct) in [("p50_ms", "p50", tol.p50_pct), ("p99_ms", "p99", tol.p99_pct)]
            {
                match (overall(lb, key), overall(lc, key)) {
                    (Some(bv), Some(cv)) => {
                        check_higher_worse(&mut out, &format!("{cell}: {what}"), bv, cv, pct);
                    }
                    _ => out.push(Severity::Structural, format!("{cell}: missing {key}")),
                }
            }
            match (overall(lb, "deadline_misses"), overall(lc, "deadline_misses")) {
                (Some(bv), Some(cv)) => {
                    out.compared += 1;
                    if bv != cv {
                        out.push(
                            Severity::Regression,
                            format!(
                                "{cell}: deadline misses {bv:.0} -> {cv:.0} (exact gate: the \
                                 simulator is deterministic)"
                            ),
                        );
                    }
                }
                _ => out.push(Severity::Structural, format!("{cell}: missing deadline_misses")),
            }
        }
    }
    for c in &cp {
        if !bp.iter().any(|b| run_name(b) == run_name(c)) {
            out.push(
                Severity::Improvement,
                format!("point {} is new (not in baseline)", run_name(c)),
            );
        }
    }
    out
}

/// Compare two `BENCH_scaling.json` records. Networks and design points
/// are matched by name, curves by sharding strategy, cells by index (the
/// core ladder is part of the record's shape — a changed ladder is
/// structural). Per cell, throughput is gated as a lower-is-worse relative
/// drift and every stall-cause share as a higher-is-worse relative drift
/// (with a small absolute floor so a share that is exactly zero in the
/// baseline — contention at one core — doesn't turn numeric dust into an
/// infinite relative delta). A curve's knee moving to a different core
/// count, or its recovery lever changing, is **structural** (fatal): the
/// committed baseline encodes the headline where-it-bends claim, so a
/// shifted knee must be re-baselined deliberately.
pub fn compare_scaling(base: &Json, cur: &Json, tol: &Tolerance) -> DiffReport {
    /// Shares below this are "both zero" for gating purposes.
    const SHARE_FLOOR: f64 = 0.001;
    let mut out = DiffReport::default();
    let nets = |j: &Json| {
        j.get("networks").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let (bn, cn) = (nets(base), nets(cur));
    if bn.is_empty() {
        out.push(Severity::Structural, "baseline has no networks".to_string());
        return out;
    }
    for b in &bn {
        let net = run_name(b);
        let Some(c) = cn.iter().find(|c| run_name(c) == net) else {
            out.push(Severity::Structural, format!("network {net} missing from current report"));
            continue;
        };
        let points = |j: &Json| {
            j.get("points").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
        };
        for pb in &points(b) {
            let pname = run_name(pb);
            let Some(pc) = points(c).into_iter().find(|p| run_name(p) == pname) else {
                out.push(Severity::Structural, format!("{net}/{pname}: point missing"));
                continue;
            };
            let curves = |j: &Json| {
                j.get("curves").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
            };
            for cb in &curves(pb) {
                let sharding = cb.get("sharding").and_then(Json::as_str).unwrap_or("?");
                let tag = format!("{net}/{pname}/{sharding}");
                let Some(cc) = curves(&pc)
                    .into_iter()
                    .find(|c| c.get("sharding").and_then(Json::as_str) == Some(sharding))
                else {
                    out.push(Severity::Structural, format!("{tag}: curve missing"));
                    continue;
                };

                // The headline claim first: knee and lever must not move.
                let advice = |j: &Json, k: &str| {
                    j.get("advice").and_then(|a| a.get(k)).cloned().unwrap_or(Json::Null)
                };
                for key in ["knee_cores", "lever"] {
                    let (bv, cv) = (advice(cb, key), advice(&cc, key));
                    out.compared += 1;
                    if bv != cv {
                        out.push(
                            Severity::Structural,
                            format!(
                                "{tag}: {key} moved {} -> {}",
                                bv.to_string_compact(),
                                cv.to_string_compact()
                            ),
                        );
                    }
                }

                let cells = |j: &Json| {
                    j.get("cells").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
                };
                let (bcells, ccells) = (cells(cb), cells(&cc));
                if bcells.len() != ccells.len() {
                    out.push(
                        Severity::Structural,
                        format!("{tag}: cell count {} -> {}", bcells.len(), ccells.len()),
                    );
                }
                for (lb, lc) in bcells.iter().zip(&ccells) {
                    let cores = |l: &Json| l.get("cores").and_then(Json::as_u64);
                    if cores(lb) != cores(lc) {
                        out.push(Severity::Structural, format!("{tag}: core ladder changed"));
                        continue;
                    }
                    let cell = format!("{tag} x{}", cores(lb).unwrap_or(0));
                    let thr = |l: &Json| l.get("throughput_fpkc").and_then(Json::as_f64);
                    match (thr(lb), thr(lc)) {
                        (Some(bv), Some(cv)) => check_lower_worse(
                            &mut out,
                            &format!("{cell}: throughput"),
                            bv,
                            cv,
                            tol.throughput_pct,
                        ),
                        _ => out
                            .push(Severity::Structural, format!("{cell}: missing throughput_fpkc")),
                    }
                    let Some(Json::Obj(shares)) = lb.get("stall_shares") else {
                        out.push(Severity::Structural, format!("{cell}: missing stall_shares"));
                        continue;
                    };
                    for (cause, bs) in shares {
                        let bv = bs.as_f64().unwrap_or(0.0);
                        let cv = lc
                            .get("stall_shares")
                            .and_then(|s| s.get(cause))
                            .and_then(Json::as_f64);
                        let Some(cv) = cv else {
                            out.push(
                                Severity::Structural,
                                format!("{cell}: stall share {cause} missing"),
                            );
                            continue;
                        };
                        out.compared += 1;
                        if bv.max(cv) < SHARE_FLOOR {
                            continue;
                        }
                        let d = rel_delta_pct(bv, cv);
                        if d.abs() > tol.stall_pct {
                            let sev =
                                if d > 0.0 { Severity::Regression } else { Severity::Improvement };
                            out.push(
                                sev,
                                format!(
                                    "{cell}: {cause} stall share {bv:.4} -> {cv:.4} \
                                     ({d:+.1}%, tol ±{}%)",
                                    tol.stall_pct
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Multiply every `totals.cycles` and per-layer `cycles` in a report by
/// `1 + pct/100`. Used by `bench-diff --inject-cycles` so CI can prove the
/// gate actually trips on a synthetic slowdown.
pub fn inject_cycles(report: &mut Json, pct: f64) {
    let scale = |j: &mut Json| {
        if let Some(v) = j.as_f64() {
            *j = Json::UInt((v * (1.0 + pct / 100.0)).round() as u64);
        }
    };
    let Some(Json::Arr(runs)) = get_mut(report, "runs") else { return };
    for run in runs {
        if let Some(totals) = get_mut(run, "totals") {
            if let Some(c) = get_mut(totals, "cycles") {
                scale(c);
            }
        }
        if let Some(Json::Arr(layers)) = get_mut(run, "layers") {
            for l in layers {
                if let Some(c) = get_mut(l, "cycles") {
                    scale(c);
                }
            }
        }
    }
}

fn get_mut<'a>(j: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match j {
        Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: u64, layer0: u64, layer1: u64, hit: f64) -> Json {
        Json::obj().field("bench", "headline").field(
            "runs",
            Json::Arr(vec![Json::obj()
                .field("name", "rvv_tiny_opt3")
                .field("totals", Json::obj().field("cycles", total))
                .field("stalls", Json::obj().field("total", 100u64).field("attributed", 100u64))
                .field("caches", Json::obj().field("l2", Json::obj().field("hit_rate", hit)))
                .field(
                    "layers",
                    Json::Arr(vec![
                        Json::obj()
                            .field("index", 0u64)
                            .field("desc", "conv")
                            .field("cycles", layer0),
                        Json::obj()
                            .field("index", 1u64)
                            .field("desc", "pool")
                            .field("cycles", layer1),
                    ]),
                )]),
        )
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(1000, 600, 400, 0.95);
        let d = compare(&b, &b, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        assert!(d.compared >= 4);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let b = report(1000, 600, 400, 0.95);
        let c = report(1010, 610, 395, 0.945); // 1%, 1.7%, -1.3%, -0.005
        let d = compare(&b, &c, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
    }

    #[test]
    fn layer_cycle_regression_fails() {
        let b = report(1000, 600, 400, 0.95);
        let c = report(1000, 660, 400, 0.95); // layer 0 +10% > 5%
        let d = compare(&b, &c, &Tolerance::default());
        assert!(!d.is_pass());
        assert_eq!(d.regressions(), 1);
        assert!(d.findings[0].message.contains("layer 0"));
    }

    #[test]
    fn hit_rate_drop_fails_and_rise_is_improvement() {
        let b = report(1000, 600, 400, 0.95);
        let drop = report(1000, 600, 400, 0.90);
        assert_eq!(compare(&b, &drop, &Tolerance::default()).regressions(), 1);
        let rise = report(1000, 600, 400, 0.99);
        let d = compare(&b, &rise, &Tolerance::default());
        assert!(d.is_pass(), "improvements are not fatal: {:?}", d.findings);
        assert_eq!(d.count(Severity::Improvement), 1);
    }

    #[test]
    fn missing_run_or_layer_is_structural() {
        let b = report(1000, 600, 400, 0.95);
        let empty = Json::obj().field("runs", Json::Arr(vec![]));
        let d = compare(&b, &empty, &Tolerance::default());
        assert!(!d.is_pass());
        assert_eq!(d.structural(), 1);
        // Comparing nothing at all must not pass either.
        let d = compare(&empty, &empty, &Tolerance::default());
        assert!(!d.is_pass());
    }

    fn energy_report(cycles: u64, total_j: f64, edp_js: f64, edp_opt: &str) -> Json {
        let point = |name: &str, c: u64, j: f64, e: f64| {
            Json::obj()
                .field("name", name)
                .field("cycles", c)
                .field("total_j", j)
                .field("edp_js", e)
        };
        Json::obj().field("bench", "energy").field(
            "networks",
            Json::Arr(vec![Json::obj()
                .field("name", "yolov3")
                .field("cycles_optimal", "8192b/256MB")
                .field("edp_optimal", edp_opt)
                .field(
                    "points",
                    Json::Arr(vec![
                        point("2048b/4MB", cycles, total_j, edp_js),
                        point("8192b/256MB", cycles / 2, total_j * 2.0, edp_js),
                    ]),
                )]),
        )
    }

    #[test]
    fn report_kind_detects_energy_and_defaults_to_headline() {
        assert_eq!(report_kind(&energy_report(1000, 0.01, 0.005, "2048b/4MB")), "energy");
        assert_eq!(report_kind(&report(1000, 600, 400, 0.95)), "headline");
        assert_eq!(report_kind(&Json::obj()), "headline");
    }

    #[test]
    fn identical_energy_reports_pass_and_drift_gates() {
        let b = energy_report(1000, 0.010, 0.005, "2048b/4MB");
        let d = compare_energy(&b, &b, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        assert!(d.compared >= 8);
        // +1% energy passes the 2% gate; +5% fails it (and drags EDP along
        // past its 4% gate).
        let ok = energy_report(1000, 0.0101, 0.00505, "2048b/4MB");
        assert!(compare_energy(&b, &ok, &Tolerance::default()).is_pass());
        let bad = energy_report(1000, 0.0105, 0.00525, "2048b/4MB");
        let d = compare_energy(&b, &bad, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.regressions() >= 2, "{:?}", d.findings);
        // Energy *down* is an improvement, not a failure.
        let better = energy_report(1000, 0.009, 0.0045, "2048b/4MB");
        let d = compare_energy(&b, &better, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        assert!(d.count(Severity::Improvement) >= 2);
    }

    #[test]
    fn moved_optimum_or_missing_point_is_structural() {
        let b = energy_report(1000, 0.010, 0.005, "2048b/4MB");
        let moved = energy_report(1000, 0.010, 0.005, "8192b/256MB");
        let d = compare_energy(&b, &moved, &Tolerance::default());
        assert!(!d.is_pass());
        assert_eq!(d.structural(), 1);
        assert!(d.findings[0].message.contains("edp_optimal moved"));
        let empty = Json::obj().field("bench", "energy").field("networks", Json::Arr(vec![]));
        assert!(!compare_energy(&b, &empty, &Tolerance::default()).is_pass());
        assert!(!compare_energy(&empty, &empty, &Tolerance::default()).is_pass());
    }

    fn serving_report_fixture(p99: f64, misses: u64, recommended: &str) -> Json {
        let cell = |rho: f64, p50: f64, p99: f64, misses: u64| {
            Json::obj().field("intensity", rho).field(
                "overall",
                Json::obj()
                    .field("p50_ms", p50)
                    .field("p99_ms", p99)
                    .field("deadline_misses", misses),
            )
        };
        let point = |name: &str, p99: f64, misses: u64| {
            Json::obj().field("name", name).field(
                "loads",
                Json::Arr(vec![cell(0.5, 1.0, p99 / 2.0, 0), cell(0.95, 1.2, p99, misses)]),
            )
        };
        Json::obj()
            .field("bench", "serving")
            .field(
                "slo_recommendation",
                Json::obj()
                    .field("target_p99_ms", 4.0)
                    .field("met", true)
                    .field("recommended", Json::obj().field("point", recommended)),
            )
            .field(
                "points",
                Json::Arr(vec![
                    point("sve512/1MB", p99 * 3.0, misses + 7),
                    point("a64fx", p99, misses),
                ]),
            )
    }

    #[test]
    fn report_kind_detects_serving() {
        assert_eq!(report_kind(&serving_report_fixture(3.0, 2, "a64fx")), "serving");
    }

    #[test]
    fn identical_serving_reports_pass_and_latency_drift_gates() {
        let b = serving_report_fixture(3.0, 2, "a64fx");
        let d = compare_serving(&b, &b, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        // 1 recommendation + 2 points × 2 loads × 3 metrics.
        assert_eq!(d.compared, 13);
        // +4% p99 passes the 5% gate; +8% fails it.
        let ok = serving_report_fixture(3.12, 2, "a64fx");
        assert!(compare_serving(&b, &ok, &Tolerance::default()).is_pass());
        let bad = serving_report_fixture(3.24, 2, "a64fx");
        let d = compare_serving(&b, &bad, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.regressions() >= 1, "{:?}", d.findings);
        // Faster tails are improvements, not failures.
        let better = serving_report_fixture(2.7, 2, "a64fx");
        let d = compare_serving(&b, &better, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
    }

    #[test]
    fn deadline_miss_count_gates_exactly() {
        let b = serving_report_fixture(3.0, 2, "a64fx");
        let one_more = serving_report_fixture(3.0, 3, "a64fx");
        let d = compare_serving(&b, &one_more, &Tolerance::default());
        assert!(!d.is_pass(), "one extra miss must fail: {:?}", d.findings);
        assert!(d.regressions() >= 1);
        assert!(d.findings.iter().any(|f| f.message.contains("deadline misses")));
    }

    #[test]
    fn moved_recommendation_or_missing_point_is_structural() {
        let b = serving_report_fixture(3.0, 2, "a64fx");
        let moved = serving_report_fixture(3.0, 2, "sve512/1MB");
        let d = compare_serving(&b, &moved, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.findings.iter().any(|f| f.message.contains("recommendation moved")));
        let empty = Json::obj().field("bench", "serving").field("points", Json::Arr(vec![]));
        assert!(!compare_serving(&b, &empty, &Tolerance::default()).is_pass());
        assert!(!compare_serving(&empty, &empty, &Tolerance::default()).is_pass());
    }

    fn scaling_report_fixture(thr8: f64, cont8: f64, knee: Option<u64>, lever: &str) -> Json {
        let cell = |cores: u64, thr: f64, cont: f64| {
            Json::obj()
                .field("cores", cores)
                .field("throughput_fpkc", thr)
                .field("stall_shares", Json::obj().field("mem", 0.2).field("contention", cont))
        };
        let mut advice = Json::obj();
        if let Some(k) = knee {
            advice = advice.field("knee_cores", k).field("lever", lever);
        }
        let curve = Json::obj()
            .field("sharding", "batch")
            .field(
                "cells",
                Json::Arr(vec![cell(1, 1.0, 0.0), cell(4, 3.2, cont8 / 2.0), cell(8, thr8, cont8)]),
            )
            .field("advice", advice);
        Json::obj().field("bench", "scaling").field(
            "networks",
            Json::Arr(vec![Json::obj().field("name", "yolov3_tiny").field(
                "points",
                Json::Arr(vec![Json::obj()
                    .field("name", "rvv2048x8/1MB")
                    .field("curves", Json::Arr(vec![curve]))]),
            )]),
        )
    }

    #[test]
    fn report_kind_detects_scaling() {
        assert_eq!(report_kind(&scaling_report_fixture(4.8, 0.3, Some(8), "grow_l2")), "scaling");
    }

    #[test]
    fn identical_scaling_reports_pass_and_throughput_drift_gates() {
        let b = scaling_report_fixture(4.8, 0.3, Some(8), "grow_l2");
        let d = compare_scaling(&b, &b, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        // 2 advice keys + 3 cells × (1 throughput + 2 shares).
        assert_eq!(d.compared, 11);
        // -1% throughput passes the 2% gate; -5% fails it as a regression.
        let ok = scaling_report_fixture(4.752, 0.3, Some(8), "grow_l2");
        assert!(compare_scaling(&b, &ok, &Tolerance::default()).is_pass());
        let bad = scaling_report_fixture(4.56, 0.3, Some(8), "grow_l2");
        let d = compare_scaling(&b, &bad, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.regressions() >= 1, "{:?}", d.findings);
        // Faster is an improvement, not a failure.
        let better = scaling_report_fixture(5.2, 0.3, Some(8), "grow_l2");
        let d = compare_scaling(&b, &better, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        assert!(d.count(Severity::Improvement) >= 1);
    }

    #[test]
    fn grown_stall_share_gates_and_zero_shares_do_not_blow_up() {
        let b = scaling_report_fixture(4.8, 0.3, Some(8), "grow_l2");
        // Contention share +20% relative fails the 10% gate; the 1-core
        // cell's exactly-zero share on both sides never trips.
        let worse = scaling_report_fixture(4.8, 0.36, Some(8), "grow_l2");
        let d = compare_scaling(&b, &worse, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.findings.iter().any(|f| f.message.contains("contention stall share")));
    }

    #[test]
    fn moved_knee_or_lever_is_structural() {
        let b = scaling_report_fixture(4.8, 0.3, Some(8), "grow_l2");
        let moved = scaling_report_fixture(4.8, 0.3, Some(4), "grow_l2");
        let d = compare_scaling(&b, &moved, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.findings.iter().any(|f| f.message.contains("knee_cores moved")));
        let relever = scaling_report_fixture(4.8, 0.3, Some(8), "fewer_cores");
        let d = compare_scaling(&b, &relever, &Tolerance::default());
        assert!(!d.is_pass());
        assert!(d.findings.iter().any(|f| f.message.contains("lever moved")));
        let empty = Json::obj().field("bench", "scaling").field("networks", Json::Arr(vec![]));
        assert!(!compare_scaling(&b, &empty, &Tolerance::default()).is_pass());
        assert!(!compare_scaling(&empty, &empty, &Tolerance::default()).is_pass());
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        let b = report(100_000, 60_000, 40_000, 0.95);
        let mut c = b.clone();
        inject_cycles(&mut c, 6.0);
        let d = compare(&b, &c, &Tolerance::default());
        assert!(!d.is_pass(), "a 6% injected slowdown must fail the default gate");
        // Layers (5% tol) and total (2% tol) all regress.
        assert_eq!(d.regressions(), 3);
    }
}
