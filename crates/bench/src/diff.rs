//! Benchmark regression diffing: compare two `BENCH_headline.json`-style
//! reports under a tolerance policy.
//!
//! The simulator is deterministic, so at a pinned configuration a committed
//! baseline compares *exactly* — the tolerances exist to separate "this
//! change made layer 7 five percent slower" (a gated regression) from noise
//! introduced by intentional re-baselining at slightly different scales.
//!
//! Compared per run (matched by `name`):
//! * `totals.cycles` — relative, default ±2%;
//! * each `layers[i].cycles` — relative, default ±5%;
//! * each `caches.<level>.hit_rate` — absolute, default ±0.01;
//! * `stalls.total` — relative, default ±10%.
//!
//! Cycles or stalls *up*, or hit rate *down*, beyond tolerance is a
//! **regression** (fatal). Movement in the good direction is reported as an
//! **improvement** (informational — a nudge to re-baseline). Missing runs,
//! layers, or sections are **structural** findings (fatal: a silently
//! shrunken benchmark must not pass the gate).

use lva_trace::Json;

/// Tolerance policy for [`compare`]. Percentages are relative (`5.0` =
/// ±5%); `hit_rate_abs` is absolute on a 0..1 rate.
#[derive(Debug, Clone)]
pub struct Tolerance {
    pub total_cycles_pct: f64,
    pub layer_cycles_pct: f64,
    pub hit_rate_abs: f64,
    pub stall_pct: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            total_cycles_pct: 2.0,
            layer_cycles_pct: 5.0,
            hit_rate_abs: 0.01,
            stall_pct: 10.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Beyond tolerance in the bad direction — fails the gate.
    Regression,
    /// Beyond tolerance in the good direction — informational.
    Improvement,
    /// The two reports do not have the same shape — fails the gate.
    Structural,
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub message: String,
}

/// Outcome of a comparison; `is_pass` gates CI.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub findings: Vec<Finding>,
    /// Number of metric comparisons performed (a sanity floor: comparing
    /// two empty files passes every tolerance while checking nothing).
    pub compared: usize,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.count(Severity::Regression)
    }

    pub fn structural(&self) -> usize {
        self.count(Severity::Structural)
    }

    pub fn is_pass(&self) -> bool {
        self.regressions() == 0 && self.structural() == 0 && self.compared > 0
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    fn push(&mut self, severity: Severity, message: String) {
        self.findings.push(Finding { severity, message });
    }
}

fn rel_delta_pct(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (cur - base) / base
    }
}

/// Compare a "higher is worse" metric under a relative tolerance.
fn check_higher_worse(out: &mut DiffReport, what: &str, base: f64, cur: f64, tol_pct: f64) {
    out.compared += 1;
    let d = rel_delta_pct(base, cur);
    if d.abs() <= tol_pct {
        return;
    }
    let sev = if d > 0.0 { Severity::Regression } else { Severity::Improvement };
    out.push(sev, format!("{what}: {base:.0} -> {cur:.0} ({d:+.1}%, tol ±{tol_pct}%)"));
}

fn run_name(run: &Json) -> &str {
    run.get("name").and_then(Json::as_str).unwrap_or("<unnamed>")
}

fn compare_runs(out: &mut DiffReport, base: &Json, cur: &Json, tol: &Tolerance) {
    let name = run_name(base);

    // totals.cycles
    let total = |r: &Json| r.get("totals").and_then(|t| t.get("cycles")).and_then(Json::as_f64);
    match (total(base), total(cur)) {
        (Some(b), Some(c)) => {
            check_higher_worse(out, &format!("{name}: total cycles"), b, c, tol.total_cycles_pct);
        }
        _ => out.push(Severity::Structural, format!("{name}: missing totals.cycles")),
    }

    // stalls.total
    let stall = |r: &Json| r.get("stalls").and_then(|s| s.get("total")).and_then(Json::as_f64);
    if let (Some(b), Some(c)) = (stall(base), stall(cur)) {
        check_higher_worse(out, &format!("{name}: stall cycles"), b, c, tol.stall_pct);
    }

    // caches.<level>.hit_rate, for every level the baseline has.
    if let Some(Json::Obj(levels)) = base.get("caches") {
        for (level, bc) in levels {
            let b_hr = bc.get("hit_rate").and_then(Json::as_f64);
            let c_hr = cur
                .get("caches")
                .and_then(|c| c.get(level))
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64);
            match (b_hr, c_hr) {
                (Some(b), Some(c)) => {
                    out.compared += 1;
                    let d = c - b;
                    if d.abs() > tol.hit_rate_abs {
                        let sev =
                            if d < 0.0 { Severity::Regression } else { Severity::Improvement };
                        out.push(
                            sev,
                            format!(
                                "{name}: {level} hit rate {b:.4} -> {c:.4} ({d:+.4}, tol ±{:.4})",
                                tol.hit_rate_abs
                            ),
                        );
                    }
                }
                _ => out.push(
                    Severity::Structural,
                    format!("{name}: cache level {level} missing from current report"),
                ),
            }
        }
    }

    // Per-layer cycles, matched by index.
    fn layers(r: &Json) -> &[Json] {
        r.get("layers").and_then(Json::as_arr).unwrap_or(&[])
    }
    let (bl, cl) = (layers(base), layers(cur));
    if bl.len() != cl.len() {
        out.push(Severity::Structural, format!("{name}: layer count {} -> {}", bl.len(), cl.len()));
    }
    for (i, (b, c)) in bl.iter().zip(cl).enumerate() {
        let cyc = |l: &Json| l.get("cycles").and_then(Json::as_f64);
        match (cyc(b), cyc(c)) {
            (Some(bv), Some(cv)) => {
                let desc = b.get("desc").and_then(Json::as_str).unwrap_or("?");
                check_higher_worse(
                    out,
                    &format!("{name}: layer {i} ({desc}) cycles"),
                    bv,
                    cv,
                    tol.layer_cycles_pct,
                );
            }
            _ => out.push(Severity::Structural, format!("{name}: layer {i} missing cycles")),
        }
    }
}

/// Compare two benchmark reports (the top-level objects of
/// `BENCH_headline.json`). Runs are matched by name; a run present in the
/// baseline but not the current report is structural (fatal), a run only
/// in the current report is reported informationally.
pub fn compare(base: &Json, cur: &Json, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    let runs =
        |j: &Json| j.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default();
    let (base_runs, cur_runs) = (runs(base), runs(cur));
    if base_runs.is_empty() {
        out.push(Severity::Structural, "baseline has no runs".to_string());
        return out;
    }
    for b in &base_runs {
        match cur_runs.iter().find(|c| run_name(c) == run_name(b)) {
            Some(c) => compare_runs(&mut out, b, c, tol),
            None => out.push(
                Severity::Structural,
                format!("run {} missing from current report", run_name(b)),
            ),
        }
    }
    for c in &cur_runs {
        if !base_runs.iter().any(|b| run_name(b) == run_name(c)) {
            out.push(
                Severity::Improvement,
                format!("run {} is new (not in baseline)", run_name(c)),
            );
        }
    }
    out
}

/// Multiply every `totals.cycles` and per-layer `cycles` in a report by
/// `1 + pct/100`. Used by `bench-diff --inject-cycles` so CI can prove the
/// gate actually trips on a synthetic slowdown.
pub fn inject_cycles(report: &mut Json, pct: f64) {
    let scale = |j: &mut Json| {
        if let Some(v) = j.as_f64() {
            *j = Json::UInt((v * (1.0 + pct / 100.0)).round() as u64);
        }
    };
    let Some(Json::Arr(runs)) = get_mut(report, "runs") else { return };
    for run in runs {
        if let Some(totals) = get_mut(run, "totals") {
            if let Some(c) = get_mut(totals, "cycles") {
                scale(c);
            }
        }
        if let Some(Json::Arr(layers)) = get_mut(run, "layers") {
            for l in layers {
                if let Some(c) = get_mut(l, "cycles") {
                    scale(c);
                }
            }
        }
    }
}

fn get_mut<'a>(j: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match j {
        Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: u64, layer0: u64, layer1: u64, hit: f64) -> Json {
        Json::obj().field("bench", "headline").field(
            "runs",
            Json::Arr(vec![Json::obj()
                .field("name", "rvv_tiny_opt3")
                .field("totals", Json::obj().field("cycles", total))
                .field("stalls", Json::obj().field("total", 100u64).field("attributed", 100u64))
                .field("caches", Json::obj().field("l2", Json::obj().field("hit_rate", hit)))
                .field(
                    "layers",
                    Json::Arr(vec![
                        Json::obj()
                            .field("index", 0u64)
                            .field("desc", "conv")
                            .field("cycles", layer0),
                        Json::obj()
                            .field("index", 1u64)
                            .field("desc", "pool")
                            .field("cycles", layer1),
                    ]),
                )]),
        )
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(1000, 600, 400, 0.95);
        let d = compare(&b, &b, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
        assert!(d.compared >= 4);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let b = report(1000, 600, 400, 0.95);
        let c = report(1010, 610, 395, 0.945); // 1%, 1.7%, -1.3%, -0.005
        let d = compare(&b, &c, &Tolerance::default());
        assert!(d.is_pass(), "{:?}", d.findings);
    }

    #[test]
    fn layer_cycle_regression_fails() {
        let b = report(1000, 600, 400, 0.95);
        let c = report(1000, 660, 400, 0.95); // layer 0 +10% > 5%
        let d = compare(&b, &c, &Tolerance::default());
        assert!(!d.is_pass());
        assert_eq!(d.regressions(), 1);
        assert!(d.findings[0].message.contains("layer 0"));
    }

    #[test]
    fn hit_rate_drop_fails_and_rise_is_improvement() {
        let b = report(1000, 600, 400, 0.95);
        let drop = report(1000, 600, 400, 0.90);
        assert_eq!(compare(&b, &drop, &Tolerance::default()).regressions(), 1);
        let rise = report(1000, 600, 400, 0.99);
        let d = compare(&b, &rise, &Tolerance::default());
        assert!(d.is_pass(), "improvements are not fatal: {:?}", d.findings);
        assert_eq!(d.count(Severity::Improvement), 1);
    }

    #[test]
    fn missing_run_or_layer_is_structural() {
        let b = report(1000, 600, 400, 0.95);
        let empty = Json::obj().field("runs", Json::Arr(vec![]));
        let d = compare(&b, &empty, &Tolerance::default());
        assert!(!d.is_pass());
        assert_eq!(d.structural(), 1);
        // Comparing nothing at all must not pass either.
        let d = compare(&empty, &empty, &Tolerance::default());
        assert!(!d.is_pass());
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        let b = report(100_000, 60_000, 40_000, 0.95);
        let mut c = b.clone();
        inject_cycles(&mut c, 6.0);
        let d = compare(&b, &c, &Tolerance::default());
        assert!(!d.is_pass(), "a 6% injected slowdown must fail the default gate");
        // Layers (5% tol) and total (2% tol) all regress.
        assert_eq!(d.regressions(), 3);
    }
}
