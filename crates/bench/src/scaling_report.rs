//! The scale-out observatory: throughput-vs-cores curves over the
//! `lva-scale` multi-core SoC simulator, assembled into
//! `BENCH_scaling.json` plus the committed `results/SCALING.md`.
//!
//! The paper characterizes one core per design point; this sweep asks what
//! happens when N of those cores share one L2/DRAM port. Per (network ×
//! design point), the op stream is captured **once**
//! ([`Experiment::run_traced`]) and replayed on 1/2/4/8-core SoCs under
//! both sharding strategies ([`Sharding::ALL`]), each paired with its
//! `infinite_shared_bw` counterfactual — the same schedule with
//! arbitration waits idealized away, an upper bound on what any port fix
//! can recover. The analysis layer is `lva-whatif`'s scale advisor: it
//! finds where each curve bends ([`lva_whatif::find_knee`]), checks the
//! bend is really contention (attributed `Contention` share **and** the
//! counterfactual agree), and names the cheapest recovering co-design
//! lever — more shared L2, the other sharding, or fewer cores.
//!
//! Invariants carried by the record (each pinned by a test and gated in CI
//! via `bench-diff --kind scaling`):
//!
//! * the 1-core batch row is **bit-identical** to the single-core
//!   simulator — its cycles-per-frame equals the embedded `RunReport`'s
//!   `totals.cycles`, which *is* the headline path's summary;
//! * per core, stall causes (now including `contention`) sum to the total;
//! * the merged-stream Mattson prediction of the shared-L2 hit rate agrees
//!   with simulation within 1% absolute in every cell;
//! * the whole record is deterministic: no timestamps, no host data,
//!   byte-identical for any `--jobs`.

use lva_isa::StallCause;
use lva_scale::{run_soc_captured, Sharding, SocConfig, SocResult};
use lva_whatif::{advise, find_knee, scaling_efficiency, ScaleCell, SCALING_KNEE_EFFICIENCY};

use crate::{
    scaled_input, ConvPolicy, Experiment, GemmVariant, HwTarget, Json, ModelId, RunReport, Workload,
};

/// The core-count ladder every curve is swept over. Pipeline cells where
/// the network has fewer layers than cores are skipped (a stage must own
/// at least one layer).
pub const SCALING_CORES: [usize; 4] = [1, 2, 4, 8];

/// The design points the SoC is scaled at: the paper's long-vector RVV
/// core with the shared L2 at two Table II capacities — the pair that
/// makes the "more L2" lever measurable inside the sweep itself.
pub fn scaling_design_points() -> Vec<(String, HwTarget)> {
    vec![
        (
            "rvv2048x8/1MB".into(),
            HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
        ),
        (
            "rvv2048x8/4MB".into(),
            HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 4 << 20 },
        ),
    ]
}

/// The two networks scaled out: the tiny detector whole, and the full
/// YOLOv3 at its usual 20-layer prefix (an explicit `layers` caps both —
/// the CI configuration).
pub fn scaling_networks(div: usize, layers: Option<usize>) -> Vec<(String, Workload)> {
    vec![
        (
            "yolov3_tiny".into(),
            Workload {
                model: ModelId::Yolov3Tiny,
                input_hw: scaled_input(ModelId::Yolov3Tiny, div),
                layer_limit: layers,
            },
        ),
        (
            "yolov3_20".into(),
            Workload {
                model: ModelId::Yolov3,
                input_hw: scaled_input(ModelId::Yolov3, div),
                layer_limit: Some(layers.unwrap_or(20)),
            },
        ),
    ]
}

/// One sweep cell: which capture, how many cores, which strategy, real or
/// counterfactual port.
#[derive(Debug, Clone, Copy)]
struct CellSpec {
    pair: usize,
    sharding: Sharding,
    cores: usize,
    ideal: bool,
}

/// One measured curve: fixed (network, point, sharding), varying cores.
struct Curve {
    net: usize,
    point: usize,
    sharding: Sharding,
    /// `(real, counterfactual)` per core count, [`SCALING_CORES`] order
    /// (pipeline curves may be shorter — see [`SCALING_CORES`]).
    cells: Vec<(SocResult, SocResult)>,
}

impl Curve {
    fn scale_cells(&self) -> Vec<ScaleCell> {
        self.cells
            .iter()
            .map(|(real, ideal)| ScaleCell {
                cores: real.n_cores as u64,
                throughput: real.frames_per_kcycle(),
                contention_share: real.mean_contention_share(),
                ideal_throughput: ideal.frames_per_kcycle(),
            })
            .collect()
    }

    fn throughput_at(&self, cores: u64) -> Option<f64> {
        self.cells
            .iter()
            .find(|(r, _)| r.n_cores as u64 == cores)
            .map(|(r, _)| r.frames_per_kcycle())
    }
}

fn simulate_curves(
    caps: &[(Experiment, lva_core::CapturedRun)],
    n_nets: usize,
    n_points: usize,
    jobs: usize,
) -> Vec<Curve> {
    let mut specs: Vec<CellSpec> = Vec::new();
    for (pair, (_, cap)) in caps.iter().enumerate() {
        let n_layers = cap.summary.report.layers.len();
        for sharding in Sharding::ALL {
            for &cores in &SCALING_CORES {
                if sharding == Sharding::Pipeline && cores > n_layers {
                    continue;
                }
                for ideal in [false, true] {
                    specs.push(CellSpec { pair, sharding, cores, ideal });
                }
            }
        }
    }
    let results: Vec<SocResult> = lva_core::parallel_map(&specs, jobs, |_, spec| {
        let (e, cap) = &caps[spec.pair];
        eprintln!(
            ".. soc {} | {} | {} x{}{}",
            e.hw.describe(),
            e.workload.describe(),
            spec.sharding.name(),
            spec.cores,
            if spec.ideal { " [infinite bw]" } else { "" }
        );
        let cfg = SocConfig::new(spec.cores, spec.sharding).with_infinite_bw(spec.ideal);
        run_soc_captured(e, cap, &cfg)
    });

    let mut curves: Vec<Curve> = Vec::new();
    for net in 0..n_nets {
        for point in 0..n_points {
            let pair = net * n_points + point;
            for sharding in Sharding::ALL {
                let mut cells: Vec<(Option<SocResult>, Option<SocResult>)> = Vec::new();
                for (spec, r) in specs.iter().zip(results.iter()) {
                    if spec.pair != pair || spec.sharding != sharding {
                        continue;
                    }
                    let idx = SCALING_CORES
                        .iter()
                        .position(|&c| c == spec.cores)
                        .expect("cores from the ladder");
                    while cells.len() <= idx {
                        cells.push((None, None));
                    }
                    let slot = &mut cells[idx];
                    let copied = clone_result(r);
                    if spec.ideal {
                        slot.1 = Some(copied);
                    } else {
                        slot.0 = Some(copied);
                    }
                }
                let cells: Vec<(SocResult, SocResult)> =
                    cells.into_iter().filter_map(|(r, i)| Some((r?, i?))).collect();
                curves.push(Curve { net, point, sharding, cells });
            }
        }
    }
    curves
}

/// Duplicate a [`SocResult`]'s report-relevant state (the struct is not
/// `Clone` because it may own a timeline; sweeps never record one).
fn clone_result(r: &SocResult) -> SocResult {
    assert!(r.timeline.is_none(), "sweep cells do not record timelines");
    SocResult {
        n_cores: r.n_cores,
        sharding: r.sharding,
        infinite_shared_bw: r.infinite_shared_bw,
        cores: r.cores.clone(),
        port: r.port.clone(),
        frames: r.frames,
        makespan: r.makespan,
        mattson: r.mattson,
        bw_samples: r.bw_samples.clone(),
        timeline: None,
    }
}

fn cell_json(real: &SocResult, ideal: &SocResult) -> Json {
    let total_core_cycles: u64 = real.cores.iter().map(|c| c.cycles).sum();
    let mut stall_shares = Json::obj();
    for cause in StallCause::ALL {
        let cyc: u64 = real.cores.iter().map(|c| c.stalls.get(cause)).sum();
        let share =
            if total_core_cycles == 0 { 0.0 } else { cyc as f64 / total_core_cycles as f64 };
        stall_shares = stall_shares.field(cause.name(), share);
    }
    let sc = ScaleCell {
        cores: real.n_cores as u64,
        throughput: real.frames_per_kcycle(),
        contention_share: real.mean_contention_share(),
        ideal_throughput: ideal.frames_per_kcycle(),
    };
    Json::obj()
        .field("cores", real.n_cores as u64)
        .field("frames", real.frames as u64)
        .field("makespan", real.makespan)
        .field("throughput_fpkc", real.frames_per_kcycle())
        .field("cycles_per_frame", real.cycles_per_frame())
        .field("contention_cycles", real.total_contention())
        .field("contention_share", real.mean_contention_share())
        .field("ideal_throughput_fpkc", ideal.frames_per_kcycle())
        .field("contention_cost_frac", sc.contention_cost_frac())
        .field("pipeline_idle", real.cores.iter().map(|c| c.pipeline_idle).sum::<u64>())
        .field("stall_shares", stall_shares)
        .field(
            "port",
            Json::obj()
                .field("waits", real.port.waits.iter().sum::<u64>())
                .field("service_cycles", real.port.service_cycles.iter().sum::<u64>())
                .field("l2_accesses", real.port.l2.accesses)
                .field("l2_hit_rate", real.port.l2.hit_rate()),
        )
        .field(
            "mattson",
            Json::obj()
                .field("predicted_hit_rate", real.mattson.predicted_hit_rate)
                .field("simulated_hit_rate", real.mattson.simulated_hit_rate)
                .field("abs_error", real.mattson.abs_error())
                .field("transactions", real.mattson.transactions),
        )
}

/// Assemble the full `BENCH_scaling.json` value. Deterministic for fixed
/// `(div, layers)` — independent of `jobs` and the host.
pub fn scaling_grid_json(div: usize, layers: Option<usize>, jobs: usize) -> Json {
    scaling_grid_json_with(div, layers, jobs, None)
}

/// [`scaling_grid_json`] with an optional retime engine (the `--retime`
/// path). The engine **refuses**: retime certificates are single-core
/// timing proofs and say nothing about cross-core port interleaving, so it
/// records [`lva_retime::CONTENTION_REFUSAL`] and this function falls back
/// to the full SoC simulation — the output is byte-identical to the
/// engineless path (pinned by test).
pub fn scaling_grid_json_with(
    div: usize,
    layers: Option<usize>,
    jobs: usize,
    engine: Option<&mut lva_retime::RetimeEngine>,
) -> Json {
    if let Some(eng) = engine {
        let reason = eng.refuse_contention();
        eprintln!(".. retime declined for the scaling sweep: {reason}");
    }
    let nets = scaling_networks(div, layers);
    let points = scaling_design_points();
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());

    // Capture once per (network, point); every SoC cell replays a capture.
    let pairs: Vec<(usize, usize)> =
        (0..nets.len()).flat_map(|n| (0..points.len()).map(move |p| (n, p))).collect();
    let caps: Vec<(Experiment, lva_core::CapturedRun)> =
        lva_core::parallel_map(&pairs, jobs, |_, &(n, p)| {
            let e = Experiment::new(points[p].1, policy, nets[n].1);
            eprintln!(".. capture {} | {}", e.hw.describe(), e.workload.describe());
            let cap = e.run_traced();
            (e, cap)
        });

    let curves = simulate_curves(&caps, nets.len(), points.len(), jobs);

    // Analysis pass: per curve, knee + lever (needs every curve in hand —
    // the levers are cross-curve comparisons).
    let advice: Vec<lva_whatif::ScaleAdvice> = curves
        .iter()
        .map(|curve| {
            let cells = curve.scale_cells();
            let knee = find_knee(&cells).map(|i| cells[i].cores);
            let l2_recovers = knee.is_some_and(|kc| {
                curves
                    .iter()
                    .find(|o| {
                        o.net == curve.net
                            && o.point == curve.point + 1
                            && o.sharding == curve.sharding
                    })
                    .is_some_and(|bigger| {
                        let bc = bigger.scale_cells();
                        let eff = scaling_efficiency(&bc);
                        bc.iter()
                            .zip(&eff)
                            .any(|(c, &e)| c.cores == kc && e >= SCALING_KNEE_EFFICIENCY)
                    })
            });
            let other_gain = knee
                .and_then(|kc| {
                    let mine = curve.throughput_at(kc)?;
                    let other = curves.iter().find(|o| {
                        o.net == curve.net && o.point == curve.point && o.sharding != curve.sharding
                    })?;
                    Some(other.throughput_at(kc)? / mine)
                })
                .unwrap_or(1.0);
            advise(&cells, l2_recovers, other_gain)
        })
        .collect();

    let mut nets_json: Vec<Json> = Vec::new();
    for (n, (net_name, _)) in nets.iter().enumerate() {
        let mut points_json: Vec<Json> = Vec::new();
        for (p, (point_name, hw)) in points.iter().enumerate() {
            let pair = n * points.len() + p;
            let (exp, cap) = &caps[pair];
            let mut curves_json: Vec<Json> = Vec::new();
            let mut scaling_section = Json::obj()
                .field(
                    "cores",
                    Json::Arr(SCALING_CORES.iter().map(|&c| Json::from(c as u64)).collect()),
                )
                .field("single_core_cycles", cap.summary.cycles);
            for (curve, adv) in curves.iter().zip(&advice) {
                if curve.net != n || curve.point != p {
                    continue;
                }
                let cells_json: Vec<Json> =
                    curve.cells.iter().map(|(r, i)| cell_json(r, i)).collect();
                curves_json.push(
                    Json::obj()
                        .field("sharding", curve.sharding.name())
                        .field("cells", Json::Arr(cells_json))
                        .field("advice", adv.to_json()),
                );
                let peak =
                    curve.cells.iter().map(|(r, _)| r.frames_per_kcycle()).fold(0.0f64, f64::max);
                let mut summary = Json::obj().field("peak_throughput_fpkc", peak);
                if let Some(kc) = adv.knee_cores {
                    summary = summary.field("knee_cores", kc);
                }
                if let Some(l) = adv.lever {
                    summary = summary.field("lever", l.name());
                }
                scaling_section = scaling_section.field(curve.sharding.name(), summary);
            }
            // The point's RunReport: the capture's single-core summary —
            // the headline path — with the scaling view attached through
            // the uniform optional-section path.
            let report = RunReport::new(
                format!("scaling_{net_name}_{}", point_name.replace('/', "_")),
                exp,
                &cap.summary,
            )
            .with_scaling(scaling_section);
            points_json.push(
                Json::obj()
                    .field("name", point_name.as_str())
                    .field("hw", hw.describe())
                    .field("l2_bytes", hw.l2_bytes() as u64)
                    .field("single_core_cycles", cap.summary.cycles)
                    .field("curves", Json::Arr(curves_json))
                    .field("report", report.to_json()),
            );
        }
        nets_json.push(
            Json::obj().field("name", net_name.as_str()).field("points", Json::Arr(points_json)),
        );
    }

    Json::obj()
        .field("bench", "scaling")
        .field("div", div as u64)
        .field("cores", Json::Arr(SCALING_CORES.iter().map(|&c| Json::from(c as u64)).collect()))
        .field("knee_efficiency", SCALING_KNEE_EFFICIENCY)
        .field("networks", Json::Arr(nets_json))
}

/// Re-run one cell with the multi-process timeline recorded — the
/// `--chrome` path of `exp-scale` (the heaviest real cell: most cores,
/// batch sharding, first network on the small-L2 point).
pub fn scaling_chrome_trace(div: usize, layers: Option<usize>) -> crate::ChromeTrace {
    let nets = scaling_networks(div, layers);
    let points = scaling_design_points();
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let e = Experiment::new(points[0].1, policy, nets[0].1);
    eprintln!(".. capture {} | {}", e.hw.describe(), e.workload.describe());
    let cap = e.run_traced();
    let cores = *SCALING_CORES.last().expect("non-empty ladder");
    let cfg = SocConfig::new(cores, Sharding::Batch).with_timeline(true);
    let soc = run_soc_captured(&e, &cap, &cfg);
    let mut t = soc.timeline.expect("timeline requested");
    t.note("network", &nets[0].0);
    t.note("point", &points[0].0);
    t
}

fn get_str<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Render `results/SCALING.md` from a parsed `BENCH_scaling.json`. Pure
/// function of its input — CI regenerates it and byte-compares against the
/// committed copy.
pub fn scaling_markdown(j: &Json) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let div = get_u64(j, "div");
    let _ = writeln!(md, "# Scale-out observatory\n");
    let _ = writeln!(
        md,
        "Throughput-vs-cores curves from the `lva-scale` multi-core SoC simulator at \
         `--div {div}` (DESIGN.md §18): N copies of the single-core machine behind one \
         bandwidth-contended L2/DRAM port, under batch and layer-pipeline sharding, \
         each with its `infinite_shared_bw` counterfactual. Throughput is frames per \
         kilocycle of SoC makespan; *eff* is parallel efficiency against linear \
         scaling of the 1-core row; *cont* is the mean per-core share of stall cycles \
         attributed to `Contention` (the shared port); the Mattson column is the \
         merged-stream reuse-distance prediction error of the shared-L2 hit rate \
         (≤ 1% absolute in every cell, gated). The 1-core batch row is bit-identical \
         to the single-core headline simulator. Regenerate with \
         `cargo run --release --bin exp-scale`.\n"
    );

    // Knee summary first: where each curve bends and what recovers it.
    let _ = writeln!(md, "## Scaling knees and recovery levers\n");
    let _ = writeln!(md, "| network | point | sharding | knee | contention-bound | lever |");
    let _ = writeln!(md, "|---|---|---|---:|---|---|");
    let nets = j.get("networks").and_then(Json::as_arr).unwrap_or(&[]);
    for net in nets {
        for p in net.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            for c in p.get("curves").and_then(Json::as_arr).unwrap_or(&[]) {
                let adv = c.get("advice").cloned().unwrap_or_else(Json::obj);
                let knee = adv
                    .get("knee_cores")
                    .and_then(Json::as_u64)
                    .map_or("—".to_string(), |k| format!("{k} cores"));
                let bound = if adv.get("contention_bound").and_then(Json::as_bool) == Some(true) {
                    "yes"
                } else {
                    "no"
                };
                let lever = adv.get("lever").and_then(Json::as_str).unwrap_or("—");
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} | {} | {} |",
                    get_str(net, "name"),
                    get_str(p, "name"),
                    get_str(c, "sharding"),
                    knee,
                    bound,
                    lever,
                );
            }
        }
    }
    let _ = writeln!(md);

    for net in nets {
        let _ = writeln!(md, "## {}\n", get_str(net, "name"));
        for p in net.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            let _ = writeln!(
                md,
                "### {} — {} (single-core frame: {} cycles)\n",
                get_str(p, "name"),
                get_str(p, "hw"),
                get_u64(p, "single_core_cycles"),
            );
            for c in p.get("curves").and_then(Json::as_arr).unwrap_or(&[]) {
                let adv = c.get("advice").cloned().unwrap_or_else(Json::obj);
                let eff = adv.get("efficiency").and_then(Json::as_arr).unwrap_or(&[]);
                let _ = writeln!(md, "**{} sharding**\n", get_str(c, "sharding"));
                let _ = writeln!(
                    md,
                    "| cores | frames | fr/kcycle | eff | cont % | ideal fr/kcycle | \
                     port util | Mattson err |"
                );
                let _ = writeln!(md, "|---:|---:|---:|---:|---:|---:|---:|---:|");
                for (i, cell) in
                    c.get("cells").and_then(Json::as_arr).unwrap_or(&[]).iter().enumerate()
                {
                    let port = cell.get("port").cloned().unwrap_or_else(Json::obj);
                    let mat = cell.get("mattson").cloned().unwrap_or_else(Json::obj);
                    let util = if get_u64(cell, "makespan") == 0 {
                        0.0
                    } else {
                        get_u64(&port, "service_cycles") as f64 / get_u64(cell, "makespan") as f64
                    };
                    let _ = writeln!(
                        md,
                        "| {} | {} | {:.6} | {:.2} | {:.1} | {:.6} | {:.2} | {:.4} |",
                        get_u64(cell, "cores"),
                        get_u64(cell, "frames"),
                        get_f64(cell, "throughput_fpkc"),
                        eff.get(i).and_then(Json::as_f64).unwrap_or(0.0),
                        100.0 * get_f64(cell, "contention_share"),
                        get_f64(cell, "ideal_throughput_fpkc"),
                        util,
                        get_f64(&mat, "abs_error"),
                    );
                }
                let _ = writeln!(md);
                let _ =
                    writeln!(md, "{}\n", adv.get("advice").and_then(Json::as_str).unwrap_or(""));
            }
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Json {
        // Reduced sweep: tiny scale, short prefixes — the unit-test
        // configuration (CI runs the committed default separately).
        scaling_grid_json(16, Some(4), 2)
    }

    fn cells_of<'a>(j: &'a Json, net: usize, point: usize, sharding: &str) -> &'a [Json] {
        j.get("networks")
            .and_then(Json::as_arr)
            .and_then(|n| n.get(net))
            .and_then(|n| n.get("points"))
            .and_then(Json::as_arr)
            .and_then(|p| p.get(point))
            .and_then(|p| p.get("curves"))
            .and_then(Json::as_arr)
            .map(|cs| {
                cs.iter()
                    .find(|c| c.get("sharding").and_then(Json::as_str) == Some(sharding))
                    .expect("curve present")
            })
            .and_then(|c| c.get("cells"))
            .and_then(Json::as_arr)
            .expect("cells")
    }

    #[test]
    fn scaling_grid_is_deterministic_across_jobs() {
        let a = tiny_grid();
        let b = scaling_grid_json(16, Some(4), 1);
        assert_eq!(
            a.to_string_pretty(),
            b.to_string_pretty(),
            "scaling record must not depend on --jobs"
        );
    }

    #[test]
    fn one_core_batch_row_is_the_single_core_headline_run() {
        let j = tiny_grid();
        for net in j.get("networks").and_then(Json::as_arr).expect("networks") {
            for p in net.get("points").and_then(Json::as_arr).expect("points") {
                let single = get_u64(p, "single_core_cycles");
                let report = p.get("report").expect("embedded RunReport");
                let totals =
                    report.get("totals").and_then(|t| t.get("cycles")).and_then(Json::as_u64);
                assert_eq!(totals, Some(single), "the report is the single-core summary");
                let batch = p
                    .get("curves")
                    .and_then(Json::as_arr)
                    .and_then(|cs| {
                        cs.iter()
                            .find(|c| c.get("sharding").and_then(Json::as_str) == Some("batch"))
                    })
                    .and_then(|c| c.get("cells"))
                    .and_then(Json::as_arr)
                    .expect("batch curve");
                let one = &batch[0];
                assert_eq!(get_u64(one, "cores"), 1);
                assert_eq!(get_u64(one, "frames"), 1);
                assert_eq!(get_u64(one, "makespan"), single, "N=1 is bit-identical");
                assert_eq!(get_f64(one, "contention_share"), 0.0);
                assert_eq!(get_u64(one, "contention_cycles"), 0);
                // The report also carries the scaling section.
                let sec = report.get("scaling").expect("scaling section attached");
                assert_eq!(sec.get("single_core_cycles").and_then(Json::as_u64), Some(single));
            }
        }
    }

    #[test]
    fn contention_share_grows_with_cores_and_mattson_holds_everywhere() {
        let j = tiny_grid();
        let n_nets = j.get("networks").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        assert_eq!(n_nets, 2, "two networks in the record");
        for net in 0..n_nets {
            for point in 0..2 {
                // Monotone contention on the batch curves (the headline
                // claim of SCALING.md).
                let cells = cells_of(&j, net, point, "batch");
                assert_eq!(cells.len(), SCALING_CORES.len());
                let shares: Vec<f64> =
                    cells.iter().map(|c| get_f64(c, "contention_share")).collect();
                for w in shares.windows(2) {
                    assert!(
                        w[1] >= w[0],
                        "batch contention share must grow with cores: {shares:?}"
                    );
                }
                assert_eq!(shares[0], 0.0, "one core never contends");
                assert!(*shares.last().expect("cells") > 0.0);
            }
        }
        // Mattson within 1% absolute in every cell of every curve.
        for net in j.get("networks").and_then(Json::as_arr).expect("networks") {
            for p in net.get("points").and_then(Json::as_arr).expect("points") {
                for c in p.get("curves").and_then(Json::as_arr).expect("curves") {
                    for cell in c.get("cells").and_then(Json::as_arr).expect("cells") {
                        let err = cell
                            .get("mattson")
                            .map(|m| get_f64(m, "abs_error"))
                            .expect("mattson section");
                        assert!(err < 0.01, "Mattson error {err} >= 1% absolute");
                        // The counterfactual can only help.
                        assert!(
                            get_f64(cell, "ideal_throughput_fpkc") + 1e-12
                                >= get_f64(cell, "throughput_fpkc")
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn retime_refuses_and_the_record_is_byte_identical() {
        let mut engine = lva_retime::RetimeEngine::with_gate(
            lva_core::RetimeOpt::On,
            lva_retime::CertGate::decided(Ok(())),
        );
        let with = scaling_grid_json_with(16, Some(4), 2, Some(&mut engine));
        let without = tiny_grid();
        assert_eq!(
            with.to_string_pretty(),
            without.to_string_pretty(),
            "--retime output must be byte-identical (full-sim fallback)"
        );
        assert_eq!(engine.refusal(), Some(lva_retime::CONTENTION_REFUSAL));
        assert!(engine.counters().refused_runs >= 1);
        assert_eq!(engine.counters().captures, 0, "no capture may happen under refusal");
    }

    #[test]
    fn scaling_markdown_is_pure_and_complete() {
        let j = tiny_grid();
        let md = scaling_markdown(&j);
        assert_eq!(md, scaling_markdown(&j), "renderer is pure");
        for needle in [
            "# Scale-out observatory",
            "## Scaling knees and recovery levers",
            "yolov3_tiny",
            "yolov3_20",
            "rvv2048x8/1MB",
            "rvv2048x8/4MB",
            "**batch sharding**",
            "**pipeline sharding**",
            "Mattson err",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // Round-trips through serialization (the committed-artifact path).
        let reparsed = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(scaling_markdown(&reparsed), md);
    }

    #[test]
    fn pipeline_curves_skip_core_counts_beyond_the_layer_count() {
        // The tiny grid caps every network at 4 layers, so the 8-core
        // pipeline cell must be absent while batch keeps the full ladder.
        let j = tiny_grid();
        let pipe = cells_of(&j, 0, 0, "pipeline");
        assert!(pipe.len() < SCALING_CORES.len());
        assert!(pipe.iter().all(|c| get_u64(c, "cores") <= 4));
        let batch = cells_of(&j, 0, 0, "batch");
        assert_eq!(batch.len(), SCALING_CORES.len());
        // Stall shares sum to at most 1 and include the contention key.
        for c in batch {
            let shares = c.get("stall_shares").expect("stall shares");
            let total: f64 =
                lva_isa::StallCause::ALL.iter().map(|&x| get_f64(shares, x.name())).sum();
            assert!(total <= 1.0 + 1e-9, "stall shares exceed core cycles: {total}");
            assert!(shares.get("contention").is_some());
        }
    }

    #[test]
    fn scaling_chrome_trace_is_renderable() {
        let t = scaling_chrome_trace(16, Some(4));
        assert_eq!(t.validate(), Ok(()));
        assert!(!t.is_empty());
        let text = t.to_json().to_string_pretty();
        for needle in ["core0", "bandwidth utilization", "queue depth"] {
            assert!(text.contains(needle), "timeline missing {needle}");
        }
    }
}
