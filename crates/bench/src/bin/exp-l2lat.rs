//! §VI-B caveat — "larger caches are beneficial, *given that their latency
//! remains low*". The paper's sweep pins the L2 latency at the 1 MB anchor
//! (12 cycles); this ablation re-runs the Fig. 7 cache sweep with a
//! CACTI-flavoured sqrt latency model (192 cycles at 256 MB) and shows how
//! much of the headline cache gain survives realistic latencies.

use lva_bench::*;
use lva_core::MachineConfig;
use lva_isa::Machine;
use lva_nn::network::estimate_arena_words;
use lva_nn::Network;
use lva_sim::{l2_latency_cycles, LatencyModel};
use lva_tensor::host_random;

fn run_with_latency(
    vlen: usize,
    l2: usize,
    model: LatencyModel,
    workload: &Workload,
    policy: ConvPolicy,
) -> u64 {
    let (specs, shape) = workload.model.build(workload.input_hw);
    let specs = match workload.layer_limit {
        Some(n) => specs[..n.min(specs.len())].to_vec(),
        None => specs,
    };
    let mut cfg = MachineConfig::rvv_gem5(vlen, 8, l2);
    cfg.mem.l2.hit_latency = l2_latency_cycles(l2, model);
    cfg.arena_mib = (estimate_arena_words(&specs, shape, &policy) * 4 / (1 << 20) + 32).max(64);
    let mut m = Machine::new(cfg);
    let mut net = Network::build(&mut m, &specs, shape, policy, 42);
    m.reset_timing();
    let image = host_random(shape.len(), 9);
    net.run(&mut m, &image).cycles
}

fn main() {
    let opts = Opts::parse(4, "L2 latency ablation: constant (paper) vs CACTI-scaled");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let vlen = 8192;
    let mut table = Table::new(
        format!("L2 sweep under both latency models, RVV {vlen}b, {}", workload.describe()),
        &[
            "l2",
            "latency_const",
            "cycles_const",
            "latency_scaled",
            "cycles_scaled",
            "scaled_gain_vs_1MB",
        ],
    );
    let mut base_scaled = None;
    for l2 in L2_SIZES {
        eprintln!(".. L2 = {}", lva_core::experiment::fmt_bytes(l2));
        let c_const = run_with_latency(vlen, l2, LatencyModel::Constant, &workload, policy);
        let c_scaled = run_with_latency(vlen, l2, LatencyModel::Scaled, &workload, policy);
        let b = *base_scaled.get_or_insert(c_scaled);
        table.row(vec![
            lva_core::experiment::fmt_bytes(l2),
            l2_latency_cycles(l2, LatencyModel::Constant).to_string(),
            fmt_cycles(c_const),
            l2_latency_cycles(l2, LatencyModel::Scaled).to_string(),
            fmt_cycles(c_scaled),
            fmt_speedup(b as f64 / c_scaled as f64),
        ]);
    }
    println!("\npaper assumes constant latency; the scaled column shows the cost of realism\n");
    emit(&table, "l2_latency_ablation", &opts);
}
