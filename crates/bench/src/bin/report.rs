//! Re-render `results/CODESIGN_REPORT.md` from an existing
//! `BENCH_whatif.json` — no simulation, just the deterministic markdown
//! renderer. Lets you tweak nothing and regenerate, or render a record
//! produced elsewhere (CI artifacts).
//!
//! Usage: `report [--in BENCH_whatif.json] [--out results/CODESIGN_REPORT.md]`

use lva_bench::{codesign_markdown, Json};

fn main() {
    let mut input = String::from("BENCH_whatif.json");
    let mut output = String::from("results/CODESIGN_REPORT.md");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--in" => input = args.next().expect("--in needs a file path"),
            "--out" => output = args.next().expect("--out needs a file path"),
            "--help" | "-h" => {
                eprintln!(
                    "Render the co-design advisor markdown from a BENCH_whatif.json.\n\nOptions:\n  --in FILE   input record (default BENCH_whatif.json)\n  --out FILE  output markdown (default results/CODESIGN_REPORT.md)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let text = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| panic!("cannot read {input}: {e} (run exp-whatif first)"));
    let j = Json::parse(&text).unwrap_or_else(|e| panic!("{input} is not valid JSON: {e:?}"));
    let md = codesign_markdown(&j);
    if let Some(dir) = std::path::Path::new(&output).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&output, md).unwrap_or_else(|e| panic!("cannot write {output}: {e}"));
    println!("[rendered {output} from {input}]");
}
