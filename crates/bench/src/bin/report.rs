//! Re-render a committed markdown report from an existing JSON record —
//! no simulation, just the deterministic renderer. Lets you regenerate a
//! report byte-for-byte, or render a record produced elsewhere (CI
//! artifacts).
//!
//! The record's tags select the renderer: `"tool": "lint-dataflow"`
//! records render the dataflow certifier report (`results/DATAFLOW.md`),
//! `"bench": "serving"` records render the serving load report
//! (`results/SERVING.md`), `"bench": "scaling"` records render the
//! scale-out report (`results/SCALING.md`); everything else is treated as
//! a `BENCH_whatif.json` co-design record (`results/CODESIGN_REPORT.md`).
//!
//! Usage: `report [--in BENCH_whatif.json] [--out results/…]`

use lva_bench::{codesign_markdown, scaling_markdown, serving_markdown, Json};
use lva_depgraph::dataflow_markdown;

fn main() {
    let mut input = String::from("BENCH_whatif.json");
    let mut output: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--in" => input = args.next().expect("--in needs a file path"),
            "--out" => output = Some(args.next().expect("--out needs a file path")),
            "--help" | "-h" => {
                eprintln!(
                    "Render a committed markdown report from its JSON record.\n\nOptions:\n  --in FILE   input record (default BENCH_whatif.json); a \"tool\":\n              \"lint-dataflow\" record renders the dataflow report, a\n              \"bench\": \"serving\" record the serving load report, a\n              \"bench\": \"scaling\" record the scale-out report\n  --out FILE  output markdown (default results/CODESIGN_REPORT.md,\n              results/DATAFLOW.md for lint-dataflow records,\n              results/SERVING.md for serving records, or\n              results/SCALING.md for scaling records)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let text = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        panic!("cannot read {input}: {e} (run exp-whatif or lint-dataflow first)")
    });
    let j = Json::parse(&text).unwrap_or_else(|e| panic!("{input} is not valid JSON: {e:?}"));
    let dataflow = j.get("tool").and_then(Json::as_str) == Some("lint-dataflow");
    let serving = j.get("bench").and_then(Json::as_str) == Some("serving");
    let scaling = j.get("bench").and_then(Json::as_str) == Some("scaling");
    let (md, default_out) = if dataflow {
        (dataflow_markdown(&j), "results/DATAFLOW.md")
    } else if serving {
        (serving_markdown(&j), "results/SERVING.md")
    } else if scaling {
        (scaling_markdown(&j), "results/SCALING.md")
    } else {
        (codesign_markdown(&j), "results/CODESIGN_REPORT.md")
    };
    let output = output.unwrap_or_else(|| default_out.to_string());
    if let Some(dir) = std::path::Path::new(&output).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&output, md).unwrap_or_else(|e| panic!("cannot write {output}: {e}"));
    println!("[rendered {output} from {input}]");
}
