//! Figure 6 — impact of the vector length on RISC-V Vector @ gem5 for the
//! first 20 layers of YOLOv3, at a constant 1 MB L2 and 8 vector lanes.
//!
//! Paper result: performance improves ~2.5x from 512-bit to 16384-bit
//! vector lengths and effectively saturates beyond 8192 bits, because the
//! L2 miss rate climbs with the vector length (Table III).

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Fig. 6: RVV vector-length sweep, YOLOv3 first 20 layers");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());

    let mut table = Table::new(
        format!("Fig. 6 — vector length vs performance, {}", workload.describe()),
        &["vlen_bits", "cycles", "speedup_vs_512", "avg_vlen_bits", "l2_miss_%"],
    );
    let specs: Vec<(String, Experiment)> = RVV_VLENS
        .iter()
        .map(|&vlen| {
            let e = Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: 1 << 20 },
                policy,
                workload,
            );
            (format!("vlen{vlen}"), e)
        })
        .collect();
    let mut base = None;
    for (vlen, r) in RVV_VLENS.iter().zip(run_sweep(&specs, opts.jobs, false, false)) {
        let s = r.summary;
        let base_cycles = *base.get_or_insert(s.cycles);
        table.row(vec![
            vlen.to_string(),
            fmt_cycles(s.cycles),
            fmt_speedup(base_cycles as f64 / s.cycles as f64),
            format!("{:.1}", s.avg_vlen_bits),
            format!("{:.1}", 100.0 * s.l2_miss_rate),
        ]);
    }
    println!("\npaper: 2.5x from 512b to 16384b, saturating beyond 8192b\n");
    emit(&table, "fig6_rvv_vlen", &opts);
}
