//! §II-C — "no one-size-fits-all convolution implementation exists".
//!
//! The paper motivates algorithm selection by kernel size and stride:
//! Winograd for 3x3 stride-1, im2col+GEMM as the general workhorse, Direct
//! for 1x1. This experiment runs one representative layer of each shape
//! through all three algorithms on the A64FX profile and shows which wins
//! where (Winograd only applies to 3x3).

use lva_bench::*;
use lva_core::MachineConfig;
use lva_fft::{conv_fft_vla, FftConvPlan};
use lva_isa::Machine;
use lva_kernels::gemm::GemmWorkspace;
use lva_kernels::{conv_direct_vec, conv_im2col_gemm, ConvParams};
use lva_tensor::{Matrix, Shape, Tensor};
use lva_winograd::{winograd_conv_vla, WinogradPlan};

fn machine_for(p: &ConvParams) -> Machine {
    let (mm, nn, kk) = p.gemm_mnk();
    let mut cfg = MachineConfig::a64fx();
    cfg.arena_mib = ((p.in_c * p.in_h * p.in_w + mm * kk * 9 + kk * nn + mm * nn) * 8 / (1 << 20)
        + 64)
        .max(128);
    Machine::new(cfg)
}

fn gemm_cycles(p: &ConvParams) -> u64 {
    let mut m = machine_for(p);
    let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
    let (mm, nn, kk) = p.gemm_mnk();
    let w = Matrix::random(&mut m, mm, kk, 2);
    let col = m.mem.alloc(p.workspace_words().max(1));
    let out = m.mem.alloc(mm * nn);
    let ws = GemmWorkspace::alloc(&mut m, BlockSizes::TABLE2_BEST);
    m.reset_timing();
    conv_im2col_gemm(&mut m, GemmVariant::opt6(), p, &img, w.buf, col, out, Some(&ws));
    m.cycles()
}

fn direct_cycles(p: &ConvParams) -> u64 {
    let mut m = machine_for(p);
    let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
    let (mm, nn, kk) = p.gemm_mnk();
    let w = Matrix::random(&mut m, mm, kk, 2);
    let out = m.mem.alloc(mm * nn);
    m.reset_timing();
    conv_direct_vec(&mut m, p, &img, w.buf, out);
    m.cycles()
}

fn winograd_cycles(p: &ConvParams) -> Option<u64> {
    if p.k != 3 {
        return None;
    }
    let mut m = machine_for(p);
    let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
    let (mm, nn, kk) = p.gemm_mnk();
    let w = Matrix::random(&mut m, mm, kk, 2);
    let out = m.mem.alloc(mm * nn);
    let mut plan = WinogradPlan::new(&mut m, *p, w.buf);
    m.reset_timing();
    winograd_conv_vla(&mut m, &mut plan, &img, out);
    Some(m.cycles())
}

/// FFT convolution runs on the SVE-style profile (gathers); report it on
/// the same A64FX machine.
fn fft_cycles(p: &ConvParams) -> u64 {
    let grid = lva_fft::host::fft_grid(p);
    let planes = 2 * (p.in_c + p.out_c * p.in_c + 2) * grid * grid;
    let mut cfg = lva_core::MachineConfig::a64fx();
    cfg.arena_mib =
        ((p.in_c * p.in_h * p.in_w + p.out_c * p.in_c * p.k * p.k + planes) * 8 / (1 << 20) + 64)
            .max(128);
    let mut m = Machine::new(cfg);
    let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
    let (mm, nn, kk) = p.gemm_mnk();
    let w = Matrix::random(&mut m, mm, kk, 2);
    let out = m.mem.alloc(mm * nn);
    let mut plan = FftConvPlan::new(&mut m, *p, w.buf);
    m.reset_timing();
    conv_fft_vla(&mut m, &mut plan, &img, out);
    m.cycles()
}

fn main() {
    let opts = Opts::parse(4, "§II-C: per-algorithm comparison by layer shape");
    let base = (160 / opts.div).max(8);
    let layers = [
        (
            "1x1 s1",
            ConvParams {
                in_c: 256,
                in_h: base / 2,
                in_w: base / 2,
                out_c: 128,
                k: 1,
                stride: 1,
                pad: 0,
            },
        ),
        (
            "3x3 s1",
            ConvParams {
                in_c: 128,
                in_h: base / 2,
                in_w: base / 2,
                out_c: 128,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ),
        (
            "3x3 s2",
            ConvParams { in_c: 64, in_h: base, in_w: base, out_c: 128, k: 3, stride: 2, pad: 1 },
        ),
        (
            "5x5 s1",
            ConvParams { in_c: 32, in_h: base, in_w: base, out_c: 64, k: 5, stride: 1, pad: 2 },
        ),
        (
            "11x11 s1",
            ConvParams { in_c: 16, in_h: base, in_w: base, out_c: 32, k: 11, stride: 1, pad: 5 },
        ),
    ];
    let mut table = Table::new(
        "Convolution algorithm comparison on A64FX (cycles; best in context)",
        &["layer", "im2col+GEMM", "direct", "winograd", "fft", "winner"],
    );
    for (name, p) in layers {
        eprintln!(".. {name}: {p:?}");
        let g = gemm_cycles(&p);
        let d = direct_cycles(&p);
        let w = winograd_cycles(&p);
        let f = fft_cycles(&p);
        let mut candidates = vec![("im2col+GEMM", g), ("direct", d), ("fft", f)];
        if let Some(w) = w {
            candidates.push(("winograd", w));
        }
        let winner = candidates.iter().min_by_key(|&&(_, c)| c).unwrap().0;
        table.row(vec![
            name.into(),
            fmt_cycles(g),
            fmt_cycles(d),
            w.map_or_else(|| "n/a".into(), fmt_cycles),
            fmt_cycles(f),
            winner.into(),
        ]);
    }
    println!(
        "\npaper §II-C: Winograd for 3x3, Direct for 1x1, GEMM as the general case.\n\
         note: on the CHW layout used here the direct kernel's channel-major\n\
         input walk defeats the stream prefetcher, so the packed GEMM keeps\n\
         winning even at 1x1 — the 1x1 GEMM already skips im2col entirely,\n\
         which is what Darknet's 'direct for 1x1' fast path amounts to.\n\
         FFT overhead falls steeply with kernel size (watch the fft column\n\
         across rows) but its crossover lies beyond CNN-typical kernels —\n\
         consistent with none of the paper's layers choosing it.\n"
    );
    emit(&table, "algo_selection", &opts);
}
