//! Developer probe: per-phase cycle breakdown for one layer/workload.
//! Not part of the paper reproduction; used to diagnose the timing model.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "probe: phase breakdown of one workload");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    for (name, policy) in [
        ("gemm_opt6", ConvPolicy::gemm_only(GemmVariant::opt6())),
        ("winograd", {
            let mut p = ConvPolicy::winograd_default(GemmVariant::opt6());
            p.winograd_stride2 = true;
            p
        }),
    ] {
        let s = Experiment::new(HwTarget::A64fx, policy, workload).run();
        println!("--- {name}: {} cycles total ---", fmt_cycles(s.cycles));
        for (phase, cyc) in s.report.phases.breakdown() {
            println!(
                "  {:<16} {:>15}  ({:.1}%)",
                phase.name(),
                fmt_cycles(cyc),
                100.0 * cyc as f64 / s.cycles as f64
            );
        }
        println!(
            "  vec instrs: {}, mem instrs: {}, L1 miss {:.1}%, L2 miss {:.1}%",
            s.report.vpu.vec_instrs,
            s.report.vpu.vec_mem_instrs,
            100.0 * s.report.mem.l1.miss_rate(),
            100.0 * s.l2_miss_rate
        );
        println!(
            "  L1: acc {} miss {} pf_fills {} pf_hits {}",
            s.report.mem.l1.accesses,
            s.report.mem.l1.misses,
            s.report.mem.l1.prefetch_fills,
            s.report.mem.l1.prefetch_hits
        );
        for l in &s.report.layers {
            if l.mnk.is_some() {
                println!(
                    "    [{:>3}] {:<16} {:>14} cycles  {:?}",
                    l.index,
                    l.desc,
                    fmt_cycles(l.cycles),
                    l.algo
                );
            }
        }
    }
    // No emit() on this path; flush any --trace sink explicitly.
    lva_trace::flush();
}
