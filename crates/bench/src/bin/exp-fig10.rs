//! Figure 10 — impact of vector length and L2 size with Winograd on
//! ARM-SVE @ gem5 for VGG16 (all 13 convolutional layers are 3x3 stride-1,
//! so every one of them runs Winograd).
//!
//! Paper results: ~1.4x from 512 to 2048 bits at 1 MB; ~1.4x from 1 MB to
//! **64 MB** and flat beyond (Winograd has smaller cache requirements than
//! im2col+GEMM); and Winograd over im2col+GEMM at 1 MB is 1.4x / 1.5x /
//! 1.3x for 512 / 1024 / 2048-bit vectors.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Fig. 10: Winograd VL x L2 sweep, VGG16");
    let workload = Workload {
        model: ModelId::Vgg16,
        input_hw: scaled_input(ModelId::Vgg16, opts.div),
        layer_limit: opts.layers,
    };
    let wino = ConvPolicy::winograd_default(GemmVariant::opt6());
    let gemm = ConvPolicy::gemm_only(GemmVariant::opt6());

    let mut table = Table::new(
        format!("Fig. 10 — Winograd VL x L2 on SVE @ gem5, {}", workload.describe()),
        &["vlen_bits", "l2", "cycles", "speedup_vs_512b_1MB", "l2_miss_%"],
    );
    let mut specs: Vec<(String, Experiment)> = Vec::new();
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let e = Experiment::new(
                HwTarget::SveGem5 { vlen_bits: vlen, l2_bytes: l2 },
                wino,
                workload,
            );
            specs.push((format!("vlen{vlen}_l2_{}", lva_core::experiment::fmt_bytes(l2)), e));
        }
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let mut runs = runs.into_iter();
    let mut base = None;
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let s = runs.next().expect("one run per cell").summary;
            let b = *base.get_or_insert(s.cycles);
            table.row(vec![
                vlen.to_string(),
                lva_core::experiment::fmt_bytes(l2),
                fmt_cycles(s.cycles),
                fmt_speedup(b as f64 / s.cycles as f64),
                format!("{:.1}", 100.0 * s.l2_miss_rate),
            ]);
        }
    }
    println!("\npaper: 1.4x VL; 1.4x cache up to 64MB then flat\n");
    emit(&table, "fig10_winograd_vgg16", &opts);

    // Winograd vs im2col+GEMM per vector length at 1 MB (§VII-B end).
    let mut cmp = Table::new(
        "VGG16: Winograd vs im2col+GEMM at 1MB L2 per vector length",
        &["vlen_bits", "winograd_cycles", "gemm_cycles", "speedup", "paper"],
    );
    let paper = ["1.4x", "1.5x", "1.3x"];
    let cmp_specs: Vec<(String, Experiment)> = SVE_VLENS
        .iter()
        .flat_map(|&vlen| {
            let hw = HwTarget::SveGem5 { vlen_bits: vlen, l2_bytes: 1 << 20 };
            [
                (format!("wino_vlen{vlen}"), Experiment::new(hw, wino, workload)),
                (format!("gemm_vlen{vlen}"), Experiment::new(hw, gemm, workload)),
            ]
        })
        .collect();
    let cmp_runs = run_sweep(&cmp_specs, opts.jobs, false, false);
    for (i, vlen) in SVE_VLENS.into_iter().enumerate() {
        let w = &cmp_runs[2 * i].summary;
        let g = &cmp_runs[2 * i + 1].summary;
        cmp.row(vec![
            vlen.to_string(),
            fmt_cycles(w.cycles),
            fmt_cycles(g.cycles),
            fmt_speedup(g.cycles as f64 / w.cycles as f64),
            paper[i].into(),
        ]);
    }
    emit(&cmp, "fig10_winograd_vs_gemm", &opts);
}
