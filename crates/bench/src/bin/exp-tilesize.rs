//! §IV-B — why the paper keeps 8x8 tiles: "Vectorizing the transformations
//! with longer vector lengths would require a larger tile size, however, in
//! this case, the numerical accuracy would drop."
//!
//! This ablation quantifies that claim with the Cook–Toom generator:
//! F(2,3), F(4,3), F(6,3) and larger output tiles are generated from
//! progressively more interpolation points, and the worst-case relative
//! error of a 2D convolution against the direct f64-style reference is
//! measured. The transform coefficient magnitudes (the condition-number
//! proxy) grow rapidly with the tile, which is what destroys accuracy.

use lva_bench::*;
use lva_core::report::Table as RTable;
use lva_tensor::host_random;
use lva_winograd::{Rat, WinogradTransform};

/// Max |coefficient| across the three transform matrices.
fn max_coeff(t: &WinogradTransform) -> f32 {
    t.at.iter().chain(&t.g).chain(&t.bt).fold(0.0f32, |a, &b| a.max(b.abs()))
}

/// Worst relative error of the 2D tile convolution over `trials` random
/// tiles.
fn worst_rel_error(t: &WinogradTransform, trials: usize) -> f64 {
    let (n, m, r) = (t.n, t.m, t.r);
    let mut worst = 0.0f64;
    for trial in 0..trials {
        let d = host_random(n * n, 1000 + trial as u64);
        let g = host_random(r * r, 2000 + trial as u64);
        let u = t.transform_filter_2d(&g);
        let v = t.transform_data_2d(&d);
        let prod: Vec<f32> = u.iter().zip(&v).map(|(a, b)| a * b).collect();
        let y = t.transform_output_2d(&prod);
        for oy in 0..m {
            for ox in 0..m {
                let mut direct = 0.0f64;
                for ky in 0..r {
                    for kx in 0..r {
                        direct += d[(oy + ky) * n + ox + kx] as f64 * g[ky * r + kx] as f64;
                    }
                }
                let got = y[oy * m + ox] as f64;
                let rel = (got - direct).abs() / direct.abs().max(1.0);
                worst = worst.max(rel);
            }
        }
    }
    worst
}

fn main() {
    let opts = Opts::parse(1, "Winograd tile-size vs numerical accuracy ablation");
    // Interpolation points in the order good generators add them.
    let pts = [
        Rat::int(0),
        Rat::int(1),
        Rat::int(-1),
        Rat::int(2),
        Rat::int(-2),
        Rat::new(1, 2),
        Rat::new(-1, 2),
        Rat::int(3),
        Rat::int(-3),
        Rat::new(1, 3),
        Rat::new(-1, 3),
        Rat::int(4),
    ];
    let mut table = RTable::new(
        "Winograd F(m,3): tile size vs flop reduction vs worst relative error",
        &["variant", "tile", "mult_reduction", "max_coeff", "worst_rel_err"],
    );
    for m_out in [2usize, 4, 6, 8, 10] {
        let n = m_out + 2;
        let t = WinogradTransform::generate(m_out, 3, &pts[..n - 1]);
        let err = worst_rel_error(&t, 40);
        table.row(vec![
            format!("F({m_out},3)"),
            format!("{n}x{n}"),
            format!("{:.2}x", t.mult_reduction()),
            format!("{:.1}", max_coeff(&t)),
            format!("{err:.2e}"),
        ]);
    }
    println!("paper §IV-B: 8x8 tiles (F(6,3)) are the accuracy sweet spot;\nlarger tiles would exploit longer vectors but the error explodes —\nhence the inter-tile-across-channels scheme instead.\n");
    emit(&table, "tilesize_accuracy", &opts);
}
