//! §VII-A — Winograd vs optimized im2col+GEMM on the A64FX profile.
//!
//! Paper results (weight transform excluded — performed offline):
//! * VGG16 (all convs are 3x3 stride-1): Winograd is 1.5x faster overall;
//! * YOLOv3 (38 of 75 convs are 3x3): 1.35x faster overall;
//! * the 3x3 stride-1 layers alone: 2.4x faster;
//! * the 3x3 stride-2 layers: 1.4x *slower* with Winograd;
//! * 1x1 layers default to im2col+GEMM either way.

use lva_bench::*;
use lva_nn::ConvAlgo;

/// Sum cycles of conv layers selected by a predicate.
fn conv_cycles(s: &RunSummary, pred: impl Fn(&lva_nn::LayerReport) -> bool) -> u64 {
    s.report.layers.iter().filter(|l| l.mnk.is_some() && pred(l)).map(|l| l.cycles).sum()
}

fn main() {
    let opts = Opts::parse(4, "§VII-A: Winograd vs im2col+GEMM on A64FX");
    let mut table = Table::new(
        "Winograd vs optimized im2col+GEMM on A64FX (weight transform offline)",
        &["workload", "comparison", "measured", "paper"],
    );

    let models = [ModelId::Vgg16, ModelId::Yolov3];
    let specs: Vec<(String, Experiment)> = models
        .iter()
        .flat_map(|&model| {
            let workload = Workload {
                model,
                input_hw: scaled_input(model, opts.div),
                layer_limit: opts.layers,
            };
            // Winograd everywhere it applies, including stride-2 (the paper
            // measured stride-2 separately before excluding it from §VII-B).
            let mut pol = ConvPolicy::winograd_default(GemmVariant::opt6());
            pol.winograd_stride2 = true;
            [
                (
                    format!("gemm_{}", model.name()),
                    Experiment::new(
                        HwTarget::A64fx,
                        ConvPolicy::gemm_only(GemmVariant::opt6()),
                        workload,
                    ),
                ),
                (format!("wino_{}", model.name()), Experiment::new(HwTarget::A64fx, pol, workload)),
            ]
        })
        .collect();
    let runs = run_sweep(&specs, opts.jobs, false, false);
    for (i, model) in models.into_iter().enumerate() {
        let workload =
            Workload { model, input_hw: scaled_input(model, opts.div), layer_limit: opts.layers };
        let gemm = &runs[2 * i].summary;
        let wino = &runs[2 * i + 1].summary;

        // Whole-network conv time (the paper's default policy: stride-1
        // Winograd only -> charge stride-2 layers at their GEMM cost).
        let is3x3s1 = |l: &lva_nn::LayerReport| l.desc.contains("3x3/1");
        let is3x3s2 = |l: &lva_nn::LayerReport| l.desc.contains("3x3/2");
        let g_all = conv_cycles(gemm, |_| true);
        let w_s1 = conv_cycles(wino, is3x3s1);
        let g_s1 = conv_cycles(gemm, is3x3s1);
        let w_s2 = conv_cycles(wino, is3x3s2);
        let g_s2 = conv_cycles(gemm, is3x3s2);
        let other_g = g_all - g_s1 - g_s2;
        // Default policy total: Winograd s1 + GEMM s2 + GEMM rest.
        let default_total = w_s1 + g_s2 + other_g;

        let (paper_net, name) = match model {
            ModelId::Vgg16 => ("1.5x", "VGG16"),
            ModelId::Yolov3 => ("1.35x", "YOLOv3"),
            _ => ("-", "other"),
        };
        table.row(vec![
            workload.describe(),
            format!("{name} conv total: winograd policy vs im2col+GEMM"),
            fmt_speedup(g_all as f64 / default_total as f64),
            paper_net.into(),
        ]);
        table.row(vec![
            workload.describe(),
            "3x3 stride-1 layers: winograd vs gemm".into(),
            fmt_speedup(g_s1 as f64 / w_s1 as f64),
            "2.4x".into(),
        ]);
        if g_s2 > 0 {
            table.row(vec![
                workload.describe(),
                "3x3 stride-2 layers: winograd vs gemm".into(),
                fmt_speedup(g_s2 as f64 / w_s2 as f64),
                "0.71x (1.4x slower)".into(),
            ]);
        }
        // Count algorithm selection for the record.
        let wino_count =
            wino.report.layers.iter().filter(|l| l.algo == Some(ConvAlgo::Winograd)).count();
        eprintln!("   [{name}: {wino_count} layers ran Winograd]");
    }
    emit(&table, "winograd_a64fx", &opts);
}
