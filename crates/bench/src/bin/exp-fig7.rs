//! Figure 7 — impact of the L2 cache size (1 MB .. 256 MB) for each vector
//! length on RISC-V Vector @ gem5, YOLOv3 first 20 layers, 8 lanes.
//!
//! Paper result: growing the L2 from 1 MB to 256 MB improves performance by
//! ~1.5x for vector lengths up to 4096 bits and by 1.7x-1.9x for the
//! 8192/16384-bit lengths; with a 256 MB L2, 16384-bit is only ~5% faster
//! than 8192-bit and both miss rates drop to ~2.5%.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Fig. 7: RVV L2-size sweep per vector length");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut table = Table::new(
        format!("Fig. 7 — L2 size vs performance per VL, {}", workload.describe()),
        &["vlen_bits", "l2", "cycles", "speedup_vs_1MB", "l2_miss_%"],
    );
    let mut specs: Vec<(String, Experiment)> = Vec::new();
    for vlen in RVV_VLENS {
        for l2 in L2_SIZES {
            let e = Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 },
                policy,
                workload,
            );
            specs.push((format!("vlen{vlen}_l2_{}", lva_core::experiment::fmt_bytes(l2)), e));
        }
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let mut runs = runs.into_iter();
    for vlen in RVV_VLENS {
        let mut base = None;
        for l2 in L2_SIZES {
            let s = runs.next().expect("one run per cell").summary;
            let b = *base.get_or_insert(s.cycles);
            table.row(vec![
                vlen.to_string(),
                lva_core::experiment::fmt_bytes(l2),
                fmt_cycles(s.cycles),
                fmt_speedup(b as f64 / s.cycles as f64),
                format!("{:.1}", 100.0 * s.l2_miss_rate),
            ]);
        }
    }
    println!("\npaper: 1.5x (<=4096b), 1.7-1.9x (8192/16384b) from 1MB to 256MB\n");
    emit(&table, "fig7_rvv_l2", &opts);
}
