//! Extension — the request-level serving observatory.
//!
//! The paper evaluates single-inference latency; production deployments
//! face *request streams*: queueing, batching, tenant interference, and
//! tail-latency SLOs. This experiment drives the `lva-serve` deterministic
//! discrete-event batching tier (DESIGN.md §16) across the Table II-style
//! hardware ladder x offered-load grid and reports per-tenant latency
//! histograms, queue telemetry, and an SLO-aware design recommendation
//! from `lva-whatif`.
//!
//! Outputs, all deterministic (simulated cycles are the only clock; no
//! timestamps, no host data; byte-identical for any `--jobs`):
//!
//! * `results/serving_grid.csv` (and `.json` with `--json`) — the flat
//!   per-cell table;
//! * `BENCH_serving.json` — the machine-readable grid record (per-cell
//!   latency percentiles, queue stats, per-tenant SLO verdicts, and the
//!   cheapest-design-meeting-SLO recommendation), at the repo root next
//!   to `BENCH_headline.json` / `BENCH_energy.json`;
//! * `results/SERVING.md` — the human-readable load report;
//! * `--chrome FILE` — a Perfetto-loadable request timeline of the knee
//!   cell (per-request spans plus queue-depth / batch-size counter
//!   tracks) on the reference design point.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(
        8,
        "Serving observatory: latency/queue/SLO report over the batching inference tier",
    );
    // --retime: ladder calibration through the retime engine (one capture
    // per tenant stream, re-timed per rung); output is bit-identical.
    let mut engine = retime_engine(&opts);
    let j = serving_grid_json_with(opts.div, opts.layers, opts.jobs, engine.as_mut());
    log_retime(engine.as_ref());

    let mut table = Table::new(
        "Serving tier under load: latency percentiles and queue telemetry".to_string(),
        &["point", "load", "p50_ms", "p99_ms", "p99.9_ms", "miss_%", "shed", "util", "avg_batch"],
    );
    let f = |p: &Json, k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let u = |p: &Json, k: &str| p.get(k).and_then(Json::as_u64).unwrap_or(0);
    for p in j.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
        for l in p.get("loads").and_then(Json::as_arr).unwrap_or(&[]) {
            let (o, q) = (l.get("overall"), l.get("queue"));
            let (o, q) = (o.unwrap_or(&Json::Null), q.unwrap_or(&Json::Null));
            table.row(vec![
                name.to_string(),
                format!("{:.2}x", f(l, "intensity")),
                format!("{:.3}", f(o, "p50_ms")),
                format!("{:.3}", f(o, "p99_ms")),
                format!("{:.3}", f(o, "p999_ms")),
                format!("{:.2}", 100.0 * f(o, "miss_frac")),
                u(o, "shed").to_string(),
                format!("{:.2}", f(q, "utilization")),
                format!("{:.2}", f(q, "avg_batch")),
            ]);
        }
    }
    if let Some(rec) = j.get("slo_recommendation") {
        let pick = rec
            .get("recommended")
            .and_then(|r| r.get("point"))
            .and_then(Json::as_str)
            .unwrap_or("<none>");
        println!(
            "SLO p99 <= {:.3} ms at the knee: cheapest meeting design {pick}{}",
            f(rec, "target_p99_ms"),
            if rec.get("next_cheaper_misses").is_some() {
                " (next-cheaper rung misses)"
            } else {
                ""
            },
        );
    }

    let mut body = j.to_string_pretty();
    body.push('\n');
    match std::fs::write("BENCH_serving.json", body) {
        Ok(()) => println!("[saved BENCH_serving.json]"),
        Err(e) => eprintln!("could not save BENCH_serving.json: {e}"),
    }

    let md = serving_markdown(&j);
    let path = std::path::Path::new("results").join("SERVING.md");
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, md));
    match write {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }

    // --chrome: replay the knee cell on the reference design point with
    // per-request lifecycle spans and queue-depth / batch-size counters.
    if let Some(path) = &opts.chrome {
        eprintln!(".. knee-cell request timeline [serving]");
        let trace = knee_chrome_trace(opts.div, opts.layers, opts.jobs);
        match trace.save(path) {
            Ok(()) => println!("[saved {path} ({} events)]", trace.len()),
            Err(e) => eprintln!("could not save {path}: {e}"),
        }
    }

    emit(&table, "serving_grid", &opts);
}
