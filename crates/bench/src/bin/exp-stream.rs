//! Extension — streaming inference: cold-start vs steady-state frames.
//!
//! §VI's methodology excludes setup "as this is a constant overhead, not
//! incurred when continuously running inference over a stream of images".
//! This experiment runs a stream of frames on one machine (weights stay
//! cache-resident between frames) and reports how much the steady state
//! gains over the first, cold frame — and how that gap grows with cache
//! capacity (a bigger L2 retains more of the network between frames).

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Streaming inference: cold vs steady-state frames");
    let workload = Workload {
        model: ModelId::Yolov3Tiny,
        input_hw: scaled_input(ModelId::Yolov3Tiny, opts.div),
        layer_limit: opts.layers,
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut table = Table::new(
        format!("Cold vs steady-state frames, {}", workload.describe()),
        &["l2", "frame1_cycles", "frame4_cycles", "steady_gain", "steady_l2_miss_%"],
    );
    for l2 in [1usize << 20, 16 << 20, 256 << 20] {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 4096, lanes: 8, l2_bytes: l2 },
            policy,
            workload,
        );
        eprintln!(".. streaming 4 frames at L2={}", lva_core::experiment::fmt_bytes(l2));
        let s = e.run_stream(4);
        table.row(vec![
            lva_core::experiment::fmt_bytes(l2),
            fmt_cycles(s.cold_cycles()),
            fmt_cycles(s.steady_cycles()),
            fmt_speedup(s.cold_cycles() as f64 / s.steady_cycles() as f64),
            format!("{:.1}", 100.0 * s.steady.l2_miss_rate),
        ]);
    }
    emit(&table, "stream_cold_vs_steady", &opts);
}
