//! Table II — relative performance of the BLIS-like optimized 6-loop GEMM
//! versus the optimized 3-loop GEMM on RISC-V Vector @ gem5 (YOLOv3 first 4
//! layers, 1 MB L2, 8 lanes), over the paper's six block-size choices.
//!
//! Paper result: the 6-loop implementation never wins on RVV — normalized
//! performance 0.90..0.98, best at blocks 16x512x128 — because the
//! decoupled VPU reads the L2 directly (L1 blocking buys nothing) and RVV
//! has no prefetch instructions to hide the packing latency (§VI-A).

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Table II: 6-loop vs 3-loop block-size sweep on RVV");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(4)),
    };
    let hw = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };

    let mut specs: Vec<(String, Experiment)> = vec![(
        "opt3_reference".to_string(),
        Experiment::new(hw, ConvPolicy::gemm_only(GemmVariant::opt3()), workload),
    )];
    for blocks in BlockSizes::TABLE2_SWEEP {
        let e = Experiment::new(
            hw,
            ConvPolicy::gemm_only(GemmVariant::Opt6 { unroll: 16, blocks }),
            workload,
        );
        specs.push((format!("opt6_{}x{}x{}", blocks.m, blocks.n, blocks.k), e));
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let opt3 = &runs[0].summary;

    let paper = ["0.90", "0.95", "0.98", "0.96", "0.97", "0.95"];
    let mut table = Table::new(
        format!("Table II — 6-loop vs 3-loop on RVV, {}", workload.describe()),
        &["blockM x blockN x blockK", "cycles_6loop", "normalized_perf_vs_3loop", "paper"],
    );
    for (i, blocks) in BlockSizes::TABLE2_SWEEP.into_iter().enumerate() {
        let s = &runs[i + 1].summary;
        table.row(vec![
            format!("{}x{}x{}", blocks.m, blocks.n, blocks.k),
            fmt_cycles(s.cycles),
            format!("{:.2}", opt3.cycles as f64 / s.cycles as f64),
            paper[i].to_string(),
        ]);
    }
    println!(
        "\n3-loop reference: {} cycles. paper: 6-loop at best 0.98 of 3-loop on RVV\n",
        fmt_cycles(opt3.cycles)
    );
    emit(&table, "table2_blocksizes", &opts);
}
