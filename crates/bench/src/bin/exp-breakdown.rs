//! §II-B — execution-time breakdown of CNN inference kernels.
//!
//! The paper profiles YOLOv3 on A64FX and finds the convolutional layer
//! dominates, with GEMM consuming 93.4% of the computation time (setup
//! excluded). This binary reproduces the breakdown from the simulator's
//! kernel-phase attribution. The two builds are independent design points,
//! so `--jobs 2` runs them concurrently with identical output.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "§II-B: kernel execution-time breakdown");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: opts.layers,
    };
    // The §II-B profile is the un-tuned Darknet build: the naive GEMM.
    let specs: Vec<(String, Experiment)> = [
        ("naive darknet build (as profiled in §II-B)", ConvPolicy::gemm_only(GemmVariant::Naive)),
        ("optimized 6-loop build", ConvPolicy::gemm_only(GemmVariant::opt6())),
    ]
    .into_iter()
    .map(|(name, policy)| (name.to_string(), Experiment::new(HwTarget::A64fx, policy, workload)))
    .collect();
    let results = run_sweep(&specs, opts.jobs, false, false);
    for ((name, _), r) in specs.iter().zip(&results) {
        let s = &r.summary;
        let mut table = Table::new(
            format!("Kernel breakdown — {name}, {}", workload.describe()),
            &["kernel", "cycles", "share_%"],
        );
        for (phase, cyc) in s.report.phases.breakdown() {
            table.row(vec![
                phase.name().into(),
                fmt_cycles(cyc),
                format!("{:.1}", 100.0 * cyc as f64 / s.cycles as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper: GEMM = 93.4% of computation time in the profiled build");
    // No emit() on this path; flush any --trace sink explicitly.
    lva_trace::flush();
}
