//! Table III — average consumed vector length and L2 cache miss rate per
//! configured vector length, RISC-V Vector @ gem5, YOLOv3 first 20 layers,
//! 1 MB L2, 8 lanes.
//!
//! Paper result: the configured length is almost fully consumed (tail
//! effects only), while the L2 miss rate climbs from 32% (512-bit) to 79%
//! (16384-bit) — the mechanism behind Fig. 6's saturation. Note that at
//! reduced input scale (`--div`) the deepest layers' rows are shorter than
//! the longest vectors, so the consumed average drops below the paper's
//! values; run with `--div 1` for paper-size tails.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Table III: consumed vector length and L2 miss rate on RVV");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut table = Table::new(
        format!("Table III — avg consumed VL and L2 miss rate, {}", workload.describe()),
        &["vlen_bits", "avg_consumed_vlen_bits", "l2_miss_%", "paper_l2_miss_%"],
    );
    let paper_miss = [32.0, 36.0, 39.0, 42.0, 61.0, 79.0];
    let specs: Vec<(String, Experiment)> = RVV_VLENS
        .iter()
        .map(|&vlen| {
            let e = Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: 1 << 20 },
                policy,
                workload,
            );
            (format!("vlen{vlen}"), e)
        })
        .collect();
    let runs = run_sweep(&specs, opts.jobs, false, false);
    for (i, (vlen, r)) in RVV_VLENS.into_iter().zip(runs).enumerate() {
        let s = r.summary;
        table.row(vec![
            vlen.to_string(),
            format!("{:.1}", s.avg_vlen_bits),
            format!("{:.1}", 100.0 * s.l2_miss_rate),
            format!("{:.0}", paper_miss[i]),
        ]);
    }
    emit(&table, "table3_avg_vl_miss", &opts);
}
