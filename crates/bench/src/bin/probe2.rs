//! Developer probe: one standalone conv layer, GEMM vs Winograd, with
//! phase breakdown. Usage: `probe2 <ic> <oc> <hw> <stride> [sve_vlen_bits]`
//! (5th arg selects SVE@gem5 with that vector length; default A64FX)

use lva_core::MachineConfig;
use lva_isa::Machine;
use lva_kernels::gemm::GemmWorkspace;
use lva_kernels::{conv_im2col_gemm, ConvParams, GemmVariant};
use lva_tensor::{Matrix, Shape, Tensor};
use lva_winograd::{winograd_conv_vla, WinogradPlan};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("usage: probe2 ic oc hw stride"))
        .collect();
    let (ic, oc, hw, stride) = (
        args.first().copied().unwrap_or(256),
        args.get(1).copied().unwrap_or(256),
        args.get(2).copied().unwrap_or(40),
        args.get(3).copied().unwrap_or(1),
    );
    let sve = args.get(4).copied();
    let p = ConvParams { in_c: ic, in_h: hw, in_w: hw, out_c: oc, k: 3, stride, pad: 1 };
    let (mm, nn, kk) = p.gemm_mnk();
    println!(
        "layer: ic={ic} oc={oc} {hw}x{hw} s{stride}  M={mm} N={nn} K={kk} flops={}",
        p.flops()
    );

    // GEMM path.
    let mut cfg = match sve {
        Some(vlen) => MachineConfig::sve_gem5(vlen, 1 << 20),
        None => MachineConfig::a64fx(),
    };
    cfg.arena_mib = ((ic * hw * hw + mm * kk + kk * nn + mm * nn) * 8 / (1 << 20) + 64).max(128);
    let mut m = Machine::new(cfg.clone());
    let img = Tensor::random(&mut m, Shape::new(ic, hw, hw), 1);
    let w = Matrix::random(&mut m, mm, kk, 2);
    let col = m.mem.alloc(p.workspace_words().max(1));
    let out = m.mem.alloc(mm * nn);
    let ws = GemmWorkspace::alloc(&mut m, lva_kernels::BlockSizes::TABLE2_BEST);
    m.reset_timing();
    conv_im2col_gemm(&mut m, GemmVariant::opt6(), &p, &img, w.buf, col, out, Some(&ws));
    println!("-- gemm_opt6: {} cycles", m.cycles());
    for (ph, c) in m.phases.breakdown() {
        println!("   {:<16} {:>14}", ph.name(), c);
    }

    // Winograd path.
    let mut m = Machine::new(cfg);
    let img = Tensor::random(&mut m, Shape::new(ic, hw, hw), 1);
    let w = Matrix::random(&mut m, mm, kk, 2);
    let out = m.mem.alloc(mm * nn);
    let mut plan = WinogradPlan::new(&mut m, p, w.buf);
    m.reset_timing();
    winograd_conv_vla(&mut m, &mut plan, &img, out);
    println!("-- winograd: {} cycles", m.cycles());
    for (ph, c) in m.phases.breakdown() {
        println!("   {:<16} {:>14}", ph.name(), c);
    }
    let st = m.sys.stats();
    println!(
        "   L1 acc {} miss {} ({:.1}%) pf_fill {} pf_hit {} | L2 miss {:.1}% | dram {}",
        st.l1.accesses,
        st.l1.misses,
        100.0 * st.l1.miss_rate(),
        st.l1.prefetch_fills,
        st.l1.prefetch_hits,
        100.0 * st.l2.miss_rate(),
        st.dram_reads
    );
}
