//! Figure 8 — impact of vector length (512..2048-bit) and L2 size
//! (1 MB..256 MB) on ARM-SVE @ gem5, YOLOv3 first 20 layers, optimized
//! im2col+GEMM (6-loop: §VI-C found it 15% ahead of 3-loop on SVE@gem5).
//!
//! Paper result: at 1 MB, 512 -> 2048 bits improves performance by 1.34x;
//! at 2048-bit, 1 MB -> 256 MB improves it by 1.6x.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Fig. 8: SVE@gem5 vector-length x L2-size sweep");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt6());
    let mut table = Table::new(
        format!("Fig. 8 — VL x L2 on ARM-SVE @ gem5, {}", workload.describe()),
        &["vlen_bits", "l2", "cycles", "speedup_vs_512b_1MB", "l2_miss_%"],
    );
    let mut specs: Vec<(String, Experiment)> = Vec::new();
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let e = Experiment::new(
                HwTarget::SveGem5 { vlen_bits: vlen, l2_bytes: l2 },
                policy,
                workload,
            );
            specs.push((format!("vlen{vlen}_l2_{}", lva_core::experiment::fmt_bytes(l2)), e));
        }
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let mut runs = runs.into_iter();
    let mut base = None;
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let s = runs.next().expect("one run per cell").summary;
            let b = *base.get_or_insert(s.cycles);
            table.row(vec![
                vlen.to_string(),
                lva_core::experiment::fmt_bytes(l2),
                fmt_cycles(s.cycles),
                fmt_speedup(b as f64 / s.cycles as f64),
                format!("{:.1}", 100.0 * s.l2_miss_rate),
            ]);
        }
    }
    println!("\npaper: 1.34x from 512->2048b at 1MB; 1.6x from 1->256MB at 2048b\n");
    emit(&table, "fig8_sve_vl_l2", &opts);
}
