//! The co-design advisor pipeline: counterfactually profile every §VI
//! headline design point (factual + five idealized re-simulations each),
//! cross-check against `BENCH_headline.json` if present, and write
//!
//! * `BENCH_whatif.json` — the machine-readable merged record (whatif
//!   analyses + roofline positions per run), at the repo root next to
//!   `BENCH_headline.json`;
//! * `results/CODESIGN_REPORT.md` — the human-readable advisor report.
//!
//! Both outputs are deterministic: no timestamps, no host data. CI runs the
//! pipeline twice on a reduced layer set and byte-compares.
//!
//! `--jobs N` fans the six runs of each design point over N threads;
//! `--layers N` trims the layer prefix (CI), `--div N` rescales inputs.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(8, "Counterfactual co-design advisor (lva-whatif)");
    let specs = headline_specs(opts.div, opts.layers);

    let headline = std::fs::read_to_string("BENCH_headline.json")
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    if headline.is_none() {
        eprintln!("[no BENCH_headline.json to cross-check against; skipping]");
    }

    // --retime: each design point captures once and its five idealized
    // counterfactuals re-time the recording; output is bit-identical.
    let mut engine = retime_engine(&opts);
    let j = whatif_json_with(&specs, opts.div, opts.jobs, headline.as_ref(), engine.as_mut());
    log_retime(engine.as_ref());

    let mut body = j.to_string_pretty();
    body.push('\n');
    match std::fs::write("BENCH_whatif.json", body) {
        Ok(()) => println!("[saved BENCH_whatif.json]"),
        Err(e) => eprintln!("could not save BENCH_whatif.json: {e}"),
    }

    let md = codesign_markdown(&j);
    let path = std::path::Path::new("results").join("CODESIGN_REPORT.md");
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, md));
    match write {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }

    lva_trace::flush();
}
