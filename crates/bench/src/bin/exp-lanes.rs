//! §VI-B(c) — impact of the number of vector lanes (2..8) per vector
//! length on RISC-V Vector @ gem5, YOLOv3 first 20 layers, 1 MB L2.
//!
//! Paper result: 2 -> 8 lanes buys ~1.25x at 8192-bit; at 512-bit,
//! performance scales from 2 to 4 lanes and saturates beyond 4 —
//! additional lanes benefit longer vectors.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Lanes sweep: RVV vector lanes 2..8 per vector length");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut table = Table::new(
        format!("Vector lanes vs performance per VL, {}", workload.describe()),
        &["vlen_bits", "lanes", "cycles", "speedup_vs_2_lanes"],
    );
    let mut specs: Vec<(String, Experiment)> = Vec::new();
    for vlen in [512usize, 2048, 8192] {
        for lanes in [2usize, 4, 8] {
            let e = Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes, l2_bytes: 1 << 20 },
                policy,
                workload,
            );
            specs.push((format!("vlen{vlen}_lanes{lanes}"), e));
        }
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let mut runs = runs.into_iter();
    for vlen in [512usize, 2048, 8192] {
        let mut base = None;
        for lanes in [2usize, 4, 8] {
            let s = runs.next().expect("one run per cell").summary;
            let b = *base.get_or_insert(s.cycles);
            table.row(vec![
                vlen.to_string(),
                lanes.to_string(),
                fmt_cycles(s.cycles),
                fmt_speedup(b as f64 / s.cycles as f64),
            ]);
        }
    }
    println!("\npaper: ~1.25x at 8192b from 2->8 lanes; 512b saturates beyond 4 lanes\n");
    emit(&table, "lanes_rvv", &opts);
}
