//! Figure 9 — impact of vector length (512..2048-bit) and L2 size
//! (1 MB..256 MB) with Winograd on ARM-SVE @ gem5, for the first 20 layers
//! of YOLOv3 (Winograd on the 3x3 stride-1 layers, optimized im2col+GEMM
//! elsewhere — the §VII-B selection rule).
//!
//! Paper result: ~1.4x from 512 to 2048 bits at 1 MB; ~1.75x from 1 MB to
//! 256 MB across vector lengths (several YOLOv3 layers still run GEMM,
//! which keeps the cache appetite higher than VGG16's, cf. Fig. 10).

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Fig. 9: Winograd VL x L2 sweep, YOLOv3 first 20 layers");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::winograd_default(GemmVariant::opt6());
    let mut table = Table::new(
        format!("Fig. 9 — Winograd VL x L2 on SVE @ gem5, {}", workload.describe()),
        &["vlen_bits", "l2", "cycles", "speedup_vs_512b_1MB", "l2_miss_%"],
    );
    let mut specs: Vec<(String, Experiment)> = Vec::new();
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let e = Experiment::new(
                HwTarget::SveGem5 { vlen_bits: vlen, l2_bytes: l2 },
                policy,
                workload,
            );
            specs.push((format!("vlen{vlen}_l2_{}", lva_core::experiment::fmt_bytes(l2)), e));
        }
    }
    let runs = run_sweep(&specs, opts.jobs, false, false);
    let mut runs = runs.into_iter();
    let mut base = None;
    for vlen in SVE_VLENS {
        for l2 in L2_SIZES {
            let s = runs.next().expect("one run per cell").summary;
            let b = *base.get_or_insert(s.cycles);
            table.row(vec![
                vlen.to_string(),
                lva_core::experiment::fmt_bytes(l2),
                fmt_cycles(s.cycles),
                fmt_speedup(b as f64 / s.cycles as f64),
                format!("{:.1}", 100.0 * s.l2_miss_rate),
            ]);
        }
    }
    println!("\npaper: 1.4x from 512->2048b at 1MB; 1.75x from 1->256MB\n");
    emit(&table, "fig9_winograd_yolo", &opts);
}
