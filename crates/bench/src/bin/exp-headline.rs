//! §VI headline speedups of the algorithmic optimizations:
//!
//! * YOLOv3-tiny on RISC-V Vector: optimized 3-loop vs naive Darknet — the
//!   paper reports 14x.
//! * YOLOv3 on A64FX: BLIS-like 6-loop vs naive — ~32x; 6-loop vs 3-loop —
//!   ~2x (prefetch + L1 blocking pay off on A64FX).
//! * YOLOv3 on ARM-SVE @ gem5 (512-bit): 6-loop vs 3-loop — ~1.15x (no
//!   prefetch, but L1 blocking still helps a bit).
//! * YOLOv3 on RISC-V Vector: 6-loop vs 3-loop — ~0.98x (no benefit: the
//!   decoupled VPU bypasses the L1).
//!
//! The nine design points are independent, so `--jobs N` fans them out over
//! worker threads — the table, `results/` files and `BENCH_headline.json`
//! are byte-identical for every N. `--wallclock` times the whole sweep
//! (serial vs `--jobs`, median of 3 each) and writes the simulator's
//! self-benchmark to `BENCH_sim_wallclock.json`.

use std::collections::HashMap;
use std::time::Instant;

use lva_bench::*;
use lva_isa::{LayerMemo, RefitPlan};
use lva_retime::ConfigKey;

fn ratio(a: u64, b: u64) -> String {
    fmt_speedup(a as f64 / b as f64)
}

/// The retime-vs-full section of the wallclock benchmark: capture every
/// spec once, then re-time the whole suite through the memoized tape
/// refit — one cold pass (plan build, layer-memo misses) and three warm
/// passes (median). Every re-timed summary is asserted equal to the full
/// simulator's, so the published speedup is over verified-identical work.
fn retime_bench(specs: &[(String, Experiment)], full: &[SweepRun], serial_ms: f64) -> Json {
    let t0 = Instant::now();
    let caps: Vec<_> = specs.iter().map(|(_, e)| e.run_traced()).collect();
    let capture_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(".. wallclock retime capture: {capture_ms:.0} ms");
    let plans: Vec<RefitPlan> = specs
        .iter()
        .zip(&caps)
        .map(|((_, e), cap)| RefitPlan::build(&cap.trace, e.refit_geometry()))
        .collect();
    // Layer memos are scoped per timing config, exactly like the engine's
    // store (the a64fx and rvv specs share theirs across workloads).
    let mut memos: HashMap<ConfigKey, LayerMemo> = HashMap::new();
    let mut cold_ms = 0.0;
    let mut warm_ms = Vec::new();
    for pass in 0..4 {
        let t0 = Instant::now();
        for (i, (((name, e), cap), plan)) in specs.iter().zip(&caps).zip(&plans).enumerate() {
            let memo = memos.entry(ConfigKey::of(e)).or_default();
            let s = e.retime_tape_memoized(cap, plan, memo).expect("tape matches own geometry");
            assert_eq!(
                s.cycles, full[i].summary.cycles,
                "{name}: retimed cycles diverged from the full simulator"
            );
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if pass == 0 {
            cold_ms = ms;
            eprintln!(".. wallclock retime cold pass: {ms:.0} ms");
        } else {
            eprintln!(".. wallclock retime warm pass {pass}: {ms:.0} ms");
            warm_ms.push(ms);
        }
    }
    let warm = median_ms(&mut warm_ms);
    let (entries, hits, misses) = memos
        .values()
        .fold((0usize, 0u64, 0u64), |a, m| (a.0 + m.len(), a.1 + m.hits, a.2 + m.misses));
    let looked = hits + misses;
    Json::obj()
        .field("runs", specs.len() as u64)
        .field("capture_ms", capture_ms)
        .field("first_retime_ms", cold_ms)
        .field("retime_ms_median_of_3", warm)
        .field("speedup_retime_vs_full_serial", if warm > 0.0 { serial_ms / warm } else { 0.0 })
        .field(
            "speedup_including_capture",
            if capture_ms + cold_ms > 0.0 { serial_ms / (capture_ms + cold_ms) } else { 0.0 },
        )
        .field(
            "layer_memo",
            Json::obj()
                .field("configs", memos.len() as u64)
                .field("entries", entries as u64)
                .field("hits", hits)
                .field("misses", misses)
                .field("hit_rate", if looked > 0 { hits as f64 / looked as f64 } else { 0.0 }),
        )
}

/// `--wallclock`: time the full sweep end to end, serially and with
/// `--jobs`, median of 3 passes each, plus the retime-vs-full section,
/// and write `BENCH_sim_wallclock.json`. Per-run reports (with host
/// timing attached) come from the last serial pass.
fn wallclock_bench(specs: &[(String, Experiment)], opts: &Opts, engine: Option<&RetimeEngine>) {
    let host_cpus = lva_core::default_jobs();
    let jobs = if opts.jobs > 1 { opts.jobs } else { host_cpus.max(2) };
    // The parallel executor cannot beat serial without a second CPU; its
    // pass still runs (measuring executor overhead) but the speedup
    // figure is withheld so readers and bench-diff don't flag a phantom
    // regression.
    let jobs_effective = jobs.min(host_cpus);
    let mut serial_ms = Vec::new();
    let mut parallel_ms = Vec::new();
    let mut last_serial: Option<Vec<SweepRun>> = None;
    for pass in 0..3 {
        let t0 = Instant::now();
        let runs = run_sweep(specs, 1, false, true);
        serial_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        eprintln!(".. wallclock serial pass {}: {:.0} ms", pass + 1, serial_ms[pass]);
        last_serial = Some(runs);
        let t0 = Instant::now();
        run_sweep(specs, jobs, false, true);
        parallel_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        eprintln!(".. wallclock --jobs {jobs} pass {}: {:.0} ms", pass + 1, parallel_ms[pass]);
    }
    let serial = median_ms(&mut serial_ms);
    let parallel = median_ms(&mut parallel_ms);
    let runs = last_serial.expect("three serial passes ran");
    let retime = retime_bench(specs, &runs, serial);
    let total_cycles: u64 = runs.iter().map(|r| r.summary.cycles).sum();
    let reports: Vec<Json> = specs
        .iter()
        .zip(&runs)
        .map(|((name, e), r)| {
            let mut report = RunReport::new(name.clone(), e, &r.summary).with_host(r.host_ms);
            if let Some(eng) = engine {
                report = report.with_retime(eng.report());
            }
            report.to_json()
        })
        .collect();
    let mut j = Json::obj()
        .field("bench", "sim_wallclock")
        .field("div", opts.div as u64)
        .field("experiments", specs.len() as u64)
        .field("host_cpus", host_cpus as u64)
        .field("jobs", jobs as u64)
        .field("jobs_effective", jobs_effective as u64)
        .field("serial_ms_median_of_3", serial)
        .field("parallel_ms_median_of_3", parallel);
    if host_cpus > 1 {
        j = j.field("parallel_speedup", if parallel > 0.0 { serial / parallel } else { 0.0 });
    } else {
        j = j.field(
            "parallel_speedup_note",
            "single-CPU host: threads cannot overlap, speedup figure withheld",
        );
    }
    j = j
        .field("retime", retime)
        .field("sim_cycles_total", total_cycles)
        .field(
            "sim_cycles_per_host_us_serial",
            if serial > 0.0 { total_cycles as f64 / (serial * 1000.0) } else { 0.0 },
        )
        .field("runs", Json::Arr(reports));
    let mut body = j.to_string_pretty();
    body.push('\n');
    match std::fs::write("BENCH_sim_wallclock.json", body) {
        Ok(()) => println!(
            "[saved BENCH_sim_wallclock.json: serial {serial:.0} ms, --jobs {jobs} {parallel:.0} ms]"
        ),
        Err(e) => eprintln!("could not save BENCH_sim_wallclock.json: {e}"),
    }
}

fn main() {
    let opts = Opts::parse(4, "Headline optimization speedups (§VI-A/§VI-C)");
    let specs = headline_specs(opts.div, opts.layers);

    // --retime: the memoizing retime engine fronts every simulation
    // below. --profile needs the real memory system live, so the table
    // pass falls back to full simulation when both are requested.
    let mut engine = retime_engine(&opts);
    if engine.is_some() && opts.profile {
        eprintln!("[--retime: --profile instruments the live memory system; table pass unretimed]");
    }

    // The table pass. With --profile the memory profiler rides along
    // (timing unchanged) and its reuse-distance/3C report lands next to
    // the run. --jobs only changes who executes what when.
    let results = match engine.as_mut() {
        Some(eng) if !opts.profile => run_sweep_retimed(&specs, eng, false),
        _ => run_sweep(&specs, opts.jobs, opts.profile, false),
    };
    let summary = |i: usize| -> &RunSummary { &results[i].summary };
    let runs: Vec<RunReport> = specs
        .iter()
        .zip(&results)
        .map(|((name, e), r)| {
            let mut report = RunReport::new(name.clone(), e, &r.summary);
            if opts.whatif {
                // --with-whatif: five idealized re-runs per design point
                // merge the counterfactual analysis into this report. Note
                // the file then legitimately differs from the knobs-off
                // baseline.
                eprintln!(".. whatif {} | {}", name, e.hw.describe());
                let analysis = match engine.as_mut() {
                    Some(eng) => {
                        lva_whatif::analyze_counterfactuals_with(e, &r.summary, &mut |x| eng.run(x))
                    }
                    None => lva_whatif::analyze_counterfactuals(e, &r.summary, opts.jobs),
                };
                report = report.with_whatif(analysis.to_json());
            }
            if opts.energy {
                // --with-energy: one probed re-run streams the per-layer
                // attribution; cycles are bit-identical to the table pass.
                eprintln!(".. energy {} | {}", name, e.hw.describe());
                let model = lva_core::EnergyModel::default();
                let (s, att) = match engine.as_mut() {
                    Some(eng) => eng.run_energy(e, &model),
                    None => e.run_energy(&model),
                };
                assert_eq!(s.cycles, r.summary.cycles, "{name}: energy probe changed timing");
                report = report.with_energy(att.to_json());
            }
            report
        })
        .collect();
    let profiles: Vec<(String, Json)> = specs
        .iter()
        .zip(&results)
        .filter_map(|((name, _), r)| r.profile.as_ref().map(|p| (name.clone(), p.to_json())))
        .collect();

    let tiny_desc = specs[0].1.workload.describe();
    let yolo_desc = specs[2].1.workload.describe();
    let mut table = Table::new(
        "Headline speedups of the §IV optimizations",
        &["platform", "workload", "comparison", "measured", "paper"],
    );
    table.row(vec![
        "RVV@gem5".into(),
        tiny_desc.clone(),
        "opt 3-loop vs naive".into(),
        ratio(summary(0).cycles, summary(1).cycles),
        "14x".into(),
    ]);
    table.row(vec![
        "A64FX".into(),
        yolo_desc.clone(),
        "opt 6-loop vs naive".into(),
        ratio(summary(2).cycles, summary(4).cycles),
        "~32x".into(),
    ]);
    table.row(vec![
        "A64FX".into(),
        yolo_desc.clone(),
        "opt 6-loop vs opt 3-loop".into(),
        ratio(summary(3).cycles, summary(4).cycles),
        "2x".into(),
    ]);
    table.row(vec![
        "SVE@gem5 512b".into(),
        yolo_desc.clone(),
        "opt 6-loop vs opt 3-loop".into(),
        ratio(summary(5).cycles, summary(6).cycles),
        "1.15x".into(),
    ]);
    table.row(vec![
        "RVV@gem5".into(),
        yolo_desc,
        "opt 6-loop vs opt 3-loop".into(),
        ratio(summary(7).cycles, summary(8).cycles),
        "0.98x".into(),
    ]);

    emit(&table, "headline_speedups", &opts);

    // --chrome: re-run the first design point recording pipeline events and
    // save a Perfetto-loadable timeline (layers / phases / stall tracks).
    if let Some(path) = &opts.chrome {
        let e = &specs[1].1; // rvv + opt3 + tiny
        eprintln!(".. {} | {} [timeline]", e.hw.describe(), e.workload.describe());
        let (_, trace) = e.run_timeline();
        match trace.save(path) {
            Ok(()) => println!("[saved {path} ({} events)]", trace.len()),
            Err(e) => eprintln!("could not save {path}: {e}"),
        }
    }

    // --json: full machine-readable record (per-layer cycles, stall-cause
    // breakdown, per-level cache hit rates, avg consumed VL) at repo root.
    // Host timing is deliberately NOT attached here: this file is the
    // byte-deterministic record `bench-diff` gates on.
    if opts.json {
        let mut j = Json::obj()
            .field("bench", "headline")
            .field("table", table.to_json())
            .field("runs", Json::Arr(runs.iter().map(lva_bench::RunReport::to_json).collect()));
        if !profiles.is_empty() {
            j = j.field("profiles", Json::Obj(profiles));
        }
        let mut body = j.to_string_pretty();
        body.push('\n');
        match std::fs::write("BENCH_headline.json", body) {
            Ok(()) => println!("[saved BENCH_headline.json]"),
            Err(e) => eprintln!("could not save BENCH_headline.json: {e}"),
        }
    }

    log_retime(engine.as_ref());

    if opts.wallclock {
        wallclock_bench(&specs, &opts, engine.as_ref());
    }

    // The --json path above writes after emit()'s flush; make sure a
    // `--trace` sink sees everything before the process exits.
    lva_trace::flush();
}
