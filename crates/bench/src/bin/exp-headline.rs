//! §VI headline speedups of the algorithmic optimizations:
//!
//! * YOLOv3-tiny on RISC-V Vector: optimized 3-loop vs naive Darknet — the
//!   paper reports 14x.
//! * YOLOv3 on A64FX: BLIS-like 6-loop vs naive — ~32x; 6-loop vs 3-loop —
//!   ~2x (prefetch + L1 blocking pay off on A64FX).
//! * YOLOv3 on ARM-SVE @ gem5 (512-bit): 6-loop vs 3-loop — ~1.15x (no
//!   prefetch, but L1 blocking still helps a bit).
//! * YOLOv3 on RISC-V Vector: 6-loop vs 3-loop — ~0.98x (no benefit: the
//!   decoupled VPU bypasses the L1).

use lva_bench::*;

fn ratio(a: u64, b: u64) -> String {
    fmt_speedup(a as f64 / b as f64)
}

fn main() {
    let opts = Opts::parse(4, "Headline optimization speedups (§VI-A/§VI-C)");
    let mut runs: Vec<RunReport> = Vec::new();
    let mut profiles: Vec<(String, Json)> = Vec::new();
    let tiny = Workload {
        model: ModelId::Yolov3Tiny,
        input_hw: scaled_input(ModelId::Yolov3Tiny, opts.div),
        layer_limit: opts.layers,
    };
    let yolo20 = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let naive = ConvPolicy::gemm_only(GemmVariant::Naive);
    let opt3 = ConvPolicy::gemm_only(GemmVariant::opt3());
    let opt6 = ConvPolicy::gemm_only(GemmVariant::opt6());

    let mut table = Table::new(
        "Headline speedups of the §IV optimizations",
        &["platform", "workload", "comparison", "measured", "paper"],
    );

    // Run one design point, keeping the full report for --json output.
    // With --profile the memory profiler rides along (timing unchanged)
    // and its reuse-distance/3C report lands next to the run.
    let profile_on = opts.profile;
    let mut go = |name: &str, e: Experiment| -> RunSummary {
        let s = if profile_on {
            let (s, profile) = run_logged_profiled(&e);
            profiles.push((name.to_string(), profile.to_json()));
            s
        } else {
            run_logged(&e)
        };
        runs.push(RunReport::new(name, &e, &s));
        s
    };

    // RISC-V Vector, YOLOv3-tiny: opt3 vs naive (14x in the paper).
    let rvv = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };
    let t_naive = go("rvv_tiny_naive", Experiment::new(rvv, naive, tiny));
    let t_opt3 = go("rvv_tiny_opt3", Experiment::new(rvv, opt3, tiny));
    table.row(vec![
        "RVV@gem5".into(),
        tiny.describe(),
        "opt 3-loop vs naive".into(),
        ratio(t_naive.cycles, t_opt3.cycles),
        "14x".into(),
    ]);

    // A64FX, YOLOv3: opt6 vs naive (32x) and opt6 vs opt3 (2x).
    let ax = HwTarget::A64fx;
    let a_naive = go("a64fx_yolo20_naive", Experiment::new(ax, naive, yolo20));
    let a_opt3 = go("a64fx_yolo20_opt3", Experiment::new(ax, opt3, yolo20));
    let a_opt6 = go("a64fx_yolo20_opt6", Experiment::new(ax, opt6, yolo20));
    table.row(vec![
        "A64FX".into(),
        yolo20.describe(),
        "opt 6-loop vs naive".into(),
        ratio(a_naive.cycles, a_opt6.cycles),
        "~32x".into(),
    ]);
    table.row(vec![
        "A64FX".into(),
        yolo20.describe(),
        "opt 6-loop vs opt 3-loop".into(),
        ratio(a_opt3.cycles, a_opt6.cycles),
        "2x".into(),
    ]);

    // SVE @ gem5 512-bit: opt6 vs opt3 (1.15x).
    let sve = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 };
    let s_opt3 = go("sve512_yolo20_opt3", Experiment::new(sve, opt3, yolo20));
    let s_opt6 = go("sve512_yolo20_opt6", Experiment::new(sve, opt6, yolo20));
    table.row(vec![
        "SVE@gem5 512b".into(),
        yolo20.describe(),
        "opt 6-loop vs opt 3-loop".into(),
        ratio(s_opt3.cycles, s_opt6.cycles),
        "1.15x".into(),
    ]);

    // RVV: opt6 vs opt3 (~0.98x, Table II best block).
    let r_opt3 = go("rvv_yolo20_opt3", Experiment::new(rvv, opt3, yolo20));
    let r_opt6 = go("rvv_yolo20_opt6", Experiment::new(rvv, opt6, yolo20));
    table.row(vec![
        "RVV@gem5".into(),
        yolo20.describe(),
        "opt 6-loop vs opt 3-loop".into(),
        ratio(r_opt3.cycles, r_opt6.cycles),
        "0.98x".into(),
    ]);

    emit(&table, "headline_speedups", &opts);

    // --chrome: re-run the first design point recording pipeline events and
    // save a Perfetto-loadable timeline (layers / phases / stall tracks).
    if let Some(path) = &opts.chrome {
        let e = Experiment::new(rvv, opt3, tiny);
        eprintln!(".. {} | {} [timeline]", e.hw.describe(), e.workload.describe());
        let (_, trace) = e.run_timeline();
        match trace.save(path) {
            Ok(()) => println!("[saved {path} ({} events)]", trace.len()),
            Err(e) => eprintln!("could not save {path}: {e}"),
        }
    }

    // --json: full machine-readable record (per-layer cycles, stall-cause
    // breakdown, per-level cache hit rates, avg consumed VL) at repo root.
    if opts.json {
        let mut j = Json::obj()
            .field("bench", "headline")
            .field("table", table.to_json())
            .field("runs", Json::Arr(runs.iter().map(lva_bench::RunReport::to_json).collect()));
        if !profiles.is_empty() {
            j = j.field("profiles", Json::Obj(std::mem::take(&mut profiles)));
        }
        let mut body = j.to_string_pretty();
        body.push('\n');
        match std::fs::write("BENCH_headline.json", body) {
            Ok(()) => println!("[saved BENCH_headline.json]"),
            Err(e) => eprintln!("could not save BENCH_headline.json: {e}"),
        }
    }
    // The --json path above writes after emit()'s flush; make sure a
    // `--trace` sink sees everything before the process exits.
    lva_trace::flush();
}
