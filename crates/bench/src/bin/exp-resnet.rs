//! Extension — algorithm-mix profiles across network architectures.
//!
//! The paper's algorithm-selection conclusion (§VII) is evaluated on
//! YOLOv3 and VGG16. This experiment adds the ResNet-50-style model and
//! compares how much each architecture gains from the Winograd policy.
//! Although ResNet's *layer count* is 1x1-dominated, its 3x3 bottleneck
//! cores still carry most of the convolution cycles, so the policy gain
//! stays close to VGG16's; YOLOv3 trails because its stride-2 downsample
//! 3x3 layers must stay on GEMM. Algorithm selection is a property of where
//! an architecture spends its cycles, not of how many layers it has.
//! MobileNetV1 is the control: no 3x3 stride-1 convolutions at all (its
//! spatial work is depthwise), so the Winograd policy changes nothing.

use lva_bench::*;
use lva_nn::ConvAlgo;

fn main() {
    let opts = Opts::parse(4, "Algorithm-mix profile: Winograd policy gain per architecture");
    let mut table = Table::new(
        "Winograd-policy speedup by network architecture (A64FX)",
        &["model", "conv_layers", "winograd_layers", "gemm_cycles", "wino_cycles", "gain"],
    );
    let models = [ModelId::Vgg16, ModelId::Yolov3, ModelId::Resnet50, ModelId::MobilenetV1];
    let specs: Vec<(String, Experiment)> = models
        .iter()
        .flat_map(|&model| {
            let workload = Workload {
                model,
                input_hw: scaled_input(model, opts.div),
                layer_limit: opts.layers,
            };
            [
                (
                    format!("gemm_{}", model.name()),
                    Experiment::new(
                        HwTarget::A64fx,
                        ConvPolicy::gemm_only(GemmVariant::opt6()),
                        workload,
                    ),
                ),
                (
                    format!("wino_{}", model.name()),
                    Experiment::new(
                        HwTarget::A64fx,
                        ConvPolicy::winograd_default(GemmVariant::opt6()),
                        workload,
                    ),
                ),
            ]
        })
        .collect();
    let runs = run_sweep(&specs, opts.jobs, false, false);
    for (i, model) in models.into_iter().enumerate() {
        let gemm = &runs[2 * i].summary;
        let wino = &runs[2 * i + 1].summary;
        let convs = wino.report.layers.iter().filter(|l| l.algo.is_some()).count();
        let wcount =
            wino.report.layers.iter().filter(|l| l.algo == Some(ConvAlgo::Winograd)).count();
        table.row(vec![
            model.name().into(),
            convs.to_string(),
            wcount.to_string(),
            fmt_cycles(gemm.cycles),
            fmt_cycles(wino.cycles),
            fmt_speedup(gemm.cycles as f64 / wino.cycles as f64),
        ]);
    }
    emit(&table, "resnet_algo_mix", &opts);
}
