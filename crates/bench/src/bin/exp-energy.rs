//! Extension — the energy observatory over the co-design grid.
//!
//! The paper motivates long-vector CPUs by energy efficiency (§I) and notes
//! that large caches "occupy significant die area" (§V), but evaluates
//! performance only. This experiment re-runs the Fig. 6/7 grid under the
//! `lva-energy` streaming event-energy model (DESIGN.md §14): longer
//! vectors save instruction-issue energy; ever-larger caches keep saving
//! DRAM energy but eventually lose on access energy (√capacity) and
//! leakage, so the EDP-optimal cache is *finite* even though performance
//! alone keeps (weakly) improving to 256 MB.
//!
//! Outputs, all deterministic (no timestamps, no host data; identical for
//! any `--jobs`):
//!
//! * `results/energy_grid.csv` (and `.json` with `--json`) — the flat
//!   per-point table;
//! * `BENCH_energy.json` — the machine-readable grid record (per-point
//!   energy breakdowns, Pareto flags, both optima), at the repo root next
//!   to `BENCH_headline.json`;
//! * `results/PARETO.md` — the human-readable cycles-vs-energy frontier.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(4, "Energy/EDP observatory across the RVV vector-length x L2 grid");
    // --retime: per network and VL, one functional capture serves the
    // whole L2 axis; output is bit-identical to the full-simulation grid.
    let mut engine = retime_engine(&opts);
    let j = energy_grid_json_with(opts.div, opts.layers, opts.jobs, engine.as_mut());
    log_retime(engine.as_ref());

    let mut table = Table::new(
        "Energy per inference and EDP across the VL x L2 grid".to_string(),
        &[
            "network",
            "vlen_bits",
            "l2",
            "cycles",
            "energy_mJ",
            "compute_mJ",
            "mem_mJ",
            "static_mJ",
            "edp_uJ_s",
            "pareto",
        ],
    );
    let f = |p: &Json, k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    for net in j.get("networks").and_then(Json::as_arr).unwrap_or(&[]) {
        let key = net.get("name").and_then(Json::as_str).unwrap_or("?");
        for p in net.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            table.row(vec![
                key.to_string(),
                p.get("vlen_bits").and_then(Json::as_u64).unwrap_or(0).to_string(),
                p.get("l2").and_then(Json::as_str).unwrap_or("?").to_string(),
                fmt_cycles(p.get("cycles").and_then(Json::as_u64).unwrap_or(0)),
                format!("{:.2}", f(p, "total_j") * 1e3),
                format!("{:.2}", f(p, "compute_j") * 1e3),
                format!("{:.2}", f(p, "memory_j") * 1e3),
                format!("{:.2}", f(p, "static_j") * 1e3),
                format!("{:.1}", f(p, "edp_js") * 1e6),
                if matches!(p.get("pareto"), Some(Json::Bool(true))) { "*" } else { "" }
                    .to_string(),
            ]);
        }
        println!(
            "{key}: cycles-optimal {} | EDP-optimal {}",
            net.get("cycles_optimal").and_then(Json::as_str).unwrap_or("?"),
            net.get("edp_optimal").and_then(Json::as_str).unwrap_or("?"),
        );
    }

    let mut body = j.to_string_pretty();
    body.push('\n');
    match std::fs::write("BENCH_energy.json", body) {
        Ok(()) => println!("[saved BENCH_energy.json]"),
        Err(e) => eprintln!("could not save BENCH_energy.json: {e}"),
    }

    let md = pareto_markdown(&j);
    let path = std::path::Path::new("results").join("PARETO.md");
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, md));
    match write {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }

    emit(&table, "energy_grid", &opts);
}
