//! Extension — energy per inference and energy-delay product across the
//! co-design grid.
//!
//! The paper motivates long-vector CPUs by energy efficiency (§I) and notes
//! that large caches "occupy significant die area" (§V), but evaluates
//! performance only. This experiment re-runs the Fig. 6/7 grid under a
//! documented event-energy model: longer vectors save instruction-issue
//! energy; ever-larger caches keep saving DRAM energy but eventually lose
//! on leakage, so the EDP-optimal cache is *finite* even though performance
//! alone keeps (weakly) improving to 256 MB.

use lva_bench::*;
use lva_core::EnergyModel;

fn main() {
    let opts = Opts::parse(4, "Energy/EDP across the RVV vector-length x L2 grid");
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, opts.div),
        layer_limit: Some(opts.layers.unwrap_or(20)),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let model = EnergyModel::default();

    let mut table = Table::new(
        format!("Energy per inference and EDP, {}", workload.describe()),
        &[
            "vlen_bits",
            "l2",
            "cycles",
            "energy_mJ",
            "compute_mJ",
            "mem_mJ",
            "static_mJ",
            "edp_uJ_s",
        ],
    );
    let mut best: Option<(f64, String)> = None;
    for vlen in [512usize, 2048, 8192] {
        for l2 in L2_SIZES {
            let e = Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 },
                policy,
                workload,
            );
            let s = run_logged(&e);
            let rep = model.estimate(&s, l2);
            let label = format!("{vlen}b / {}", lva_core::experiment::fmt_bytes(l2));
            let edp = rep.edp();
            if best.as_ref().is_none_or(|(b, _)| edp < *b) {
                best = Some((edp, label));
            }
            table.row(vec![
                vlen.to_string(),
                lva_core::experiment::fmt_bytes(l2),
                fmt_cycles(s.cycles),
                format!("{:.2}", rep.total_j() * 1e3),
                format!("{:.2}", rep.compute_j * 1e3),
                format!("{:.2}", rep.memory_j * 1e3),
                format!("{:.2}", rep.static_j * 1e3),
                format!("{:.1}", edp * 1e6),
            ]);
        }
    }
    if let Some((edp, label)) = best {
        println!("\nEDP-optimal design point: {label} ({:.1} uJ*s)\n", edp * 1e6);
    }
    emit(&table, "energy_grid", &opts);
}
