//! Extension — the scale-out (multi-core SoC) observatory.
//!
//! The paper characterizes one long-vector core per design point; this
//! experiment shards inference across N such cores behind one shared
//! L2/DRAM port (`lva-scale`, DESIGN.md §18) and reports the
//! throughput-vs-cores curves: where each curve bends, whether the bend is
//! really shared-port contention (exact `Contention` stall attribution
//! cross-checked against the `infinite_shared_bw` counterfactual), and
//! which co-design lever recovers it (`lva-whatif`'s scale advisor).
//!
//! Outputs, all deterministic (simulated cycles are the only clock; no
//! timestamps, no host data; byte-identical for any `--jobs`):
//!
//! * `results/scaling_grid.csv` (and `.json` with `--json`) — the flat
//!   per-cell table;
//! * `BENCH_scaling.json` — the machine-readable record (per-cell
//!   throughput, stall shares, port counters, Mattson cross-check, and
//!   per-curve knee/lever advice), at the repo root next to
//!   `BENCH_headline.json` / `BENCH_serving.json`;
//! * `results/SCALING.md` — the human-readable scaling report;
//! * `--chrome FILE` — a Perfetto-loadable multi-process timeline (one
//!   process per core plus shared-port bandwidth/queue counter tracks) of
//!   the most contended cell.

use lva_bench::*;

fn main() {
    let opts = Opts::parse(
        8,
        "Scale-out observatory: throughput-vs-cores curves over the shared-port SoC simulator",
    );
    // --retime: the engine *refuses* multi-core records (certificates are
    // single-core timing proofs) and the sweep falls back to full SoC
    // simulation; output is bit-identical either way.
    let mut engine = retime_engine(&opts);
    let j = scaling_grid_json_with(opts.div, opts.layers, opts.jobs, engine.as_mut());
    log_retime(engine.as_ref());

    let mut table = Table::new(
        "SoC scale-out: throughput, contention share, and Mattson cross-check".to_string(),
        &["network", "point", "sharding", "cores", "fr/kcycle", "cont_%", "ideal", "mattson_err"],
    );
    let f = |p: &Json, k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let u = |p: &Json, k: &str| p.get(k).and_then(Json::as_u64).unwrap_or(0);
    let s = |p: &Json, k: &str| p.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    for net in j.get("networks").and_then(Json::as_arr).unwrap_or(&[]) {
        for p in net.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            for c in p.get("curves").and_then(Json::as_arr).unwrap_or(&[]) {
                for cell in c.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
                    let mat = cell.get("mattson").unwrap_or(&Json::Null);
                    table.row(vec![
                        s(net, "name"),
                        s(p, "name"),
                        s(c, "sharding"),
                        u(cell, "cores").to_string(),
                        format!("{:.6}", f(cell, "throughput_fpkc")),
                        format!("{:.1}", 100.0 * f(cell, "contention_share")),
                        format!("{:.6}", f(cell, "ideal_throughput_fpkc")),
                        format!("{:.4}", f(mat, "abs_error")),
                    ]);
                }
                let adv = c.get("advice").unwrap_or(&Json::Null);
                if let Some(knee) = adv.get("knee_cores").and_then(Json::as_u64) {
                    println!(
                        "{} | {} | {}: knee at {knee} cores — {}",
                        s(net, "name"),
                        s(p, "name"),
                        s(c, "sharding"),
                        adv.get("advice").and_then(Json::as_str).unwrap_or(""),
                    );
                }
            }
        }
    }

    let mut body = j.to_string_pretty();
    body.push('\n');
    match std::fs::write("BENCH_scaling.json", body) {
        Ok(()) => println!("[saved BENCH_scaling.json]"),
        Err(e) => eprintln!("could not save BENCH_scaling.json: {e}"),
    }

    let md = scaling_markdown(&j);
    let path = std::path::Path::new("results").join("SCALING.md");
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, md));
    match write {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }

    // --chrome: re-run the most contended cell (max cores, batch sharding,
    // smallest shared L2) with the multi-process timeline recorded.
    if let Some(path) = &opts.chrome {
        eprintln!(".. contended-cell SoC timeline [scaling]");
        let trace = scaling_chrome_trace(opts.div, opts.layers);
        match trace.save(path) {
            Ok(()) => println!("[saved {path} ({} events)]", trace.len()),
            Err(e) => eprintln!("could not save {path}: {e}"),
        }
    }

    emit(&table, "scaling_grid", &opts);
}
