//! Table IV — arithmetic intensity and sustained performance of the 14
//! discrete convolutional layer shapes of YOLOv3 on the A64FX profile.
//!
//! Each layer runs standalone (cold caches, optimized 6-loop im2col+GEMM)
//! at the paper's native 608x608 dimensions by default; AI is analytic
//! (`2MNK / 4(MN+KN+MK)`) and the sustained fraction of peak comes from
//! the simulated cycle count against the 32 flops/cycle machine peak.
//!
//! Paper: low-AI layers (small M and K) sustain 46-50% of peak; high-AI
//! layers reach 75-91%.

use lva_bench::*;
use lva_core::MachineConfig;
use lva_isa::Machine;
use lva_kernels::gemm::GemmWorkspace;
use lva_kernels::{conv_im2col_gemm, ConvParams};
use lva_roofline::{arithmetic_intensity, fraction_of_peak};
use lva_tensor::{Matrix, Shape, Tensor};

/// One Table IV row: (label, in_c, in_hw, out_c, k, stride, paper AI,
/// paper %peak) at the 608x608 network input.
type LayerRow = (&'static str, usize, usize, usize, usize, usize, f64, f64);

/// The 14 discrete layers of Table IV.
const LAYERS: [LayerRow; 14] = [
    ("L1", 3, 608, 32, 3, 1, 7.32, 46.0),
    ("L2", 32, 608, 64, 3, 2, 26.0, 72.0),
    ("L3", 64, 304, 32, 1, 1, 11.0, 50.0),
    ("L5", 64, 304, 128, 3, 2, 52.0, 77.0),
    ("L6", 128, 152, 64, 1, 1, 21.0, 70.0),
    ("L10", 128, 152, 256, 3, 2, 101.0, 81.0),
    ("L11", 256, 76, 128, 1, 1, 42.0, 75.0),
    ("L38", 512, 38, 256, 1, 1, 76.0, 82.0),
    ("L44", 512, 19, 1024, 3, 1, 126.0, 83.0),
    ("L45", 1024, 19, 512, 1, 1, 88.0, 78.0),
    ("L59", 1024, 19, 255, 1, 1, 65.0, 75.0),
    ("L61", 768, 38, 256, 1, 1, 85.0, 91.0),
    ("L62", 256, 38, 512, 3, 1, 162.0, 83.0),
    ("L75", 256, 76, 255, 1, 1, 63.0, 75.0),
];

fn main() {
    let opts = Opts::parse(1, "Table IV: per-layer AI and sustained %peak on A64FX");
    let mut table = Table::new(
        "Table IV — arithmetic intensity and sustained performance (A64FX)",
        &["layer", "M", "N", "K", "AI", "paper_AI", "pct_peak", "paper_pct"],
    );
    for (label, ic, hw, oc, k, stride, paper_ai, paper_pct) in LAYERS {
        let hw = (hw / opts.div).max(k);
        let p = ConvParams { in_c: ic, in_h: hw, in_w: hw, out_c: oc, k, stride, pad: k / 2 };
        let (mm, nn, kk) = p.gemm_mnk();
        let mut cfg = MachineConfig::a64fx();
        cfg.arena_mib =
            ((ic * hw * hw + mm * kk + kk * nn + mm * nn) * 8 / (1 << 20) + 64).max(128);
        let mut m = Machine::new(cfg.clone());
        let img = Tensor::random(&mut m, Shape::new(ic, hw, hw), 3);
        let w = Matrix::random(&mut m, mm, kk, 4);
        let col = m.mem.alloc(p.workspace_words().max(1));
        let out = m.mem.alloc(mm * nn);
        let ws = GemmWorkspace::alloc(&mut m, lva_kernels::BlockSizes::TABLE2_BEST);
        m.reset_timing();
        conv_im2col_gemm(&mut m, GemmVariant::opt6(), &p, &img, w.buf, col, out, Some(&ws));
        let cycles = m.cycles();
        let pct = 100.0 * fraction_of_peak(&cfg, p.flops(), cycles);
        eprintln!(
            ".. {label}: M={mm} N={nn} K={kk} -> {} cycles, {pct:.0}% peak",
            fmt_cycles(cycles)
        );
        table.row(vec![
            label.into(),
            mm.to_string(),
            nn.to_string(),
            kk.to_string(),
            format!("{:.2}", arithmetic_intensity(mm, nn, kk)),
            format!("{paper_ai}"),
            format!("{pct:.0}"),
            format!("{paper_pct:.0}"),
        ]);
    }
    emit(&table, "table4_roofline", &opts);
}
