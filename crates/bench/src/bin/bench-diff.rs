//! Compare two benchmark reports under the tolerance policy in
//! `lva_bench::diff` and exit nonzero on regression.
//!
//! ```text
//! bench-diff BASELINE.json CURRENT.json [--tol-total PCT] [--tol-layer PCT]
//!            [--tol-hit-rate ABS] [--tol-stall PCT] [--tol-energy PCT]
//!            [--tol-edp PCT] [--inject-cycles PCT]
//! ```
//!
//! The report kind is autodetected from the top-level `"bench"` tag:
//! `BENCH_headline.json`-shaped reports go through the run/layer/cache
//! comparison, `BENCH_energy.json`-shaped reports through the per-point
//! energy/EDP comparison (including the moved-optimum structural gate),
//! `BENCH_serving.json`-shaped reports through the per-cell latency
//! comparison (p50/p99 tolerances, exact deadline-miss counts, and the
//! moved-recommendation structural gate), and `BENCH_scaling.json`-shaped
//! reports through the per-cell SoC comparison (throughput and stall-share
//! tolerances, moved-knee/lever structural gates). Both inputs must be the
//! same kind.
//!
//! `--inject-cycles PCT` scales the *current* headline report's total and
//! per-layer cycle counts by `1 + PCT/100` before comparing. CI uses it to
//! prove the gate trips: after a passing real comparison, a 6% injected
//! slowdown must make this binary exit 1. (Headline reports only.)
//!
//! Exit codes: 0 = within tolerance, 1 = regression or structural mismatch,
//! 2 = usage / unreadable / unparseable / mismatched-kind input.

use lva_bench::diff::{
    compare, compare_energy, compare_scaling, compare_serving, inject_cycles, report_kind,
    Severity, Tolerance,
};
use lva_trace::Json;

fn usage() -> ! {
    eprintln!(
        "usage: bench-diff BASELINE.json CURRENT.json\n  --tol-total PCT     total/per-point cycles tolerance, percent (default 2)\n  --tol-layer PCT     per-layer cycles tolerance, percent (default 5)\n  --tol-hit-rate ABS  hit-rate tolerance, absolute (default 0.01)\n  --tol-stall PCT     stall-cycles tolerance, percent (default 10)\n  --tol-energy PCT    per-point energy tolerance, percent (default 2)\n  --tol-edp PCT       per-point EDP tolerance, percent (default 4)\n  --tol-p50 PCT       per-cell serving p50 tolerance, percent (default 2)\n  --tol-p99 PCT       per-cell serving p99 tolerance, percent (default 5)\n  --tol-throughput PCT per-cell scaling throughput tolerance, percent (default 2)\n  --inject-cycles PCT scale CURRENT cycles up by PCT%% first (gate\n                      self-test; headline reports only)"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench-diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut tol = Tolerance::default();
    let mut inject: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("bench-diff: {what} needs a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tol-total" => tol.total_cycles_pct = num(&mut args, "--tol-total"),
            "--tol-layer" => tol.layer_cycles_pct = num(&mut args, "--tol-layer"),
            "--tol-hit-rate" => tol.hit_rate_abs = num(&mut args, "--tol-hit-rate"),
            "--tol-stall" => tol.stall_pct = num(&mut args, "--tol-stall"),
            "--tol-energy" => tol.energy_pct = num(&mut args, "--tol-energy"),
            "--tol-edp" => tol.edp_pct = num(&mut args, "--tol-edp"),
            "--tol-p50" => tol.p50_pct = num(&mut args, "--tol-p50"),
            "--tol-p99" => tol.p99_pct = num(&mut args, "--tol-p99"),
            "--tol-throughput" => tol.throughput_pct = num(&mut args, "--tol-throughput"),
            "--inject-cycles" => inject = Some(num(&mut args, "--inject-cycles")),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("bench-diff: unknown option {other}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else { usage() };

    let base = load(base_path);
    let mut cur = load(cur_path);
    let kind = report_kind(&base);
    if kind != report_kind(&cur) {
        eprintln!(
            "bench-diff: report kinds differ: {base_path} is \"{kind}\", {cur_path} is \"{}\"",
            report_kind(&cur)
        );
        std::process::exit(2);
    }
    if let Some(pct) = inject {
        if kind != "headline" {
            eprintln!("bench-diff: --inject-cycles only applies to headline reports");
            std::process::exit(2);
        }
        eprintln!("[injecting +{pct}% cycles into {cur_path} for gate self-test]");
        inject_cycles(&mut cur, pct);
    }

    let report = match kind {
        "energy" => compare_energy(&base, &cur, &tol),
        "serving" => compare_serving(&base, &cur, &tol),
        "scaling" => compare_scaling(&base, &cur, &tol),
        _ => compare(&base, &cur, &tol),
    };
    for f in &report.findings {
        let tag = match f.severity {
            Severity::Regression => "REGRESSION",
            Severity::Improvement => "improvement",
            Severity::Structural => "STRUCTURAL",
        };
        println!("{tag:<12} {}", f.message);
    }
    println!(
        "bench-diff: {} comparisons, {} regressions, {} structural, {} improvements",
        report.compared,
        report.regressions(),
        report.structural(),
        report.findings.len() - report.regressions() - report.structural(),
    );
    if report.is_pass() {
        println!("bench-diff: PASS ({base_path} vs {cur_path})");
    } else {
        println!("bench-diff: FAIL ({base_path} vs {cur_path})");
        std::process::exit(1);
    }
}
