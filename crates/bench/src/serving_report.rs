//! The serving observatory: traffic intensities × Table II-style design
//! points through the `lva-serve` discrete-event tier, assembled into
//! `BENCH_serving.json` plus the committed `results/SERVING.md`.
//!
//! The paper evaluates one inference at a time; a deployment serves
//! traffic, and the co-design question becomes "what is the cheapest
//! hardware that holds the latency SLO under this load?". The pipeline:
//!
//! 1. **Calibrate** — for every (design point, tenant) pair, a two-frame
//!    `Experiment::run_stream` on the real simulator yields the cold
//!    (first-frame) and steady (warm) per-inference cycles. This is the
//!    only place the cycle-approximate machine runs; the serving tier is a
//!    queueing model *on top of* those measured costs.
//! 2. **Offer traffic** — seeded Poisson streams per tenant at intensities
//!    [`SERVING_INTENSITIES`] of the *reference* (most expensive) point's
//!    capacity. Seeds depend only on (load, tenant), so every design point
//!    faces the byte-identical arrival streams and differences are purely
//!    architectural. Deadlines too are anchored to the reference point's
//!    steady costs — fixed service-level expectations that cheaper points
//!    must strain to meet.
//! 3. **Observe** — per-tenant log-bucketed latency histograms (per-cell
//!    overall = exact shard merge across tenants), queue telemetry, and
//!    deadline/SLO accounting per cell.
//! 4. **Recommend** — at the knee intensity (the last, heaviest load), the
//!    `lva-whatif` SLO advisor names the cheapest design point whose
//!    measured overall p99 meets a target placed at the geometric mean of
//!    the ladder's best and worst p99 — so the sweep's own histograms
//!    confirm the recommendation and exhibit the next-cheaper point
//!    missing it.
//!
//! Same committed-artifact discipline as the energy/whatif observatories:
//! [`serving_grid_json`] is deterministic (no timestamps, no host data,
//! identical for any `--jobs`), and [`serving_markdown`] is a pure
//! renderer over the parsed record, so CI regenerates and byte-compares
//! both.

use lva_core::{parallel_map, EnergyModel};
use lva_serve::{
    cycles_to_ms, default_mix, evaluate, merge_arrivals, poisson_arrivals, queue_stats_json,
    simulate, tenant_stats_json, LatencyHistogram, Request, ServeConfig, SimResult, SloPolicy,
    TenantProfile, TenantSpec,
};
use lva_whatif::{design_cost, recommend, ServingPoint};

use crate::{
    scaled_input, ChromeTrace, ConvPolicy, Experiment, GemmVariant, HwTarget, Json, RunReport,
    Workload,
};

/// Offered load as a fraction of the reference point's steady-state
/// capacity. The last entry is the knee the SLO recommendation is decided
/// at.
pub const SERVING_INTENSITIES: [f64; 4] = [0.25, 0.5, 0.75, 0.95];

/// Requests offered per unit of tenant weight at every load (tenant `i`
/// receives `weight_i ×` this many requests).
pub const REQUESTS_PER_UNIT_WEIGHT: usize = 240;

/// The hardware ladder the serving sweep prices, strictly cost-ordered by
/// [`design_cost`] (asserted in tests): two SVE-512 rungs, the A64FX, and
/// two long-vector RVV rungs.
pub fn serving_design_points() -> Vec<(String, HwTarget)> {
    vec![
        ("sve512/1MB".into(), HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 }),
        ("sve512/4MB".into(), HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 4 << 20 }),
        ("a64fx".into(), HwTarget::A64fx),
        (
            "rvv2048x8/1MB".into(),
            HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
        ),
        (
            "rvv2048x8/4MB".into(),
            HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 4 << 20 },
        ),
    ]
}

/// The serving workload of one tenant at scale `div`: the full YOLOv3 is
/// capped at its usual 20-layer prefix, the others run whole (an explicit
/// `layers` caps everything, the CI configuration).
fn tenant_workload(t: &TenantSpec, div: usize, layers: Option<usize>) -> Workload {
    let layer_limit = match t.model {
        crate::ModelId::Yolov3 => Some(layers.unwrap_or(20)),
        _ => layers,
    };
    Workload { model: t.model, input_hw: scaled_input(t.model, div), layer_limit }
}

/// Calibration and the anchor report material for one design point.
struct PointCalibration {
    profiles: Vec<TenantProfile>,
    /// The anchor tenant's experiment and steady-state summary: the
    /// carrier for this point's `RunReport` (serving section attached).
    anchor: (Experiment, lva_core::RunSummary),
}

/// Index of the tenant whose steady run anchors each point's `RunReport`
/// (the interactive tiny detector, the mix's majority tenant).
const ANCHOR_TENANT: usize = 0;

fn calibrate(
    points: &[(String, HwTarget)],
    mix: &[TenantSpec],
    div: usize,
    layers: Option<usize>,
    jobs: usize,
    engine: Option<&mut lva_retime::RetimeEngine>,
) -> Vec<PointCalibration> {
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let grid: Vec<(usize, usize)> =
        (0..points.len()).flat_map(|p| (0..mix.len()).map(move |t| (p, t))).collect();
    let cell = |s: lva_core::StreamSummary| {
        let profile =
            TenantProfile { cold_cycles: s.cold_cycles(), steady_cycles: s.steady_cycles() };
        (profile, s.steady)
    };
    let cells: Vec<(Experiment, TenantProfile, lva_core::RunSummary)> = match engine {
        // Serial through the engine: each tenant workload's two-frame
        // stream is captured once, and every other ladder rung in the
        // same ISA class re-times that recording.
        Some(eng) => grid
            .iter()
            .map(|&(p, t)| {
                let e = Experiment::new(points[p].1, policy, tenant_workload(&mix[t], div, layers));
                eprintln!(".. calibrate {} | {}", e.hw.describe(), e.workload.describe());
                let s = eng.run_stream(&e, 2);
                let (profile, steady) = cell(s);
                (e, profile, steady)
            })
            .collect(),
        None => parallel_map(&grid, jobs, |_, &(p, t)| {
            let e = Experiment::new(points[p].1, policy, tenant_workload(&mix[t], div, layers));
            eprintln!(".. calibrate {} | {}", e.hw.describe(), e.workload.describe());
            let s = e.run_stream(2);
            let (profile, steady) = cell(s);
            (e, profile, steady)
        }),
    };
    points
        .iter()
        .enumerate()
        .map(|(p, _)| {
            let row = &cells[p * mix.len()..(p + 1) * mix.len()];
            PointCalibration {
                profiles: row.iter().map(|(_, pr, _)| *pr).collect(),
                anchor: (row[ANCHOR_TENANT].0.clone(), row[ANCHOR_TENANT].2.clone()),
            }
        })
        .collect()
}

/// Offered-traffic definition for one load: identical across design points
/// (seeds and deadlines depend only on the load index and the reference
/// calibration).
fn offered_arrivals(
    mix: &[TenantSpec],
    reference: &[TenantProfile],
    intensity: f64,
    load_idx: usize,
) -> Vec<Request> {
    // Mean cycles one mixed request costs the reference machine, warm.
    let mean_cost: f64 =
        mix.iter().zip(reference).map(|(t, p)| t.weight * p.steady_cycles as f64).sum();
    let streams: Vec<Vec<Request>> = mix
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mean_gap = mean_cost / (intensity * t.weight);
            let deadline = (t.deadline_mult * reference[i].steady_cycles as f64).round() as u64;
            let n = (t.weight * REQUESTS_PER_UNIT_WEIGHT as f64).round() as usize;
            let seed = 0x5eed_0000 + 97 * load_idx as u64 + i as u64;
            poisson_arrivals(seed, i, mean_gap, n, deadline)
        })
        .collect();
    merge_arrivals(&streams)
}

/// Overall (cross-tenant) view of one simulated cell: the tenant
/// histograms folded with the exact shard merge.
fn overall_json(r: &SimResult, freq_ghz: f64) -> Json {
    let mut latency = LatencyHistogram::new();
    let (mut offered, mut completed, mut shed, mut misses) = (0u64, 0u64, 0u64, 0u64);
    for t in &r.tenants {
        latency.merge(&t.latency);
        offered += t.offered;
        completed += t.completed;
        shed += t.shed;
        misses += t.deadline_misses();
    }
    let ms = |c: u64| cycles_to_ms(c, freq_ghz);
    let miss_frac = if offered == 0 { 0.0 } else { misses as f64 / offered as f64 };
    Json::obj()
        .field("offered", offered)
        .field("completed", completed)
        .field("shed", shed)
        .field("deadline_misses", misses)
        .field("miss_frac", miss_frac)
        .field("p50_ms", ms(latency.percentile(0.50)))
        .field("p95_ms", ms(latency.percentile(0.95)))
        .field("p99_ms", ms(latency.percentile(0.99)))
        .field("p999_ms", ms(latency.percentile(0.999)))
}

/// Simulate one (point, load) cell and serialize it.
fn cell_json(
    cal: &PointCalibration,
    mix: &[TenantSpec],
    arrivals: &[Request],
    intensity: f64,
    reference: &[TenantProfile],
    freq_ghz: f64,
) -> (Json, SimResult) {
    let r = simulate(&cal.profiles, arrivals, &ServeConfig::default());
    let mut tenants = Json::obj();
    for (i, t) in mix.iter().enumerate() {
        let stats = &r.tenants[i];
        let deadline_ms = cycles_to_ms(
            (t.deadline_mult * reference[i].steady_cycles as f64).round() as u64,
            freq_ghz,
        );
        let policy = SloPolicy { target_p99_ms: deadline_ms, miss_budget_frac: t.miss_budget_frac };
        let slo = evaluate(stats, &policy, freq_ghz);
        tenants =
            tenants.field(t.name(), tenant_stats_json(stats, freq_ghz).field("slo", slo.to_json()));
    }
    let j = Json::obj()
        .field("intensity", intensity)
        .field("overall", overall_json(&r, freq_ghz))
        .field("queue", queue_stats_json(&r.queue))
        .field("tenants", tenants);
    (j, r)
}

/// Assemble the full `BENCH_serving.json` value. Deterministic for fixed
/// `(div, layers)` — independent of `jobs` and the host; the simulated
/// cycle clock is the only time source anywhere in the pipeline.
pub fn serving_grid_json(div: usize, layers: Option<usize>, jobs: usize) -> Json {
    serving_grid_json_with(div, layers, jobs, None)
}

/// [`serving_grid_json`] with an optional retime engine (the `--retime`
/// path): the ladder calibration — the only place the cycle-approximate
/// machine runs — goes through the engine, so each tenant stream is
/// captured once and re-timed per rung. Output is bit-identical.
pub fn serving_grid_json_with(
    div: usize,
    layers: Option<usize>,
    jobs: usize,
    engine: Option<&mut lva_retime::RetimeEngine>,
) -> Json {
    let freq_ghz = EnergyModel::default().freq_ghz;
    let mix = default_mix();
    let points = serving_design_points();
    let cal = calibrate(&points, &mix, div, layers, jobs, engine);
    let reference = &cal.last().expect("non-empty ladder").profiles;

    let mut tenants_j = Json::Arr(Vec::new());
    if let Json::Arr(arr) = &mut tenants_j {
        for (i, t) in mix.iter().enumerate() {
            let deadline_cycles =
                (t.deadline_mult * reference[i].steady_cycles as f64).round() as u64;
            arr.push(
                Json::obj()
                    .field("name", t.name())
                    .field("weight", t.weight)
                    .field("deadline_mult", t.deadline_mult)
                    .field("deadline_ms", cycles_to_ms(deadline_cycles, freq_ghz))
                    .field("miss_budget_frac", t.miss_budget_frac)
                    .field("requests", (t.weight * REQUESTS_PER_UNIT_WEIGHT as f64).round() as u64),
            );
        }
    }

    // One arrival set per load, shared by every design point.
    let arrivals: Vec<Vec<Request>> = SERVING_INTENSITIES
        .iter()
        .enumerate()
        .map(|(li, &rho)| offered_arrivals(&mix, reference, rho, li))
        .collect();

    let mut knee_points: Vec<ServingPoint> = Vec::new();
    let mut points_json: Vec<Json> = Vec::new();
    for ((name, hw), c) in points.iter().zip(&cal) {
        let mut calibration = Json::obj();
        for (t, p) in mix.iter().zip(&c.profiles) {
            calibration = calibration.field(
                t.name(),
                Json::obj()
                    .field("cold_cycles", p.cold_cycles)
                    .field("steady_cycles", p.steady_cycles)
                    .field("cold_ms", cycles_to_ms(p.cold_cycles, freq_ghz))
                    .field("steady_ms", cycles_to_ms(p.steady_cycles, freq_ghz)),
            );
        }
        let mut loads: Vec<Json> = Vec::new();
        let mut knee_overall: Option<Json> = None;
        for (li, &rho) in SERVING_INTENSITIES.iter().enumerate() {
            let (j, r) = cell_json(c, &mix, &arrivals[li], rho, reference, freq_ghz);
            if li == SERVING_INTENSITIES.len() - 1 {
                knee_overall = Some(j.get("overall").expect("overall section").clone());
                let _ = &r;
            }
            loads.push(j);
        }
        let knee = knee_overall.expect("at least one load");
        knee_points.push(ServingPoint {
            name: name.clone(),
            cost: design_cost(hw),
            p99_ms: knee.get("p99_ms").and_then(Json::as_f64).unwrap_or(f64::INFINITY),
            miss_frac: knee.get("miss_frac").and_then(Json::as_f64).unwrap_or(1.0),
        });
        // The point's RunReport: the anchor tenant's steady frame, with the
        // knee-cell serving view attached through the uniform
        // optional-section path (PR 5's single-emission discipline).
        let (anchor_e, anchor_s) = &c.anchor;
        let report =
            RunReport::new(format!("serving_{}", name.replace('/', "_")), anchor_e, anchor_s)
                .with_serving(
                    Json::obj()
                        .field("anchor_tenant", mix[ANCHOR_TENANT].name())
                        .field("knee_intensity", *SERVING_INTENSITIES.last().expect("non-empty"))
                        .field("overall", knee.clone()),
                );
        points_json.push(
            Json::obj()
                .field("name", name.as_str())
                .field("hw", hw.describe())
                .field("cost", design_cost(hw))
                .field("calibration", calibration)
                .field("loads", Json::Arr(loads))
                .field("report", report.to_json()),
        );
    }

    // SLO target: geometric mean of the ladder's best and worst knee p99 —
    // guaranteed to split the ladder whenever it has any latency contrast,
    // so the recommendation always carries a real counterfactual rung.
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for p in &knee_points {
        lo = lo.min(p.p99_ms);
        hi = hi.max(p.p99_ms);
    }
    let target_p99_ms = (lo * hi).sqrt();
    let rec = recommend(&knee_points, target_p99_ms);

    Json::obj()
        .field("bench", "serving")
        .field("div", div as u64)
        .field("freq_ghz", freq_ghz)
        .field("max_batch", ServeConfig::default().max_batch as u64)
        .field("requests_per_unit_weight", REQUESTS_PER_UNIT_WEIGHT as u64)
        .field(
            "intensities",
            Json::Arr(SERVING_INTENSITIES.iter().map(|&x| Json::from(x)).collect()),
        )
        .field("knee_intensity", *SERVING_INTENSITIES.last().expect("non-empty"))
        .field("reference_point", points.last().expect("non-empty").0.as_str())
        .field("tenants", tenants_j)
        .field("points", Json::Arr(points_json))
        .field("slo_recommendation", rec.to_json())
}

/// Re-simulate the knee cell of the *reference* design point and render it
/// as a Chrome trace (machine/batch/queue-depth/request tracks). Only the
/// reference point is calibrated — the `--chrome` path of `exp-serve`.
pub fn knee_chrome_trace(div: usize, layers: Option<usize>, jobs: usize) -> ChromeTrace {
    let mix = default_mix();
    let points = serving_design_points();
    let reference_point = vec![points.last().expect("non-empty ladder").clone()];
    let cal = calibrate(&reference_point, &mix, div, layers, jobs, None);
    let reference = &cal[0].profiles;
    let knee_idx = SERVING_INTENSITIES.len() - 1;
    let arrivals = offered_arrivals(&mix, reference, SERVING_INTENSITIES[knee_idx], knee_idx);
    let r = simulate(reference, &arrivals, &ServeConfig::default());
    let names: Vec<&str> = mix.iter().map(TenantSpec::name).collect();
    let mut t = lva_serve::chrome_trace(&r, &names);
    t.note("point", &reference_point[0].0);
    t.note("intensity", &format!("{}", SERVING_INTENSITIES[knee_idx]));
    t
}

fn get_str<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Render `results/SERVING.md` from a parsed `BENCH_serving.json`. Pure
/// function of its input — CI regenerates it and byte-compares against the
/// committed copy.
pub fn serving_markdown(j: &Json) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let div = get_u64(j, "div");
    let _ = writeln!(md, "# Serving observatory\n");
    let _ = writeln!(
        md,
        "The `lva-serve` batching inference tier over the Table II-style hardware \
         ladder at `--div {div}` (DESIGN.md §16). Every design point faces \
         byte-identical Poisson arrival streams at {} of the reference point's \
         (`{}`) steady capacity; per-tenant costs are calibrated by two-frame \
         streams on the cycle-approximate simulator. Latencies are log-bucketed \
         histogram percentiles (≤{:.1}% relative error), milliseconds at \
         {} GHz. Regenerate with `cargo run --release --bin exp-serve`.\n",
        j.get("intensities")
            .and_then(Json::as_arr)
            .map(|a| a
                .iter()
                .map(|x| format!("{}×", x.as_f64().unwrap_or(0.0)))
                .collect::<Vec<_>>()
                .join("/"))
            .unwrap_or_default(),
        get_str(j, "reference_point"),
        100.0 * lva_serve::MAX_REL_ERROR,
        get_f64(j, "freq_ghz"),
    );

    let _ = writeln!(md, "## Tenant mix\n");
    let _ = writeln!(md, "| tenant | weight | requests/load | deadline (ms) | miss budget |");
    let _ = writeln!(md, "|---|---:|---:|---:|---:|");
    for t in j.get("tenants").and_then(Json::as_arr).unwrap_or(&[]) {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {} | {:.3} | {:.0}% |",
            get_str(t, "name"),
            get_f64(t, "weight"),
            get_u64(t, "requests"),
            get_f64(t, "deadline_ms"),
            100.0 * get_f64(t, "miss_budget_frac"),
        );
    }
    let _ = writeln!(md);

    let rec = j.get("slo_recommendation");
    let _ = writeln!(md, "## SLO recommendation\n");
    if let Some(rec) = rec {
        let target = get_f64(rec, "target_p99_ms");
        match rec.get("recommended") {
            Some(p) => {
                let _ = writeln!(
                    md,
                    "Cheapest design point holding overall p99 ≤ **{target:.3} ms** at the \
                     {}× knee: **{}** (cost {:.0}, measured p99 {:.3} ms, \
                     deadline-miss {:.1}%).",
                    get_f64(j, "knee_intensity"),
                    get_str(p, "point"),
                    get_f64(p, "cost"),
                    get_f64(p, "p99_ms"),
                    100.0 * get_f64(p, "miss_frac"),
                );
                match rec.get("next_cheaper_misses") {
                    Some(n) => {
                        let _ = writeln!(
                            md,
                            "One rung down, **{}** (cost {:.0}) misses at p99 {:.3} ms — the \
                             recommendation's own counterfactual.\n",
                            get_str(n, "point"),
                            get_f64(n, "cost"),
                            get_f64(n, "p99_ms"),
                        );
                    }
                    None => {
                        let _ = writeln!(md, "It is already the cheapest rung of the ladder.\n");
                    }
                }
            }
            None => {
                let _ = writeln!(md, "No ladder point holds p99 ≤ {target:.3} ms at the knee.\n");
            }
        }
    }

    let _ = writeln!(md, "## Design points under load\n");
    for p in j.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
        let _ = writeln!(
            md,
            "### {} — {} (cost {:.0})\n",
            get_str(p, "name"),
            get_str(p, "hw"),
            get_f64(p, "cost")
        );
        let _ = writeln!(
            md,
            "| load | p50 (ms) | p95 (ms) | p99 (ms) | p99.9 (ms) | miss % | shed | util | avg batch | switches |"
        );
        let _ = writeln!(md, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for l in p.get("loads").and_then(Json::as_arr).unwrap_or(&[]) {
            let o = l.get("overall").cloned().unwrap_or_else(Json::obj);
            let q = l.get("queue").cloned().unwrap_or_else(Json::obj);
            let _ = writeln!(
                md,
                "| {}× | {:.3} | {:.3} | {:.3} | {:.3} | {:.1} | {} | {:.2} | {:.2} | {} |",
                get_f64(l, "intensity"),
                get_f64(&o, "p50_ms"),
                get_f64(&o, "p95_ms"),
                get_f64(&o, "p99_ms"),
                get_f64(&o, "p999_ms"),
                100.0 * get_f64(&o, "miss_frac"),
                get_u64(&o, "shed"),
                get_f64(&q, "utilization"),
                get_f64(&q, "avg_batch"),
                get_u64(&q, "switches"),
            );
        }
        let _ = writeln!(md);
    }

    let _ = writeln!(md, "## Latency-vs-load knee per tenant\n");
    let _ = writeln!(
        md,
        "Per-tenant p99 (ms) as offered load rises — the knee is where a column \
         departs from its low-load plateau.\n"
    );
    let points = j.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    for t in j.get("tenants").and_then(Json::as_arr).unwrap_or(&[]) {
        let tname = get_str(t, "name");
        let _ = writeln!(md, "### {tname}\n");
        let mut header = String::from("| load |");
        let mut rule = String::from("|---:|");
        for p in points {
            let _ = write!(header, " {} |", get_str(p, "name"));
            rule.push_str("---:|");
        }
        let _ = writeln!(md, "{header}");
        let _ = writeln!(md, "{rule}");
        let n_loads = j.get("intensities").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        for li in 0..n_loads {
            let mut row = format!(
                "| {}× |",
                j.get("intensities")
                    .and_then(Json::as_arr)
                    .and_then(|a| a.get(li))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            );
            for p in points {
                let p99 = p
                    .get("loads")
                    .and_then(Json::as_arr)
                    .and_then(|ls| ls.get(li))
                    .and_then(|l| l.get("tenants"))
                    .and_then(|ts| ts.get(tname))
                    .map_or(0.0, |s| get_f64(s, "p99_ms"));
                let _ = write!(row, " {p99:.3} |");
            }
            let _ = writeln!(md, "{row}");
        }
        let _ = writeln!(md);
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Json {
        // Reduced sweep: tiny scale, short prefixes — the unit-test
        // configuration (CI runs the committed default separately).
        serving_grid_json(16, Some(4), 2)
    }

    #[test]
    fn ladder_is_strictly_cost_ordered() {
        let pts = serving_design_points();
        let costs: Vec<f64> = pts.iter().map(|(_, hw)| design_cost(hw)).collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "ladder must climb in cost: {costs:?}");
        }
        assert_eq!(pts.len(), 5);
    }

    #[test]
    fn serving_grid_is_deterministic_across_jobs() {
        let a = tiny_grid();
        let b = serving_grid_json(16, Some(4), 1);
        assert_eq!(
            a.to_string_pretty(),
            b.to_string_pretty(),
            "serving record must not depend on --jobs"
        );
    }

    #[test]
    fn recommendation_is_confirmed_by_the_sweeps_own_histograms() {
        let j = tiny_grid();
        let rec = j.get("slo_recommendation").expect("recommendation section");
        let target = rec.get("target_p99_ms").and_then(Json::as_f64).expect("target");
        assert!(target > 0.0);
        assert_eq!(rec.get("met").and_then(Json::as_bool), Some(true), "geomean target is met");
        let p = rec.get("recommended").expect("recommended point");
        let rec_name = p.get("point").and_then(Json::as_str).expect("name");
        let rec_p99 = p.get("p99_ms").and_then(Json::as_f64).expect("p99");
        assert!(rec_p99 <= target, "recommended point meets the target");
        // Cross-check against the point's own knee cell.
        let points = j.get("points").and_then(Json::as_arr).expect("points");
        let knee_p99 = |name: &str| {
            let pt = points
                .iter()
                .find(|q| q.get("name").and_then(Json::as_str) == Some(name))
                .expect("recommended point is in the sweep");
            let loads = pt.get("loads").and_then(Json::as_arr).expect("loads");
            loads
                .last()
                .and_then(|l| l.get("overall"))
                .and_then(|o| o.get("p99_ms"))
                .and_then(Json::as_f64)
                .expect("knee p99")
        };
        assert_eq!(knee_p99(rec_name), rec_p99, "recommendation quotes the sweep's histogram");
        // Every cheaper rung misses; the witness is the dearest of them.
        if let Some(n) = rec.get("next_cheaper_misses") {
            let n_p99 = n.get("p99_ms").and_then(Json::as_f64).expect("witness p99");
            assert!(n_p99 > target, "the next-cheaper witness must miss");
            assert_eq!(
                knee_p99(n.get("point").and_then(Json::as_str).expect("witness name")),
                n_p99
            );
        }
    }

    #[test]
    fn cells_conserve_requests_and_the_ladder_orders_the_knee_tail() {
        let j = tiny_grid();
        let offered_per_load: u64 = j
            .get("tenants")
            .and_then(Json::as_arr)
            .expect("tenants")
            .iter()
            .map(|t| get_u64(t, "requests"))
            .sum();
        let points = j.get("points").and_then(Json::as_arr).expect("points");
        // Faster hardware under byte-identical arrivals cannot lose the
        // knee tail: the dearest rung's p99 ≤ the cheapest rung's. (No
        // per-point monotonicity in *load* is asserted — dynamic batching
        // legitimately improves the median as load rises, because denser
        // queues amortize cold-switch costs over larger batches.)
        let knee_p99 = |p: &Json| {
            p.get("loads")
                .and_then(Json::as_arr)
                .and_then(|ls| ls.last())
                .and_then(|l| l.get("overall"))
                .map_or(0.0, |o| get_f64(o, "p99_ms"))
        };
        let cheapest = points.first().expect("non-empty");
        let dearest = points.last().expect("non-empty");
        assert!(
            knee_p99(dearest) <= knee_p99(cheapest),
            "dearest rung {} must not have a worse knee p99 than cheapest {}",
            knee_p99(dearest),
            knee_p99(cheapest)
        );
        for p in points {
            let loads = p.get("loads").and_then(Json::as_arr).expect("loads");
            assert_eq!(loads.len(), SERVING_INTENSITIES.len());
            for l in loads {
                let o = l.get("overall").expect("overall");
                assert_eq!(
                    get_u64(o, "completed") + get_u64(o, "shed"),
                    get_u64(o, "offered"),
                    "conservation in every cell"
                );
                assert_eq!(get_u64(o, "offered"), offered_per_load);
                // Tail orderings the histogram must respect.
                assert!(get_f64(o, "p50_ms") <= get_f64(o, "p95_ms"));
                assert!(get_f64(o, "p95_ms") <= get_f64(o, "p99_ms"));
                assert!(get_f64(o, "p99_ms") <= get_f64(o, "p999_ms"));
            }
            // The embedded RunReport carries the serving section.
            let rep = p.get("report").expect("per-point RunReport");
            let serving = rep.get("serving").expect("serving section attached");
            assert_eq!(serving.get("anchor_tenant").and_then(Json::as_str), Some("yolov3_tiny"));
            assert!(serving.get("overall").and_then(|o| o.get("p99_ms")).is_some());
        }
    }

    #[test]
    fn serving_markdown_is_pure_and_complete() {
        let j = tiny_grid();
        let md = serving_markdown(&j);
        assert_eq!(md, serving_markdown(&j), "renderer is pure");
        for needle in [
            "# Serving observatory",
            "## SLO recommendation",
            "## Design points under load",
            "## Latency-vs-load knee per tenant",
            "rvv2048x8/4MB",
            "yolov3_tiny",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // Round-trips through serialization (the committed-artifact path).
        let reparsed = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(serving_markdown(&reparsed), md);
    }

    #[test]
    fn knee_chrome_trace_is_renderable() {
        let t = knee_chrome_trace(16, Some(4), 2);
        assert_eq!(t.validate(), Ok(()));
        assert!(!t.is_empty());
        let j = t.to_json();
        let evs = j.get("traceEvents").and_then(Json::as_arr).expect("events");
        assert!(evs.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }
}
