//! The energy observatory: sweeps the VL × L2 co-design grid through the
//! `lva-energy` streaming probe and assembles `BENCH_energy.json` plus the
//! committed `results/PARETO.md`.
//!
//! The paper's performance story (Figs. 6/7) keeps (weakly) improving all
//! the way to the 256 MB L2; the energy view disagrees: larger arrays cost
//! more per access (sqrt scaling) and leak more per cycle, so the
//! EDP-optimal L2 is *finite*. The artifacts make both optima and the full
//! cycles-vs-energy Pareto frontier explicit per network.
//!
//! Same discipline as the whatif advisor: `energy_grid_json` produces a
//! deterministic machine-readable record (no timestamps, no host data —
//! identical across hosts and `--jobs` settings), and [`pareto_markdown`]
//! is a pure renderer over it, so CI can regenerate and byte-compare both.

use lva_core::experiment::fmt_bytes;
use lva_core::{parallel_map, EnergyModel};

use crate::{fmt_cycles, ConvPolicy, Experiment, GemmVariant, HwTarget, Json, ModelId, Workload};

/// The vector lengths of the energy grid (short / paper-sweet-spot / long;
/// the full six-point RVV sweep triples runtime for no extra insight on the
/// energy axes).
pub const ENERGY_VLENS: [usize; 3] = [512, 2048, 8192];

/// One design point's measurements, kept for frontier/optima math before
/// everything lands in JSON.
struct Point {
    name: String,
    l2_bytes: usize,
    cycles: u64,
    total_j: f64,
    edp_js: f64,
    json: Json,
}

/// Non-dominated points in (cycles, total_j): `i` is on the frontier iff no
/// other point is at least as good on both axes and strictly better on one.
fn pareto_flags(points: &[Point]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                q.cycles <= p.cycles
                    && q.total_j <= p.total_j
                    && (q.cycles < p.cycles || q.total_j < p.total_j)
            })
        })
        .collect()
}

/// Index of the cycles-optimal point. Ties go to the *largest* L2 (the
/// performance-first designer buys all the cache that does not hurt), which
/// keeps the headline contrast honest: cycles-optimal L2 sits at the grid
/// maximum precisely because performance alone never punishes capacity.
fn cycles_optimal(points: &[Point]) -> usize {
    let mut best = 0;
    for (i, p) in points.iter().enumerate() {
        let b = &points[best];
        if p.cycles < b.cycles || (p.cycles == b.cycles && p.l2_bytes > b.l2_bytes) {
            best = i;
        }
    }
    best
}

/// Index of the EDP-optimal point. Ties go to the *smallest* L2 — when the
/// figure of merit is indifferent, spend less area.
fn edp_optimal(points: &[Point]) -> usize {
    let mut best = 0;
    for (i, p) in points.iter().enumerate() {
        let b = &points[best];
        if p.edp_js < b.edp_js || (p.edp_js == b.edp_js && p.l2_bytes < b.l2_bytes) {
            best = i;
        }
    }
    best
}

/// Sweep one network over the VL × L2 grid (fanned over `jobs` threads,
/// or serially through the retime engine when one is supplied: each VL
/// captures once and the L2 axis re-times the recording) and return its
/// record. Every point runs through the streaming probe and is gated on
/// the sum-to-total invariant before it enters the report.
fn network_json(
    key: &str,
    workload: Workload,
    jobs: usize,
    engine: Option<&mut lva_retime::RetimeEngine>,
) -> Json {
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let model = EnergyModel::default();
    let grid: Vec<(usize, usize)> = ENERGY_VLENS
        .into_iter()
        .flat_map(|v| crate::L2_SIZES.into_iter().map(move |l2| (v, l2)))
        .collect();
    let experiment = |&(vlen, l2): &(usize, usize)| {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 },
            policy,
            workload,
        );
        eprintln!(".. energy {} | {}", e.hw.describe(), e.workload.describe());
        e
    };
    let point = |&(vlen, l2): &(usize, usize),
                 s: &lva_core::RunSummary,
                 att: &lva_core::EnergyAttribution| {
        let err = att.reconciliation_rel_err();
        assert!(
            err < 1e-6,
            "sum-to-total violated at vlen={vlen} l2={l2}: streamed {} J vs aggregate {} J",
            att.total.total_j(),
            att.report.total_j()
        );
        let name = format!("{vlen}b/{}", fmt_bytes(l2));
        let b = &att.total;
        let json = Json::obj()
            .field("name", name.as_str())
            .field("vlen_bits", vlen)
            .field("l2_bytes", l2)
            .field("l2", fmt_bytes(l2))
            .field("cycles", s.cycles)
            .field("seconds", att.seconds)
            .field("total_j", b.total_j())
            .field("compute_j", b.compute_j())
            .field("memory_j", b.memory_j())
            .field("static_j", b.static_j)
            .field("dram_j", b.dram_j)
            .field("edp_js", att.report.edp())
            .field("ed2p_js2", att.report.ed2p())
            .field("roofline_pct", att.roofline_pct())
            .field("reconciliation_rel_err", err);
        Point {
            name,
            l2_bytes: l2,
            cycles: s.cycles,
            total_j: b.total_j(),
            edp_js: att.report.edp(),
            json,
        }
    };
    let points: Vec<Point> = match engine {
        // The retime path is serial: the engine's memo store is shared
        // mutable state, and re-timing a cell is far cheaper than the
        // simulation it replaces.
        Some(eng) => grid
            .iter()
            .map(|cell| {
                let e = experiment(cell);
                let (s, att) = eng.run_energy(&e, &model);
                point(cell, &s, &att)
            })
            .collect(),
        None => parallel_map(&grid, jobs, |_, cell| {
            let e = experiment(cell);
            let (s, att) = e.run_energy(&model);
            point(cell, &s, &att)
        }),
    };
    let flags = pareto_flags(&points);
    let ci = cycles_optimal(&points);
    let ei = edp_optimal(&points);
    let arr: Vec<Json> =
        points.iter().zip(&flags).map(|(p, &on)| p.json.clone().field("pareto", on)).collect();
    Json::obj()
        .field("name", key)
        .field("network", workload.describe())
        .field("cycles_optimal", points[ci].name.as_str())
        .field("cycles_optimal_l2_bytes", points[ci].l2_bytes)
        .field("edp_optimal", points[ei].name.as_str())
        .field("edp_optimal_l2_bytes", points[ei].l2_bytes)
        .field("points", arr)
}

/// Assemble the full `BENCH_energy.json` value: the VL × L2 grid for each
/// headline network, per-point energy from the streaming probe, frontier
/// flags, and both optima. Deterministic for fixed `(div, layers)` —
/// independent of `jobs` and the host.
pub fn energy_grid_json(div: usize, layers: Option<usize>, jobs: usize) -> Json {
    energy_grid_json_with(div, layers, jobs, None)
}

/// [`energy_grid_json`] with an optional retime engine (the `--retime`
/// path): per network and VL, one functional capture serves the entire
/// L2 axis. Output is bit-identical to the full-simulation grid.
pub fn energy_grid_json_with(
    div: usize,
    layers: Option<usize>,
    jobs: usize,
    mut engine: Option<&mut lva_retime::RetimeEngine>,
) -> Json {
    let networks = [
        (
            "yolov3",
            Workload {
                model: ModelId::Yolov3,
                input_hw: crate::scaled_input(ModelId::Yolov3, div),
                layer_limit: Some(layers.unwrap_or(20)),
            },
        ),
        (
            "yolov3_tiny",
            Workload {
                model: ModelId::Yolov3Tiny,
                input_hw: crate::scaled_input(ModelId::Yolov3Tiny, div),
                layer_limit: layers,
            },
        ),
    ];
    let m = EnergyModel::default();
    let constants = Json::obj()
        .field("pj_per_vector_flop", m.pj_per_vector_flop)
        .field("pj_per_scalar_op", m.pj_per_scalar_op)
        .field("pj_per_vec_instr", m.pj_per_vec_instr)
        .field("pj_per_l1_access", m.pj_per_l1_access)
        .field("pj_per_l2_access_1mb", m.pj_per_l2_access_1mb)
        .field("pj_per_dram_access", m.pj_per_dram_access)
        .field("leakage_mw_per_mb_l2", m.leakage_mw_per_mb_l2)
        .field("core_static_mw", m.core_static_mw)
        .field("freq_ghz", m.freq_ghz);
    Json::obj().field("bench", "energy").field("div", div as u64).field("model", constants).field(
        "networks",
        Json::Arr(
            networks
                .into_iter()
                .map(|(k, w)| network_json(k, w, jobs, engine.as_deref_mut()))
                .collect(),
        ),
    )
}

fn get_str<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Render `results/PARETO.md` from a parsed `BENCH_energy.json`. Pure
/// function of its input: no timestamps, no host data — CI regenerates it
/// and byte-compares against the committed copy.
pub fn pareto_markdown(j: &Json) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let div = j.get("div").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(md, "# Cycles-vs-energy Pareto frontier\n");
    let _ = writeln!(
        md,
        "The RVV VL × L2 co-design grid under the `lva-energy` event-energy model \
         at `--div {div}` (DESIGN.md §14). `◆` marks the cycles-vs-energy Pareto \
         frontier: points no other design beats on both axes at once. Performance \
         alone keeps (weakly) improving with cache capacity, so the cycles-optimal \
         L2 sits at the grid maximum — but access energy scales with √capacity and \
         leakage with capacity, so the EDP-optimal L2 is finite. Regenerate with \
         `cargo run --release --bin exp-energy`.\n"
    );
    for net in j.get("networks").and_then(Json::as_arr).unwrap_or(&[]) {
        let _ = writeln!(md, "## {}\n", get_str(net, "network"));
        let _ = writeln!(
            md,
            "Cycles-optimal: **{}** · EDP-optimal: **{}**\n",
            get_str(net, "cycles_optimal"),
            get_str(net, "edp_optimal")
        );
        let _ = writeln!(
            md,
            "| design point | cycles | energy (mJ) | compute | memory | static | EDP (µJ·s) | frontier |"
        );
        let _ = writeln!(md, "|---|---:|---:|---:|---:|---:|---:|:---:|");
        for p in net.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = get_str(p, "name");
            let frontier = matches!(p.get("pareto"), Some(Json::Bool(true)));
            let mut label = String::new();
            if name == get_str(net, "cycles_optimal") {
                label.push_str(" ← cycles-opt");
            }
            if name == get_str(net, "edp_optimal") {
                label.push_str(" ← EDP-opt");
            }
            let _ = writeln!(
                md,
                "| {name}{label} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.2} | {} |",
                fmt_cycles(p.get("cycles").and_then(Json::as_u64).unwrap_or(0)),
                1e3 * get_f64(p, "total_j"),
                1e3 * get_f64(p, "compute_j"),
                1e3 * get_f64(p, "memory_j"),
                1e3 * get_f64(p, "static_j"),
                1e6 * get_f64(p, "edp_js"),
                if frontier { "◆" } else { "" }
            );
        }
        let _ = writeln!(md);
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Json {
        // Reduced sweep: tiny div, few layers — the CI configuration.
        energy_grid_json(8, Some(6), 2)
    }

    #[test]
    fn energy_grid_is_deterministic_across_jobs() {
        let a = tiny_grid();
        let b = energy_grid_json(8, Some(6), 1);
        assert_eq!(
            a.to_string_pretty(),
            b.to_string_pretty(),
            "grid record must not depend on --jobs"
        );
    }

    #[test]
    fn optima_contrast_holds_on_the_reduced_grid() {
        let j = tiny_grid();
        let max_l2 = *crate::L2_SIZES.last().unwrap() as u64;
        for net in j.get("networks").and_then(Json::as_arr).expect("networks") {
            let co = net.get("cycles_optimal_l2_bytes").and_then(Json::as_u64).expect("cycles l2");
            let eo = net.get("edp_optimal_l2_bytes").and_then(Json::as_u64).expect("edp l2");
            assert_eq!(co, max_l2, "{}: performance never punishes capacity", get_str(net, "name"));
            assert!(eo < co, "{}: EDP-optimal L2 must be finite", get_str(net, "name"));
            // Both optima sit on the frontier, and the frontier is sane.
            let points = net.get("points").and_then(Json::as_arr).expect("points");
            assert_eq!(points.len(), ENERGY_VLENS.len() * crate::L2_SIZES.len());
            let frontier: Vec<&Json> = points
                .iter()
                .filter(|p| matches!(p.get("pareto"), Some(Json::Bool(true))))
                .collect();
            assert!(!frontier.is_empty());
            // The EDP optimum is provably non-dominated (dominating a point
            // strictly lowers its EDP). The cycles optimum need not be: its
            // tie-break deliberately takes the largest L2 among cycle-equal
            // points, which a smaller cache can dominate on energy — so we
            // only require that it achieves the global cycle minimum.
            let edp_opt = get_str(net, "edp_optimal");
            assert!(
                frontier.iter().any(|p| get_str(p, "name") == edp_opt),
                "EDP optimum {edp_opt} must be non-dominated"
            );
            let min_cycles =
                points.iter().filter_map(|p| p.get("cycles").and_then(Json::as_u64)).min();
            let cyc_opt = points
                .iter()
                .find(|p| get_str(p, "name") == get_str(net, "cycles_optimal"))
                .expect("cycles optimum is a grid point");
            assert_eq!(cyc_opt.get("cycles").and_then(Json::as_u64), min_cycles);
            for p in points {
                let err = get_f64(p, "reconciliation_rel_err");
                assert!(err < 1e-6, "sum-to-total on every published point, got {err}");
            }
        }
    }

    #[test]
    fn pareto_markdown_is_pure_and_complete() {
        let j = tiny_grid();
        let md = pareto_markdown(&j);
        assert_eq!(md, pareto_markdown(&j), "renderer is pure");
        for needle in ["# Cycles-vs-energy Pareto frontier", "EDP-opt", "cycles-opt", "◆"] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // Round-trips through serialization (the committed-artifact path).
        let reparsed = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(pareto_markdown(&reparsed), md);
    }

    #[test]
    fn pareto_flags_mark_exactly_the_non_dominated() {
        let mk = |cycles: u64, j: f64| Point {
            name: String::new(),
            l2_bytes: 0,
            cycles,
            total_j: j,
            edp_js: 0.0,
            json: Json::obj(),
        };
        // (100, 1.0) and (50, 2.0) trade off; (120, 3.0) is dominated by both.
        let pts = vec![mk(100, 1.0), mk(50, 2.0), mk(120, 3.0)];
        assert_eq!(pareto_flags(&pts), vec![true, true, false]);
        // A duplicate of a frontier point stays on the frontier (not
        // strictly beaten), matching the weak-dominance definition.
        let pts = vec![mk(100, 1.0), mk(100, 1.0)];
        assert_eq!(pareto_flags(&pts), vec![true, true]);
    }
}
