//! Parallel execution of independent design-point runs for the `exp-*`
//! binaries.
//!
//! Each sweep entry is a pure function of its [`Experiment`] (simulated
//! machines share no state), so entries can run on worker threads via
//! [`lva_core::parallel_map`]. Results return in **submission order** no
//! matter how many threads ran, and per-run stderr logging is emitted in
//! that same order, so `--jobs N` output is reproducible.
//!
//! Every run also records its own host wall-clock (`host_ms`) — the raw
//! material for the `--wallclock` self-benchmark report.

use std::time::Instant;

use crate::{fmt_cycles, Experiment, MemProfile, RunSummary};

/// Outcome of one sweep entry: the simulated measurements plus what they
/// cost to produce on the host.
pub struct SweepRun {
    pub summary: RunSummary,
    /// The `lva-prof` memory profile, when requested (timing unchanged).
    pub profile: Option<MemProfile>,
    /// Host wall-clock milliseconds this single run took.
    pub host_ms: f64,
}

fn one_run(e: &Experiment, profile: bool) -> SweepRun {
    let t0 = Instant::now();
    let (summary, profile) = if profile {
        let (s, p) = e.run_profiled();
        (s, Some(p))
    } else {
        (e.run(), None)
    };
    SweepRun { summary, profile, host_ms: t0.elapsed().as_secs_f64() * 1e3 }
}

fn log_run(name: &str, r: &SweepRun) {
    eprintln!(
        "   {name}: {} cycles, avg VL {:.0}b, L2 miss {:.1}% ({:.0} ms host)",
        fmt_cycles(r.summary.cycles),
        r.summary.avg_vlen_bits,
        100.0 * r.summary.l2_miss_rate,
        r.host_ms,
    );
}

/// Run named experiments on up to `jobs` worker threads (1 = the plain
/// serial loop), returning results in submission order.
///
/// The simulated outputs are identical for every `jobs` value — the
/// executor only changes who executes what when. `quiet` suppresses the
/// per-run stderr log (used by the repeated `--wallclock` passes).
pub fn run_sweep(
    specs: &[(String, Experiment)],
    jobs: usize,
    profile: bool,
    quiet: bool,
) -> Vec<SweepRun> {
    if !quiet && jobs > 1 && specs.len() > 1 {
        eprintln!(".. {} runs on {} threads", specs.len(), jobs.min(specs.len()));
    }
    let serial = jobs <= 1 || specs.len() <= 1;
    let runs = lva_core::parallel_map(specs, jobs, |_, (name, e)| {
        // Serial mode runs inline on this thread: log around each run,
        // exactly like the historical per-run loop.
        if !quiet && serial {
            eprintln!(".. {} | {} [{name}]", e.hw.describe(), e.workload.describe());
        }
        let r = one_run(e, profile);
        if !quiet && serial {
            log_run(name, &r);
        }
        r
    });
    if !quiet && !serial {
        for ((name, e), r) in specs.iter().zip(&runs) {
            eprintln!(".. {} | {} [{name}]", e.hw.describe(), e.workload.describe());
            log_run(name, r);
        }
    }
    runs
}

/// Run named experiments through the retime engine's front door instead
/// of the full simulator: the first visit to a semantic stream captures
/// it, every later design point re-times the recording.
///
/// Always serial — the engine's memo store is one mutable structure, and
/// re-timing is fast enough that thread fan-out would only buy back a
/// fraction of the capture cost. Results are bit-identical to
/// [`run_sweep`] at any `jobs` (the engine asserts this per run under
/// `--retime=verify`), so `--jobs` changes nothing but wall-clock.
pub fn run_sweep_retimed(
    specs: &[(String, Experiment)],
    engine: &mut lva_retime::RetimeEngine,
    quiet: bool,
) -> Vec<SweepRun> {
    specs
        .iter()
        .map(|(name, e)| {
            if !quiet {
                eprintln!(".. {} | {} [{name}]", e.hw.describe(), e.workload.describe());
            }
            let t0 = Instant::now();
            let (summary, path) = engine.run_explained(e);
            let r = SweepRun { summary, profile: None, host_ms: t0.elapsed().as_secs_f64() * 1e3 };
            if !quiet {
                eprintln!(
                    "   {name}: {} cycles, avg VL {:.0}b, L2 miss {:.1}% ({:.0} ms host, {path})",
                    fmt_cycles(r.summary.cycles),
                    r.summary.avg_vlen_bits,
                    100.0 * r.summary.l2_miss_rate,
                    r.host_ms,
                );
            }
            r
        })
        .collect()
}

/// Median of a sample set (interpolating midpoint for even counts).
pub fn median_ms(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}
