//! Shared plumbing for the `exp-*` experiment binaries: command-line
//! parsing (`--div`, `--layers`, `--csv`, `--json`, `--trace`) and common
//! sweep axes.
//!
//! Every binary regenerates one table or figure of the paper; see
//! EXPERIMENTS.md at the workspace root for the full index and the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub mod diff;
pub mod energy_report;
pub mod microbench;
pub mod scaling_report;
pub mod serving_report;
pub mod sweep;
pub mod whatif_report;

pub use energy_report::{energy_grid_json, energy_grid_json_with, pareto_markdown};
pub use scaling_report::{
    scaling_chrome_trace, scaling_grid_json, scaling_grid_json_with, scaling_markdown,
    SCALING_CORES,
};
pub use serving_report::{
    knee_chrome_trace, serving_grid_json, serving_grid_json_with, serving_markdown,
};
pub use sweep::{median_ms, run_sweep, run_sweep_retimed, SweepRun};
pub use whatif_report::{codesign_markdown, whatif_json, whatif_json_with};

pub use lva_core::report::{fmt_cycles, fmt_speedup};
pub use lva_core::{
    scaled_input, BlockSizes, ChromeTrace, ConvPolicy, Experiment, GemmVariant, HwTarget, Json,
    MemProfile, ModelId, RunReport, RunSummary, Table, Workload,
};

/// The vector lengths swept on RISC-V Vector (Fig. 6/7, Table III).
pub const RVV_VLENS: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];
/// The vector lengths swept on ARM-SVE (Fig. 8/9/10).
pub const SVE_VLENS: [usize; 3] = [512, 1024, 2048];
/// The L2 capacities swept (1 MB .. 256 MB, Figs. 7-10).
pub const L2_SIZES: [usize; 6] = [1 << 20, 4 << 20, 16 << 20, 64 << 20, 128 << 20, 256 << 20];

/// Common options for experiment binaries — the single shared parser in
/// `lva_core::cli`, re-exported here so every `exp-*` bin keeps saying
/// `lva_bench::Opts`. The `lint-*` tools use [`Opts::parse_tool`]
/// (`lva_core::cli::Opts::parse_tool`) for the flag subset they accept.
pub use lva_core::cli::{Opts, RetimeOpt};
pub use lva_retime::RetimeEngine;

/// The nine named headline design points of §VI (exp-headline's sweep), in
/// report order. Shared with `exp-whatif` and the co-design advisor so every
/// consumer analyzes exactly the networks the headline table measures.
pub fn headline_specs(div: usize, layers: Option<usize>) -> Vec<(String, Experiment)> {
    let tiny = Workload {
        model: ModelId::Yolov3Tiny,
        input_hw: scaled_input(ModelId::Yolov3Tiny, div),
        layer_limit: layers,
    };
    let yolo20 = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, div),
        layer_limit: Some(layers.unwrap_or(20)),
    };
    let naive = ConvPolicy::gemm_only(GemmVariant::Naive);
    let opt3 = ConvPolicy::gemm_only(GemmVariant::opt3());
    let opt6 = ConvPolicy::gemm_only(GemmVariant::opt6());
    let rvv = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };
    let ax = HwTarget::A64fx;
    let sve = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 };
    [
        ("rvv_tiny_naive", Experiment::new(rvv, naive, tiny)),
        ("rvv_tiny_opt3", Experiment::new(rvv, opt3, tiny)),
        ("a64fx_yolo20_naive", Experiment::new(ax, naive, yolo20)),
        ("a64fx_yolo20_opt3", Experiment::new(ax, opt3, yolo20)),
        ("a64fx_yolo20_opt6", Experiment::new(ax, opt6, yolo20)),
        ("sve512_yolo20_opt3", Experiment::new(sve, opt3, yolo20)),
        ("sve512_yolo20_opt6", Experiment::new(sve, opt6, yolo20)),
        ("rvv_yolo20_opt3", Experiment::new(rvv, opt3, yolo20)),
        ("rvv_yolo20_opt6", Experiment::new(rvv, opt6, yolo20)),
    ]
    .into_iter()
    .map(|(n, e)| (n.to_string(), e))
    .collect()
}

/// Write a JSON value under `results/<name>.json` (pretty-printed).
pub fn save_json(j: &Json, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut body = j.to_string_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Finish an experiment binary: print the table, save CSV and/or JSON as
/// requested, and flush any active trace sink.
pub fn emit(table: &Table, name: &str, opts: &Opts) {
    table.print();
    if opts.csv {
        match table.save_csv(name) {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("could not save CSV: {e}"),
        }
    }
    if opts.json {
        match save_json(&table.to_json(), name) {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("could not save JSON: {e}"),
        }
    }
    lva_trace::flush();
}

/// Build the retime engine an `exp-*` binary's `--retime` flag asks for
/// (`None` when the flag is off).
pub fn retime_engine(opts: &Opts) -> Option<RetimeEngine> {
    opts.retime.enabled().then(|| RetimeEngine::new(opts.retime))
}

/// Log the retime engine's provenance to stderr after a sweep: path
/// counts, memo hits, and the refusal reason if certification failed.
/// Stderr only — the machine-readable records stay byte-identical to
/// their full-simulation counterparts so CI can compare them directly.
pub fn log_retime(engine: Option<&RetimeEngine>) {
    let Some(eng) = engine else { return };
    let c = eng.counters();
    eprintln!(
        "[retime: {} captures, {} tape refits, {} live replays, {} stream captures, \
         {} stream refits, {} stream live replays, {} energy retimes, {} memo hits, \
         {} verified]",
        c.captures,
        c.tape_refits,
        c.live_replays,
        c.stream_captures,
        c.stream_refits,
        c.stream_live_replays,
        c.energy_retimes,
        c.run_memo_hits,
        c.verified
    );
    if let Some(reason) = eng.refusal() {
        eprintln!("[retime refused: {reason}]");
    }
}

/// Run an experiment, logging the design point to stderr.
pub fn run_logged(e: &Experiment) -> RunSummary {
    eprintln!(".. {} | {}", e.hw.describe(), e.workload.describe());
    let s = e.run();
    log_summary(&s);
    s
}

/// Like [`run_logged`], with the `lva-prof` memory profiler attached
/// (identical timing; the summary additionally carries 3C miss classes).
pub fn run_logged_profiled(e: &Experiment) -> (RunSummary, MemProfile) {
    eprintln!(".. {} | {} [profiled]", e.hw.describe(), e.workload.describe());
    let (s, profile) = e.run_profiled();
    log_summary(&s);
    (s, profile)
}

fn log_summary(s: &RunSummary) {
    eprintln!(
        "   {} cycles, avg VL {:.0}b, L2 miss {:.1}%",
        fmt_cycles(s.cycles),
        s.avg_vlen_bits,
        100.0 * s.l2_miss_rate
    );
}
