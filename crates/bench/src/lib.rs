//! Shared plumbing for the `exp-*` experiment binaries: command-line
//! parsing (`--div`, `--layers`, `--csv`, `--json`, `--trace`) and common
//! sweep axes.
//!
//! Every binary regenerates one table or figure of the paper; see
//! EXPERIMENTS.md at the workspace root for the full index and the
//! paper-vs-measured record.

#![forbid(unsafe_code)]
use std::env;

pub mod diff;
pub mod energy_report;
pub mod microbench;
pub mod sweep;
pub mod whatif_report;

pub use energy_report::{energy_grid_json, pareto_markdown};
pub use sweep::{median_ms, run_sweep, SweepRun};
pub use whatif_report::{codesign_markdown, whatif_json};

pub use lva_core::report::{fmt_cycles, fmt_speedup};
pub use lva_core::{
    scaled_input, BlockSizes, ChromeTrace, ConvPolicy, Experiment, GemmVariant, HwTarget, Json,
    MemProfile, ModelId, RunReport, RunSummary, Table, Workload,
};

/// The vector lengths swept on RISC-V Vector (Fig. 6/7, Table III).
pub const RVV_VLENS: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];
/// The vector lengths swept on ARM-SVE (Fig. 8/9/10).
pub const SVE_VLENS: [usize; 3] = [512, 1024, 2048];
/// The L2 capacities swept (1 MB .. 256 MB, Figs. 7-10).
pub const L2_SIZES: [usize; 6] = [1 << 20, 4 << 20, 16 << 20, 64 << 20, 128 << 20, 256 << 20];

/// Common options for experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Linear input down-scale divisor (1 = paper-native resolution).
    pub div: usize,
    /// Override the layer prefix length.
    pub layers: Option<usize>,
    /// Write a CSV under `results/`.
    pub csv: bool,
    /// Write machine-readable JSON under `results/`.
    pub json: bool,
    /// Attach an `lva-prof` memory profiler to every run (reuse-distance
    /// histograms, 3C miss classes, hit-rate-vs-capacity curves in the
    /// JSON output). Timing is unchanged.
    pub profile: bool,
    /// Write a Chrome trace-event timeline (Perfetto-loadable) to this path.
    pub chrome: Option<String>,
    /// Worker threads for independent design-point runs (`--jobs N`;
    /// `--jobs 0` means all host cores). 1 = the serial loop.
    pub jobs: usize,
    /// Self-benchmark the simulator's wall-clock (`--wallclock`): run the
    /// sweep serially and with `--jobs`, median-of-3 each, and write a
    /// `BENCH_sim_wallclock.json` report.
    pub wallclock: bool,
    /// Attach an `lva-whatif` counterfactual analysis to every run's JSON
    /// report (`--with-whatif`): five extra idealized simulations per design
    /// point. Off by default — the plain reports stay byte-identical.
    pub whatif: bool,
    /// Attach the `lva-energy` streamed attribution to every run's JSON
    /// report (`--with-energy`): one probed re-run per design point, cycle
    /// counts unchanged. Off by default.
    pub energy: bool,
}

impl Opts {
    /// Parse `--div N`, `--layers N`, `--csv`, `--json`, `--trace FILE`,
    /// `--help` from `std::env`. `default_div` is the experiment's default
    /// scale. `--trace` installs a JSONL telemetry sink for the whole run.
    pub fn parse(default_div: usize, what: &str) -> Opts {
        let mut opts = Opts {
            div: default_div,
            layers: None,
            csv: true,
            json: false,
            profile: false,
            chrome: None,
            jobs: 1,
            wallclock: false,
            whatif: false,
            energy: false,
        };
        let mut args = env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--div" => {
                    opts.div =
                        args.next().and_then(|v| v.parse().ok()).expect("--div needs an integer");
                }
                "--layers" => {
                    opts.layers = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--layers needs an integer"),
                    );
                }
                "--no-csv" => opts.csv = false,
                "--csv" => opts.csv = true,
                "--json" => opts.json = true,
                "--no-json" => opts.json = false,
                "--profile" => opts.profile = true,
                "--jobs" => {
                    let n: usize =
                        args.next().and_then(|v| v.parse().ok()).expect("--jobs needs an integer");
                    opts.jobs = if n == 0 { lva_core::default_jobs() } else { n };
                }
                "--wallclock" => opts.wallclock = true,
                "--with-whatif" => opts.whatif = true,
                "--with-energy" => opts.energy = true,
                "--chrome" => {
                    opts.chrome = Some(args.next().expect("--chrome needs a file path"));
                }
                "--trace" => {
                    let path = args.next().expect("--trace needs a file path");
                    lva_trace::enable_to_file(&path)
                        .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
                    eprintln!("[tracing to {path}]");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "{what}\n\nOptions:\n  --div N      input down-scale divisor (default {default_div}; 1 = paper size)\n  --layers N   layer prefix override\n  --csv/--no-csv  write results/<exp>.csv (default on)\n  --json       also write results/<exp>.json (machine-readable)\n  --profile    tap the cache hierarchy: reuse-distance histograms, 3C\n               miss classes, capacity curves (in the JSON output)\n  --chrome FILE  write a Chrome trace-event timeline (Perfetto) to FILE\n  --trace FILE stream JSONL telemetry spans to FILE\n  --jobs N     run independent design points on N threads (0 = all cores;\n               results and reports are identical to --jobs 1)\n  --wallclock  self-benchmark: time the sweep serial vs --jobs (median of\n               3 each) and write BENCH_sim_wallclock.json\n  --with-whatif  attach lva-whatif counterfactual analyses (bound\n               classification, cycles-saved-if-fixed) to the JSON reports\n  --with-energy  attach the lva-energy streamed attribution (per-layer\n               joules, EDP, energy roofline) to the JSON reports"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

/// The nine named headline design points of §VI (exp-headline's sweep), in
/// report order. Shared with `exp-whatif` and the co-design advisor so every
/// consumer analyzes exactly the networks the headline table measures.
pub fn headline_specs(div: usize, layers: Option<usize>) -> Vec<(String, Experiment)> {
    let tiny = Workload {
        model: ModelId::Yolov3Tiny,
        input_hw: scaled_input(ModelId::Yolov3Tiny, div),
        layer_limit: layers,
    };
    let yolo20 = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, div),
        layer_limit: Some(layers.unwrap_or(20)),
    };
    let naive = ConvPolicy::gemm_only(GemmVariant::Naive);
    let opt3 = ConvPolicy::gemm_only(GemmVariant::opt3());
    let opt6 = ConvPolicy::gemm_only(GemmVariant::opt6());
    let rvv = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };
    let ax = HwTarget::A64fx;
    let sve = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 };
    [
        ("rvv_tiny_naive", Experiment::new(rvv, naive, tiny)),
        ("rvv_tiny_opt3", Experiment::new(rvv, opt3, tiny)),
        ("a64fx_yolo20_naive", Experiment::new(ax, naive, yolo20)),
        ("a64fx_yolo20_opt3", Experiment::new(ax, opt3, yolo20)),
        ("a64fx_yolo20_opt6", Experiment::new(ax, opt6, yolo20)),
        ("sve512_yolo20_opt3", Experiment::new(sve, opt3, yolo20)),
        ("sve512_yolo20_opt6", Experiment::new(sve, opt6, yolo20)),
        ("rvv_yolo20_opt3", Experiment::new(rvv, opt3, yolo20)),
        ("rvv_yolo20_opt6", Experiment::new(rvv, opt6, yolo20)),
    ]
    .into_iter()
    .map(|(n, e)| (n.to_string(), e))
    .collect()
}

/// Write a JSON value under `results/<name>.json` (pretty-printed).
pub fn save_json(j: &Json, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut body = j.to_string_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Finish an experiment binary: print the table, save CSV and/or JSON as
/// requested, and flush any active trace sink.
pub fn emit(table: &Table, name: &str, opts: &Opts) {
    table.print();
    if opts.csv {
        match table.save_csv(name) {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("could not save CSV: {e}"),
        }
    }
    if opts.json {
        match save_json(&table.to_json(), name) {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("could not save JSON: {e}"),
        }
    }
    lva_trace::flush();
}

/// Run an experiment, logging the design point to stderr.
pub fn run_logged(e: &Experiment) -> RunSummary {
    eprintln!(".. {} | {}", e.hw.describe(), e.workload.describe());
    let s = e.run();
    log_summary(&s);
    s
}

/// Like [`run_logged`], with the `lva-prof` memory profiler attached
/// (identical timing; the summary additionally carries 3C miss classes).
pub fn run_logged_profiled(e: &Experiment) -> (RunSummary, MemProfile) {
    eprintln!(".. {} | {} [profiled]", e.hw.describe(), e.workload.describe());
    let (s, profile) = e.run_profiled();
    log_summary(&s);
    (s, profile)
}

fn log_summary(s: &RunSummary) {
    eprintln!(
        "   {} cycles, avg VL {:.0}b, L2 miss {:.1}%",
        fmt_cycles(s.cycles),
        s.avg_vlen_bits,
        100.0 * s.l2_miss_rate
    );
}
