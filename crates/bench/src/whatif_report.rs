//! The co-design advisor: merges factual headline runs, `lva-whatif`
//! counterfactual analyses, and `lva-roofline` ceilings into one
//! machine-readable record (`BENCH_whatif.json`) and renders the
//! human-readable `results/CODESIGN_REPORT.md` from it.
//!
//! Both the `exp-whatif` and `report` binaries and the
//! `exp-headline --with-whatif` path go through these two functions, so
//! every consumer produces byte-identical output for the same inputs (CI
//! gates on exactly that).

use crate::{Experiment, Json, RunReport};
use lva_isa::IdealKnob;
use lva_whatif::{analyze_experiment, AGREEMENT_TOLERANCE, COMPUTE_BOUND_THRESHOLD};

/// Per-run roofline position: the machine ceiling and, for every
/// GEMM-shaped layer, arithmetic intensity plus sustained %-of-peak.
fn roofline_json(e: &Experiment, s: &lva_core::RunSummary) -> Json {
    let cfg = e.hw.machine_config();
    let layers = Json::Arr(
        s.report
            .layers
            .iter()
            .filter_map(|l| {
                l.mnk.map(|(m, n, k)| {
                    Json::obj()
                        .field("index", l.index as u64)
                        .field("ai", lva_roofline::arithmetic_intensity(m, n, k))
                        .field(
                            "pct_peak",
                            100.0 * lva_roofline::fraction_of_peak(&cfg, l.flops, l.cycles),
                        )
                })
            })
            .collect(),
    );
    Json::obj()
        .field("peak_flops_per_cycle", cfg.peak_flops_per_cycle())
        .field("pct_peak", 100.0 * lva_roofline::fraction_of_peak(&cfg, s.flops, s.cycles))
        .field("layers", layers)
}

/// Cross-check freshly measured factual cycles against an existing
/// `BENCH_headline.json` (same name, hw and workload ⇒ same cycles: the
/// simulator is deterministic). Returns `None` when nothing is comparable.
fn headline_check(runs: &[(String, &Experiment, u64)], headline: &Json) -> Option<Json> {
    let published = headline.get("runs")?.as_arr()?;
    let mut matched = 0u64;
    let mut consistent = true;
    for (name, e, cycles) in runs {
        for p in published {
            if p.get("name").and_then(Json::as_str) == Some(name)
                && p.get("hw").and_then(Json::as_str) == Some(e.hw.describe().as_str())
                && p.get("workload").and_then(Json::as_str) == Some(e.workload.describe().as_str())
            {
                matched += 1;
                let published_cycles =
                    p.get("totals").and_then(|t| t.get("cycles")).and_then(Json::as_u64);
                if published_cycles != Some(*cycles) {
                    consistent = false;
                }
            }
        }
    }
    Some(Json::obj().field("runs_matched", matched).field("consistent", consistent))
}

/// Run every spec factually plus one counterfactual per [`IdealKnob`]
/// (fanned over `jobs` threads) and assemble the merged `BENCH_whatif.json`
/// value. `headline` is an already-written `BENCH_headline.json` to
/// cross-check against, if one exists.
pub fn whatif_json(
    specs: &[(String, Experiment)],
    div: usize,
    jobs: usize,
    headline: Option<&Json>,
) -> Json {
    whatif_json_with(specs, div, jobs, headline, None)
}

/// [`whatif_json`] with an optional retime engine: when present, every
/// factual and counterfactual run goes through the engine's serial front
/// door (one capture per spec, then five re-timed idealizations) instead
/// of six full simulations per spec. Output is bit-identical either way.
pub fn whatif_json_with(
    specs: &[(String, Experiment)],
    div: usize,
    jobs: usize,
    headline: Option<&Json>,
    mut engine: Option<&mut lva_retime::RetimeEngine>,
) -> Json {
    let mut reports = Vec::with_capacity(specs.len());
    let mut factuals = Vec::with_capacity(specs.len());
    for (name, e) in specs {
        eprintln!(".. whatif {} | {} | {}", name, e.hw.describe(), e.workload.describe());
        let (factual, analysis) = match engine.as_deref_mut() {
            Some(eng) => lva_whatif::analyze_experiment_with(e, &mut |x| eng.run(x)),
            None => analyze_experiment(e, jobs),
        };
        eprintln!("   {} bound; top: {}", analysis.bound.name(), analysis.recommendation());
        let report = RunReport::new(name.clone(), e, &factual)
            .with_whatif(analysis.to_json())
            .to_json()
            .field("roofline", roofline_json(e, &factual));
        reports.push(report);
        factuals.push((name.clone(), e, factual.cycles));
    }
    let mut j = Json::obj()
        .field("bench", "whatif")
        .field("div", div as u64)
        .field("compute_bound_threshold", COMPUTE_BOUND_THRESHOLD)
        .field("agreement_tolerance", AGREEMENT_TOLERANCE);
    if let Some(check) = headline.and_then(|h| headline_check(&factuals, h)) {
        j = j.field("headline_check", check);
    }
    j.field("runs", Json::Arr(reports))
}

fn fmt_u64(v: Option<&Json>) -> String {
    v.and_then(Json::as_u64).map_or_else(|| "?".into(), |n| n.to_string())
}

fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", 100.0 * frac)
}

/// Knob outcomes of one run's `whatif.knobs` object, ranked by cycles saved
/// (descending; ties keep [`IdealKnob::ALL`] order, matching the engine).
fn ranked_knobs(whatif: &Json) -> Vec<(String, u64, f64)> {
    let mut out = Vec::new();
    if let Some(Json::Obj(pairs)) = whatif.get("knobs") {
        for (knob, v) in pairs {
            let saved = v.get("saved").and_then(Json::as_u64).unwrap_or(0);
            let frac = v.get("saved_frac").and_then(Json::as_f64).unwrap_or(0.0);
            out.push((knob.clone(), saved, frac));
        }
    }
    out.sort_by_key(|o| std::cmp::Reverse(o.1));
    out
}

/// A knob's advisor phrasing, recovered from its serialized name (the
/// markdown renderer only sees JSON).
fn knob_recommendation(name: &str) -> &'static str {
    for knob in IdealKnob::ALL {
        if knob.name() == name {
            let bound = lva_whatif::Bound::of_knob(knob);
            return lva_whatif::recommendation(bound, Some(knob));
        }
    }
    "unknown knob"
}

/// Render `results/CODESIGN_REPORT.md` from a parsed `BENCH_whatif.json`.
/// Pure function of its input: no timestamps, no host data — CI regenerates
/// it twice and byte-compares.
pub fn codesign_markdown(j: &Json) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let div = j.get("div").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(md, "# Co-design advisor report\n");
    let _ = writeln!(
        md,
        "Counterfactual profiling (`lva-whatif`) of the §VI headline networks at \
         `--div {div}`: each design point is re-simulated under five opt-in \
         idealizations (perfect L1/vcache, free DRAM, zero vector startup, infinite \
         lanes, infinite issue) and the cycles each one recovers — the *causal* cost \
         of that bottleneck — drive the bound classification and the recommendations \
         below. Regenerate with `cargo run --release --bin exp-whatif` or re-render \
         from `BENCH_whatif.json` with `cargo run --release --bin report`.\n"
    );
    let threshold = j.get("compute_bound_threshold").and_then(Json::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        md,
        "A region is *compute-bound* when no idealization recovers at least \
         {} of its cycles; otherwise the biggest saver names the bound \
         (DESIGN.md §13).\n",
        fmt_pct(threshold)
    );
    if let Some(check) = j.get("headline_check") {
        let ok = matches!(check.get("consistent"), Some(Json::Bool(true)));
        let n = fmt_u64(check.get("runs_matched"));
        let _ = writeln!(
            md,
            "Cross-check against `BENCH_headline.json`: {n} runs matched, factual \
             cycles {}.\n",
            if ok { "identical" } else { "**DIVERGED** (stale headline file?)" }
        );
    }

    let runs = j.get("runs").and_then(Json::as_arr).unwrap_or(&[]);
    let _ = writeln!(md, "## Summary\n");
    let _ = writeln!(md, "| run | hw | workload | cycles | bound | top recommendation |");
    let _ = writeln!(md, "|---|---|---|---:|---|---|");
    for r in runs {
        let whatif = r.get("whatif");
        let bound = whatif.and_then(|w| w.get("bound")).and_then(Json::as_str).unwrap_or("?");
        let rec =
            whatif.and_then(|w| w.get("recommendation")).and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} |",
            r.get("name").and_then(Json::as_str).unwrap_or("?"),
            r.get("hw").and_then(Json::as_str).unwrap_or("?"),
            r.get("workload").and_then(Json::as_str).unwrap_or("?"),
            fmt_u64(r.get("totals").and_then(|t| t.get("cycles"))),
            bound,
            rec
        );
    }
    let _ = writeln!(md);

    for r in runs {
        let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
        let hw = r.get("hw").and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(md, "## {name} — {hw}\n");
        let Some(whatif) = r.get("whatif") else {
            let _ = writeln!(md, "(no whatif section)\n");
            continue;
        };
        if let Some(roof) = r.get("roofline") {
            let _ = writeln!(
                md,
                "Roofline: {:.1}% of the {:.0}-flops/cycle ceiling.\n",
                roof.get("pct_peak").and_then(Json::as_f64).unwrap_or(0.0),
                roof.get("peak_flops_per_cycle").and_then(Json::as_f64).unwrap_or(0.0)
            );
        }
        let _ = writeln!(md, "### Top co-design levers\n");
        let _ = writeln!(md, "| # | idealization | cycles saved | of run | recommendation |");
        let _ = writeln!(md, "|---:|---|---:|---:|---|");
        for (i, (knob, saved, frac)) in ranked_knobs(whatif).iter().take(3).enumerate() {
            let _ = writeln!(
                md,
                "| {} | {knob} | {saved} | {} | {} |",
                i + 1,
                fmt_pct(*frac),
                knob_recommendation(knob)
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "### Per-layer bounds\n");
        let _ = writeln!(md, "| layer | kernel | cycles | bound | dominant knob | saved |");
        let _ = writeln!(md, "|---:|---|---:|---|---|---:|");
        let layers = whatif.get("layers").and_then(Json::as_arr).unwrap_or(&[]);
        for l in layers {
            let dominant = l.get("dominant_knob").and_then(Json::as_str).unwrap_or("—");
            let saved = l
                .get("saved")
                .and_then(|s| l.get("dominant_knob").and_then(Json::as_str).and_then(|k| s.get(k)))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {dominant} | {saved} |",
                fmt_u64(l.get("index")),
                l.get("desc").and_then(Json::as_str).unwrap_or("?"),
                fmt_u64(l.get("cycles")),
                l.get("bound").and_then(Json::as_str).unwrap_or("?")
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "### Causal vs attributed stalls\n");
        let _ =
            writeln!(md, "| idealization | stall cause | causal saved | attributed | gap/run |");
        let _ = writeln!(md, "|---|---|---:|---:|---:|");
        for a in whatif.get("agreement").and_then(Json::as_arr).unwrap_or(&[]) {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} |",
                a.get("knob").and_then(Json::as_str).unwrap_or("?"),
                a.get("cause").and_then(Json::as_str).unwrap_or("?"),
                fmt_u64(a.get("causal_saved")),
                fmt_u64(a.get("attributed")),
                fmt_pct(a.get("norm_gap").and_then(Json::as_f64).unwrap_or(0.0))
            );
        }
        let _ = writeln!(md);
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{headline_specs, Opts};

    fn tiny_whatif_json() -> Json {
        // One cheap spec: the tiny network, 2 layers, small input.
        let mut specs = headline_specs(8, Some(2));
        specs.truncate(1);
        whatif_json(&specs, 8, 1, None)
    }

    #[test]
    fn whatif_json_and_markdown_are_deterministic_and_complete() {
        let a = tiny_whatif_json();
        let b = tiny_whatif_json();
        assert_eq!(a.to_string_pretty(), b.to_string_pretty(), "whatif record must be stable");
        let runs = a.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let wf = runs[0].get("whatif").expect("whatif section");
        assert!(wf.get("bound").and_then(Json::as_str).is_some());
        let layers = wf.get("layers").and_then(Json::as_arr).expect("layers");
        assert_eq!(layers.len(), 2);
        for l in layers {
            assert!(l.get("bound").and_then(Json::as_str).is_some(), "every layer gets a bound");
        }
        assert!(runs[0].get("roofline").is_some());
        let md = codesign_markdown(&a);
        assert_eq!(md, codesign_markdown(&a), "renderer is pure");
        for needle in
            ["# Co-design advisor report", "### Per-layer bounds", "### Top co-design levers"]
        {
            assert!(md.contains(needle), "missing {needle}");
        }
        // Round-trips through serialization (the report bin's path).
        let reparsed = Json::parse(&a.to_string_pretty()).expect("parses");
        assert_eq!(codesign_markdown(&reparsed), md);
    }

    #[test]
    fn with_whatif_flag_parses() {
        // Opts::parse reads the process args, so test the field default
        // directly: the flag must be opt-in.
        let opts = Opts {
            div: 8,
            layers: None,
            csv: false,
            json: true,
            profile: false,
            chrome: None,
            jobs: 1,
            wallclock: false,
            whatif: false,
            energy: false,
            retime: lva_core::RetimeOpt::Off,
        };
        assert!(!opts.whatif);
        assert!(!opts.energy);
    }
}
