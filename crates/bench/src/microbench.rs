//! A minimal self-contained micro-benchmark harness for the `[[bench]]`
//! targets (`cargo bench`). The workspace is dependency-free, so instead of
//! criterion this measures host wall-time with `std::time::Instant`:
//! one warm-up run, then `iters` timed runs, reporting min / median / mean.
//! These benches bound how large a workload the co-design harness can
//! sweep; they are not statistical instruments.

use std::time::Instant;

/// Time `f` (which should return a value derived from the work, to keep the
/// optimizer honest) and print one aligned result line.
pub fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    assert!(iters > 0);
    std::hint::black_box(f()); // warm-up
    let mut samples_us: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples_us[0];
    let median = samples_us[samples_us.len() / 2];
    let mean: f64 = samples_us.iter().sum::<f64>() / samples_us.len() as f64;
    println!(
        "{name:<40} min {:>10} median {:>10} mean {:>10}  ({iters} iters)",
        fmt_us(min),
        fmt_us(median),
        fmt_us(mean)
    );
}

fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.1} us")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

/// Print a group header, mirroring criterion's benchmark-group output.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
