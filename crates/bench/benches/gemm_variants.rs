//! Criterion micro-benchmarks of the GEMM kernels (host time of the
//! simulation — how fast the library itself runs) plus the ablation sweeps
//! called out in DESIGN.md: unroll factor (including the spilling 32-row
//! case of §VI-A) and blocking/packing on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lva_isa::{Machine, MachineConfig};
use lva_kernels::gemm::{gemm, GemmWorkspace};
use lva_kernels::{BlockSizes, GemmVariant};
use lva_tensor::Matrix;

const M: usize = 32;
const N: usize = 256;
const K: usize = 64;

fn run_variant(variant: GemmVariant, vlen: usize) -> u64 {
    let mut m = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
    let a = Matrix::random(&mut m, M, K, 1);
    let b = Matrix::random(&mut m, K, N, 2);
    let c = Matrix::alloc(&mut m, M, N);
    let ws = match variant {
        GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut m, blocks)),
        _ => None,
    };
    gemm(&mut m, variant, M, N, K, 1.0, a.buf, b.buf, c.buf, ws.as_ref());
    m.cycles()
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_variants");
    g.sample_size(10);
    for (name, variant) in [
        ("naive", GemmVariant::Naive),
        ("opt3", GemmVariant::opt3()),
        ("opt6", GemmVariant::opt6()),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| std::hint::black_box(run_variant(variant, 2048)))
        });
    }
    g.finish();
}

fn bench_unroll_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt3_unroll_ablation");
    g.sample_size(10);
    for unroll in [1usize, 4, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(unroll), &unroll, |bench, &u| {
            bench.iter(|| std::hint::black_box(run_variant(GemmVariant::Opt3 { unroll: u }, 2048)))
        });
    }
    g.finish();
}

fn bench_vlen_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt3_vlen_ablation");
    g.sample_size(10);
    for vlen in [512usize, 2048, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(vlen), &vlen, |bench, &v| {
            bench.iter(|| std::hint::black_box(run_variant(GemmVariant::opt3(), v)))
        });
    }
    g.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt6_block_ablation");
    g.sample_size(10);
    for blocks in [BlockSizes { m: 8, n: 64, k: 16 }, BlockSizes::TABLE2_BEST] {
        let id = format!("{}x{}x{}", blocks.m, blocks.n, blocks.k);
        g.bench_with_input(BenchmarkId::from_parameter(id), &blocks, |bench, &bl| {
            bench.iter(|| {
                std::hint::black_box(run_variant(GemmVariant::Opt6 { unroll: 16, blocks: bl }, 2048))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_unroll_ablation, bench_vlen_ablation, bench_block_sizes);
criterion_main!(benches);
