//! Micro-benchmarks of the GEMM kernels (host time of the simulation — how
//! fast the library itself runs) plus the ablation sweeps called out in
//! DESIGN.md: unroll factor (including the spilling 32-row case of §VI-A)
//! and blocking/packing on/off.

use lva_bench::microbench::{bench, group};
use lva_isa::{Machine, MachineConfig};
use lva_kernels::gemm::{gemm, GemmWorkspace};
use lva_kernels::{BlockSizes, GemmVariant};
use lva_tensor::Matrix;

const M: usize = 32;
const N: usize = 256;
const K: usize = 64;

fn run_variant(variant: GemmVariant, vlen: usize) -> u64 {
    let mut m = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
    let a = Matrix::random(&mut m, M, K, 1);
    let b = Matrix::random(&mut m, K, N, 2);
    let c = Matrix::alloc(&mut m, M, N);
    let ws = match variant {
        GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut m, blocks)),
        _ => None,
    };
    gemm(&mut m, variant, M, N, K, 1.0, a.buf, b.buf, c.buf, ws.as_ref());
    m.cycles()
}

fn main() {
    group("gemm_variants");
    for (name, variant) in [
        ("naive", GemmVariant::Naive),
        ("opt3", GemmVariant::opt3()),
        ("opt6", GemmVariant::opt6()),
    ] {
        bench(name, 10, || run_variant(variant, 2048));
    }

    group("opt3_unroll_ablation");
    for unroll in [1usize, 4, 16, 32] {
        bench(&format!("unroll_{unroll}"), 10, || run_variant(GemmVariant::Opt3 { unroll }, 2048));
    }

    group("opt3_vlen_ablation");
    for vlen in [512usize, 2048, 8192] {
        bench(&format!("vlen_{vlen}"), 10, || run_variant(GemmVariant::opt3(), vlen));
    }

    group("opt6_block_ablation");
    for blocks in [BlockSizes { m: 8, n: 64, k: 16 }, BlockSizes::TABLE2_BEST] {
        bench(&format!("{}x{}x{}", blocks.m, blocks.n, blocks.k), 10, || {
            run_variant(GemmVariant::Opt6 { unroll: 16, blocks }, 2048)
        });
    }
}
