//! Micro-benchmarks of the simulator substrate itself: cache lookup
//! throughput, vector-instruction issue rate, and im2col/pooling kernels.
//! These bound how large a workload the co-design harness can sweep.

use lva_bench::microbench::{bench, group};
use lva_isa::{Machine, MachineConfig};
use lva_kernels::im2col::im2col_vec;
use lva_kernels::pool::{maxpool_vec, PoolParams};
use lva_kernels::ConvParams;
use lva_sim::{AccessKind, Cache, CacheConfig};
use lva_tensor::{Shape, Tensor};

fn l2() -> Cache {
    Cache::new(CacheConfig {
        name: "L2",
        bytes: 1 << 20,
        line_bytes: 64,
        assoc: 8,
        hit_latency: 12,
    })
}

fn main() {
    group("cache");
    {
        let mut cache = l2();
        bench("l2_hit_storm_64k", 20, || {
            let mut acc = 0u64;
            for i in 0..65536u64 {
                // Working set of 512 lines: mostly hits.
                if matches!(
                    cache.access_line(i % 512, AccessKind::Read),
                    lva_sim::cache::Lookup::Hit
                ) {
                    acc += 1;
                }
            }
            acc
        });
    }
    {
        let mut cache = l2();
        let mut next = 0u64;
        bench("l2_miss_storm_64k", 20, || {
            for _ in 0..65536u64 {
                next += 997; // stride defeats the 16K-line capacity
                cache.access_line(next, AccessKind::Read);
            }
            cache.stats.misses
        });
    }

    group("vpu_ops");
    {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let vl = m.setvl(64);
        m.vbroadcast(0, 1.0, vl);
        bench("vfmacc_issue_rate_64k", 20, || {
            for r in 0..65536 {
                m.vfmacc_vf(1 + (r & 15), 1.0001, 0, vl);
            }
            m.cycles()
        });
    }
    {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let buf = m.mem.alloc(1 << 16);
        let vl = m.setvl(64);
        bench("vle_issue_rate_16k", 20, || {
            for r in 0..16384usize {
                m.vle(1, buf.addr((r * 64) % ((1 << 16) - 64)), vl);
            }
            m.cycles()
        });
    }

    group("layer_kernels");
    {
        let p = ConvParams { in_c: 64, in_h: 32, in_w: 32, out_c: 1, k: 3, stride: 1, pad: 1 };
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(64, 32, 32), 1);
        let (oh, ow) = p.out_hw();
        let col = m.mem.alloc(64 * 9 * oh * ow);
        bench("im2col_3x3_64ch_32px", 10, || {
            im2col_vec(&mut m, &p, &img, col);
            m.cycles()
        });
    }
    {
        let mut m = Machine::new(MachineConfig::sve_gem5(2048, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(64, 32, 32), 1);
        let out = Tensor::alloc(&mut m, Shape::new(64, 16, 16));
        let p = PoolParams::darknet(2, 2);
        bench("maxpool_2x2_64ch_32px", 10, || {
            maxpool_vec(&mut m, &p, &img, &out);
            m.cycles()
        });
    }
}
