//! Criterion benchmarks of the simulator substrate itself: cache lookup
//! throughput, vector-instruction issue rate, and im2col/pooling kernels.
//! These bound how large a workload the co-design harness can sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lva_isa::{Machine, MachineConfig};
use lva_kernels::im2col::im2col_vec;
use lva_kernels::pool::{maxpool_vec, PoolParams};
use lva_kernels::ConvParams;
use lva_sim::{AccessKind, Cache, CacheConfig};
use lva_tensor::{Shape, Tensor};

fn bench_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l2_hit_storm_64k", |b| {
        let mut cache = Cache::new(CacheConfig {
            name: "L2",
            bytes: 1 << 20,
            line_bytes: 64,
            assoc: 8,
            hit_latency: 12,
        });
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..65536u64 {
                // Working set of 512 lines: mostly hits.
                if matches!(
                    cache.access_line(i % 512, AccessKind::Read),
                    lva_sim::cache::Lookup::Hit
                ) {
                    acc += 1;
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("l2_miss_storm_64k", |b| {
        let mut cache = Cache::new(CacheConfig {
            name: "L2",
            bytes: 1 << 20,
            line_bytes: 64,
            assoc: 8,
            hit_latency: 12,
        });
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..65536u64 {
                next += 997; // stride defeats the 16K-line capacity
                cache.access_line(next, AccessKind::Read);
            }
            std::hint::black_box(cache.stats.misses)
        })
    });
    g.finish();
}

fn bench_vector_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("vpu_ops");
    g.bench_function("vfmacc_issue_rate_64k", |b| {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let vl = m.setvl(64);
        m.vbroadcast(0, 1.0, vl);
        b.iter(|| {
            for r in 0..65536 {
                m.vfmacc_vf(1 + (r & 15), 1.0001, 0, vl);
            }
            std::hint::black_box(m.cycles())
        })
    });
    g.bench_function("vle_issue_rate_16k", |b| {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let buf = m.mem.alloc(1 << 16);
        let vl = m.setvl(64);
        b.iter(|| {
            for r in 0..16384usize {
                m.vle(1, buf.addr((r * 64) % ((1 << 16) - 64)), vl);
            }
            std::hint::black_box(m.cycles())
        })
    });
    g.finish();
}

fn bench_layer_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("layer_kernels");
    g.sample_size(10);
    g.bench_function("im2col_3x3_64ch_32px", |b| {
        let p = ConvParams { in_c: 64, in_h: 32, in_w: 32, out_c: 1, k: 3, stride: 1, pad: 1 };
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(64, 32, 32), 1);
        let (oh, ow) = p.out_hw();
        let col = m.mem.alloc(64 * 9 * oh * ow);
        b.iter(|| {
            im2col_vec(&mut m, &p, &img, col);
            std::hint::black_box(m.cycles())
        })
    });
    g.bench_function("maxpool_2x2_64ch_32px", |b| {
        let mut m = Machine::new(MachineConfig::sve_gem5(2048, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(64, 32, 32), 1);
        let out = Tensor::alloc(&mut m, Shape::new(64, 16, 16));
        let p = PoolParams::darknet(2, 2);
        b.iter(|| {
            maxpool_vec(&mut m, &p, &img, &out);
            std::hint::black_box(m.cycles())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache_access, bench_vector_issue, bench_layer_kernels);
criterion_main!(benches);
