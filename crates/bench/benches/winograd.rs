//! Micro-benchmarks of the Winograd pipeline: transform generation
//! (Cook–Toom with exact rationals), the scalar reference, and the VLA
//! implementation per vector length, plus the GEMM-vs-Winograd ablation on
//! one 3x3 layer.

use lva_bench::microbench::{bench, group};
use lva_isa::{Machine, MachineConfig};
use lva_kernels::gemm::GemmWorkspace;
use lva_kernels::{conv_im2col_gemm, ConvParams, GemmVariant};
use lva_tensor::{host_random, Matrix, Shape, Tensor};
use lva_winograd::{f6x3, winograd_conv_ref, winograd_conv_vla, WinogradPlan};

const P: ConvParams =
    ConvParams { in_c: 32, in_h: 24, in_w: 24, out_c: 32, k: 3, stride: 1, pad: 1 };

fn run_vla(vlen: usize) -> u64 {
    let mut m = Machine::new(MachineConfig::sve_gem5(vlen, 1 << 20));
    let img = Tensor::random(&mut m, Shape::new(P.in_c, P.in_h, P.in_w), 1);
    let w = Matrix::random(&mut m, P.out_c, P.in_c * 9, 2);
    let (oh, ow) = P.out_hw();
    let out = m.mem.alloc(P.out_c * oh * ow);
    let mut plan = WinogradPlan::new(&mut m, P, w.buf);
    winograd_conv_vla(&mut m, &mut plan, &img, out);
    m.cycles()
}

fn main() {
    group("cooktoom");
    bench("cooktoom_generate_f6x3", 50, f6x3);

    group("scalar_reference");
    {
        let t = f6x3();
        let img = host_random(P.in_c * P.in_h * P.in_w, 1);
        let w = host_random(P.out_c * P.in_c * 9, 2);
        bench("winograd_scalar_ref_32x24x24", 10, || winograd_conv_ref(&t, &P, &img, &w));
    }

    group("winograd_vla");
    for vlen in [512usize, 1024, 2048] {
        bench(&format!("vlen_{vlen}"), 10, || run_vla(vlen));
    }

    group("conv_algorithm");
    bench("im2col_gemm_opt6", 10, || {
        let mut m = Machine::new(MachineConfig::sve_gem5(2048, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(P.in_c, P.in_h, P.in_w), 1);
        let (mm, nn, kk) = P.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 2);
        let col = m.mem.alloc(P.workspace_words());
        let out = m.mem.alloc(mm * nn);
        let ws = GemmWorkspace::alloc(&mut m, lva_kernels::BlockSizes::TABLE2_BEST);
        conv_im2col_gemm(&mut m, GemmVariant::opt6(), &P, &img, w.buf, col, out, Some(&ws));
        m.cycles()
    });
    bench("winograd_vla_2048", 10, || run_vla(2048));
}
