//! Darknet `.cfg` parsing and serialization.
//!
//! The paper's models come from Darknet configuration files. This module
//! parses the subset of the format the studied networks use — so users can
//! load their own Darknet-style network definitions into the simulator —
//! and serializes [`LayerSpec`] tables back to `.cfg` text (round-trip
//! tested against the built-in model tables).
//!
//! Supported sections: `[net]`, `[convolutional]`, `[maxpool]`, `[route]`,
//! `[shortcut]`, `[upsample]`, `[yolo]`, `[connected]`, `[softmax]`,
//! `[dropout]`, `[cost]`. Keys irrelevant to the kernel study (anchors,
//! learning rates, …) are accepted and ignored.

use crate::layer::LayerSpec;
use lva_kernels::aux::Activation;
use lva_tensor::Shape;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parse failure, with the (1-based) line where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cfg parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CfgError {}

fn err(line: usize, message: impl Into<String>) -> CfgError {
    CfgError { line, message: message.into() }
}

struct Section {
    name: String,
    line: usize,
    options: HashMap<String, String>,
}

impl Section {
    fn get_usize(&self, key: &str, default: usize) -> Result<usize, CfgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| err(self.line, format!("bad integer for `{key}`: {v}")))
            }
        }
    }

    fn activation(&self) -> Result<Activation, CfgError> {
        match self.options.get("activation").map(String::as_str) {
            None | Some("linear") => Ok(Activation::Linear),
            Some("leaky") => Ok(Activation::Leaky),
            Some("relu") => Ok(Activation::Relu),
            Some(other) => Err(err(self.line, format!("unsupported activation `{other}`"))),
        }
    }

    fn int_list(&self, key: &str) -> Result<Vec<isize>, CfgError> {
        let raw =
            self.options.get(key).ok_or_else(|| err(self.line, format!("missing `{key}`")))?;
        raw.split(',')
            .map(|s| {
                s.trim().parse().map_err(|_| err(self.line, format!("bad integer in `{key}`: {s}")))
            })
            .collect()
    }
}

fn lex(text: &str) -> Result<Vec<Section>, CfgError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name =
                name.strip_suffix(']').ok_or_else(|| err(lineno, "unterminated section header"))?;
            sections.push(Section {
                name: name.trim().to_string(),
                line: lineno,
                options: HashMap::new(),
            });
        } else if let Some((k, v)) = line.split_once('=') {
            let section =
                sections.last_mut().ok_or_else(|| err(lineno, "option before any [section]"))?;
            section.options.insert(k.trim().to_string(), v.trim().to_string());
        } else {
            return Err(err(lineno, format!("expected `key=value` or `[section]`, got `{line}`")));
        }
    }
    Ok(sections)
}

/// Parse a Darknet-style cfg into a layer table and the input shape.
///
/// # Errors
/// Returns a [`CfgError`] naming the offending line for syntax errors,
/// unknown sections, or unsupported options.
pub fn parse_cfg(text: &str) -> Result<(Vec<LayerSpec>, Shape), CfgError> {
    let sections = lex(text)?;
    let mut iter = sections.into_iter();
    let net = iter.next().ok_or_else(|| err(1, "empty cfg"))?;
    if net.name != "net" && net.name != "network" {
        return Err(err(net.line, "first section must be [net]"));
    }
    let h = net.get_usize("height", 416)?;
    let w = net.get_usize("width", h)?;
    let c = net.get_usize("channels", 3)?;
    let mut layers = Vec::new();
    for s in iter {
        let spec = match s.name.as_str() {
            "convolutional" | "conv" => {
                let filters = s.get_usize("filters", 1)?;
                let size = s.get_usize("size", 1)?;
                LayerSpec::Conv {
                    filters,
                    size,
                    stride: s.get_usize("stride", 1)?,
                    batch_norm: s.get_usize("batch_normalize", 0)? != 0,
                    activation: s.activation()?,
                }
            }
            "depthwise_convolutional" => LayerSpec::Depthwise {
                size: s.get_usize("size", 3)?,
                stride: s.get_usize("stride", 1)?,
                batch_norm: s.get_usize("batch_normalize", 0)? != 0,
                activation: s.activation()?,
            },
            "maxpool" => {
                let size = s.get_usize("size", 2)?;
                LayerSpec::Maxpool { size, stride: s.get_usize("stride", size)? }
            }
            "upsample" => {
                let stride = s.get_usize("stride", 2)?;
                if stride != 2 {
                    return Err(err(s.line, "only stride-2 upsample is supported"));
                }
                LayerSpec::Upsample
            }
            "route" => LayerSpec::Route { layers: s.int_list("layers")? },
            "shortcut" => {
                let from = s.int_list("from")?;
                if from.len() != 1 {
                    return Err(err(s.line, "shortcut takes exactly one `from` layer"));
                }
                LayerSpec::Shortcut { from: from[0], activation: s.activation()? }
            }
            "yolo" | "region" | "detection" => LayerSpec::Yolo,
            "connected" => LayerSpec::Connected {
                outputs: s.get_usize("output", 1)?,
                activation: s.activation()?,
            },
            "softmax" => LayerSpec::Softmax,
            "avgpool" => LayerSpec::Avgpool,
            "dropout" => LayerSpec::Dropout,
            "cost" => LayerSpec::Cost,
            other => return Err(err(s.line, format!("unsupported section [{other}]"))),
        };
        layers.push(spec);
    }
    if layers.is_empty() {
        return Err(err(net.line, "cfg defines no layers"));
    }
    Ok((layers, Shape::new(c, h, w)))
}

/// Serialize a layer table to Darknet cfg text (inverse of [`parse_cfg`]).
pub fn to_cfg(specs: &[LayerSpec], input: Shape) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[net]");
    let _ = writeln!(out, "height={}", input.h);
    let _ = writeln!(out, "width={}", input.w);
    let _ = writeln!(out, "channels={}", input.c);
    for spec in specs {
        let _ = writeln!(out);
        match spec {
            LayerSpec::Conv { filters, size, stride, batch_norm, activation } => {
                let _ = writeln!(out, "[convolutional]");
                if *batch_norm {
                    let _ = writeln!(out, "batch_normalize=1");
                }
                let _ = writeln!(out, "filters={filters}");
                let _ = writeln!(out, "size={size}");
                let _ = writeln!(out, "stride={stride}");
                let _ = writeln!(out, "pad=1");
                let act = match activation {
                    Activation::Linear => "linear",
                    Activation::Leaky => "leaky",
                    Activation::Relu => "relu",
                };
                let _ = writeln!(out, "activation={act}");
            }
            LayerSpec::Depthwise { size, stride, batch_norm, activation } => {
                let _ = writeln!(out, "[depthwise_convolutional]");
                if *batch_norm {
                    let _ = writeln!(out, "batch_normalize=1");
                }
                let _ = writeln!(out, "size={size}");
                let _ = writeln!(out, "stride={stride}");
                let act = match activation {
                    Activation::Linear => "linear",
                    Activation::Leaky => "leaky",
                    Activation::Relu => "relu",
                };
                let _ = writeln!(out, "activation={act}");
            }
            LayerSpec::Maxpool { size, stride } => {
                let _ = writeln!(out, "[maxpool]");
                let _ = writeln!(out, "size={size}");
                let _ = writeln!(out, "stride={stride}");
            }
            LayerSpec::Upsample => {
                let _ = writeln!(out, "[upsample]");
                let _ = writeln!(out, "stride=2");
            }
            LayerSpec::Route { layers } => {
                let _ = writeln!(out, "[route]");
                let list: Vec<String> =
                    layers.iter().map(std::string::ToString::to_string).collect();
                let _ = writeln!(out, "layers={}", list.join(","));
            }
            LayerSpec::Shortcut { from, activation } => {
                let _ = writeln!(out, "[shortcut]");
                let _ = writeln!(out, "from={from}");
                let act = match activation {
                    Activation::Linear => "linear",
                    Activation::Leaky => "leaky",
                    Activation::Relu => "relu",
                };
                let _ = writeln!(out, "activation={act}");
            }
            LayerSpec::Yolo => {
                let _ = writeln!(out, "[yolo]");
            }
            LayerSpec::Connected { outputs, activation } => {
                let _ = writeln!(out, "[connected]");
                let _ = writeln!(out, "output={outputs}");
                let act = match activation {
                    Activation::Linear => "linear",
                    Activation::Leaky => "leaky",
                    Activation::Relu => "relu",
                };
                let _ = writeln!(out, "activation={act}");
            }
            LayerSpec::Softmax => {
                let _ = writeln!(out, "[softmax]");
            }
            LayerSpec::Avgpool => {
                let _ = writeln!(out, "[avgpool]");
            }
            LayerSpec::Dropout => {
                let _ = writeln!(out, "[dropout]");
                let _ = writeln!(out, "probability=.5");
            }
            LayerSpec::Cost => {
                let _ = writeln!(out, "[cost]");
            }
        }
    }
    out
}

/// The built-in models as shipped `.cfg` text (generated by [`to_cfg`],
/// parseable by stock Darknet-style tooling and by [`parse_cfg`]).
pub mod bundled {
    /// `yolov3.cfg` at the 608x608 network input.
    pub const YOLOV3: &str = include_str!("../cfg/yolov3.cfg");
    /// `yolov3-tiny.cfg` at 416x416.
    pub const YOLOV3_TINY: &str = include_str!("../cfg/yolov3-tiny.cfg");
    /// `vgg-16.cfg` at 224x224.
    pub const VGG16: &str = include_str!("../cfg/vgg16.cfg");
    /// The ResNet-50-style extension model at 224x224.
    pub const RESNET50: &str = include_str!("../cfg/resnet50.cfg");
    /// MobileNetV1 at 224x224.
    pub const MOBILENET_V1: &str = include_str!("../cfg/mobilenet-v1.cfg");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet50, vgg16, yolov3, yolov3_tiny};
    use lva_kernels::aux::Activation;
    use lva_sim::Rng;

    #[test]
    fn roundtrip_all_builtin_models() {
        for (specs, shape) in [yolov3(608), yolov3_tiny(416), vgg16(224)] {
            let text = to_cfg(&specs, shape);
            let (parsed, pshape) = parse_cfg(&text).expect("roundtrip parse");
            assert_eq!(parsed, specs);
            assert_eq!(pshape, shape);
        }
    }

    #[test]
    fn parses_minimal_cfg_with_comments_and_defaults() {
        let text = "
# a tiny network
[net]
height=64
width=64
channels=3

[convolutional]
batch_normalize=1
filters=16
size=3
stride=1
pad=1          # ignored: pad is size/2 by convention
activation=leaky

[maxpool]
size=2
stride=2
";
        let (specs, shape) = parse_cfg(text).unwrap();
        assert_eq!(shape, Shape::new(3, 64, 64));
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0], LayerSpec::conv(16, 3, 1));
        assert_eq!(specs[1], LayerSpec::Maxpool { size: 2, stride: 2 });
    }

    #[test]
    fn maxpool_stride_defaults_to_size() {
        let (specs, _) = parse_cfg("[net]\nheight=32\nwidth=32\n[maxpool]\nsize=2\n").unwrap();
        assert_eq!(specs[0], LayerSpec::Maxpool { size: 2, stride: 2 });
    }

    #[test]
    fn route_lists_parse() {
        let text = "[net]\nheight=32\nwidth=32\n[convolutional]\nfilters=4\nsize=1\n[route]\nlayers=-1, 0\n";
        let (specs, _) = parse_cfg(text).unwrap();
        assert_eq!(specs[1], LayerSpec::Route { layers: vec![-1, 0] });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_cfg("[net]\nheight=32\n[warp]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("warp"));
        let e = parse_cfg("height=3\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_cfg("[net]\nheight=x\n[maxpool]\n").unwrap_err();
        assert!(e.message.contains("height") || e.message.contains("bad integer"));
    }

    #[test]
    fn unterminated_section_rejected() {
        let e = parse_cfg("[net\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn unknown_activation_rejected() {
        let text =
            "[net]\nheight=32\nwidth=32\n[convolutional]\nfilters=1\nsize=1\nactivation=mish\n";
        let e = parse_cfg(text).unwrap_err();
        assert!(e.message.contains("mish"));
    }

    #[test]
    fn bundled_cfgs_match_builtin_models() {
        for (text, want) in [
            (bundled::YOLOV3, yolov3(608)),
            (bundled::MOBILENET_V1, crate::models::mobilenet_v1(224)),
            (bundled::YOLOV3_TINY, yolov3_tiny(416)),
            (bundled::VGG16, vgg16(224)),
            (bundled::RESNET50, resnet50(224)),
        ] {
            let (specs, shape) = parse_cfg(text).expect("bundled cfg parses");
            assert_eq!(specs, want.0);
            assert_eq!(shape, want.1);
        }
    }

    /// Draw one random layer spec (used by the randomized round-trip test).
    fn arb_spec(rng: &mut Rng) -> LayerSpec {
        match rng.gen_index(0, 11) {
            0 => LayerSpec::Conv {
                filters: rng.gen_index(1, 64),
                size: 2 * rng.gen_index(1, 4) - 1,
                stride: rng.gen_index(1, 3),
                batch_norm: rng.gen_bool(0.5),
                activation: [Activation::Linear, Activation::Leaky, Activation::Relu]
                    [rng.gen_index(0, 3)],
            },
            1 => LayerSpec::Maxpool { size: rng.gen_index(2, 4), stride: rng.gen_index(1, 3) },
            2 => LayerSpec::Upsample,
            3 => LayerSpec::Yolo,
            4 => LayerSpec::Depthwise {
                size: 3,
                stride: rng.gen_index(1, 3),
                batch_norm: rng.gen_bool(0.5),
                activation: Activation::Relu,
            },
            5 => LayerSpec::Avgpool,
            6 => LayerSpec::Dropout,
            7 => LayerSpec::Connected {
                outputs: rng.gen_index(1, 2000),
                activation: Activation::Relu,
            },
            8 => LayerSpec::Softmax,
            9 => LayerSpec::Shortcut {
                from: -(rng.gen_index(1, 5) as isize),
                activation: [Activation::Linear, Activation::Relu][rng.gen_index(0, 2)],
            },
            _ => LayerSpec::Route {
                layers: (0..rng.gen_index(1, 3)).map(|_| -(rng.gen_index(1, 8) as isize)).collect(),
            },
        }
    }

    /// Random layer tables round-trip through serialize/parse.
    #[test]
    fn cfg_roundtrip_is_identity() {
        let mut rng = Rng::new(0xcf6);
        for _ in 0..64 {
            let specs: Vec<LayerSpec> =
                (0..rng.gen_index(1, 24)).map(|_| arb_spec(&mut rng)).collect();
            let shape =
                Shape::new(rng.gen_index(1, 8), rng.gen_index(1, 512), rng.gen_index(1, 512));
            let text = to_cfg(&specs, shape);
            let (parsed, pshape) = parse_cfg(&text).expect("roundtrip");
            assert_eq!(parsed, specs);
            assert_eq!(pshape, shape);
        }
    }

    #[test]
    fn parsed_yolov3_runs_shape_walk() {
        // The serialized-then-parsed model must produce the same shapes.
        let (specs, shape) = yolov3(96);
        let (parsed, pshape) = parse_cfg(&to_cfg(&specs, shape)).unwrap();
        let a = crate::network::walk_shapes(&specs, shape);
        let b = crate::network::walk_shapes(&parsed, pshape);
        assert_eq!(a, b);
    }
}
