//! The paper's network models, transcribed from the standard Darknet
//! `.cfg` files: YOLOv3 (107 layers, 75 convolutional), YOLOv3-tiny
//! (24 layers, 13 convolutional) and VGG16 (25 layers: 13 conv + 5 maxpool
//! + 3 fully-connected + softmax + 3 intermediate activations folded in).
//!
//! The constructors take the square input resolution. The paper evaluates a
//! 768x576 image, which Darknet letterboxes to the 608x608 network input
//! (Table IV's `N = 369664 = 608^2` confirms this). For simulation-speed
//! scaling the input can be reduced; YOLOv3's two detection-head upsample /
//! route joins require the input to be a multiple of 32.

use crate::layer::LayerSpec;
use lva_kernels::aux::Activation;
use lva_tensor::Shape;

/// Identifies one of the studied models (for reports and the harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelId {
    Yolov3,
    Yolov3Tiny,
    Vgg16,
    /// Extension model (not in the paper): ResNet-50-style classifier.
    Resnet50,
    /// Extension model: MobileNetV1 (depthwise-separable convolutions).
    MobilenetV1,
}

impl ModelId {
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Yolov3 => "YOLOv3",
            ModelId::Yolov3Tiny => "YOLOv3-tiny",
            ModelId::Vgg16 => "VGG16",
            ModelId::Resnet50 => "ResNet-50",
            ModelId::MobilenetV1 => "MobileNetV1",
        }
    }

    /// Stable lowercase key for JSON records, CSV columns, and serving
    /// tenant names — unlike [`Self::name`], never contains capitals,
    /// dashes followed by digits, or other characters that make awkward
    /// map keys.
    pub fn slug(self) -> &'static str {
        match self {
            ModelId::Yolov3 => "yolov3",
            ModelId::Yolov3Tiny => "yolov3_tiny",
            ModelId::Vgg16 => "vgg16",
            ModelId::Resnet50 => "resnet50",
            ModelId::MobilenetV1 => "mobilenet_v1",
        }
    }

    /// The network-native input resolution used by the paper.
    pub fn native_input(self) -> usize {
        match self {
            ModelId::Yolov3 => 608,
            ModelId::Yolov3Tiny => 416,
            ModelId::Vgg16 => 224,
            ModelId::Resnet50 => 224,
            ModelId::MobilenetV1 => 224,
        }
    }

    /// Build the layer table and input shape at resolution `hw`.
    pub fn build(self, hw: usize) -> (Vec<LayerSpec>, Shape) {
        match self {
            ModelId::Yolov3 => yolov3(hw),
            ModelId::Yolov3Tiny => yolov3_tiny(hw),
            ModelId::Vgg16 => vgg16(hw),
            ModelId::Resnet50 => resnet50(hw),
            ModelId::MobilenetV1 => mobilenet_v1(hw),
        }
    }
}

/// A Darknet residual block: 1x1 squeeze + 3x3 expand + shortcut.
fn residual(layers: &mut Vec<LayerSpec>, squeeze: usize, expand: usize) {
    layers.push(LayerSpec::conv(squeeze, 1, 1));
    layers.push(LayerSpec::conv(expand, 3, 1));
    layers.push(crate::layer::shortcut(-3));
}

/// Full YOLOv3 (`yolov3.cfg`): Darknet-53 backbone + 3 detection heads.
///
/// # Panics
/// Panics unless `hw` is a positive multiple of 32 (required for the
/// upsample/route joins to line up).
pub fn yolov3(hw: usize) -> (Vec<LayerSpec>, Shape) {
    assert!(hw > 0 && hw.is_multiple_of(32), "YOLOv3 input must be a multiple of 32");
    let mut l: Vec<LayerSpec> = Vec::with_capacity(107);
    // Backbone (Darknet-53 without the classifier).
    l.push(LayerSpec::conv(32, 3, 1)); // 0
    l.push(LayerSpec::conv(64, 3, 2)); // 1
    residual(&mut l, 32, 64); // 2-4
    l.push(LayerSpec::conv(128, 3, 2)); // 5
    residual(&mut l, 64, 128); // 6-8
    residual(&mut l, 64, 128); // 9-11
    l.push(LayerSpec::conv(256, 3, 2)); // 12
    for _ in 0..8 {
        residual(&mut l, 128, 256); // 13-36
    }
    l.push(LayerSpec::conv(512, 3, 2)); // 37
    for _ in 0..8 {
        residual(&mut l, 256, 512); // 38-61
    }
    l.push(LayerSpec::conv(1024, 3, 2)); // 62
    for _ in 0..4 {
        residual(&mut l, 512, 1024); // 63-74
    }
    // Head 1 (13x13 grid at 416; 19x19 at 608).
    l.push(LayerSpec::conv(512, 1, 1)); // 75
    l.push(LayerSpec::conv(1024, 3, 1)); // 76
    l.push(LayerSpec::conv(512, 1, 1)); // 77
    l.push(LayerSpec::conv(1024, 3, 1)); // 78
    l.push(LayerSpec::conv(512, 1, 1)); // 79
    l.push(LayerSpec::conv(1024, 3, 1)); // 80
    l.push(LayerSpec::conv_linear(255)); // 81
    l.push(LayerSpec::Yolo); // 82
                             // Head 2.
    l.push(LayerSpec::Route { layers: vec![-4] }); // 83 -> 79
    l.push(LayerSpec::conv(256, 1, 1)); // 84
    l.push(LayerSpec::Upsample); // 85
    l.push(LayerSpec::Route { layers: vec![-1, 61] }); // 86
    l.push(LayerSpec::conv(256, 1, 1)); // 87
    l.push(LayerSpec::conv(512, 3, 1)); // 88
    l.push(LayerSpec::conv(256, 1, 1)); // 89
    l.push(LayerSpec::conv(512, 3, 1)); // 90
    l.push(LayerSpec::conv(256, 1, 1)); // 91
    l.push(LayerSpec::conv(512, 3, 1)); // 92
    l.push(LayerSpec::conv_linear(255)); // 93
    l.push(LayerSpec::Yolo); // 94
                             // Head 3.
    l.push(LayerSpec::Route { layers: vec![-4] }); // 95 -> 91
    l.push(LayerSpec::conv(128, 1, 1)); // 96
    l.push(LayerSpec::Upsample); // 97
    l.push(LayerSpec::Route { layers: vec![-1, 36] }); // 98
    l.push(LayerSpec::conv(128, 1, 1)); // 99
    l.push(LayerSpec::conv(256, 3, 1)); // 100
    l.push(LayerSpec::conv(128, 1, 1)); // 101
    l.push(LayerSpec::conv(256, 3, 1)); // 102
    l.push(LayerSpec::conv(128, 1, 1)); // 103
    l.push(LayerSpec::conv(256, 3, 1)); // 104
    l.push(LayerSpec::conv_linear(255)); // 105
    l.push(LayerSpec::Yolo); // 106
    (l, Shape::new(3, hw, hw))
}

/// YOLOv3-tiny (`yolov3-tiny.cfg`): 24 layers, 13 convolutional.
///
/// # Panics
/// Panics unless `hw` is a positive multiple of 32.
// The push-per-line layout mirrors the Darknet cfg with its layer indices.
#[allow(clippy::vec_init_then_push)]
pub fn yolov3_tiny(hw: usize) -> (Vec<LayerSpec>, Shape) {
    assert!(hw > 0 && hw.is_multiple_of(32), "YOLOv3-tiny input must be a multiple of 32");
    let mut l: Vec<LayerSpec> = Vec::with_capacity(24);
    l.push(LayerSpec::conv(16, 3, 1)); // 0
    l.push(LayerSpec::Maxpool { size: 2, stride: 2 }); // 1
    l.push(LayerSpec::conv(32, 3, 1)); // 2
    l.push(LayerSpec::Maxpool { size: 2, stride: 2 }); // 3
    l.push(LayerSpec::conv(64, 3, 1)); // 4
    l.push(LayerSpec::Maxpool { size: 2, stride: 2 }); // 5
    l.push(LayerSpec::conv(128, 3, 1)); // 6
    l.push(LayerSpec::Maxpool { size: 2, stride: 2 }); // 7
    l.push(LayerSpec::conv(256, 3, 1)); // 8
    l.push(LayerSpec::Maxpool { size: 2, stride: 2 }); // 9
    l.push(LayerSpec::conv(512, 3, 1)); // 10
    l.push(LayerSpec::Maxpool { size: 2, stride: 1 }); // 11 (keeps size)
    l.push(LayerSpec::conv(1024, 3, 1)); // 12
    l.push(LayerSpec::conv(256, 1, 1)); // 13
    l.push(LayerSpec::conv(512, 3, 1)); // 14
    l.push(LayerSpec::conv_linear(255)); // 15
    l.push(LayerSpec::Yolo); // 16
    l.push(LayerSpec::Route { layers: vec![-4] }); // 17 -> 13
    l.push(LayerSpec::conv(128, 1, 1)); // 18
    l.push(LayerSpec::Upsample); // 19
    l.push(LayerSpec::Route { layers: vec![-1, 8] }); // 20
    l.push(LayerSpec::conv(256, 3, 1)); // 21
    l.push(LayerSpec::conv_linear(255)); // 22
    l.push(LayerSpec::Yolo); // 23
    (l, Shape::new(3, hw, hw))
}

/// MobileNetV1 — the second extension model, realizing the paper's stated
/// future work of covering "more kernels in DNN inference": 13
/// depthwise-separable blocks (3x3 depthwise + 1x1 pointwise), each
/// batch-normed and ReLU-activated, then global average pooling and the
/// classifier. The depthwise layers have intrinsically low arithmetic
/// intensity, giving a very different co-design profile from the paper's
/// GEMM-dominated networks.
pub fn mobilenet_v1(hw: usize) -> (Vec<LayerSpec>, Shape) {
    assert!(
        hw >= 32 && hw.is_multiple_of(32),
        "MobileNetV1 input must be a positive multiple of 32"
    );
    use crate::layer::LayerSpec as L;
    let dw = |stride: usize| L::Depthwise {
        size: 3,
        stride,
        batch_norm: true,
        activation: Activation::Relu,
    };
    let pw = |filters: usize| L::Conv {
        filters,
        size: 1,
        stride: 1,
        batch_norm: true,
        activation: Activation::Relu,
    };
    let mut l: Vec<L> = Vec::new();
    l.push(L::Conv {
        filters: 32,
        size: 3,
        stride: 2,
        batch_norm: true,
        activation: Activation::Relu,
    });
    for (stride, filters) in [
        (1usize, 64usize),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ] {
        l.push(dw(stride));
        l.push(pw(filters));
    }
    l.push(L::Avgpool);
    l.push(L::Connected { outputs: 1000, activation: Activation::Linear });
    l.push(L::Softmax);
    (l, Shape::new(3, hw, hw))
}

/// A ResNet-50-style classifier — an *extension* model beyond the paper's
/// three networks, exercising bottleneck blocks with projection shortcuts
/// (route -> 1x1 projection conv -> shortcut), batch-norm + ReLU stacks and
/// global average pooling. Kernel mix: 1x1-heavy with 3x3 bottleneck cores,
/// a very different algorithm-selection profile from VGG16.
pub fn resnet50(hw: usize) -> (Vec<LayerSpec>, Shape) {
    assert!(hw >= 32 && hw.is_multiple_of(32), "ResNet-50 input must be a positive multiple of 32");
    use crate::layer::LayerSpec as L;
    let rconv = |filters: usize, size: usize, stride: usize| L::Conv {
        filters,
        size,
        stride,
        batch_norm: true,
        activation: Activation::Relu,
    };
    let lconv = |filters: usize, size: usize, stride: usize| L::Conv {
        filters,
        size,
        stride,
        batch_norm: true,
        activation: Activation::Linear,
    };
    let mut l: Vec<L> = Vec::new();
    l.push(rconv(64, 7, 2));
    l.push(L::Maxpool { size: 2, stride: 2 });
    // (blocks, squeeze, expand, first-block stride)
    for (blocks, sq, ex, stride) in [
        (3usize, 64usize, 256usize, 1usize),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ] {
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            if b == 0 {
                // Projection block: main path, then route back to the block
                // input for the 1x1 projection, then add.
                l.push(rconv(sq, 1, 1));
                l.push(rconv(sq, 3, s));
                l.push(lconv(ex, 1, 1));
                l.push(L::Route { layers: vec![-4] });
                l.push(lconv(ex, 1, s));
                l.push(L::Shortcut { from: -3, activation: Activation::Relu });
            } else {
                l.push(rconv(sq, 1, 1));
                l.push(rconv(sq, 3, 1));
                l.push(lconv(ex, 1, 1));
                l.push(L::Shortcut { from: -4, activation: Activation::Relu });
            }
        }
    }
    l.push(L::Avgpool);
    l.push(L::Connected { outputs: 1000, activation: Activation::Linear });
    l.push(L::Softmax);
    (l, Shape::new(3, hw, hw))
}

/// VGG16 (`vgg-16.cfg` layout): 13 ReLU convs + 5 maxpools + 3 FC + softmax.
/// All convolutional layers are 3x3 stride-1 — the reason the paper's
/// Winograd speedup is larger on VGG16 than on YOLOv3 (§VII-A).
pub fn vgg16(hw: usize) -> (Vec<LayerSpec>, Shape) {
    assert!(hw >= 32, "VGG16 input too small for five pooling stages");
    let mut l: Vec<LayerSpec> = Vec::with_capacity(25);
    for (reps, filters) in [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..reps {
            l.push(LayerSpec::conv_relu(filters, 3, 1));
        }
        l.push(LayerSpec::Maxpool { size: 2, stride: 2 });
    }
    l.push(LayerSpec::Connected { outputs: 4096, activation: Activation::Relu });
    l.push(LayerSpec::Dropout);
    l.push(LayerSpec::Connected { outputs: 4096, activation: Activation::Relu });
    l.push(LayerSpec::Dropout);
    l.push(LayerSpec::Connected { outputs: 1000, activation: Activation::Linear });
    l.push(LayerSpec::Softmax);
    l.push(LayerSpec::Cost);
    (l, Shape::new(3, hw, hw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_convs(l: &[LayerSpec]) -> usize {
        l.iter().filter(|s| matches!(s, LayerSpec::Conv { .. })).count()
    }

    #[test]
    fn slugs_are_stable_lowercase_keys() {
        let all = [
            ModelId::Yolov3,
            ModelId::Yolov3Tiny,
            ModelId::Vgg16,
            ModelId::Resnet50,
            ModelId::MobilenetV1,
        ];
        let mut seen = Vec::new();
        for m in all {
            let s = m.slug();
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(!seen.contains(&s), "slug {s} not unique");
            seen.push(s);
        }
    }

    #[test]
    fn yolov3_shape_matches_paper() {
        let (l, shape) = yolov3(608);
        assert_eq!(l.len(), 107, "107 layers (§II-B)");
        assert_eq!(count_convs(&l), 75, "75 convolutional layers");
        assert_eq!(shape, Shape::new(3, 608, 608));
        // 38 of the 75 convs are 3x3 (§VII-A).
        let threes = l.iter().filter(|s| matches!(s, LayerSpec::Conv { size: 3, .. })).count();
        assert_eq!(threes, 38);
        // Five of them are the stride-2 downsample convs.
        let s2 =
            l.iter().filter(|s| matches!(s, LayerSpec::Conv { size: 3, stride: 2, .. })).count();
        assert_eq!(s2, 5);
    }

    #[test]
    fn yolov3_first_20_has_15_convs() {
        // §VI-B: "the first 20 layers of the YOLOv3 model, out of which 15
        // are the convolutional layers".
        let (l, _) = yolov3(608);
        assert_eq!(count_convs(&l[..20]), 15);
        // Table II uses the first 4 layers, all convolutional.
        assert_eq!(count_convs(&l[..4]), 4);
    }

    #[test]
    fn tiny_shape_matches_paper() {
        let (l, _) = yolov3_tiny(416);
        assert_eq!(l.len(), 24);
        assert_eq!(count_convs(&l), 13, "13 convolutional layers (§II-B)");
    }

    #[test]
    fn vgg16_shape_matches_paper() {
        let (l, _) = vgg16(224);
        assert_eq!(l.len(), 25, "25 layers (§II-B)");
        assert_eq!(count_convs(&l), 13);
        let fc = l.iter().filter(|s| matches!(s, LayerSpec::Connected { .. })).count();
        assert_eq!(fc, 3);
        // Every conv is 3x3 stride 1 (§VII-A: all layers use Winograd).
        assert!(l
            .iter()
            .filter_map(|s| match s {
                LayerSpec::Conv { size, stride, .. } => Some((*size, *stride)),
                _ => None,
            })
            .all(|(s, st)| s == 3 && st == 1));
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn yolov3_rejects_unaligned_input() {
        let _ = yolov3(300);
    }

    #[test]
    fn mobilenet_structure() {
        let (l, shape) = mobilenet_v1(224);
        assert_eq!(shape, Shape::new(3, 224, 224));
        let dws = l.iter().filter(|s| matches!(s, LayerSpec::Depthwise { .. })).count();
        assert_eq!(dws, 13, "13 depthwise-separable blocks");
        assert_eq!(count_convs(&l), 14, "stem + 13 pointwise");
        let shapes = crate::network::walk_shapes(&l, shape);
        assert_eq!(shapes.last().unwrap().len(), 1000);
        // Spatial: 224 -> 7 after the five stride-2 stages.
        let last_spatial = shapes[l.len() - 4];
        assert_eq!((last_spatial.h, last_spatial.w, last_spatial.c), (7, 7, 1024));
    }

    #[test]
    fn resnet50_structure() {
        let (l, shape) = resnet50(224);
        assert_eq!(shape, Shape::new(3, 224, 224));
        // 1 stem + 16 blocks x 3 + 4 projection convs = 53 convolutions.
        assert_eq!(count_convs(&l), 53);
        let shortcuts = l.iter().filter(|s| matches!(s, LayerSpec::Shortcut { .. })).count();
        assert_eq!(shortcuts, 16);
        assert!(l.iter().any(|s| matches!(s, LayerSpec::Avgpool)));
        // The whole table must shape-check (projection joins line up).
        let shapes = crate::network::walk_shapes(&l, shape);
        assert_eq!(shapes.last().unwrap().len(), 1000);
    }
}
