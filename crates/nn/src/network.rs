//! Network construction and the inference runner.

use crate::layer::{ConvAlgo, ConvPolicy, LayerSpec};
use lva_isa::{Machine, StallBreakdown, VpuStats};
use lva_kernels::aux::{
    activate_vec, add_bias_vec, add_inplace_vec, copy_vec, fill_vec, normalize_vec, scale_bias_vec,
    Activation,
};
use lva_kernels::depthwise::{conv_depthwise_vec, depthwise_flops, depthwise_params};
use lva_kernels::fc::{fully_connected_vec, softmax_vec};
use lva_kernels::gemm::GemmWorkspace;
use lva_kernels::pool::{global_avgpool_vec, maxpool_vec, upsample2_vec, PoolParams};
use lva_kernels::{conv_direct_vec, conv_im2col_gemm, ConvParams, GemmVariant};
use lva_sim::memsys::MemSystemStats;
use lva_sim::Buf;
use lva_tensor::{host_random, Shape, Tensor};
use lva_winograd::{winograd_conv_vla, WinogradPlan, WinogradScratch};

/// Batch-norm inference parameters of a convolutional layer.
#[derive(Debug, Clone, Copy)]
struct BnState {
    mean: Buf,
    var: Buf,
    scales: Buf,
}

#[derive(Debug)]
struct ConvState {
    params: ConvParams,
    algo: ConvAlgo,
    weights: Buf,
    bias: Buf,
    bn: Option<BnState>,
    activation: Activation,
    wino: Option<WinogradPlan>,
}

#[derive(Debug)]
struct FcState {
    w: Buf,
    bias: Buf,
    outputs: usize,
    inputs: usize,
    activation: Activation,
}

#[derive(Debug)]
struct DwState {
    params: ConvParams,
    weights: Buf,
    bias: Buf,
    bn: Option<BnState>,
    activation: Activation,
}

// One `Layer` exists per network layer (dozens per run); boxing the large
// conv variant would buy nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum LayerKind {
    Conv(ConvState),
    Depthwise(DwState),
    Pool(PoolParams),
    Avgpool,
    Upsample,
    Route(Vec<usize>),
    Shortcut(usize, Activation),
    Yolo,
    Fc(FcState),
    Softmax,
}

/// A built layer: spec + runtime state + output tensor.
#[derive(Debug)]
pub struct Layer {
    pub spec: LayerSpec,
    pub out: Tensor,
    kind: LayerKind,
}

/// Per-layer execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    pub index: usize,
    pub desc: String,
    pub cycles: u64,
    /// Arithmetic work of the layer's *mathematical* definition (2*M*N*K for
    /// convolutions), independent of the algorithm used.
    pub flops: u64,
    pub mnk: Option<(usize, usize, usize)>,
    pub algo: Option<ConvAlgo>,
    pub out_shape: Shape,
    /// Stall cycles incurred while this layer ran, attributed by cause.
    pub stalls: StallBreakdown,
    /// Average consumed vector length (bits) of this layer's instructions.
    pub avg_vlen_bits: f64,
}

impl LayerReport {
    /// Achieved floating-point throughput: mathematical flops of the layer
    /// per simulated cycle it took.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }
}

/// Whole-run record. Phase/statistics snapshots are the machine totals at
/// the end of the run; callers that want a clean measurement reset the
/// machine timing before calling [`Network::run`] (the paper excludes the
/// network-setup phase the same way).
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    pub layers: Vec<LayerReport>,
    pub cycles: u64,
    pub phases: lva_isa::PhaseTimer,
    pub vpu: VpuStats,
    pub mem: MemSystemStats,
    /// Stall cycles over the whole run, attributed by cause.
    pub stalls: StallBreakdown,
}

impl NetReport {
    /// Total mathematical flops across layers.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }
}

/// A network instantiated on a machine: layer states, weights, workspaces.
#[derive(Debug)]
pub struct Network {
    pub input: Tensor,
    pub layers: Vec<Layer>,
    workspace: Buf,
    gemm_ws: Option<GemmWorkspace>,
    policy: ConvPolicy,
}

/// He-style scaled synthetic weights: keeps activation magnitudes O(1)
/// through deep networks so f32 end-to-end comparisons stay meaningful.
fn he_scaled(n: usize, fan_in: usize, seed: u64) -> Vec<f32> {
    let s = 1.0 / (fan_in as f32).sqrt();
    let mut w = host_random(n, seed);
    for v in &mut w {
        *v *= s;
    }
    w
}

/// Resolve a Darknet route/shortcut index (negative = relative).
fn resolve(idx: isize, current: usize) -> usize {
    let abs = if idx < 0 { current as isize + idx } else { idx };
    assert!(
        abs >= 0 && (abs as usize) < current,
        "layer reference {idx} out of range at {current}"
    );
    abs as usize
}

/// Static shape walk over a spec list: output shape per layer.
pub fn walk_shapes(specs: &[LayerSpec], input: Shape) -> Vec<Shape> {
    let mut shapes: Vec<Shape> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let prev = if i == 0 { input } else { shapes[i - 1] };
        let s = match spec {
            LayerSpec::Conv { filters, size, stride, .. } => {
                let p = ConvParams {
                    in_c: prev.c,
                    in_h: prev.h,
                    in_w: prev.w,
                    out_c: *filters,
                    k: *size,
                    stride: *stride,
                    pad: size / 2,
                };
                let (oh, ow) = p.out_hw();
                Shape::new(*filters, oh, ow)
            }
            LayerSpec::Depthwise { size, stride, .. } => {
                let p = depthwise_params(prev.c, prev.h, prev.w, *size, *stride);
                let (oh, ow) = p.out_hw();
                Shape::new(prev.c, oh, ow)
            }
            LayerSpec::Maxpool { size, stride } => {
                let p = PoolParams::darknet(*size, *stride);
                let (oh, ow) = p.out_hw(prev.h, prev.w);
                Shape::new(prev.c, oh, ow)
            }
            LayerSpec::Upsample => Shape::new(prev.c, 2 * prev.h, 2 * prev.w),
            LayerSpec::Route { layers } => {
                let srcs: Vec<Shape> = layers.iter().map(|&x| shapes[resolve(x, i)]).collect();
                let (h, w) = (srcs[0].h, srcs[0].w);
                assert!(srcs.iter().all(|s| s.h == h && s.w == w), "route spatial mismatch");
                Shape::new(srcs.iter().map(|s| s.c).sum(), h, w)
            }
            LayerSpec::Shortcut { from, .. } => {
                let f = shapes[resolve(*from, i)];
                assert_eq!(f, prev, "shortcut shape mismatch");
                prev
            }
            LayerSpec::Yolo | LayerSpec::Dropout | LayerSpec::Cost => prev,
            LayerSpec::Avgpool => Shape::new(prev.c, 1, 1),
            LayerSpec::Connected { outputs, .. } => Shape::new(*outputs, 1, 1),
            LayerSpec::Softmax => prev,
        };
        shapes.push(s);
    }
    shapes
}

/// All convolutional layers' geometry (used for Table IV, scratch sizing
/// and arena estimation).
pub fn conv_params_list(specs: &[LayerSpec], input: Shape) -> Vec<(usize, ConvParams)> {
    let shapes = walk_shapes(specs, input);
    specs
        .iter()
        .enumerate()
        .filter_map(|(i, spec)| match spec {
            LayerSpec::Conv { filters, size, stride, .. } => {
                let prev = if i == 0 { input } else { shapes[i - 1] };
                Some((
                    i,
                    ConvParams {
                        in_c: prev.c,
                        in_h: prev.h,
                        in_w: prev.w,
                        out_c: *filters,
                        k: *size,
                        stride: *stride,
                        pad: size / 2,
                    },
                ))
            }
            _ => None,
        })
        .collect()
}

/// Estimate of the arena words a network build needs, with slack. Used to
/// size the simulated memory before constructing the [`Machine`].
pub fn estimate_arena_words(specs: &[LayerSpec], input: Shape, policy: &ConvPolicy) -> usize {
    let shapes = walk_shapes(specs, input);
    let mut words = input.len();
    // Layer outputs.
    words += shapes.iter().map(Shape::len).sum::<usize>();
    let convs = conv_params_list(specs, input);
    let mut wino_layers: Vec<ConvParams> = Vec::new();
    let mut max_ws = 0usize;
    for (_, p) in &convs {
        let (_, _, kk) = p.gemm_mnk();
        words += p.out_c * kk + 4 * p.out_c; // weights + bias/bn
        match policy.select(p) {
            ConvAlgo::Winograd => wino_layers.push(*p),
            ConvAlgo::Im2colGemm => max_ws = max_ws.max(p.workspace_words()),
            ConvAlgo::Direct => {}
        }
    }
    words += max_ws;
    if let GemmVariant::Opt6 { blocks, .. } = policy.gemm {
        words += blocks.workspace_words();
    }
    // Winograd shared scratch maxima.
    let mut u = 0usize;
    let mut pad = 0usize;
    let mut dense = 0usize;
    let mut vm = 0usize;
    for p in &wino_layers {
        let s1 = ConvParams { stride: 1, ..*p };
        let (oh1, ow1) = s1.out_hw();
        let (ty, tx) = (oh1.div_ceil(6), ow1.div_ceil(6));
        u = u.max(p.out_c * (p.in_c * 64 + 64));
        pad = pad.max(p.in_c * (ty * 6 + 2) * (tx * 6 + 2));
        vm = vm.max(ty * tx * (p.in_c + p.out_c) * 64);
        if p.stride == 2 {
            dense = dense.max(p.out_c * oh1 * ow1);
        }
    }
    words += u + pad + dense + vm + 64 * 64;
    // FC and depthwise weights.
    for (i, spec) in specs.iter().enumerate() {
        let prev = if i == 0 { input } else { shapes[i - 1] };
        match spec {
            LayerSpec::Connected { outputs, .. } => {
                words += outputs * prev.len() + 2 * outputs;
            }
            LayerSpec::Depthwise { size, .. } => {
                words += prev.c * size * size + 4 * prev.c;
            }
            _ => {}
        }
    }
    // Alignment padding + slack.
    words + words / 8 + (specs.len() + 8) * 64
}

impl Network {
    /// Build the network on `m`: allocate all tensors, synthesize weights
    /// (deterministic from `seed`), pre-select the convolution algorithm per
    /// layer, and prepare workspaces. Building is setup and is expected to
    /// be followed by [`Machine::reset_timing`] before measurement.
    pub fn build(
        m: &mut Machine,
        specs: &[LayerSpec],
        input_shape: Shape,
        policy: ConvPolicy,
        seed: u64,
    ) -> Self {
        let shapes = walk_shapes(specs, input_shape);
        let input = Tensor::alloc(m, input_shape);
        // Shared resources.
        let convs = conv_params_list(specs, input_shape);
        let mut max_ws = 1usize;
        let mut wino_layers: Vec<ConvParams> = Vec::new();
        for (_, p) in &convs {
            match policy.select(p) {
                ConvAlgo::Winograd => wino_layers.push(*p),
                ConvAlgo::Im2colGemm => max_ws = max_ws.max(p.workspace_words()),
                ConvAlgo::Direct => {}
            }
        }
        let workspace = m.mem.alloc(max_ws.max(1));
        let gemm_ws = match policy.gemm {
            GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(m, blocks)),
            _ => None,
        };
        let wino_scratch = if wino_layers.is_empty() {
            None
        } else {
            Some(WinogradScratch::for_layers(m, wino_layers.iter().copied()))
        };

        let mut layers: Vec<Layer> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let prev_shape = if i == 0 { input_shape } else { shapes[i - 1] };
            let out = Tensor::alloc(m, shapes[i]);
            let lseed = seed.wrapping_add(1 + i as u64);
            let kind = match spec {
                LayerSpec::Conv { filters, size, stride, batch_norm, activation } => {
                    let params = ConvParams {
                        in_c: prev_shape.c,
                        in_h: prev_shape.h,
                        in_w: prev_shape.w,
                        out_c: *filters,
                        k: *size,
                        stride: *stride,
                        pad: size / 2,
                    };
                    let (mm, _, kk) = params.gemm_mnk();
                    let weights = m.mem.alloc_from(&he_scaled(mm * kk, kk, lseed));
                    let bias = m.mem.alloc_from(&host_random(*filters, lseed ^ 0xb1a5));
                    let bn = if *batch_norm {
                        let mean = m.mem.alloc_from(&host_random(*filters, lseed ^ 0x3ea));
                        let var = m.mem.alloc_from(
                            &host_random(*filters, lseed ^ 0x7a8)
                                .iter()
                                .map(|v| v.abs() + 0.5)
                                .collect::<Vec<_>>(),
                        );
                        let scales = m.mem.alloc_from(&host_random(*filters, lseed ^ 0x5ca));
                        Some(BnState { mean, var, scales })
                    } else {
                        None
                    };
                    let algo = policy.select(&params);
                    let wino = match algo {
                        ConvAlgo::Winograd => Some(WinogradPlan::new_shared(
                            m,
                            params,
                            weights,
                            wino_scratch.as_ref().expect("scratch allocated"),
                        )),
                        ConvAlgo::Im2colGemm | ConvAlgo::Direct => None,
                    };
                    LayerKind::Conv(ConvState {
                        params,
                        algo,
                        weights,
                        bias,
                        bn,
                        activation: *activation,
                        wino,
                    })
                }
                LayerSpec::Depthwise { size, stride, batch_norm, activation } => {
                    let params =
                        depthwise_params(prev_shape.c, prev_shape.h, prev_shape.w, *size, *stride);
                    let weights = m.mem.alloc_from(&he_scaled(
                        prev_shape.c * size * size,
                        size * size,
                        lseed,
                    ));
                    let bias = m.mem.alloc_from(&host_random(prev_shape.c, lseed ^ 0xb1a5));
                    let bn = if *batch_norm {
                        let mean = m.mem.alloc_from(&host_random(prev_shape.c, lseed ^ 0x3ea));
                        let var = m.mem.alloc_from(
                            &host_random(prev_shape.c, lseed ^ 0x7a8)
                                .iter()
                                .map(|v| v.abs() + 0.5)
                                .collect::<Vec<_>>(),
                        );
                        let scales = m.mem.alloc_from(&host_random(prev_shape.c, lseed ^ 0x5ca));
                        Some(BnState { mean, var, scales })
                    } else {
                        None
                    };
                    LayerKind::Depthwise(DwState {
                        params,
                        weights,
                        bias,
                        bn,
                        activation: *activation,
                    })
                }
                LayerSpec::Maxpool { size, stride } => {
                    LayerKind::Pool(PoolParams::darknet(*size, *stride))
                }
                LayerSpec::Upsample => LayerKind::Upsample,
                LayerSpec::Route { layers: ls } => {
                    LayerKind::Route(ls.iter().map(|&x| resolve(x, i)).collect())
                }
                LayerSpec::Shortcut { from, activation } => {
                    LayerKind::Shortcut(resolve(*from, i), *activation)
                }
                LayerSpec::Yolo => LayerKind::Yolo,
                LayerSpec::Connected { outputs, activation } => {
                    let inputs = prev_shape.len();
                    let w = m.mem.alloc_from(&he_scaled(outputs * inputs, inputs, lseed));
                    let bias = m.mem.alloc_from(&host_random(*outputs, lseed ^ 0xb1a5));
                    LayerKind::Fc(FcState {
                        w,
                        bias,
                        outputs: *outputs,
                        inputs,
                        activation: *activation,
                    })
                }
                LayerSpec::Softmax => LayerKind::Softmax,
                LayerSpec::Avgpool => LayerKind::Avgpool,
                LayerSpec::Dropout | LayerSpec::Cost => LayerKind::Yolo, // pass-through
            };
            layers.push(Layer { spec: spec.clone(), out, kind });
        }
        Network { input, layers, workspace, gemm_ws, policy }
    }

    /// Run inference over `image` (CHW, matching the input shape), returning
    /// per-layer and aggregate statistics.
    ///
    /// # Panics
    /// Panics if `image` does not match the input shape.
    pub fn run(&mut self, m: &mut Machine, image: &[f32]) -> NetReport {
        assert_eq!(image.len(), self.input.shape.len(), "input size mismatch");
        m.mem.slice_mut(self.input.buf).copy_from_slice(image);
        let run_t0 = m.cycles();
        let run_stalls0 = m.stalls;
        let mut net_span = lva_trace::span("network");
        let mut reports: Vec<LayerReport> = Vec::with_capacity(self.layers.len());
        // Split borrows: the loop needs `self.layers[i]` mutably plus reads
        // of earlier layers' outputs, so work with raw indices.
        for i in 0..self.layers.len() {
            let t0 = m.cycles();
            let stalls0 = m.stalls;
            let vpu0 = m.stats;
            // Opened before the layer body so kernel-phase spans nest inside.
            let mut layer_span = lva_trace::span("layer");
            let desc = self.layers[i].spec.describe();
            m.layer_begin(i, &desc);
            let prev_out: Tensor = if i == 0 { self.input } else { self.layers[i - 1].out };
            let (mnk, algo, flops);
            // Take what we need out of the layer to satisfy the borrow
            // checker (the winograd plan holds mutable scratch).
            let out = self.layers[i].out;
            match &mut self.layers[i].kind {
                LayerKind::Conv(cs) => {
                    mnk = Some(cs.params.gemm_mnk());
                    algo = Some(cs.algo);
                    flops = cs.params.flops();
                    let spatial = out.shape.h * out.shape.w;
                    match cs.algo {
                        ConvAlgo::Im2colGemm => {
                            fill_vec(m, out.buf, 0, out.shape.len(), 0.0);
                            conv_im2col_gemm(
                                m,
                                self.policy.gemm,
                                &cs.params,
                                &prev_out,
                                cs.weights,
                                self.workspace,
                                out.buf,
                                self.gemm_ws.as_ref(),
                            );
                        }
                        ConvAlgo::Winograd => {
                            let plan = cs.wino.as_mut().expect("winograd plan");
                            winograd_conv_vla(m, plan, &prev_out, out.buf);
                        }
                        ConvAlgo::Direct => {
                            conv_direct_vec(m, &cs.params, &prev_out, cs.weights, out.buf);
                        }
                    }
                    if let Some(bn) = cs.bn {
                        normalize_vec(m, out.buf, bn.mean, bn.var, cs.params.out_c, spatial);
                        scale_bias_vec(m, out.buf, bn.scales, cs.params.out_c, spatial);
                    }
                    add_bias_vec(m, out.buf, cs.bias, cs.params.out_c, spatial);
                    activate_vec(m, out.buf, out.shape.len(), cs.activation);
                }
                LayerKind::Depthwise(dw) => {
                    mnk = None;
                    algo = None;
                    flops = depthwise_flops(&dw.params);
                    let spatial = out.shape.h * out.shape.w;
                    conv_depthwise_vec(m, &dw.params, &prev_out, dw.weights, out.buf);
                    if let Some(bn) = dw.bn {
                        normalize_vec(m, out.buf, bn.mean, bn.var, out.shape.c, spatial);
                        scale_bias_vec(m, out.buf, bn.scales, out.shape.c, spatial);
                    }
                    add_bias_vec(m, out.buf, dw.bias, out.shape.c, spatial);
                    activate_vec(m, out.buf, out.shape.len(), dw.activation);
                }
                LayerKind::Pool(p) => {
                    mnk = None;
                    algo = None;
                    flops = (out.shape.len() * p.size * p.size) as u64;
                    let p = *p;
                    maxpool_vec(m, &p, &prev_out, &out);
                }
                LayerKind::Upsample => {
                    mnk = None;
                    algo = None;
                    flops = 0;
                    upsample2_vec(m, &prev_out, &out);
                }
                LayerKind::Avgpool => {
                    mnk = None;
                    algo = None;
                    flops = prev_out.shape.len() as u64;
                    global_avgpool_vec(m, &prev_out, &out);
                }
                LayerKind::Route(srcs) => {
                    mnk = None;
                    algo = None;
                    flops = 0;
                    let srcs = srcs.clone();
                    let mut off = 0usize;
                    for s in srcs {
                        let src = self.layers[s].out;
                        copy_vec(m, src.buf, 0, out.buf, off, src.shape.len());
                        off += src.shape.len();
                    }
                }
                LayerKind::Shortcut(from, act) => {
                    mnk = None;
                    algo = None;
                    flops = out.shape.len() as u64;
                    let (from, act) = (*from, *act);
                    let from_out = self.layers[from].out;
                    copy_vec(m, prev_out.buf, 0, out.buf, 0, out.shape.len());
                    add_inplace_vec(m, from_out.buf, out.buf, out.shape.len());
                    activate_vec(m, out.buf, out.shape.len(), act);
                }
                LayerKind::Yolo => {
                    mnk = None;
                    algo = None;
                    flops = 0;
                    copy_vec(m, prev_out.buf, 0, out.buf, 0, out.shape.len());
                }
                LayerKind::Fc(fc) => {
                    mnk = Some((fc.outputs, 1, fc.inputs));
                    algo = None;
                    flops = 2 * (fc.outputs * fc.inputs) as u64;
                    fully_connected_vec(m, fc.w, prev_out.buf, out.buf, fc.outputs, fc.inputs);
                    add_inplace_vec(m, fc.bias, out.buf, fc.outputs);
                    activate_vec(m, out.buf, fc.outputs, fc.activation);
                }
                LayerKind::Softmax => {
                    mnk = None;
                    algo = None;
                    flops = 25 * out.shape.len() as u64;
                    copy_vec(m, prev_out.buf, 0, out.buf, 0, out.shape.len());
                    softmax_vec(m, out.buf, out.shape.len());
                }
            }
            m.layer_end();
            let cycles = m.cycles() - t0;
            let stalls = m.stalls.since(&stalls0);
            let d_instrs = m.stats.vec_instrs - vpu0.vec_instrs;
            let d_elems = m.stats.active_elems - vpu0.active_elems;
            let avg_vlen_bits =
                if d_instrs == 0 { 0.0 } else { 32.0 * d_elems as f64 / d_instrs as f64 };
            let report = LayerReport {
                index: i,
                desc,
                cycles,
                flops,
                mnk,
                algo,
                out_shape: self.layers[i].out.shape,
                stalls,
                avg_vlen_bits,
            };
            if lva_trace::enabled() {
                layer_span.set("index", i as u64);
                layer_span.set("desc", report.desc.as_str());
                layer_span.set("cycles", cycles);
                layer_span.set("flops", flops);
                layer_span.set("flops_per_cycle", report.flops_per_cycle());
                layer_span.set("avg_vlen_bits", avg_vlen_bits);
                layer_span.set("stall_cycles", stalls.total());
            }
            drop(layer_span);
            reports.push(report);
        }
        let report = NetReport {
            layers: reports,
            cycles: m.cycles(),
            phases: m.phases.clone(),
            vpu: m.stats,
            mem: m.sys.stats(),
            stalls: m.stalls.since(&run_stalls0),
        };
        if lva_trace::enabled() {
            net_span.set("layers", report.layers.len() as u64);
            net_span.set("cycles", report.cycles - run_t0);
            net_span.set("flops", report.flops());
            net_span.set("avg_vlen_bits", report.vpu.avg_vlen_bits());
        }
        report
    }

    /// The final output tensor.
    pub fn output(&self) -> Tensor {
        self.layers.last().expect("non-empty network").out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet50, vgg16, yolov3, yolov3_tiny};
    use lva_isa::MachineConfig;
    use lva_kernels::depthwise::conv_depthwise_ref;
    use lva_kernels::reference as href;
    use lva_tensor::approx_eq;

    fn build_and_run(
        specs: &[LayerSpec],
        input_shape: Shape,
        policy: ConvPolicy,
        vlen: usize,
        sve: bool,
    ) -> (NetReport, Vec<f32>) {
        let mut cfg = if sve {
            MachineConfig::sve_gem5(vlen, 1 << 20)
        } else {
            MachineConfig::rvv_gem5(vlen, 8, 1 << 20)
        };
        cfg.arena_mib =
            (estimate_arena_words(specs, input_shape, &policy) * 4 / (1 << 20) + 16).max(32);
        let mut m = Machine::new(cfg);
        let mut net = Network::build(&mut m, specs, input_shape, policy, 7);
        m.reset_timing();
        let image = host_random(input_shape.len(), 99);
        let rep = net.run(&mut m, &image);
        let out = net.output().to_host(&m);
        (rep, out)
    }

    /// Host reference execution of a spec list (single path, CHW).
    fn reference_run(
        specs: &[LayerSpec],
        input_shape: Shape,
        seed: u64,
        image: &[f32],
    ) -> Vec<f32> {
        let shapes = walk_shapes(specs, input_shape);
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let prev: &[f32] = if i == 0 { image } else { &outs[i - 1] };
            let prev_shape = if i == 0 { input_shape } else { shapes[i - 1] };
            let lseed = seed.wrapping_add(1 + i as u64);
            let out = match spec {
                LayerSpec::Conv { filters, size, stride, batch_norm, activation } => {
                    let p = ConvParams {
                        in_c: prev_shape.c,
                        in_h: prev_shape.h,
                        in_w: prev_shape.w,
                        out_c: *filters,
                        k: *size,
                        stride: *stride,
                        pad: size / 2,
                    };
                    let (mm, _, kk) = p.gemm_mnk();
                    let w = he_scaled(mm * kk, kk, lseed);
                    let bias = host_random(*filters, lseed ^ 0xb1a5);
                    let mut x = href::conv_direct_ref(&p, prev, &w);
                    let spatial = shapes[i].h * shapes[i].w;
                    if *batch_norm {
                        let mean = host_random(*filters, lseed ^ 0x3ea);
                        let var: Vec<f32> = host_random(*filters, lseed ^ 0x7a8)
                            .iter()
                            .map(|v| v.abs() + 0.5)
                            .collect();
                        let scales = host_random(*filters, lseed ^ 0x5ca);
                        href::normalize_ref(&mut x, &mean, &var, *filters, spatial);
                        href::scale_bias_ref(&mut x, &scales, *filters, spatial);
                    }
                    href::add_bias_ref(&mut x, &bias, *filters, spatial);
                    href::activate_ref(&mut x, *activation);
                    x
                }
                LayerSpec::Depthwise { size, stride, batch_norm, activation } => {
                    let p =
                        depthwise_params(prev_shape.c, prev_shape.h, prev_shape.w, *size, *stride);
                    let w = he_scaled(prev_shape.c * size * size, size * size, lseed);
                    let bias = host_random(prev_shape.c, lseed ^ 0xb1a5);
                    let mut x = conv_depthwise_ref(&p, prev, &w);
                    let spatial = shapes[i].h * shapes[i].w;
                    if *batch_norm {
                        let mean = host_random(prev_shape.c, lseed ^ 0x3ea);
                        let var: Vec<f32> = host_random(prev_shape.c, lseed ^ 0x7a8)
                            .iter()
                            .map(|v| v.abs() + 0.5)
                            .collect();
                        let scales = host_random(prev_shape.c, lseed ^ 0x5ca);
                        href::normalize_ref(&mut x, &mean, &var, prev_shape.c, spatial);
                        href::scale_bias_ref(&mut x, &scales, prev_shape.c, spatial);
                    }
                    href::add_bias_ref(&mut x, &bias, prev_shape.c, spatial);
                    href::activate_ref(&mut x, *activation);
                    x
                }
                LayerSpec::Maxpool { size, stride } => href::maxpool_ref(
                    prev,
                    prev_shape.c,
                    prev_shape.h,
                    prev_shape.w,
                    *size,
                    *stride,
                    size - 1,
                ),
                LayerSpec::Upsample => {
                    href::upsample2_ref(prev, prev_shape.c, prev_shape.h, prev_shape.w)
                }
                LayerSpec::Route { layers } => {
                    let mut v = Vec::new();
                    for &x in layers {
                        v.extend_from_slice(&outs[resolve(x, i)]);
                    }
                    v
                }
                LayerSpec::Shortcut { from, activation } => {
                    let f = &outs[resolve(*from, i)];
                    let mut x: Vec<f32> = prev.iter().zip(f).map(|(a, b)| a + b).collect();
                    href::activate_ref(&mut x, *activation);
                    x
                }
                LayerSpec::Yolo | LayerSpec::Dropout | LayerSpec::Cost => prev.to_vec(),
                LayerSpec::Avgpool => {
                    let spatial = prev_shape.h * prev_shape.w;
                    (0..prev_shape.c)
                        .map(|ci| {
                            prev[ci * spatial..(ci + 1) * spatial].iter().sum::<f32>()
                                / spatial as f32
                        })
                        .collect()
                }
                LayerSpec::Connected { outputs, activation } => {
                    let inputs = prev_shape.len();
                    let w = he_scaled(outputs * inputs, inputs, lseed);
                    let bias = host_random(*outputs, lseed ^ 0xb1a5);
                    let mut x = href::fc_ref(&w, prev, *outputs, inputs);
                    for (v, b) in x.iter_mut().zip(&bias) {
                        *v += b;
                    }
                    href::activate_ref(&mut x, *activation);
                    x
                }
                LayerSpec::Softmax => href::softmax_ref(prev),
            };
            outs.push(out);
        }
        outs.pop().unwrap()
    }

    #[test]
    fn tiny_yolo_matches_reference_gemm() {
        let (specs, shape) = yolov3_tiny(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        let (rep, got) = build_and_run(&specs, shape, policy, 1024, false);
        assert!(approx_eq(&got, &want, 2e-2, 2e-2), "output mismatch");
        assert_eq!(rep.layers.len(), specs.len());
        assert!(rep.cycles > 0);
    }

    #[test]
    fn tiny_yolo_matches_reference_winograd() {
        let (specs, shape) = yolov3_tiny(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy::winograd_default(GemmVariant::opt3());
        let (rep, got) = build_and_run(&specs, shape, policy, 512, true);
        assert!(approx_eq(&got, &want, 5e-2, 5e-2), "output mismatch (winograd)");
        let wino_layers = rep.layers.iter().filter(|l| l.algo == Some(ConvAlgo::Winograd)).count();
        assert!(wino_layers >= 8, "most tiny convs are 3x3 s1: {wino_layers}");
    }

    #[test]
    fn yolov3_prefix_runs_and_counts_convs() {
        let (specs, _) = yolov3(608);
        // First 20 layers at reduced scale (96 = multiple of 32).
        let (_, shape) = yolov3(96);
        let prefix = &specs[..20];
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        let image = host_random(shape.len(), 1);
        let want = reference_run(prefix, shape, 7, &image);
        let (rep, got) = build_and_run(prefix, shape, policy, 2048, false);
        assert!(approx_eq(&got, &want, 5e-2, 5e-2));
        let convs = rep.layers.iter().filter(|l| l.mnk.is_some()).count();
        assert_eq!(convs, 15);
    }

    #[test]
    fn vgg16_small_matches_reference() {
        let (specs, shape) = vgg16(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy::winograd_default(GemmVariant::opt3());
        let (rep, got) = build_and_run(&specs, shape, policy, 2048, true);
        // Softmax output: compare with a tight absolute tolerance.
        assert!(approx_eq(&got, &want, 5e-2, 1e-3), "vgg16 output mismatch");
        assert!((got.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(rep.layers.len(), 25);
    }

    #[test]
    fn gemm_fraction_dominates_on_yolo_prefix() {
        // §II-B: GEMM consumes ~93% of compute in YOLOv3 inference.
        let (specs, _) = yolov3(608);
        let (_, shape) = yolov3(96);
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        let (rep, _) = build_and_run(&specs[..20], shape, policy, 512, false);
        let gemm = rep.phases.get(lva_isa::KernelPhase::Gemm);
        assert!(gemm * 2 > rep.cycles, "GEMM should dominate: {} of {}", gemm, rep.cycles);
    }

    #[test]
    fn direct_1x1_policy_matches_reference() {
        let (specs, shape) = yolov3_tiny(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy { direct_1x1: true, ..ConvPolicy::gemm_only(GemmVariant::opt3()) };
        let (rep, got) = build_and_run(&specs, shape, policy, 1024, false);
        assert!(approx_eq(&got, &want, 2e-2, 2e-2), "direct-1x1 output mismatch");
        let direct_layers = rep.layers.iter().filter(|l| l.algo == Some(ConvAlgo::Direct)).count();
        assert!(direct_layers >= 3, "tiny has several 1x1 convs: {direct_layers}");
    }

    #[test]
    fn mobilenet_matches_reference_end_to_end() {
        let (specs, shape) = crate::models::mobilenet_v1(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        let (rep, got) = build_and_run(&specs, shape, policy, 1024, false);
        assert!(approx_eq(&got, &want, 5e-2, 1e-3), "mobilenet output mismatch");
        assert!((got.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let dws = rep.layers.iter().filter(|l| l.desc.starts_with("dw")).count();
        assert_eq!(dws, 13);
    }

    #[test]
    fn resnet50_matches_reference_end_to_end() {
        let (specs, shape) = resnet50(32);
        let image = host_random(shape.len(), 99);
        let want = reference_run(&specs, shape, 7, &image);
        let policy = ConvPolicy::winograd_default(GemmVariant::opt3());
        let (rep, got) = build_and_run(&specs, shape, policy, 1024, true);
        assert!(approx_eq(&got, &want, 5e-2, 1e-3), "resnet output mismatch");
        assert!((got.iter().sum::<f32>() - 1.0).abs() < 1e-4, "softmax normalizes");
        // Bottleneck 3x3 cores run Winograd; the 1x1s run GEMM.
        let wino = rep.layers.iter().filter(|l| l.algo == Some(ConvAlgo::Winograd)).count();
        assert!(wino >= 10, "expected the 3x3 cores on Winograd: {wino}");
    }

    #[test]
    fn run_emits_layer_spans_when_traced() {
        let (specs, shape) = yolov3_tiny(32);
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        lva_trace::enable_to_memory();
        let (rep, _) = build_and_run(&specs, shape, policy, 1024, false);
        let lines = lva_trace::take_memory();
        lva_trace::disable();
        // Tracing is process-global, so sibling tests may add lines; only
        // assert lower bounds and per-line shape.
        let layer_lines: Vec<&String> =
            lines.iter().filter(|l| l.contains(r#""name":"layer""#)).collect();
        assert!(
            layer_lines.len() >= specs.len(),
            "one span per layer: {} < {}",
            layer_lines.len(),
            specs.len()
        );
        assert!(lines.iter().any(|l| l.contains(r#""name":"network""#)));
        assert!(lines.iter().any(|l| l.contains(r#""name":"gemm""#)), "phase spans nest inside");
        for l in &layer_lines {
            assert!(l.contains(r#""cycles""#) && l.contains(r#""avg_vlen_bits""#), "{l}");
        }
        // Per-layer stall deltas cover the whole run exactly.
        assert_eq!(rep.stalls.attributed(), rep.stalls.total());
        let per_layer: u64 = rep.layers.iter().map(|l| l.stalls.total()).sum();
        assert_eq!(per_layer, rep.stalls.total());
    }

    #[test]
    fn conv_params_list_matches_table4_at_608() {
        let (specs, shape) = yolov3(608);
        let convs = conv_params_list(&specs, shape);
        assert_eq!(convs.len(), 75);
        let mnks: Vec<(usize, usize, usize)> = convs.iter().map(|(_, p)| p.gemm_mnk()).collect();
        // The 14 discrete rows of Table IV must all appear.
        for want in [
            (32, 369664, 27),
            (64, 92416, 288),
            (32, 92416, 64),
            (128, 23104, 576),
            (64, 23104, 128),
            (256, 5776, 1152),
            (128, 5776, 256),
            (256, 1444, 512),
            (1024, 361, 4608),
            (512, 361, 1024),
            (255, 361, 1024),
            (256, 1444, 768),
            (512, 1444, 2304),
            (255, 5776, 256),
        ] {
            assert!(mnks.contains(&want), "Table IV row {want:?} missing");
        }
    }
}
