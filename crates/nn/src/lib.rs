//! # lva-nn — a Darknet-substitute CNN inference framework
//!
//! Implements the network layer of the reproduction: layer types
//! (convolutional with optional batch-norm, maxpool, route, shortcut,
//! upsample, fully-connected, softmax, yolo), the exact layer tables of
//! **YOLOv3**, **YOLOv3-tiny** and **VGG16** from the standard Darknet
//! `.cfg` files, and an inference runner that executes a network on a
//! simulated [`lva_isa::Machine`] with per-layer cycle accounting and
//! per-kernel phase attribution (§II-B).
//!
//! Weights and inputs are synthetic (seeded): inference *performance* does
//! not depend on the values, and numerical correctness of every kernel is
//! established against scalar references (see DESIGN.md).
//!
//! Convolution layers dispatch to im2col+GEMM (naive / optimized 3-loop /
//! BLIS-like 6-loop) or to VLA Winograd per a [`ConvPolicy`], mirroring the
//! paper's §VII algorithm-selection rule (Winograd for 3x3 stride-1 layers,
//! im2col+GEMM otherwise; stride-2 Winograd optional).

#![forbid(unsafe_code)]
pub mod cfg;
pub mod detect;
pub mod layer;
pub mod models;
pub mod network;

pub use cfg::{parse_cfg, to_cfg, CfgError};
pub use detect::{decode_yolo_head, nms, Detection, COCO_CLASSES, YOLOV3_ANCHORS};
pub use layer::{ConvAlgo, ConvPolicy, LayerSpec};
pub use models::{mobilenet_v1, resnet50, vgg16, yolov3, yolov3_tiny, ModelId};
pub use network::{LayerReport, NetReport, Network};
