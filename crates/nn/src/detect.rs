//! YOLO detection post-processing: box decoding and non-maximum
//! suppression.
//!
//! The paper measures kernels, not detections, but a credible inference
//! framework must turn the 255-channel head outputs into boxes. This module
//! implements Darknet's YOLOv3 decoding on the host (it runs once per image
//! over a few thousand values — negligible next to the convolutions, which
//! is also why the paper's §II-B profile ignores it): per anchor
//! `(tx, ty, tw, th, obj, cls...)`, sigmoid the offsets/objectness, apply
//! the anchor priors, filter by objectness, then greedy per-class NMS.

use lva_tensor::Shape;

/// A decoded detection in normalized image coordinates (0..1).
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Box center x/y and width/height, relative to the image.
    pub x: f32,
    pub y: f32,
    pub w: f32,
    pub h: f32,
    /// Objectness score after sigmoid.
    pub objectness: f32,
    /// Best class index and its (objectness-scaled) score.
    pub class: usize,
    pub score: f32,
}

impl Detection {
    /// Intersection-over-union with another box.
    pub fn iou(&self, o: &Detection) -> f32 {
        let half = |v: f32| v / 2.0;
        let x1 = (self.x - half(self.w)).max(o.x - half(o.w));
        let y1 = (self.y - half(self.h)).max(o.y - half(o.h));
        let x2 = (self.x + half(self.w)).min(o.x + half(o.w));
        let y2 = (self.y + half(self.h)).min(o.y + half(o.h));
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = self.w * self.h + o.w * o.h - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The standard YOLOv3 anchor set (pixels at the 416 reference scale),
/// three per head, ordered like `yolov3.cfg`'s `anchors=` line.
pub const YOLOV3_ANCHORS: [(f32, f32); 9] = [
    (10.0, 13.0),
    (16.0, 30.0),
    (33.0, 23.0),
    (30.0, 61.0),
    (62.0, 45.0),
    (59.0, 119.0),
    (116.0, 90.0),
    (156.0, 198.0),
    (373.0, 326.0),
];

/// Number of classes encoded in a 255-channel head (3 anchors x (5 + 80)).
pub const COCO_CLASSES: usize = 80;

/// Decode one YOLO head output (CHW, `3*(5+classes)` channels) into
/// detections above `obj_threshold`.
///
/// `anchors` are the three (w, h) priors of this head in pixels;
/// `net_input` is the square network input resolution they are relative to.
pub fn decode_yolo_head(
    data: &[f32],
    shape: Shape,
    anchors: &[(f32, f32); 3],
    net_input: usize,
    obj_threshold: f32,
) -> Vec<Detection> {
    let classes = shape.c / 3 - 5;
    assert_eq!(shape.c, 3 * (5 + classes), "not a YOLO head shape");
    assert_eq!(data.len(), shape.len());
    let (gh, gw) = (shape.h, shape.w);
    let at = |ch: usize, y: usize, x: usize| data[(ch * gh + y) * gw + x];
    let mut out = Vec::new();
    for (a, anchor) in anchors.iter().enumerate() {
        let base = a * (5 + classes);
        for y in 0..gh {
            for x in 0..gw {
                let obj = sigmoid(at(base + 4, y, x));
                if obj < obj_threshold {
                    continue;
                }
                let bx = (x as f32 + sigmoid(at(base, y, x))) / gw as f32;
                let by = (y as f32 + sigmoid(at(base + 1, y, x))) / gh as f32;
                let bw = anchor.0 * at(base + 2, y, x).exp() / net_input as f32;
                let bh = anchor.1 * at(base + 3, y, x).exp() / net_input as f32;
                let (mut best_c, mut best_s) = (0usize, f32::MIN);
                for c in 0..classes {
                    let s = sigmoid(at(base + 5 + c, y, x));
                    if s > best_s {
                        best_s = s;
                        best_c = c;
                    }
                }
                out.push(Detection {
                    x: bx,
                    y: by,
                    w: bw,
                    h: bh,
                    objectness: obj,
                    class: best_c,
                    score: obj * best_s,
                });
            }
        }
    }
    out
}

/// Greedy per-class non-maximum suppression: keep the highest-scoring box
/// of each overlapping (IoU > `iou_threshold`) same-class cluster.
pub fn nms(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep: Vec<Detection> = Vec::new();
    'next: for d in dets {
        for k in &keep {
            if k.class == d.class && k.iou(&d) > iou_threshold {
                continue 'next;
            }
        }
        keep.push(d);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(x: f32, y: f32, w: f32, h: f32, class: usize, score: f32) -> Detection {
        Detection { x, y, w, h, objectness: score, class, score }
    }

    #[test]
    fn iou_basics() {
        let a = boxed(0.5, 0.5, 0.2, 0.2, 0, 1.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6, "self IoU is 1");
        let b = boxed(0.9, 0.9, 0.1, 0.1, 0, 1.0);
        assert_eq!(a.iou(&b), 0.0, "disjoint boxes");
        let c = boxed(0.55, 0.5, 0.2, 0.2, 0, 1.0);
        let i = a.iou(&c);
        assert!(i > 0.4 && i < 0.9, "partial overlap: {i}");
    }

    #[test]
    fn nms_suppresses_same_class_overlaps_only() {
        let dets = vec![
            boxed(0.5, 0.5, 0.2, 0.2, 3, 0.9),
            boxed(0.51, 0.5, 0.2, 0.2, 3, 0.8), // same class, overlapping
            boxed(0.51, 0.5, 0.2, 0.2, 7, 0.7), // other class, overlapping
            boxed(0.1, 0.1, 0.1, 0.1, 3, 0.6),  // same class, far away
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 3);
        assert!((kept[0].score - 0.9).abs() < 1e-6, "sorted by score");
        assert!(kept.iter().any(|d| d.class == 7));
        assert!(kept.iter().filter(|d| d.class == 3).count() == 2);
    }

    #[test]
    fn decode_recovers_a_planted_box() {
        // One 2x2 grid, 1 class: plant a confident box in cell (1, 0).
        let classes = 1;
        let shape = Shape::new(3 * (5 + classes), 2, 2);
        let mut data = vec![-10.0f32; shape.len()]; // sigmoid(-10) ~ 0
        let (gh, gw) = (2, 2);
        let set =
            |d: &mut [f32], ch: usize, y: usize, x: usize, v: f32| d[(ch * gh + y) * gw + x] = v;
        // Anchor 1 (base channel 6): tx=ty=0 -> center of the cell + 0.5.
        let base = 6;
        set(&mut data, base, 0, 1, 0.0);
        set(&mut data, base + 1, 0, 1, 0.0);
        set(&mut data, base + 2, 0, 1, 0.0); // tw = 0 -> anchor width
        set(&mut data, base + 3, 0, 1, 0.0);
        set(&mut data, base + 4, 0, 1, 10.0); // objectness ~ 1
        set(&mut data, base + 5, 0, 1, 10.0); // class 0 ~ 1
        let anchors = [(16.0, 30.0), (32.0, 32.0), (64.0, 64.0)];
        let dets = decode_yolo_head(&data, shape, &anchors, 64, 0.5);
        assert_eq!(dets.len(), 1);
        let d = &dets[0];
        assert!((d.x - 0.75).abs() < 1e-5, "cell x=1 center");
        assert!((d.y - 0.25).abs() < 1e-5);
        assert!((d.w - 0.5).abs() < 1e-5, "anchor 32 px / 64 px input");
        assert!(d.score > 0.99);
        assert_eq!(d.class, 0);
    }

    #[test]
    fn decode_thresholds_out_everything_when_quiet() {
        let shape = Shape::new(255, 4, 4);
        let data = vec![-6.0f32; shape.len()];
        let anchors = [YOLOV3_ANCHORS[6], YOLOV3_ANCHORS[7], YOLOV3_ANCHORS[8]];
        let dets = decode_yolo_head(&data, shape, &anchors, 416, 0.25);
        assert!(dets.is_empty());
    }

    #[test]
    fn end_to_end_decode_from_network_heads() {
        // Run tiny-YOLO and decode both heads: counts are arbitrary with
        // random weights, but the pipeline must produce finite, normalized
        // boxes and survive NMS.
        use crate::layer::LayerSpec;
        use crate::models::yolov3_tiny;
        use crate::network::{estimate_arena_words, Network};
        use crate::ConvPolicy;
        use lva_isa::{Machine, MachineConfig};
        use lva_kernels::GemmVariant;
        use lva_tensor::host_random;

        let (specs, shape) = yolov3_tiny(96);
        let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
        let mut cfg = MachineConfig::rvv_gem5(2048, 8, 1 << 20);
        cfg.arena_mib = (estimate_arena_words(&specs, shape, &policy) * 4 / (1 << 20) + 32).max(64);
        let mut m = Machine::new(cfg);
        let mut net = Network::build(&mut m, &specs, shape, policy, 11);
        let image = host_random(shape.len(), 5);
        let rep = net.run(&mut m, &image);
        let mut all = Vec::new();
        for (i, l) in rep.layers.iter().enumerate() {
            if matches!(net.layers[i].spec, LayerSpec::Yolo) {
                let data = net.layers[i].out.to_host(&m);
                let anchors = [YOLOV3_ANCHORS[6], YOLOV3_ANCHORS[7], YOLOV3_ANCHORS[8]];
                all.extend(decode_yolo_head(&data, l.out_shape, &anchors, 96, 0.3));
            }
        }
        let kept = nms(all, 0.45);
        for d in &kept {
            assert!(d.x.is_finite() && d.w.is_finite() && d.score.is_finite());
            assert!(d.score >= 0.0 && d.score <= 1.0);
        }
    }
}
