//! Layer specifications (the parsed form of a Darknet `.cfg`) and the
//! convolution algorithm-selection policy.

use lva_kernels::aux::Activation;
use lva_kernels::{ConvParams, GemmVariant};

/// Shorthand: linear shortcut (YOLOv3 residual blocks).
pub fn shortcut(from: isize) -> LayerSpec {
    LayerSpec::Shortcut { from, activation: Activation::Linear }
}

/// One layer of a network definition. Indices in `Route`/`Shortcut` follow
/// Darknet: negative values are relative to the current layer, non-negative
/// values are absolute layer indices.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// Convolution; `pad = size / 2` (Darknet's `pad=1` convention).
    Conv { filters: usize, size: usize, stride: usize, batch_norm: bool, activation: Activation },
    /// Depthwise convolution (groups = channels, MobileNet-style); the
    /// filter count equals the input channel count.
    Depthwise { size: usize, stride: usize, batch_norm: bool, activation: Activation },
    /// Darknet maxpool (total padding defaults to `size - 1`).
    Maxpool { size: usize, stride: usize },
    /// Nearest-neighbour 2x upsample.
    Upsample,
    /// Channel concatenation of earlier layers' outputs.
    Route { layers: Vec<isize> },
    /// Residual addition with an earlier layer (linear activation in
    /// YOLOv3; ReLU in ResNet).
    Shortcut { from: isize, activation: Activation },
    /// YOLO detection head: treated as a pass-through copy (its box decoding
    /// is outside the paper's kernel study).
    Yolo,
    /// Fully-connected layer over the flattened input.
    Connected { outputs: usize, activation: Activation },
    /// Softmax over the flattened input.
    Softmax,
    /// Global average pooling over the spatial dimensions.
    Avgpool,
    /// Dropout: an inference-time no-op (pass-through), present so layer
    /// counts match the Darknet cfg files.
    Dropout,
    /// Cost layer: terminal no-op, present for cfg-faithful layer counts.
    Cost,
}

impl LayerSpec {
    /// Shorthand used by the model tables: batch-normed leaky conv.
    pub fn conv(filters: usize, size: usize, stride: usize) -> Self {
        LayerSpec::Conv { filters, size, stride, batch_norm: true, activation: Activation::Leaky }
    }

    /// Shorthand: linear 1x1 detection conv (no batch-norm), as used before
    /// every `yolo` layer.
    pub fn conv_linear(filters: usize) -> Self {
        LayerSpec::Conv {
            filters,
            size: 1,
            stride: 1,
            batch_norm: false,
            activation: Activation::Linear,
        }
    }

    /// Shorthand: VGG-style ReLU conv without batch-norm.
    pub fn conv_relu(filters: usize, size: usize, stride: usize) -> Self {
        LayerSpec::Conv { filters, size, stride, batch_norm: false, activation: Activation::Relu }
    }

    /// Short human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            LayerSpec::Conv { filters, size, stride, .. } => {
                format!("conv {filters} {size}x{size}/{stride}")
            }
            LayerSpec::Depthwise { size, stride, .. } => format!("dw {size}x{size}/{stride}"),
            LayerSpec::Maxpool { size, stride } => format!("max {size}x{size}/{stride}"),
            LayerSpec::Upsample => "upsample 2x".into(),
            LayerSpec::Route { layers } => format!("route {layers:?}"),
            LayerSpec::Shortcut { from, .. } => format!("shortcut {from}"),
            LayerSpec::Yolo => "yolo".into(),
            LayerSpec::Connected { outputs, .. } => format!("connected {outputs}"),
            LayerSpec::Softmax => "softmax".into(),
            LayerSpec::Avgpool => "avgpool".into(),
            LayerSpec::Dropout => "dropout".into(),
            LayerSpec::Cost => "cost".into(),
        }
    }
}

/// Which algorithm a convolution layer ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvAlgo {
    Im2colGemm,
    Winograd,
    /// The im2col-free direct algorithm (§II-C: best for 1x1 kernels).
    Direct,
}

/// Algorithm-selection policy for convolutional layers (§VII: "we use
/// Winograd for all convolutional layers with 3x3 kernel sizes and stride 1,
/// and default to our optimized im2col+GEMM implementation for all other
/// cases").
#[derive(Debug, Clone, Copy)]
pub struct ConvPolicy {
    /// GEMM implementation for the im2col+GEMM path.
    pub gemm: GemmVariant,
    /// Use Winograd for 3x3 stride-1 layers.
    pub winograd: bool,
    /// Also use Winograd for 3x3 stride-2 layers (§VII-A measured this and
    /// found it 1.4x slower than im2col+GEMM).
    pub winograd_stride2: bool,
    /// Route 1x1 layers to the direct (im2col-free) algorithm (§II-C).
    pub direct_1x1: bool,
}

impl ConvPolicy {
    /// im2col+GEMM everywhere with the given variant.
    pub fn gemm_only(gemm: GemmVariant) -> Self {
        ConvPolicy { gemm, winograd: false, winograd_stride2: false, direct_1x1: false }
    }

    /// The paper's §VII-B selection: Winograd for 3x3 stride-1, optimized
    /// GEMM elsewhere.
    pub fn winograd_default(gemm: GemmVariant) -> Self {
        ConvPolicy { gemm, winograd: true, winograd_stride2: false, direct_1x1: false }
    }

    /// Choose the algorithm for one layer.
    pub fn select(&self, p: &ConvParams) -> ConvAlgo {
        if self.winograd && p.k == 3 && (p.stride == 1 || (p.stride == 2 && self.winograd_stride2))
        {
            ConvAlgo::Winograd
        } else if self.direct_1x1 && p.k == 1 {
            ConvAlgo::Direct
        } else {
            ConvAlgo::Im2colGemm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(k: usize, stride: usize) -> ConvParams {
        ConvParams { in_c: 8, in_h: 16, in_w: 16, out_c: 8, k, stride, pad: k / 2 }
    }

    #[test]
    fn policy_selects_per_paper() {
        let pol = ConvPolicy::winograd_default(GemmVariant::opt3());
        assert_eq!(pol.select(&p(3, 1)), ConvAlgo::Winograd);
        assert_eq!(pol.select(&p(3, 2)), ConvAlgo::Im2colGemm);
        assert_eq!(pol.select(&p(1, 1)), ConvAlgo::Im2colGemm);
        let pol2 = ConvPolicy { winograd_stride2: true, ..pol };
        assert_eq!(pol2.select(&p(3, 2)), ConvAlgo::Winograd);
        let pol3 = ConvPolicy::gemm_only(GemmVariant::opt3());
        assert_eq!(pol3.select(&p(3, 1)), ConvAlgo::Im2colGemm);
        let pol4 = ConvPolicy { direct_1x1: true, ..pol3 };
        assert_eq!(pol4.select(&p(1, 1)), ConvAlgo::Direct);
        assert_eq!(pol4.select(&p(3, 1)), ConvAlgo::Im2colGemm);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(LayerSpec::conv(32, 3, 1).describe(), "conv 32 3x3/1");
        assert_eq!(LayerSpec::Maxpool { size: 2, stride: 2 }.describe(), "max 2x2/2");
    }
}
