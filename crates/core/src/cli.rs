//! Shared command-line parsing for every workspace binary.
//!
//! The `exp-*` experiment drivers and the `lint-*` static-analysis tools
//! all speak the same flag dialect (`--jobs`, `--json`, `--trace`, …).
//! Each bin used to re-implement the loop by hand and PR 5/6 had to patch
//! them one at a time for flag parity; [`Opts`] is now the single
//! implementation. Experiment bins call [`Opts::parse`] (the full dialect,
//! re-exported as `lva_bench::Opts`); lint tools call [`Opts::parse_tool`]
//! (the `--jobs/--json/--trace` subset, with usage errors reported on the
//! lint tools' "internal error" exit code 2).

use std::env;

/// Common options for experiment and lint binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Linear input down-scale divisor (1 = paper-native resolution).
    pub div: usize,
    /// Override the layer prefix length.
    pub layers: Option<usize>,
    /// Write a CSV under `results/`.
    pub csv: bool,
    /// Write machine-readable JSON under `results/`.
    pub json: bool,
    /// Attach an `lva-prof` memory profiler to every run (reuse-distance
    /// histograms, 3C miss classes, hit-rate-vs-capacity curves in the
    /// JSON output). Timing is unchanged.
    pub profile: bool,
    /// Write a Chrome trace-event timeline (Perfetto-loadable) to this path.
    pub chrome: Option<String>,
    /// Worker threads for independent design-point runs (`--jobs N`;
    /// `--jobs 0` means all host cores). 1 = the serial loop.
    pub jobs: usize,
    /// Self-benchmark the simulator's wall-clock (`--wallclock`): run the
    /// sweep serially and with `--jobs`, median-of-3 each, and write a
    /// `BENCH_sim_wallclock.json` report.
    pub wallclock: bool,
    /// Attach an `lva-whatif` counterfactual analysis to every run's JSON
    /// report (`--with-whatif`): five extra idealized simulations per design
    /// point. Off by default — the plain reports stay byte-identical.
    pub whatif: bool,
    /// Attach the `lva-energy` streamed attribution to every run's JSON
    /// report (`--with-energy`): one probed re-run per design point, cycle
    /// counts unchanged. Off by default.
    pub energy: bool,
    /// Route runs through the `lva-retime` memoizing retime engine
    /// (`--retime`), or through it *and* the full simulator with a
    /// bit-identity assertion per run (`--retime=verify`).
    pub retime: RetimeOpt,
}

/// The `--retime` flag's three settings, shared by every experiment bin
/// (the `lva-retime` engine consumes it as its mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetimeOpt {
    /// Full simulation for every run (the default).
    #[default]
    Off,
    /// Trace once per semantic stream, re-time everywhere else; fall back
    /// to full simulation when no certificate covers the stream.
    On,
    /// `On`, plus a full simulation per run with a bit-identity assertion
    /// (cycles and the complete report must match the retimed result).
    Verify,
}

impl RetimeOpt {
    pub fn enabled(self) -> bool {
        self != RetimeOpt::Off
    }
}

impl Opts {
    fn defaults(default_div: usize) -> Opts {
        Opts {
            div: default_div,
            layers: None,
            csv: true,
            json: false,
            profile: false,
            chrome: None,
            jobs: 1,
            wallclock: false,
            whatif: false,
            energy: false,
            retime: RetimeOpt::Off,
        }
    }

    /// Parse `--div N`, `--layers N`, `--csv`, `--json`, `--trace FILE`,
    /// `--help` from `std::env`. `default_div` is the experiment's default
    /// scale. `--trace` installs a JSONL telemetry sink for the whole run.
    pub fn parse(default_div: usize, what: &str) -> Opts {
        let mut opts = Opts::defaults(default_div);
        let mut args = env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--div" => {
                    opts.div =
                        args.next().and_then(|v| v.parse().ok()).expect("--div needs an integer");
                }
                "--layers" => {
                    opts.layers = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--layers needs an integer"),
                    );
                }
                "--no-csv" => opts.csv = false,
                "--csv" => opts.csv = true,
                "--json" => opts.json = true,
                "--no-json" => opts.json = false,
                "--profile" => opts.profile = true,
                "--jobs" => opts.jobs = parse_jobs(&mut args),
                "--wallclock" => opts.wallclock = true,
                "--with-whatif" => opts.whatif = true,
                "--with-energy" => opts.energy = true,
                "--retime" => opts.retime = RetimeOpt::On,
                "--retime=verify" => opts.retime = RetimeOpt::Verify,
                "--retime=off" => opts.retime = RetimeOpt::Off,
                "--chrome" => {
                    opts.chrome = Some(args.next().expect("--chrome needs a file path"));
                }
                "--trace" => install_trace(&mut args),
                "--help" | "-h" => {
                    eprintln!(
                        "{what}\n\nOptions:\n  --div N      input down-scale divisor (default {default_div}; 1 = paper size)\n  --layers N   layer prefix override\n  --csv/--no-csv  write results/<exp>.csv (default on)\n  --json       also write results/<exp>.json (machine-readable)\n  --profile    tap the cache hierarchy: reuse-distance histograms, 3C\n               miss classes, capacity curves (in the JSON output)\n  --chrome FILE  write a Chrome trace-event timeline (Perfetto) to FILE\n  --trace FILE stream JSONL telemetry spans to FILE\n  --jobs N     run independent design points on N threads (0 = all cores;\n               results and reports are identical to --jobs 1)\n  --wallclock  self-benchmark: time the sweep serial vs --jobs (median of\n               3 each) and write BENCH_sim_wallclock.json\n  --with-whatif  attach lva-whatif counterfactual analyses (bound\n               classification, cycles-saved-if-fixed) to the JSON reports\n  --with-energy  attach the lva-energy streamed attribution (per-layer\n               joules, EDP, energy roofline) to the JSON reports\n  --retime     trace each semantic stream once, re-time every other design\n               point through the memoizing retime engine (bit-identical;\n               certificate-gated, falls back to full simulation)\n  --retime=verify  retime AND fully simulate every run, asserting the\n               results are bit-identical"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Parse the lint-tool subset: `--jobs N`, `--json`, `--trace FILE`,
    /// `--help`. Used by `lint-kernels` and `lint-dataflow`, whose exit
    /// codes distinguish findings (1) from internal/usage errors (2) —
    /// unknown flags therefore exit 2, never 1.
    pub fn parse_tool(what: &str) -> Opts {
        let mut opts = Opts::defaults(1);
        let mut args = env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--jobs" => opts.jobs = parse_jobs(&mut args),
                "--json" => opts.json = true,
                "--trace" => install_trace(&mut args),
                "--help" | "-h" => {
                    eprintln!(
                        "{what}\n\nOptions:\n  --jobs N     check design points on N threads (0 = all cores;\n               the report is identical for every N)\n  --json       also save the report under results/\n  --trace FILE stream JSONL telemetry spans to FILE\n\nExit codes: 0 clean, 1 findings, 2 internal/usage error"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

fn parse_jobs(args: &mut impl Iterator<Item = String>) -> usize {
    let n: usize = args.next().and_then(|v| v.parse().ok()).expect("--jobs needs an integer");
    if n == 0 {
        crate::par::default_jobs()
    } else {
        n
    }
}

fn install_trace(args: &mut impl Iterator<Item = String>) {
    let path = args.next().expect("--trace needs a file path");
    lva_trace::enable_to_file(&path)
        .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
    eprintln!("[tracing to {path}]");
}
