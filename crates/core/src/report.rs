//! Text-table and CSV rendering for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use lva_trace::Json;

/// A simple right-padded text table that can also serialize to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row, checking the column count against the header.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), ArityError> {
        if cells.len() != self.headers.len() {
            return Err(ArityError { expected: self.headers.len(), got: cells.len() });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Append a row. A column count differing from the header is a caller
    /// bug: debug builds assert; release builds normalize the row (truncate
    /// or pad with empty cells) so an experiment binary never dies mid-sweep
    /// over a cosmetic reporting slip. Use [`Self::try_row`] to handle the
    /// mismatch explicitly.
    pub fn row(&mut self, mut cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                let _ = write!(out, "{:<w$}  ", cells[i], w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &sep);
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV serialization (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write CSV under `results/<name>.csv` (creating the directory).
    pub fn save_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// The table as a JSON value: `{title, headers, rows}` with rows as
    /// arrays of strings (the cells are already formatted for humans; the
    /// machine-readable counters live in `RunReport`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("title", self.title.as_str())
            .field(
                "headers",
                Json::Arr(self.headers.iter().map(|h| Json::from(h.as_str())).collect()),
            )
            .field(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect()))
                        .collect(),
                ),
            )
    }
}

/// Column-count mismatch from [`Table::try_row`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArityError {
    pub expected: usize,
    pub got: usize,
}

impl std::fmt::Display for ArityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "column count mismatch: expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for ArityError {}

/// Format a cycle count with thousands separators.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

/// Format a ratio like "1.34x".
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() == 5);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn try_row_reports_arity_mismatch() {
        let mut t = Table::new("t", &["x", "y"]);
        let e = t.try_row(vec!["1".into()]).unwrap_err();
        assert_eq!(e, ArityError { expected: 2, got: 1 });
        assert!(e.to_string().contains("column count"));
        assert!(t.rows.is_empty());
        t.try_row(vec!["1".into(), "2".into()]).unwrap();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "column count"))]
    fn row_arity_normalized_in_release() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(vec!["1".into()]);
        // Release builds: the short row is padded instead of panicking.
        assert_eq!(t.rows[0], vec!["1".to_string(), String::new()]);
    }

    #[test]
    fn table_to_json_round_trips_cells() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x\"1".into(), "2".into()]);
        let j = t.to_json().to_string_compact();
        assert!(j.contains(r#""title":"demo""#));
        assert!(j.contains(r#"["x\"1","2"]"#));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_cycles(1234567), "1_234_567");
        assert_eq!(fmt_cycles(12), "12");
        assert_eq!(fmt_speedup(1.344), "1.34x");
    }
}
