//! Text-table and CSV rendering for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple right-padded text table that can also serialize to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                let _ = write!(out, "{:<w$}  ", cells[i], w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &sep);
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV serialization (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write CSV under `results/<name>.csv` (creating the directory).
    pub fn save_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a cycle count with thousands separators.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

/// Format a ratio like "1.34x".
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() == 5);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_cycles(1234567), "1_234_567");
        assert_eq!(fmt_cycles(12), "12");
        assert_eq!(fmt_speedup(1.344), "1.34x");
    }
}
