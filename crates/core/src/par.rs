//! Zero-dependency parallel sweep executor.
//!
//! The paper's methodology is a design-space sweep of independent runs
//! (Tables II–III), and each run is a pure function of its `Experiment` —
//! simulated machines share no state. That makes the sweep embarrassingly
//! parallel on the host, as long as two process-global facilities are kept
//! deterministic:
//!
//! * **Results** are collected into submission-order slots, so callers see
//!   the same `Vec` regardless of which worker finished first.
//! * **`lva-trace` output** is captured per worker thread
//!   ([`lva_trace::capture_thread`]) and replayed in submission order at
//!   join, so a `--trace` JSONL stream is byte-stable under `--jobs N`
//!   (span *ids* are process-unique, not stable, but ordering and parent
//!   links are).
//!
//! Built on [`std::thread::scope`] + one [`AtomicUsize`] work index — no
//! external crates, matching the repo's zero-dependency rule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism (≥ 1); the default for `--jobs 0`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` using up to `jobs` worker threads, returning results
/// in submission order.
///
/// `f` is called as `f(index, &item)`. With `jobs <= 1` (or a single item)
/// the map runs inline on the caller's thread — no threads, no capture, so
/// serial behaviour is exactly the pre-existing loop. With more jobs, each
/// worker pulls the next unclaimed index; per-thread trace output is
/// captured and replayed in submission order after all workers join.
///
/// A panic in `f` propagates to the caller once the scope joins.
pub fn parallel_map<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    // One slot per item: the result plus that worker's captured trace lines.
    type Slot<O> = Mutex<Option<(O, Vec<String>)>>;
    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<O>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let (out, trace) = lva_trace::capture_thread(|| f(i, item));
                *slots[i].lock().unwrap() = Some((out, trace));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let (out, trace) =
                slot.into_inner().unwrap().expect("scope joined with an unfilled slot");
            lva_trace::emit_captured(trace);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_submission_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 4, 7] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn jobs_one_runs_inline_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let out = parallel_map(&[1u32, 2, 3], 1, |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |_, &x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(out.iter().sum::<u64>(), 99 * 100 / 2);
    }

    #[test]
    fn worker_traces_merge_in_submission_order() {
        // The trace sink is process-global; capture on this thread too so
        // concurrently running tests can't interleave with the assertion.
        lva_trace::enable_to_memory();
        let items: Vec<u64> = (0..16).collect();
        let ((), lines) = lva_trace::capture_thread(|| {
            let _ = parallel_map(&items, 4, |i, _| {
                lva_trace::counter("par_item", i as u64);
            });
        });
        lva_trace::disable();
        let _ = lva_trace::take_memory();
        let got: Vec<String> = lines
            .iter()
            .filter(|l| l.contains("par_item"))
            .map(|l| {
                l.split("\"value\":").nth(1).unwrap().split([',', '}']).next().unwrap().to_string()
            })
            .collect();
        let want: Vec<String> = (0..16).map(|i| i.to_string()).collect();
        assert_eq!(got, want, "trace replay must follow submission order");
    }
}
