//! Energy estimation for co-design points — an extension of the paper.
//!
//! §I motivates vector CPUs by energy efficiency and §V notes that caches
//! "occupy significant die area", but the paper stops at performance. This
//! module closes the loop with a simple, documented event-energy model so
//! the harness can report energy-per-inference and energy-delay product
//! across the same design grid, exposing the point where ever-larger L2
//! caches stop paying for their leakage.
//!
//! The constants are order-of-magnitude values for a 7 nm-class process
//! (CACTI-flavoured SRAM access energies, DRAM interface energy, published
//! FMA energy estimates). Absolute joules are indicative; *relative*
//! comparisons across design points are the purpose.

use crate::experiment::RunSummary;
use lva_sim::memsys::MemSystemStats;

/// Event energies and static power of a simulated design point.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Energy per single-precision vector flop (pJ).
    pub pj_per_vector_flop: f64,
    /// Energy per scalar operation unit, fetch/decode included (pJ).
    pub pj_per_scalar_op: f64,
    /// Energy per vector instruction issued (control overhead) (pJ).
    pub pj_per_vec_instr: f64,
    /// Energy per L1 / vector-cache line access (pJ).
    pub pj_per_l1_access: f64,
    /// Energy per L2 access for a 1 MB array (pJ); scales with sqrt(size).
    pub pj_per_l2_access_1mb: f64,
    /// Energy per DRAM line transfer (pJ).
    pub pj_per_dram_access: f64,
    /// L2 leakage + refresh power per MiB (mW).
    pub leakage_mw_per_mb_l2: f64,
    /// Static core power excluding the L2 (mW).
    pub core_static_mw: f64,
    /// Clock frequency (GHz) used to convert cycles to seconds.
    pub freq_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_vector_flop: 0.8,
            pj_per_scalar_op: 8.0,
            pj_per_vec_instr: 15.0,
            pj_per_l1_access: 12.0,
            pj_per_l2_access_1mb: 30.0,
            pj_per_dram_access: 2_500.0,
            leakage_mw_per_mb_l2: 8.0,
            core_static_mw: 150.0,
            freq_ghz: 2.0,
        }
    }
}

/// Energy estimate for one run.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Dynamic compute energy (vector flops + scalar ops + issue), joules.
    pub compute_j: f64,
    /// Dynamic memory-hierarchy energy, joules.
    pub memory_j: f64,
    /// Static/leakage energy over the run's wall time, joules.
    pub static_j: f64,
    /// Run wall time in seconds.
    pub seconds: f64,
}

impl EnergyReport {
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.memory_j + self.static_j
    }

    /// Energy-delay product (J*s): the co-design figure of merit that
    /// penalizes both slow and power-hungry points.
    pub fn edp(&self) -> f64 {
        self.total_j() * self.seconds
    }
}

impl EnergyModel {
    /// L2 access energy scaled to the configured capacity (bit-line and
    /// wire energy grow roughly with the square root of the array).
    fn pj_per_l2_access(&self, l2_bytes: usize) -> f64 {
        let ratio = l2_bytes as f64 / (1 << 20) as f64;
        self.pj_per_l2_access_1mb * ratio.max(1.0).sqrt()
    }

    /// Estimate the energy of a completed run on a design point with
    /// `l2_bytes` of L2.
    pub fn estimate(&self, summary: &RunSummary, l2_bytes: usize) -> EnergyReport {
        let v = &summary.report.vpu;
        let mem: &MemSystemStats = &summary.report.mem;
        const PJ: f64 = 1e-12;
        let compute_j = PJ
            * (v.vec_flops as f64 * self.pj_per_vector_flop
                + (v.scalar_ops + v.scalar_flops) as f64 * self.pj_per_scalar_op
                + v.vec_instrs as f64 * self.pj_per_vec_instr);
        let l1_accesses = mem.l1.accesses + mem.vcache.accesses;
        let memory_j = PJ
            * (l1_accesses as f64 * self.pj_per_l1_access
                + mem.l2.accesses as f64 * self.pj_per_l2_access(l2_bytes)
                + (mem.dram_reads + mem.dram_writes) as f64 * self.pj_per_dram_access);
        let seconds = summary.cycles as f64 / (self.freq_ghz * 1e9);
        let static_mw =
            self.core_static_mw + self.leakage_mw_per_mb_l2 * (l2_bytes as f64 / (1 << 20) as f64);
        let static_j = static_mw * 1e-3 * seconds;
        EnergyReport { compute_j, memory_j, static_j, seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, HwTarget, Workload};
    use lva_kernels::GemmVariant;
    use lva_nn::{ConvPolicy, ModelId};

    fn summary(l2: usize, vlen: usize) -> RunSummary {
        Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        )
        .run()
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let s = summary(1 << 20, 1024);
        let e = EnergyModel::default().estimate(&s, 1 << 20);
        assert!(e.compute_j > 0.0 && e.memory_j > 0.0 && e.static_j > 0.0);
        assert!((e.total_j() - (e.compute_j + e.memory_j + e.static_j)).abs() < 1e-15);
        assert!(e.edp() > 0.0);
    }

    #[test]
    fn giant_cache_pays_leakage() {
        // Same workload: the 256 MB cache must carry a larger static bill
        // per second than the 1 MB cache.
        let model = EnergyModel::default();
        let small = summary(1 << 20, 1024);
        let big = summary(256 << 20, 1024);
        let e_small = model.estimate(&small, 1 << 20);
        let e_big = model.estimate(&big, 256 << 20);
        let rate_small = e_small.static_j / e_small.seconds;
        let rate_big = e_big.static_j / e_big.seconds;
        assert!(rate_big > 10.0 * rate_small, "leakage must scale with capacity");
    }

    #[test]
    fn l2_access_energy_scales_sublinearly() {
        let m = EnergyModel::default();
        let e1 = m.pj_per_l2_access(1 << 20);
        let e256 = m.pj_per_l2_access(256 << 20);
        assert!(e256 > e1);
        assert!(e256 < 256.0 * e1);
        assert!((e256 / e1 - 16.0).abs() < 1e-9, "sqrt scaling");
    }

    #[test]
    fn longer_vectors_save_issue_energy() {
        // Fewer instructions for the same flops -> less control energy.
        let m = EnergyModel::default();
        let short = summary(1 << 20, 512);
        let long = summary(1 << 20, 8192);
        let es = m.estimate(&short, 1 << 20);
        let el = m.estimate(&long, 1 << 20);
        assert!(el.compute_j < es.compute_j, "{} !< {}", el.compute_j, es.compute_j);
    }
}
