//! Energy estimation for co-design points — re-exported from `lva-energy`.
//!
//! The model originally lived here as a post-hoc formula over run
//! summaries. It moved to the `lva-energy` crate when energy gained
//! streaming per-layer attribution (the same promotion `lva-prof` got for
//! cache observation); this module keeps the `lva_core::energy` paths
//! working and holds the experiment-level tests, which need
//! [`crate::experiment::Experiment`] and therefore cannot live downstream
//! in `lva-energy` itself.

pub use lva_energy::{EnergyBreakdown, EnergyCounts, EnergyModel, EnergyReport};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, HwTarget, Workload};
    use lva_kernels::GemmVariant;
    use lva_nn::{ConvPolicy, ModelId};

    fn experiment(l2: usize, vlen: usize) -> Experiment {
        Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        )
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let s = experiment(1 << 20, 1024).run();
        let e = EnergyModel::default().estimate(&s.report, 1 << 20);
        assert!(e.compute_j > 0.0 && e.memory_j > 0.0 && e.static_j > 0.0);
        assert!((e.total_j() - (e.compute_j + e.memory_j + e.static_j)).abs() < 1e-15);
        assert!(e.edp() > 0.0);
    }

    #[test]
    fn giant_cache_pays_leakage() {
        // Same workload: the 256 MB cache must carry a larger static bill
        // per second than the 1 MB cache.
        let model = EnergyModel::default();
        let small = experiment(1 << 20, 1024).run();
        let big = experiment(256 << 20, 1024).run();
        let e_small = model.estimate(&small.report, 1 << 20);
        let e_big = model.estimate(&big.report, 256 << 20);
        let rate_small = e_small.static_j / e_small.seconds;
        let rate_big = e_big.static_j / e_big.seconds;
        assert!(rate_big > 10.0 * rate_small, "leakage must scale with capacity");
    }

    #[test]
    fn longer_vectors_save_issue_energy() {
        // Fewer instructions for the same flops -> less control energy.
        let m = EnergyModel::default();
        let short = experiment(1 << 20, 512).run();
        let long = experiment(1 << 20, 8192).run();
        let es = m.estimate(&short.report, 1 << 20);
        let el = m.estimate(&long.report, 1 << 20);
        assert!(el.compute_j < es.compute_j, "{} !< {}", el.compute_j, es.compute_j);
    }

    /// The streaming attribution (run through the probe) must reconcile
    /// with the aggregate estimate — the sum-to-total invariant — and the
    /// per-layer counts must sum to the run's aggregate counters exactly.
    #[test]
    fn streamed_attribution_reconciles_with_aggregate() {
        let model = EnergyModel::default();
        let (s, att) = experiment(4 << 20, 1024).run_energy(&model);
        assert!(
            att.reconciliation_rel_err() < 1e-6,
            "streamed {} vs aggregate {}",
            att.total.total_j(),
            att.report.total_j()
        );
        let mut streamed = EnergyCounts::default();
        for l in &att.layers {
            streamed.add(&l.counts);
        }
        assert_eq!(streamed, EnergyCounts::from_report(&s.report), "integer counts must match");
        assert!(att.layers.len() == 4, "one entry per layer");
        assert!(att.outside.total_j() < 1e-3 * att.total.total_j(), "outside bucket near-empty");
    }

    /// Attaching the probe must not change timing (the timing-neutrality
    /// contract of the hooks it rides on).
    #[test]
    fn energy_accounting_is_timing_neutral() {
        let e = experiment(1 << 20, 2048);
        let plain = e.run();
        let (probed, _) = e.run_energy(&EnergyModel::default());
        assert_eq!(plain.cycles, probed.cycles, "cycles bit-identical probe on/off");
        assert_eq!(plain.report.vpu, probed.report.vpu);
    }
}
