//! # lva-core — the co-design experiment API
//!
//! This crate is the paper's methodology as a library: it pairs a hardware
//! design point (ISA, vector length, lanes, L2 capacity — §V) with a
//! software setup (GEMM variant, unroll factor, block sizes, algorithm
//! selection — §IV) and a workload (a network prefix at some input scale),
//! runs the workload on the simulated machine, and returns the measurements
//! the paper reports: execution cycles, average consumed vector length,
//! cache miss rates, per-layer breakdowns and kernel-phase attribution.
//!
//! The `exp-*` binaries in `lva-bench` are thin drivers over this API, one
//! per table/figure of the paper.

#![forbid(unsafe_code)]
pub mod cli;
pub mod energy;
pub mod experiment;
pub mod par;
pub mod report;
pub mod run_report;

pub use cli::{Opts, RetimeOpt};
pub use energy::{EnergyBreakdown, EnergyCounts, EnergyModel, EnergyReport};
pub use experiment::{
    scaled_input, CapturedRun, CapturedStream, Experiment, HwTarget, RunSummary, StreamSummary,
    Workload,
};
pub use lva_energy::EnergyAttribution;
pub use par::{default_jobs, parallel_map};
pub use report::{ArityError, Table};
pub use run_report::RunReport;

pub use lva_prof::{MemProfile, ScopeProfile};
pub use lva_trace::{ChromeTrace, Json};

pub use lva_isa::{IsaKind, MachineConfig, Platform};
pub use lva_kernels::{BlockSizes, GemmVariant};
pub use lva_nn::{ConvPolicy, ModelId};
