//! Experiment definition and execution.

use lva_isa::{
    IdealSpec, LayerMemo, Machine, MachineConfig, ProbeTape, RefitGeometry, RefitPlan, ReplayTrace,
    SegmentReplay,
};
use lva_nn::network::{estimate_arena_words, LayerReport, Network};
use lva_nn::{ConvPolicy, ModelId, NetReport};
use lva_tensor::host_random;
use std::sync::Arc;

/// A hardware design point of the co-design space (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwTarget {
    /// RISC-V Vector @ gem5: vector length (bits), lanes (2..8), L2 bytes.
    RvvGem5 { vlen_bits: usize, lanes: usize, l2_bytes: usize },
    /// ARM-SVE @ gem5: vector length (bits, 512..2048), L2 bytes; lanes are
    /// proportional to the vector length on this platform (§VI-D).
    SveGem5 { vlen_bits: usize, l2_bytes: usize },
    /// The Fujitsu A64FX profile (fixed 512-bit, 8 MB L2, prefetch).
    A64fx,
}

impl HwTarget {
    /// Build the machine configuration (arena capacity set separately).
    pub fn machine_config(&self) -> MachineConfig {
        match *self {
            HwTarget::RvvGem5 { vlen_bits, lanes, l2_bytes } => {
                MachineConfig::rvv_gem5(vlen_bits, lanes, l2_bytes)
            }
            HwTarget::SveGem5 { vlen_bits, l2_bytes } => {
                MachineConfig::sve_gem5(vlen_bits, l2_bytes)
            }
            HwTarget::A64fx => MachineConfig::a64fx(),
        }
    }

    /// L2 capacity of the design point in bytes (8 MB on the fixed A64FX
    /// profile). The capacity the energy model's sqrt access scaling and
    /// leakage terms key on.
    pub fn l2_bytes(&self) -> usize {
        self.machine_config().mem.l2.bytes
    }

    pub fn describe(&self) -> String {
        match *self {
            HwTarget::RvvGem5 { vlen_bits, lanes, l2_bytes } => {
                format!("RVV@gem5 vlen={vlen_bits}b lanes={lanes} L2={}", fmt_bytes(l2_bytes))
            }
            HwTarget::SveGem5 { vlen_bits, l2_bytes } => {
                format!("SVE@gem5 vlen={vlen_bits}b L2={}", fmt_bytes(l2_bytes))
            }
            HwTarget::A64fx => "A64FX".into(),
        }
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= (1 << 20) {
        format!("{}MB", b >> 20)
    } else if b >= (1 << 10) {
        format!("{}kB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// The network (prefix) an experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub model: ModelId,
    /// Square input resolution. Use [`scaled_input`] for the paper's sizes
    /// scaled down for simulation speed.
    pub input_hw: usize,
    /// Run only the first `n` layers (e.g. Table II uses 4, Figs. 6-9 use
    /// 20); `None` runs the full network.
    pub layer_limit: Option<usize>,
}

impl Workload {
    pub fn describe(&self) -> String {
        match self.layer_limit {
            Some(n) => format!("{} ({n} layers) @ {}px", self.model.name(), self.input_hw),
            None => format!("{} @ {}px", self.model.name(), self.input_hw),
        }
    }
}

/// Input resolution for a model at a linear down-scale divisor, rounded up
/// to the model's structural alignment (YOLOv3 variants need multiples of
/// 32 for the upsample/route joins to meet).
///
/// `div = 1` is the paper's native size (608 / 416 / 224).
pub fn scaled_input(model: ModelId, div: usize) -> usize {
    assert!(div >= 1);
    let native = model.native_input();
    let raw = native.div_ceil(div);
    (raw.div_ceil(32) * 32).max(32)
}

/// One co-design experiment: hardware point x software setup x workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub hw: HwTarget,
    pub policy: ConvPolicy,
    pub workload: Workload,
    pub seed: u64,
    /// Counterfactual idealization knobs (the `lva-whatif` hook). Timing-only:
    /// with all knobs off (the default) every run is bit-identical to a
    /// machine that never heard of them.
    pub ideal: IdealSpec,
}

/// Measurements from one experiment run (one simulated inference, after
/// network setup is excluded, matching §VI's methodology).
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub cycles: u64,
    /// Mathematical flops of the executed layers.
    pub flops: u64,
    /// Average consumed vector length in bits (Table III).
    pub avg_vlen_bits: f64,
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub report: NetReport,
}

impl RunSummary {
    /// gem5-`stats.txt`-flavoured dump of the run's counters (the same
    /// format as `Machine::dump_stats`, reconstructed from the summary).
    pub fn dump_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let v = &self.report.vpu;
        let st = &self.report.mem;
        let mut line = |k: &str, val: String| {
            let _ = writeln!(out, "{k:<48} {val}");
        };
        line("sim_cycles", self.cycles.to_string());
        line("sim_flops", self.flops.to_string());
        line("system.cpu.vpu.vec_instrs", v.vec_instrs.to_string());
        line("system.cpu.vpu.vec_mem_instrs", v.vec_mem_instrs.to_string());
        line("system.cpu.vpu.avg_vlen_bits", format!("{:.1}", self.avg_vlen_bits));
        line("system.cpu.scalar_ops", v.scalar_ops.to_string());
        for (name, c) in [("l1d", &st.l1), ("l2", &st.l2), ("vcache", &st.vcache)] {
            if c.accesses == 0 && c.prefetch_fills == 0 {
                continue;
            }
            line(&format!("system.{name}.overall_accesses"), c.accesses.to_string());
            line(&format!("system.{name}.overall_misses"), c.misses.to_string());
            line(&format!("system.{name}.overall_miss_rate"), format!("{:.6}", c.miss_rate()));
        }
        line("system.mem.reads", st.dram_reads.to_string());
        line("system.mem.writes", st.dram_writes.to_string());
        out
    }
}

/// One experiment executed once under the semantic recorder: the op stream
/// every timing decision depends on, the probe tape (per-probe serving
/// levels at the capture geometry), and the summary the capture run itself
/// produced. Capture costs one full simulation; the stream can then be
/// re-timed at arbitrarily many design points without re-executing kernels.
#[derive(Debug, Clone)]
pub struct CapturedRun {
    pub trace: Arc<ReplayTrace>,
    pub tape: Arc<ProbeTape>,
    /// The summary at the capture configuration — bit-identical to what
    /// [`Experiment::run`] returns, and the source of the static per-layer
    /// metadata (flops, GEMM dims, algorithm, shapes) that re-timed
    /// summaries inherit.
    pub summary: RunSummary,
}

impl CapturedRun {
    /// Approximate captured-state footprint in bytes (trace + tape).
    pub fn approx_bytes(&self) -> usize {
        self.trace.approx_bytes() + self.tape.approx_bytes()
    }
}

/// A streaming experiment executed once under the semantic recorder: the
/// multi-frame op stream (setup + every frame, `ResetTiming`-delimited),
/// the probe tape, and the stream summary the capture itself produced.
#[derive(Debug, Clone)]
pub struct CapturedStream {
    pub trace: Arc<ReplayTrace>,
    pub tape: Arc<ProbeTape>,
    pub summary: StreamSummary,
}

impl CapturedStream {
    /// Approximate captured-state footprint in bytes (trace + tape).
    pub fn approx_bytes(&self) -> usize {
        self.trace.approx_bytes() + self.tape.approx_bytes()
    }
}

/// Result of a multi-image streaming run (§VI: "continuously running
/// inference over a stream of images" is the paper's deployment model —
/// setup is paid once, caches stay warm between frames).
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Cycles per frame, in order. The first frame runs on cold caches.
    pub per_frame_cycles: Vec<u64>,
    /// The final frame's summary (steady state).
    pub steady: RunSummary,
}

impl StreamSummary {
    /// Cold-start (first frame) cycles.
    pub fn cold_cycles(&self) -> u64 {
        *self.per_frame_cycles.first().expect("at least one frame")
    }

    /// Steady-state cycles: the last frame.
    pub fn steady_cycles(&self) -> u64 {
        *self.per_frame_cycles.last().expect("at least one frame")
    }
}

impl Experiment {
    pub fn new(hw: HwTarget, policy: ConvPolicy, workload: Workload) -> Self {
        Experiment { hw, policy, workload, seed: 42, ideal: IdealSpec::NONE }
    }

    /// Same experiment under a counterfactual [`IdealSpec`].
    #[must_use]
    pub fn with_ideal(mut self, spec: IdealSpec) -> Self {
        self.ideal = spec;
        self
    }

    fn build(&self) -> (Machine, Network, lva_tensor::Shape) {
        self.build_inner(false)
    }

    fn build_inner(&self, capture: bool) -> (Machine, Network, lva_tensor::Shape) {
        let (specs, shape) = self.workload.model.build(self.workload.input_hw);
        let specs = match self.workload.layer_limit {
            Some(n) => specs[..n.min(specs.len())].to_vec(),
            None => specs,
        };
        let mut cfg = self.hw.machine_config();
        cfg.ideal = self.ideal;
        let words = estimate_arena_words(&specs, shape, &self.policy);
        cfg.arena_mib = (words * 4 / (1 << 20) + 32).max(64);
        let mut m = Machine::new(cfg);
        if capture {
            // Capture from the very first op so replay reproduces the cache
            // state the measured segment starts from (setup warms the
            // hierarchy exactly as it did on the capture run).
            m.start_capture();
        }
        let net = Network::build(&mut m, &specs, shape, self.policy, self.seed);
        (m, net, shape)
    }

    fn summarize(m: &Machine, report: lva_nn::NetReport) -> RunSummary {
        let mem = m.sys.stats();
        RunSummary {
            cycles: report.cycles,
            flops: report.flops(),
            avg_vlen_bits: m.stats.avg_vlen_bits(),
            l1_miss_rate: mem.l1.miss_rate(),
            l2_miss_rate: mem.l2.miss_rate(),
            report,
        }
    }

    /// Build the machine and network, run one inference, return summary.
    pub fn run(&self) -> RunSummary {
        let (mut m, mut net, shape) = self.build();
        // Exclude setup, like the paper.
        m.reset_timing();
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        Self::summarize(&m, report)
    }

    /// Like [`Experiment::run`], with an `lva-prof` memory profiler tapped
    /// into the hierarchy for the duration of the inference.
    ///
    /// Returns the summary (whose cache stats now carry the 3C miss
    /// classification) plus the full [`lva_prof::MemProfile`] — per-level
    /// reuse-distance histograms, predicted hit-rate-vs-capacity curves,
    /// and per-layer/per-phase attribution. Profiling is pure observation:
    /// cycle counts are identical to an unprofiled run.
    pub fn run_profiled(&self) -> (RunSummary, lva_prof::MemProfile) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        let handle = lva_prof::attach(&mut m.sys);
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let mut report = net.run(&mut m, &image);
        let profile = handle.detach(&mut m.sys);
        // Refresh the snapshot so the report carries the 3C classification.
        report.mem = m.sys.stats();
        (Self::summarize(&m, report), profile)
    }

    /// Like [`Experiment::run`], with the `lva-energy` streaming probe
    /// attached for the duration of the inference: every vector op, scalar
    /// charge, cache access, DRAM transfer, and prefetch fill is charged
    /// to the layer that caused it.
    ///
    /// Returns the summary plus the per-layer [`lva_energy::EnergyAttribution`],
    /// whose streamed total reconciles with `model.estimate(...)` on the
    /// same run. Pure observation: cycle counts are identical to an
    /// unprobed run.
    pub fn run_energy(
        &self,
        model: &lva_energy::EnergyModel,
    ) -> (RunSummary, lva_energy::EnergyAttribution) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        let probe = lva_energy::attach(&mut m);
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        let att = probe.finish(&mut m, &report, model, self.hw.l2_bytes());
        (Self::summarize(&m, report), att)
    }

    /// Like [`Experiment::run`], recording pipeline events and returning a
    /// Chrome trace-event timeline (layers, kernel phases, and attributed
    /// stall intervals as parallel tracks over simulated cycles).
    pub fn run_timeline(&self) -> (RunSummary, lva_trace::ChromeTrace) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        m.record_pipe_events();
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        let dropped = m.pipe_events_dropped();
        if dropped > 0 {
            eprintln!("run_timeline: recorder cap hit, {dropped} pipeline events dropped (timeline truncated)");
        }
        let events = m.take_pipe_events();
        // Layers run back-to-back from cycle 0 (the clock was just reset),
        // so per-layer spans are the cumulative sums of layer cycles.
        let mut layers: Vec<lva_prof::LayerSpan> = Vec::with_capacity(report.layers.len());
        let mut t = 0u64;
        for l in &report.layers {
            layers.push((format!("L{} {}", l.index, l.desc), t, t + l.cycles));
            t += l.cycles;
        }
        // Absorb stall gaps below ~1/100k of the run: invisible at any
        // usable zoom, and it keeps full-network exports Perfetto-sized.
        let resolution = m.cycles() / 100_000;
        let trace = lva_prof::timeline_coarse(&events, &layers, resolution);
        (Self::summarize(&m, report), trace)
    }

    /// Run `frames` inferences back-to-back on the same machine (caches
    /// stay warm across frames), resetting the clock per frame.
    ///
    /// # Panics
    /// Panics if `frames == 0`.
    pub fn run_stream(&self, frames: usize) -> StreamSummary {
        assert!(frames > 0, "need at least one frame");
        let (mut m, mut net, shape) = self.build();
        let mut per_frame = Vec::with_capacity(frames);
        let mut last = None;
        for f in 0..frames {
            m.reset_timing();
            let image = host_random(shape.len(), self.seed ^ (0x1533 + f as u64));
            let report = net.run(&mut m, &image);
            per_frame.push(report.cycles);
            last = Some(Self::summarize(&m, report));
        }
        StreamSummary { per_frame_cycles: per_frame, steady: last.expect("frames > 0") }
    }

    /// Like [`Experiment::run`], but capturing the semantic op stream and
    /// probe tape alongside the (identical) summary. One capture feeds any
    /// number of [`Experiment::retime_live`] / [`Experiment::retime_tape`]
    /// calls at other design points.
    pub fn run_traced(&self) -> CapturedRun {
        let (mut m, mut net, shape) = self.build_inner(true);
        m.reset_timing();
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        let summary = Self::summarize(&m, report);
        let (trace, tape) = m.finish_capture().expect("capture started in build_inner");
        CapturedRun { trace: Arc::new(trace), tape: Arc::new(tape), summary }
    }

    /// [`Experiment::run_stream`] under the semantic recorder: one capture
    /// of the whole multi-frame stream (setup plus `frames` inferences),
    /// re-timeable at other design points like a [`CapturedRun`].
    ///
    /// # Panics
    /// Panics if `frames == 0`.
    pub fn run_stream_traced(&self, frames: usize) -> CapturedStream {
        assert!(frames > 0, "need at least one frame");
        let (mut m, mut net, shape) = self.build_inner(true);
        let mut per_frame = Vec::with_capacity(frames);
        let mut last = None;
        for f in 0..frames {
            m.reset_timing();
            let image = host_random(shape.len(), self.seed ^ (0x1533 + f as u64));
            let report = net.run(&mut m, &image);
            per_frame.push(report.cycles);
            last = Some(Self::summarize(&m, report));
        }
        let summary =
            StreamSummary { per_frame_cycles: per_frame, steady: last.expect("frames > 0") };
        let (trace, tape) = m.finish_capture().expect("capture started in build_inner");
        CapturedStream { trace: Arc::new(trace), tape: Arc::new(tape), summary }
    }

    /// A machine for re-timing a captured stream at this experiment's
    /// configuration. Replay never executes functionally, so the arena is
    /// kept at the minimum the allocator accepts.
    fn replay_machine(&self) -> Machine {
        let mut cfg = self.hw.machine_config();
        cfg.ideal = self.ideal;
        cfg.arena_mib = 1;
        Machine::new(cfg)
    }

    /// Re-time a captured stream at this experiment's design point by
    /// re-driving the full memory hierarchy with the recorded addresses
    /// (live replay). Exact on every configuration axis — including cache
    /// geometry changes the probe tape cannot absorb — at the cost of
    /// simulating the hierarchy again.
    pub fn retime_live(&self, cap: &CapturedRun) -> RunSummary {
        let mut m = self.replay_machine();
        let segs = m.replay(&cap.trace);
        Self::reconstruct(cap, segs)
    }

    /// [`Experiment::retime_live`], additionally recording a fresh probe
    /// tape at this configuration's geometry so later timing-only variations
    /// can use the (much faster) [`Experiment::retime_tape`] path.
    pub fn retime_live_recording(&self, cap: &CapturedRun) -> (RunSummary, ProbeTape) {
        let mut m = self.replay_machine();
        m.record_probe_tape();
        let segs = m.replay(&cap.trace);
        let tape = m.take_probe_tape().expect("tape recording was on");
        (Self::reconstruct(cap, segs), tape)
    }

    /// Re-time a captured stream by replaying the probe tape: each memory
    /// probe's serving level is read back instead of re-simulated, so the
    /// hierarchy state machine never runs. Exact for every timing-only axis
    /// (latency constants, lanes, core CPI, `IdealSpec`); refuses with an
    /// error if this configuration changes the hierarchy's *state* geometry
    /// (capacities, associativity, line size, prefetcher).
    pub fn retime_tape(&self, cap: &CapturedRun) -> Result<RunSummary, String> {
        self.retime_tape_with(cap, &cap.tape)
    }

    /// [`Experiment::retime_tape`] with an explicit tape — e.g. one recorded
    /// by [`Experiment::retime_live_recording`] at a different geometry than
    /// the original capture.
    pub fn retime_tape_with(
        &self,
        cap: &CapturedRun,
        tape: &Arc<ProbeTape>,
    ) -> Result<RunSummary, String> {
        let mut m = self.replay_machine();
        m.play_probe_tape(Arc::clone(tape))?;
        let segs = m.replay(&cap.trace);
        Ok(Self::reconstruct(cap, segs))
    }

    /// The probe-count / miss-ring geometry of this experiment's memory
    /// system, for building [`RefitPlan`]s and scoping [`LayerMemo`]s.
    pub fn refit_geometry(&self) -> RefitGeometry {
        let cfg = self.hw.machine_config();
        RefitGeometry {
            line_bytes: cfg.mem.l1.line_bytes as u64,
            hw_prefetch: cfg.mem.hw_prefetch.is_some(),
        }
    }

    /// [`Experiment::retime_tape`] through a per-layer timing memo: layers
    /// whose reduced op region, tape slice and relative entry state were
    /// seen before are applied as stored state deltas instead of
    /// re-interpreted (bit-identical; see `lva_isa::refit`). `plan` must be
    /// built from `cap.trace` at [`Experiment::refit_geometry`], and `memo`
    /// scoped to exactly this design point — the `lva-retime` store manages
    /// both.
    pub fn retime_tape_memoized(
        &self,
        cap: &CapturedRun,
        plan: &RefitPlan,
        memo: &mut LayerMemo,
    ) -> Result<RunSummary, String> {
        self.retime_tape_memoized_with(cap, &cap.tape, plan, memo)
    }

    /// [`Experiment::retime_tape_memoized`] with an explicit tape (one
    /// recorded at this configuration's geometry by
    /// [`Experiment::retime_live_recording`] when it differs from the
    /// capture's).
    pub fn retime_tape_memoized_with(
        &self,
        cap: &CapturedRun,
        tape: &Arc<ProbeTape>,
        plan: &RefitPlan,
        memo: &mut LayerMemo,
    ) -> Result<RunSummary, String> {
        let mut m = self.replay_machine();
        m.play_probe_tape(Arc::clone(tape))?;
        let segs = m.replay_with(&cap.trace, Some((plan, memo)));
        Ok(Self::reconstruct(cap, segs))
    }

    /// Re-time a captured multi-frame stream through the probe tape and
    /// per-layer memo, reconstructing the per-frame cycle series and the
    /// steady-state summary. Bit-identical to [`Experiment::run_stream`]
    /// at this design point (stream-equivalence permitting, as certified
    /// by `lva-depgraph`).
    pub fn retime_stream_tape_memoized(
        &self,
        cap: &CapturedStream,
        plan: &RefitPlan,
        memo: &mut LayerMemo,
    ) -> Result<StreamSummary, String> {
        let mut m = self.replay_machine();
        m.play_probe_tape(Arc::clone(&cap.tape))?;
        let segs = m.replay_with(&cap.trace, Some((plan, memo)));
        Ok(Self::reconstruct_stream(cap, segs))
    }

    /// Re-time a captured multi-frame stream by re-driving the memory
    /// hierarchy with the recorded addresses (live replay) — exact on every
    /// configuration axis, including cache-geometry changes.
    pub fn retime_stream_live(&self, cap: &CapturedStream) -> StreamSummary {
        let mut m = self.replay_machine();
        let segs = m.replay(&cap.trace);
        Self::reconstruct_stream(cap, segs)
    }

    /// Re-time a captured stream *with the energy probe attached*: live
    /// replay (the probe's memory tap needs the real hierarchy) split at
    /// the setup boundary so the probe observes exactly what it would on
    /// [`Experiment::run_energy`] — attached after setup, before the
    /// measured inference. Functional execution and kernel planning are
    /// skipped; the attribution is bit-identical.
    pub fn retime_energy(
        &self,
        cap: &CapturedRun,
        model: &lva_energy::EnergyModel,
    ) -> (RunSummary, lva_energy::EnergyAttribution) {
        let mut m = self.replay_machine();
        let start = m.replay_setup(&cap.trace);
        let probe = lva_energy::attach(&mut m);
        let segs = m.replay_from(&cap.trace, start);
        assert_eq!(segs.len(), 1, "captured run has exactly one measured segment");
        let summary = Self::reconstruct(cap, segs);
        let att = probe.finish(&mut m, &summary.report, model, self.hw.l2_bytes());
        (summary, att)
    }

    /// Rebuild a [`RunSummary`] from the measured segment of a replay,
    /// grafting the capture run's static per-layer metadata (flops, GEMM
    /// dims, algorithm, output shapes) onto the re-timed dynamics.
    fn reconstruct(cap: &CapturedRun, mut segs: Vec<SegmentReplay>) -> RunSummary {
        // `replay` sees both the setup and measured segments;
        // `replay_from` (after `replay_setup`) sees only the measured one.
        assert!(!segs.is_empty(), "captured stream produced no segments");
        let seg = segs.pop().expect("non-empty");
        Self::reconstruct_seg(&cap.summary.report.layers, seg)
    }

    /// Rebuild a [`StreamSummary`] from a multi-frame replay: segment 0 is
    /// setup, segments 1.. are the frames, and the last frame reconstructs
    /// the steady-state summary.
    fn reconstruct_stream(cap: &CapturedStream, mut segs: Vec<SegmentReplay>) -> StreamSummary {
        let frames = cap.summary.per_frame_cycles.len();
        assert_eq!(segs.len(), frames + 1, "frame count drifted across replay");
        let steady_seg = segs.pop().expect("at least one frame");
        let per_frame_cycles: Vec<u64> = segs
            .iter()
            .skip(1)
            .map(|s| s.cycles)
            .chain(std::iter::once(steady_seg.cycles))
            .collect();
        let steady = Self::reconstruct_seg(&cap.summary.steady.report.layers, steady_seg);
        StreamSummary { per_frame_cycles, steady }
    }

    fn reconstruct_seg(stat_layers: &[LayerReport], seg: SegmentReplay) -> RunSummary {
        assert_eq!(seg.layers.len(), stat_layers.len(), "layer count drifted across replay");
        let layers: Vec<LayerReport> = seg
            .layers
            .into_iter()
            .zip(stat_layers)
            .map(|(l, stat)| {
                debug_assert_eq!(l.index, stat.index);
                let avg_vlen_bits =
                    if l.d_instrs == 0 { 0.0 } else { 32.0 * l.d_elems as f64 / l.d_instrs as f64 };
                LayerReport {
                    index: l.index,
                    desc: l.desc,
                    cycles: l.cycles,
                    flops: stat.flops,
                    mnk: stat.mnk,
                    algo: stat.algo,
                    out_shape: stat.out_shape,
                    stalls: l.stalls,
                    avg_vlen_bits,
                }
            })
            .collect();
        let avg_vlen_bits = seg.vpu.avg_vlen_bits();
        let l1_miss_rate = seg.mem.l1.miss_rate();
        let l2_miss_rate = seg.mem.l2.miss_rate();
        let report = NetReport {
            layers,
            cycles: seg.cycles,
            phases: seg.phases,
            vpu: seg.vpu,
            mem: seg.mem,
            stalls: seg.stalls,
        };
        RunSummary {
            cycles: seg.cycles,
            flops: report.flops(),
            avg_vlen_bits,
            l1_miss_rate,
            l2_miss_rate,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_kernels::GemmVariant;

    #[test]
    fn scaled_inputs_are_aligned() {
        assert_eq!(scaled_input(ModelId::Yolov3, 1), 608);
        assert_eq!(scaled_input(ModelId::Yolov3, 4), 160);
        assert_eq!(scaled_input(ModelId::Yolov3, 8), 96);
        assert_eq!(scaled_input(ModelId::Vgg16, 4), 64);
        assert!(scaled_input(ModelId::Yolov3Tiny, 2).is_multiple_of(32));
    }

    #[test]
    fn experiment_runs_and_measures() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let s = e.run();
        assert!(s.cycles > 0);
        assert!(s.flops > 0);
        assert!(s.avg_vlen_bits > 0.0);
        assert_eq!(s.report.layers.len(), 4);
    }

    #[test]
    fn longer_vectors_fewer_cycles_same_flops() {
        let run = |vlen| {
            Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: 1 << 20 },
                ConvPolicy::gemm_only(GemmVariant::opt3()),
                Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
            )
            .run()
        };
        let a = run(512);
        let b = run(4096);
        assert_eq!(a.flops, b.flops);
        assert!(b.cycles < a.cycles);
    }

    #[test]
    fn profiled_run_is_timing_neutral_and_classifies_misses() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let plain = e.run();
        let (s, profile) = e.run_profiled();
        assert_eq!(s.cycles, plain.cycles, "profiling must not perturb timing");
        let l2 = profile.level(lva_sim::TapLevel::L2).expect("l2 profiled");
        assert!(l2.accesses > 0);
        // Every L2 miss got a 3C class, and the report carries it.
        let c = s.report.mem.l2.three_c;
        assert_eq!(c.classified(), s.report.mem.l2.misses);
        assert_eq!(c, l2.three_c);
        // Layer attribution covered all four layers.
        assert_eq!(profile.layers.len(), 4);
        assert!(profile.layers.iter().all(|l| l.accesses > 0));
    }

    #[test]
    fn timeline_run_is_timing_neutral_and_valid() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(2) },
        );
        let plain = e.run();
        let (s, trace) = e.run_timeline();
        assert_eq!(s.cycles, plain.cycles, "event recording must not perturb timing");
        assert!(!trace.is_empty());
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn streaming_runs_are_warm_after_frame_one() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 64 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let s = e.run_stream(3);
        assert_eq!(s.per_frame_cycles.len(), 3);
        assert!(s.steady_cycles() <= s.cold_cycles(), "warm caches cannot be slower");
        // Frames 2 and 3 are identical (steady state, deterministic).
        assert_eq!(s.per_frame_cycles[1], s.per_frame_cycles[2]);
    }

    #[test]
    fn run_summary_stats_dump() {
        let e = Experiment::new(
            HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(2) },
        );
        let s = e.run();
        let dump = s.dump_stats();
        assert!(dump.contains("sim_cycles"));
        assert!(dump.contains("system.l1d.overall_miss_rate"));
        assert!(!dump.contains("vcache"), "SVE has no vector cache");
        for l in dump.lines() {
            let v = l.split_whitespace().nth(1).expect("value column");
            assert!(v.parse::<f64>().is_ok(), "{l}");
        }
    }

    #[test]
    fn describes() {
        let hw = HwTarget::SveGem5 { vlen_bits: 2048, l2_bytes: 256 << 20 };
        assert_eq!(hw.describe(), "SVE@gem5 vlen=2048b L2=256MB");
        let w = Workload { model: ModelId::Vgg16, input_hw: 64, layer_limit: None };
        assert_eq!(w.describe(), "VGG16 @ 64px");
    }
}
