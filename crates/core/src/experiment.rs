//! Experiment definition and execution.

use lva_isa::{IdealSpec, Machine, MachineConfig};
use lva_nn::network::{estimate_arena_words, Network};
use lva_nn::{ConvPolicy, ModelId, NetReport};
use lva_tensor::host_random;

/// A hardware design point of the co-design space (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwTarget {
    /// RISC-V Vector @ gem5: vector length (bits), lanes (2..8), L2 bytes.
    RvvGem5 { vlen_bits: usize, lanes: usize, l2_bytes: usize },
    /// ARM-SVE @ gem5: vector length (bits, 512..2048), L2 bytes; lanes are
    /// proportional to the vector length on this platform (§VI-D).
    SveGem5 { vlen_bits: usize, l2_bytes: usize },
    /// The Fujitsu A64FX profile (fixed 512-bit, 8 MB L2, prefetch).
    A64fx,
}

impl HwTarget {
    /// Build the machine configuration (arena capacity set separately).
    pub fn machine_config(&self) -> MachineConfig {
        match *self {
            HwTarget::RvvGem5 { vlen_bits, lanes, l2_bytes } => {
                MachineConfig::rvv_gem5(vlen_bits, lanes, l2_bytes)
            }
            HwTarget::SveGem5 { vlen_bits, l2_bytes } => {
                MachineConfig::sve_gem5(vlen_bits, l2_bytes)
            }
            HwTarget::A64fx => MachineConfig::a64fx(),
        }
    }

    /// L2 capacity of the design point in bytes (8 MB on the fixed A64FX
    /// profile). The capacity the energy model's sqrt access scaling and
    /// leakage terms key on.
    pub fn l2_bytes(&self) -> usize {
        self.machine_config().mem.l2.bytes
    }

    pub fn describe(&self) -> String {
        match *self {
            HwTarget::RvvGem5 { vlen_bits, lanes, l2_bytes } => {
                format!("RVV@gem5 vlen={vlen_bits}b lanes={lanes} L2={}", fmt_bytes(l2_bytes))
            }
            HwTarget::SveGem5 { vlen_bits, l2_bytes } => {
                format!("SVE@gem5 vlen={vlen_bits}b L2={}", fmt_bytes(l2_bytes))
            }
            HwTarget::A64fx => "A64FX".into(),
        }
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= (1 << 20) {
        format!("{}MB", b >> 20)
    } else if b >= (1 << 10) {
        format!("{}kB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// The network (prefix) an experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub model: ModelId,
    /// Square input resolution. Use [`scaled_input`] for the paper's sizes
    /// scaled down for simulation speed.
    pub input_hw: usize,
    /// Run only the first `n` layers (e.g. Table II uses 4, Figs. 6-9 use
    /// 20); `None` runs the full network.
    pub layer_limit: Option<usize>,
}

impl Workload {
    pub fn describe(&self) -> String {
        match self.layer_limit {
            Some(n) => format!("{} ({n} layers) @ {}px", self.model.name(), self.input_hw),
            None => format!("{} @ {}px", self.model.name(), self.input_hw),
        }
    }
}

/// Input resolution for a model at a linear down-scale divisor, rounded up
/// to the model's structural alignment (YOLOv3 variants need multiples of
/// 32 for the upsample/route joins to meet).
///
/// `div = 1` is the paper's native size (608 / 416 / 224).
pub fn scaled_input(model: ModelId, div: usize) -> usize {
    assert!(div >= 1);
    let native = model.native_input();
    let raw = native.div_ceil(div);
    (raw.div_ceil(32) * 32).max(32)
}

/// One co-design experiment: hardware point x software setup x workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub hw: HwTarget,
    pub policy: ConvPolicy,
    pub workload: Workload,
    pub seed: u64,
    /// Counterfactual idealization knobs (the `lva-whatif` hook). Timing-only:
    /// with all knobs off (the default) every run is bit-identical to a
    /// machine that never heard of them.
    pub ideal: IdealSpec,
}

/// Measurements from one experiment run (one simulated inference, after
/// network setup is excluded, matching §VI's methodology).
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub cycles: u64,
    /// Mathematical flops of the executed layers.
    pub flops: u64,
    /// Average consumed vector length in bits (Table III).
    pub avg_vlen_bits: f64,
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub report: NetReport,
}

impl RunSummary {
    /// gem5-`stats.txt`-flavoured dump of the run's counters (the same
    /// format as `Machine::dump_stats`, reconstructed from the summary).
    pub fn dump_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let v = &self.report.vpu;
        let st = &self.report.mem;
        let mut line = |k: &str, val: String| {
            let _ = writeln!(out, "{k:<48} {val}");
        };
        line("sim_cycles", self.cycles.to_string());
        line("sim_flops", self.flops.to_string());
        line("system.cpu.vpu.vec_instrs", v.vec_instrs.to_string());
        line("system.cpu.vpu.vec_mem_instrs", v.vec_mem_instrs.to_string());
        line("system.cpu.vpu.avg_vlen_bits", format!("{:.1}", self.avg_vlen_bits));
        line("system.cpu.scalar_ops", v.scalar_ops.to_string());
        for (name, c) in [("l1d", &st.l1), ("l2", &st.l2), ("vcache", &st.vcache)] {
            if c.accesses == 0 && c.prefetch_fills == 0 {
                continue;
            }
            line(&format!("system.{name}.overall_accesses"), c.accesses.to_string());
            line(&format!("system.{name}.overall_misses"), c.misses.to_string());
            line(&format!("system.{name}.overall_miss_rate"), format!("{:.6}", c.miss_rate()));
        }
        line("system.mem.reads", st.dram_reads.to_string());
        line("system.mem.writes", st.dram_writes.to_string());
        out
    }
}

/// Result of a multi-image streaming run (§VI: "continuously running
/// inference over a stream of images" is the paper's deployment model —
/// setup is paid once, caches stay warm between frames).
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Cycles per frame, in order. The first frame runs on cold caches.
    pub per_frame_cycles: Vec<u64>,
    /// The final frame's summary (steady state).
    pub steady: RunSummary,
}

impl StreamSummary {
    /// Cold-start (first frame) cycles.
    pub fn cold_cycles(&self) -> u64 {
        *self.per_frame_cycles.first().expect("at least one frame")
    }

    /// Steady-state cycles: the last frame.
    pub fn steady_cycles(&self) -> u64 {
        *self.per_frame_cycles.last().expect("at least one frame")
    }
}

impl Experiment {
    pub fn new(hw: HwTarget, policy: ConvPolicy, workload: Workload) -> Self {
        Experiment { hw, policy, workload, seed: 42, ideal: IdealSpec::NONE }
    }

    /// Same experiment under a counterfactual [`IdealSpec`].
    #[must_use]
    pub fn with_ideal(mut self, spec: IdealSpec) -> Self {
        self.ideal = spec;
        self
    }

    fn build(&self) -> (Machine, Network, lva_tensor::Shape) {
        let (specs, shape) = self.workload.model.build(self.workload.input_hw);
        let specs = match self.workload.layer_limit {
            Some(n) => specs[..n.min(specs.len())].to_vec(),
            None => specs,
        };
        let mut cfg = self.hw.machine_config();
        cfg.ideal = self.ideal;
        let words = estimate_arena_words(&specs, shape, &self.policy);
        cfg.arena_mib = (words * 4 / (1 << 20) + 32).max(64);
        let mut m = Machine::new(cfg);
        let net = Network::build(&mut m, &specs, shape, self.policy, self.seed);
        (m, net, shape)
    }

    fn summarize(m: &Machine, report: lva_nn::NetReport) -> RunSummary {
        let mem = m.sys.stats();
        RunSummary {
            cycles: report.cycles,
            flops: report.flops(),
            avg_vlen_bits: m.stats.avg_vlen_bits(),
            l1_miss_rate: mem.l1.miss_rate(),
            l2_miss_rate: mem.l2.miss_rate(),
            report,
        }
    }

    /// Build the machine and network, run one inference, return summary.
    pub fn run(&self) -> RunSummary {
        let (mut m, mut net, shape) = self.build();
        // Exclude setup, like the paper.
        m.reset_timing();
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        Self::summarize(&m, report)
    }

    /// Like [`Experiment::run`], with an `lva-prof` memory profiler tapped
    /// into the hierarchy for the duration of the inference.
    ///
    /// Returns the summary (whose cache stats now carry the 3C miss
    /// classification) plus the full [`lva_prof::MemProfile`] — per-level
    /// reuse-distance histograms, predicted hit-rate-vs-capacity curves,
    /// and per-layer/per-phase attribution. Profiling is pure observation:
    /// cycle counts are identical to an unprofiled run.
    pub fn run_profiled(&self) -> (RunSummary, lva_prof::MemProfile) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        let handle = lva_prof::attach(&mut m.sys);
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let mut report = net.run(&mut m, &image);
        let profile = handle.detach(&mut m.sys);
        // Refresh the snapshot so the report carries the 3C classification.
        report.mem = m.sys.stats();
        (Self::summarize(&m, report), profile)
    }

    /// Like [`Experiment::run`], with the `lva-energy` streaming probe
    /// attached for the duration of the inference: every vector op, scalar
    /// charge, cache access, DRAM transfer, and prefetch fill is charged
    /// to the layer that caused it.
    ///
    /// Returns the summary plus the per-layer [`lva_energy::EnergyAttribution`],
    /// whose streamed total reconciles with `model.estimate(...)` on the
    /// same run. Pure observation: cycle counts are identical to an
    /// unprobed run.
    pub fn run_energy(
        &self,
        model: &lva_energy::EnergyModel,
    ) -> (RunSummary, lva_energy::EnergyAttribution) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        let probe = lva_energy::attach(&mut m);
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        let att = probe.finish(&mut m, &report, model, self.hw.l2_bytes());
        (Self::summarize(&m, report), att)
    }

    /// Like [`Experiment::run`], recording pipeline events and returning a
    /// Chrome trace-event timeline (layers, kernel phases, and attributed
    /// stall intervals as parallel tracks over simulated cycles).
    pub fn run_timeline(&self) -> (RunSummary, lva_trace::ChromeTrace) {
        let (mut m, mut net, shape) = self.build();
        m.reset_timing();
        m.record_pipe_events();
        let image = host_random(shape.len(), self.seed ^ 0x1533);
        let report = net.run(&mut m, &image);
        let dropped = m.pipe_events_dropped();
        if dropped > 0 {
            eprintln!("run_timeline: recorder cap hit, {dropped} pipeline events dropped (timeline truncated)");
        }
        let events = m.take_pipe_events();
        // Layers run back-to-back from cycle 0 (the clock was just reset),
        // so per-layer spans are the cumulative sums of layer cycles.
        let mut layers: Vec<lva_prof::LayerSpan> = Vec::with_capacity(report.layers.len());
        let mut t = 0u64;
        for l in &report.layers {
            layers.push((format!("L{} {}", l.index, l.desc), t, t + l.cycles));
            t += l.cycles;
        }
        // Absorb stall gaps below ~1/100k of the run: invisible at any
        // usable zoom, and it keeps full-network exports Perfetto-sized.
        let resolution = m.cycles() / 100_000;
        let trace = lva_prof::timeline_coarse(&events, &layers, resolution);
        (Self::summarize(&m, report), trace)
    }

    /// Run `frames` inferences back-to-back on the same machine (caches
    /// stay warm across frames), resetting the clock per frame.
    ///
    /// # Panics
    /// Panics if `frames == 0`.
    pub fn run_stream(&self, frames: usize) -> StreamSummary {
        assert!(frames > 0, "need at least one frame");
        let (mut m, mut net, shape) = self.build();
        let mut per_frame = Vec::with_capacity(frames);
        let mut last = None;
        for f in 0..frames {
            m.reset_timing();
            let image = host_random(shape.len(), self.seed ^ (0x1533 + f as u64));
            let report = net.run(&mut m, &image);
            per_frame.push(report.cycles);
            last = Some(Self::summarize(&m, report));
        }
        StreamSummary { per_frame_cycles: per_frame, steady: last.expect("frames > 0") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_kernels::GemmVariant;

    #[test]
    fn scaled_inputs_are_aligned() {
        assert_eq!(scaled_input(ModelId::Yolov3, 1), 608);
        assert_eq!(scaled_input(ModelId::Yolov3, 4), 160);
        assert_eq!(scaled_input(ModelId::Yolov3, 8), 96);
        assert_eq!(scaled_input(ModelId::Vgg16, 4), 64);
        assert!(scaled_input(ModelId::Yolov3Tiny, 2).is_multiple_of(32));
    }

    #[test]
    fn experiment_runs_and_measures() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let s = e.run();
        assert!(s.cycles > 0);
        assert!(s.flops > 0);
        assert!(s.avg_vlen_bits > 0.0);
        assert_eq!(s.report.layers.len(), 4);
    }

    #[test]
    fn longer_vectors_fewer_cycles_same_flops() {
        let run = |vlen| {
            Experiment::new(
                HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: 1 << 20 },
                ConvPolicy::gemm_only(GemmVariant::opt3()),
                Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
            )
            .run()
        };
        let a = run(512);
        let b = run(4096);
        assert_eq!(a.flops, b.flops);
        assert!(b.cycles < a.cycles);
    }

    #[test]
    fn profiled_run_is_timing_neutral_and_classifies_misses() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let plain = e.run();
        let (s, profile) = e.run_profiled();
        assert_eq!(s.cycles, plain.cycles, "profiling must not perturb timing");
        let l2 = profile.level(lva_sim::TapLevel::L2).expect("l2 profiled");
        assert!(l2.accesses > 0);
        // Every L2 miss got a 3C class, and the report carries it.
        let c = s.report.mem.l2.three_c;
        assert_eq!(c.classified(), s.report.mem.l2.misses);
        assert_eq!(c, l2.three_c);
        // Layer attribution covered all four layers.
        assert_eq!(profile.layers.len(), 4);
        assert!(profile.layers.iter().all(|l| l.accesses > 0));
    }

    #[test]
    fn timeline_run_is_timing_neutral_and_valid() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(2) },
        );
        let plain = e.run();
        let (s, trace) = e.run_timeline();
        assert_eq!(s.cycles, plain.cycles, "event recording must not perturb timing");
        assert!(!trace.is_empty());
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn streaming_runs_are_warm_after_frame_one() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 64 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
        );
        let s = e.run_stream(3);
        assert_eq!(s.per_frame_cycles.len(), 3);
        assert!(s.steady_cycles() <= s.cold_cycles(), "warm caches cannot be slower");
        // Frames 2 and 3 are identical (steady state, deterministic).
        assert_eq!(s.per_frame_cycles[1], s.per_frame_cycles[2]);
    }

    #[test]
    fn run_summary_stats_dump() {
        let e = Experiment::new(
            HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(2) },
        );
        let s = e.run();
        let dump = s.dump_stats();
        assert!(dump.contains("sim_cycles"));
        assert!(dump.contains("system.l1d.overall_miss_rate"));
        assert!(!dump.contains("vcache"), "SVE has no vector cache");
        for l in dump.lines() {
            let v = l.split_whitespace().nth(1).expect("value column");
            assert!(v.parse::<f64>().is_ok(), "{l}");
        }
    }

    #[test]
    fn describes() {
        let hw = HwTarget::SveGem5 { vlen_bits: 2048, l2_bytes: 256 << 20 };
        assert_eq!(hw.describe(), "SVE@gem5 vlen=2048b L2=256MB");
        let w = Workload { model: ModelId::Vgg16, input_hw: 64, layer_limit: None };
        assert_eq!(w.describe(), "VGG16 @ 64px");
    }
}
