//! Machine-readable run reports.
//!
//! A [`RunReport`] bundles everything one experiment run measured — total
//! cycles and flops, the stall-cycle attribution, per-level cache behaviour,
//! and the per-layer breakdown — and serializes it to JSON (hand-rolled via
//! [`lva_trace::Json`]; the repo has no serde). The `exp-*` binaries write
//! these under `results/<name>.json` when invoked with `--json`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::experiment::{Experiment, RunSummary};
use lva_isa::{StallBreakdown, StallCause};
use lva_nn::{ConvAlgo, LayerReport};
use lva_sim::CacheStats;
use lva_trace::Json;

/// Host-side cost of producing one run: how long the *simulator* took on
/// the machine it ran on. Self-benchmarking data — simulated results are
/// independent of it, so it is kept out of reports unless explicitly
/// attached (deterministic report files must stay byte-identical across
/// hosts and runs).
#[derive(Debug, Clone, Copy)]
pub struct HostPerf {
    /// Wall-clock milliseconds the run took on the host.
    pub host_ms: f64,
}

/// A named, self-describing record of one experiment run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Report name; also the default file stem for [`Self::save`].
    pub name: String,
    /// Hardware point description (e.g. `RVV@gem5 vlen=4096b lanes=8 L2=1MB`).
    pub hw: String,
    /// Workload description (e.g. `YOLOv3 (20 layers) @ 96px`).
    pub workload: String,
    pub summary: RunSummary,
    /// Host wall-clock for the run; `None` (the default) keeps host noise
    /// out of the serialized report. See [`Self::with_host`].
    pub host: Option<HostPerf>,
    /// Counterfactual (`lva-whatif`) analysis for this run; `None` (the
    /// default) omits the section. See [`Self::with_whatif`].
    pub whatif: Option<Json>,
    /// Streaming energy attribution (`lva-energy`) for this run; `None`
    /// (the default) omits the section. See [`Self::with_energy`].
    pub energy: Option<Json>,
    /// Serving-tier observability (`lva-serve` latency/queue/SLO stats) for
    /// this run; `None` (the default) omits the section. See
    /// [`Self::with_serving`].
    pub serving: Option<Json>,
    /// Retime-engine provenance (`lva-retime`: which path produced this
    /// result, memo counters, refusals); `None` (the default) omits the
    /// section. See [`Self::with_retime`].
    pub retime: Option<Json>,
    /// Multi-core scaling observatory (`lva-scale`: per-core contention
    /// attribution, shared-port counters, throughput-vs-cores); `None`
    /// (the default) omits the section. See [`Self::with_scaling`].
    pub scaling: Option<Json>,
}

fn algo_name(a: ConvAlgo) -> &'static str {
    match a {
        ConvAlgo::Im2colGemm => "im2col+gemm",
        ConvAlgo::Winograd => "winograd",
        ConvAlgo::Direct => "direct",
    }
}

fn stalls_json(s: &StallBreakdown) -> Json {
    let mut by_cause = Json::obj();
    for c in StallCause::ALL {
        by_cause = by_cause.field(c.name(), s.get(c));
    }
    Json::obj()
        .field("total", s.total())
        .field("attributed", s.attributed())
        .field("by_cause", by_cause)
}

fn cache_json(c: &CacheStats) -> Json {
    let mut j = Json::obj()
        .field("accesses", c.accesses)
        .field("hits", c.hits)
        .field("misses", c.misses)
        .field("miss_rate", c.miss_rate())
        .field("hit_rate", c.hit_rate())
        .field("writebacks", c.writebacks)
        .field("prefetch_fills", c.prefetch_fills)
        .field("prefetch_hits", c.prefetch_hits)
        .field("prefetch_accuracy", c.prefetch_accuracy());
    // Present only on profiled runs (`lva-prof` fills the classification).
    if c.three_c.classified() > 0 {
        j = j.field(
            "miss_classes",
            Json::obj()
                .field("compulsory", c.three_c.compulsory)
                .field("capacity", c.three_c.capacity)
                .field("conflict", c.three_c.conflict),
        );
    }
    j
}

fn layer_json(l: &LayerReport) -> Json {
    let mut j = Json::obj()
        .field("index", l.index as u64)
        .field("desc", l.desc.as_str())
        .field("cycles", l.cycles)
        .field("flops", l.flops)
        .field("flops_per_cycle", l.flops_per_cycle())
        .field("avg_vlen_bits", l.avg_vlen_bits)
        .field(
            "out_shape",
            Json::Arr(vec![
                Json::from(l.out_shape.c as u64),
                Json::from(l.out_shape.h as u64),
                Json::from(l.out_shape.w as u64),
            ]),
        );
    if let Some((m, n, k)) = l.mnk {
        j = j
            .field("mnk", Json::Arr(vec![(m as u64).into(), (n as u64).into(), (k as u64).into()]));
    }
    if let Some(a) = l.algo {
        j = j.field("algo", algo_name(a));
    }
    j.field("stalls", stalls_json(&l.stalls))
}

impl RunReport {
    /// Build a report from an experiment definition and its measurements.
    pub fn new(name: impl Into<String>, e: &Experiment, s: &RunSummary) -> Self {
        RunReport {
            name: name.into(),
            hw: e.hw.describe(),
            workload: e.workload.describe(),
            summary: s.clone(),
            host: None,
            whatif: None,
            energy: None,
            serving: None,
            retime: None,
            scaling: None,
        }
    }

    /// Attach a host wall-clock measurement; [`Self::to_json`] then emits a
    /// `host` section with `host_ms` and the derived simulation rate
    /// `sim_cycles_per_host_us`.
    #[must_use]
    pub fn with_host(mut self, host_ms: f64) -> Self {
        self.host = Some(HostPerf { host_ms });
        self
    }

    /// Attach a counterfactual analysis (produced by `lva-whatif`);
    /// [`Self::to_json`] then emits it verbatim as a `whatif` section.
    #[must_use]
    pub fn with_whatif(mut self, whatif: Json) -> Self {
        self.whatif = Some(whatif);
        self
    }

    /// Attach a streaming energy attribution (produced by `lva-energy`,
    /// typically `EnergyAttribution::to_json()`); [`Self::to_json`] then
    /// emits it verbatim as an `energy` section.
    #[must_use]
    pub fn with_energy(mut self, energy: Json) -> Self {
        self.energy = Some(energy);
        self
    }

    /// Attach retime-engine provenance (produced by `lva-retime`'s
    /// `RetimeEngine::report()`); [`Self::to_json`] then emits it verbatim
    /// as a `retime` section.
    #[must_use]
    pub fn with_retime(mut self, retime: Json) -> Self {
        self.retime = Some(retime);
        self
    }

    /// Attach serving-tier observability (produced by `lva-serve`: latency
    /// histograms, queue telemetry, SLO outcomes); [`Self::to_json`] then
    /// emits it verbatim as a `serving` section.
    #[must_use]
    pub fn with_serving(mut self, serving: Json) -> Self {
        self.serving = Some(serving);
        self
    }

    /// Attach a multi-core scaling section (produced by `lva-scale`/
    /// `lva-bench`'s scaling observatory); [`Self::to_json`] then emits it
    /// verbatim as a `scaling` section.
    #[must_use]
    pub fn with_scaling(mut self, scaling: Json) -> Self {
        self.scaling = Some(scaling);
        self
    }

    /// The `host` section, if a measurement was attached.
    fn host_json(&self) -> Option<Json> {
        self.host.map(|h| {
            let cycles = self.summary.cycles;
            let rate = if h.host_ms > 0.0 { cycles as f64 / (h.host_ms * 1000.0) } else { 0.0 };
            Json::obj().field("host_ms", h.host_ms).field("sim_cycles_per_host_us", rate)
        })
    }

    /// The full report as a JSON value.
    pub fn to_json(&self) -> Json {
        let s = &self.summary;
        let net = &s.report;
        let mem = &net.mem;

        let mut caches = Json::obj();
        for (level, c) in [("l1d", &mem.l1), ("l2", &mem.l2), ("vcache", &mem.vcache)] {
            if c.accesses == 0 && c.prefetch_fills == 0 {
                continue;
            }
            caches = caches.field(level, cache_json(c));
        }

        let mut phases = Json::obj();
        for (p, cyc) in net.phases.breakdown() {
            phases = phases.field(p.name(), cyc);
        }

        let flops_per_cycle = if s.cycles == 0 { 0.0 } else { s.flops as f64 / s.cycles as f64 };

        let mut j = Json::obj()
            .field("name", self.name.as_str())
            .field("hw", self.hw.as_str())
            .field("workload", self.workload.as_str())
            .field(
                "totals",
                Json::obj()
                    .field("cycles", s.cycles)
                    .field("flops", s.flops)
                    .field("flops_per_cycle", flops_per_cycle)
                    .field("avg_vlen_bits", s.avg_vlen_bits)
                    .field("vec_instrs", net.vpu.vec_instrs)
                    .field("vec_mem_instrs", net.vpu.vec_mem_instrs)
                    .field("scalar_ops", net.vpu.scalar_ops)
                    .field("sw_prefetches", net.vpu.sw_prefetches),
            )
            .field("stalls", stalls_json(&net.stalls))
            .field("caches", caches)
            .field(
                "dram",
                Json::obj().field("reads", mem.dram_reads).field("writes", mem.dram_writes),
            )
            .field("hwpf_issued", mem.hwpf_issued)
            .field("phases", phases)
            .field("layers", Json::Arr(net.layers.iter().map(layer_json).collect()));
        // Optional sections go through one uniform path: each is skipped
        // when absent, so deterministic report files stay byte-identical
        // and new sections cannot invent their own presence rules.
        for (key, section) in [
            ("host", self.host_json()),
            ("whatif", self.whatif.clone()),
            ("energy", self.energy.clone()),
            ("serving", self.serving.clone()),
            ("retime", self.retime.clone()),
            ("scaling", self.scaling.clone()),
        ] {
            if let Some(sec) = section {
                j = j.field(key, sec);
            }
        }
        j
    }

    /// Write pretty-printed JSON under `results/<name>.json` (creating the
    /// directory), returning the path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        self.save_to(&path)?;
        Ok(path)
    }

    /// Write pretty-printed JSON to an explicit path.
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut body = self.to_json().to_string_pretty();
        body.push('\n');
        fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{HwTarget, Workload};
    use lva_nn::{ConvPolicy, ModelId};

    fn small_run() -> (Experiment, RunSummary) {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(lva_kernels::GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(3) },
        );
        let s = e.run();
        (e, s)
    }

    #[test]
    fn run_report_json_has_required_sections() {
        let (e, s) = small_run();
        let r = RunReport::new("unit_test_report", &e, &s);
        let j = r.to_json().to_string_pretty();
        for key in [
            "\"totals\"",
            "\"stalls\"",
            "\"by_cause\"",
            "\"caches\"",
            "\"layers\"",
            "\"avg_vlen_bits\"",
            "\"hit_rate\"",
            "\"flops_per_cycle\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        // Per-layer stall attribution is complete and sums to the run total.
        let net = &s.report;
        assert_eq!(net.stalls.attributed(), net.stalls.total());
        let per_layer: u64 = net.layers.iter().map(|l| l.stalls.total()).sum();
        assert_eq!(per_layer, net.stalls.total());
        assert!(net.stalls.total() > 0, "a real workload stalls somewhere");
    }

    /// Optional sections (`host`, `whatif`) are opt-in and handled through
    /// one uniform code path: absent by default (so deterministic report
    /// files stay byte-identical across hosts) and emitted when attached.
    #[test]
    fn optional_sections_only_when_attached() {
        let (e, s) = small_run();
        let plain = RunReport::new("t", &e, &s).to_json();
        for key in ["host", "whatif", "energy", "serving", "retime", "scaling"] {
            assert!(plain.get(key).is_none(), "optional section {key} present by default");
        }
        let timed = RunReport::new("t", &e, &s).with_host(250.0).to_json();
        let host = timed.get("host").expect("host section after with_host");
        assert_eq!(host.get("host_ms").and_then(Json::as_f64), Some(250.0));
        let want_rate = s.cycles as f64 / 250_000.0;
        assert_eq!(host.get("sim_cycles_per_host_us").and_then(Json::as_f64), Some(want_rate));
        // A zero measurement must not divide by zero.
        let degenerate = RunReport::new("t", &e, &s).with_host(0.0).to_json();
        let rate = degenerate.get("host").and_then(|h| h.get("sim_cycles_per_host_us"));
        assert_eq!(rate.and_then(Json::as_f64), Some(0.0));
        // The whatif payload is carried verbatim.
        let wf = Json::obj().field("bound", "memory");
        let with_wf = RunReport::new("t", &e, &s).with_whatif(wf.clone()).to_json();
        let got = with_wf.get("whatif").expect("whatif section after with_whatif");
        assert_eq!(got.to_string_compact(), wf.to_string_compact());
        // So is the energy payload.
        let en = Json::obj().field("total_j", 1.5e-3);
        let with_en = RunReport::new("t", &e, &s).with_energy(en.clone()).to_json();
        let got = with_en.get("energy").expect("energy section after with_energy");
        assert_eq!(got.to_string_compact(), en.to_string_compact());
        // And the serving payload.
        let sv = Json::obj().field("p99_ms", 4.25).field("deadline_misses", 3u64);
        let with_sv = RunReport::new("t", &e, &s).with_serving(sv.clone()).to_json();
        let got = with_sv.get("serving").expect("serving section after with_serving");
        assert_eq!(got.to_string_compact(), sv.to_string_compact());
        // And the scaling payload.
        let sc = Json::obj().field("cores", 4u64).field("contention_share", 0.31);
        let with_sc = RunReport::new("t", &e, &s).with_scaling(sc.clone()).to_json();
        let got = with_sc.get("scaling").expect("scaling section after with_scaling");
        assert_eq!(got.to_string_compact(), sc.to_string_compact());
    }

    #[test]
    fn run_report_json_round_trips() {
        let (e, s) = small_run();
        let report = RunReport::new("t", &e, &s)
            .with_host(125.0)
            .with_whatif(Json::obj().field("bound", "memory"))
            .with_serving(
                Json::obj()
                    .field("tenant", "yolov3_tiny")
                    .field("latency", Json::obj().field("p50_ms", 1.5).field("p99_ms", 6.0))
                    .field("slo", Json::obj().field("p99_met", true).field("budget_burn", 0.2)),
            );
        let compact = report.to_json().to_string_compact();
        let parsed = Json::parse(&compact).expect("report parses");
        // Parsing preserves field order, so re-serialization is the identity.
        assert_eq!(parsed.to_string_compact(), compact);
        let pretty = report.to_json().to_string_pretty();
        let reparsed = Json::parse(&pretty).expect("pretty report parses");
        assert_eq!(reparsed.to_string_compact(), compact);
        // Spot-check the parsed view sees the same totals the run measured.
        let totals = parsed.get("totals").expect("totals");
        assert_eq!(totals.get("cycles").and_then(Json::as_u64), Some(s.cycles));
        assert_eq!(totals.get("flops").and_then(Json::as_u64), Some(s.flops));
        assert_eq!(
            parsed.get("layers").and_then(Json::as_arr).map(<[Json]>::len),
            Some(s.report.layers.len())
        );
    }

    /// A real streamed energy section survives the JSON round trip and
    /// carries one entry per layer plus the headline totals.
    #[test]
    fn energy_section_round_trips() {
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(lva_kernels::GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(3) },
        );
        let (s, att) = e.run_energy(&crate::energy::EnergyModel::default());
        let report = RunReport::new("t", &e, &s).with_energy(att.to_json());
        let compact = report.to_json().to_string_compact();
        let parsed = Json::parse(&compact).expect("report with energy parses");
        assert_eq!(parsed.to_string_compact(), compact);
        let en = parsed.get("energy").expect("energy section");
        assert_eq!(en.get("total_j").and_then(Json::as_f64), Some(att.total.total_j()));
        assert_eq!(
            en.get("layers").and_then(Json::as_arr).map(<[Json]>::len),
            Some(s.report.layers.len())
        );
        let err = en.get("reconciliation_rel_err").and_then(Json::as_f64).expect("rel err");
        assert!(err < 1e-6, "round-tripped reconciliation error {err}");
    }
}
