//! # lva-tensor — tensors over the simulated memory arena
//!
//! CNN data in this workspace lives in the simulated [`lva_sim::Memory`]
//! arena so that every kernel's address stream is visible to the cache model.
//! A [`Tensor`] is a shape descriptor over a [`Buf`]; layouts follow Darknet:
//! feature maps are CHW (single-image inference, so N = 1 throughout, as in
//! the paper), convolution weights are `[out_ch][in_ch][kh][kw]`, and GEMM
//! matrices are row-major.

#![forbid(unsafe_code)]
use lva_isa::Machine;
use lva_sim::{Buf, Rng};

/// CHW shape of a feature map (single image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl Shape {
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear CHW index.
    #[inline]
    pub fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }
}

/// A CHW feature map stored in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct Tensor {
    pub buf: Buf,
    pub shape: Shape,
}

impl Tensor {
    /// Allocate a zeroed tensor in the machine's arena.
    pub fn alloc(m: &mut Machine, shape: Shape) -> Self {
        let buf = m.mem.alloc(shape.len());
        Tensor { buf, shape }
    }

    /// Allocate and fill from host data (row-major CHW).
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_host(m: &mut Machine, shape: Shape, data: &[f32]) -> Self {
        assert_eq!(data.len(), shape.len(), "shape/data mismatch");
        let buf = m.mem.alloc_from(data);
        Tensor { buf, shape }
    }

    /// Allocate with deterministic pseudo-random contents in `[-1, 1)`.
    ///
    /// Used for synthetic weights and inputs: inference *performance* is
    /// independent of the values, and kernel correctness is established
    /// against scalar references (see DESIGN.md substitutions).
    pub fn random(m: &mut Machine, shape: Shape, seed: u64) -> Self {
        let data = Rng::new(seed).f32_vec(shape.len());
        Self::from_host(m, shape, &data)
    }

    /// Copy the contents out to a host vector.
    pub fn to_host(&self, m: &Machine) -> Vec<f32> {
        m.mem.slice(self.buf).to_vec()
    }

    /// Byte address of element `(c, y, x)`.
    #[inline]
    pub fn addr(&self, c: usize, y: usize, x: usize) -> u64 {
        self.buf.addr(self.shape.idx(c, y, x))
    }
}

/// A row-major matrix stored in simulated memory (GEMM operand).
#[derive(Debug, Clone, Copy)]
pub struct Matrix {
    pub buf: Buf,
    pub rows: usize,
    pub cols: usize,
}

impl Matrix {
    pub fn alloc(m: &mut Machine, rows: usize, cols: usize) -> Self {
        let buf = m.mem.alloc(rows * cols);
        Matrix { buf, rows, cols }
    }

    pub fn from_host(m: &mut Machine, rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        let buf = m.mem.alloc_from(data);
        Matrix { buf, rows, cols }
    }

    pub fn random(m: &mut Machine, rows: usize, cols: usize, seed: u64) -> Self {
        let data = Rng::new(seed).f32_vec(rows * cols);
        Self::from_host(m, rows, cols, &data)
    }

    pub fn to_host(&self, m: &Machine) -> Vec<f32> {
        m.mem.slice(self.buf).to_vec()
    }

    /// Byte address of element `(r, c)`.
    #[inline]
    pub fn addr(&self, r: usize, c: usize) -> u64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.buf.addr(r * self.cols + c)
    }

    /// Element index of `(r, c)` within the backing buffer.
    #[inline]
    pub fn idx(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }
}

/// Deterministic host-side random vector (for reference kernels and tests).
pub fn host_random(n: usize, seed: u64) -> Vec<f32> {
    Rng::new(seed).f32_vec(n)
}

/// Maximum absolute difference between two slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Relative error comparison suitable for reassociated float kernels:
/// `|a-b| <= atol + rtol * max(|a|,|b|)` element-wise.
pub fn approx_eq(a: &[f32], b: &[f32], rtol: f32, atol: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= atol + rtol * x.abs().max(y.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20))
    }

    #[test]
    fn shape_indexing_is_chw() {
        let s = Shape::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        assert_eq!(s.idx(0, 0, 0), 0);
        assert_eq!(s.idx(0, 1, 0), 5);
        assert_eq!(s.idx(1, 0, 0), 20);
        assert_eq!(s.idx(2, 3, 4), 59);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut m = machine();
        let shape = Shape::new(2, 3, 4);
        let data: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let t = Tensor::from_host(&mut m, shape, &data);
        assert_eq!(t.to_host(&m), data);
        assert_eq!(m.mem.read_addr(t.addr(1, 2, 3)), 23.0);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let mut m = machine();
        let a = Tensor::random(&mut m, Shape::new(1, 8, 8), 42);
        let b = Tensor::random(&mut m, Shape::new(1, 8, 8), 42);
        assert_eq!(a.to_host(&m), b.to_host(&m));
        assert!(a.to_host(&m).iter().all(|x| (-1.0..1.0).contains(x)));
    }

    #[test]
    fn matrix_addressing() {
        let mut m = machine();
        let mat = Matrix::random(&mut m, 4, 7, 1);
        assert_eq!(mat.addr(2, 3), mat.buf.addr(2 * 7 + 3));
        assert_eq!(mat.idx(3, 6), 27);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-6, 2.0 - 1e-6], 1e-5, 0.0));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-5, 0.0));
        assert!(approx_eq(&[0.0], &[1e-9], 0.0, 1e-8));
        assert!(!approx_eq(&[1.0, 2.0], &[1.0], 1.0, 1.0), "length mismatch is not equal");
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
    }
}
