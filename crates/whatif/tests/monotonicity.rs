//! Idealizations are cycle-monotone: removing a modeled cost can never slow
//! a run down. Driven across the whole `lva-check` kernel registry at the
//! four Table II design points, plus an experiment-level check that the
//! engine's bookkeeping (savings, fan-out determinism) is exact.

use lva_core::{ConvPolicy, Experiment, HwTarget, ModelId, Workload};
use lva_isa::{IdealKnob, IdealSpec, Machine};
use lva_whatif::analyze_experiment;

#[test]
fn no_registry_kernel_slows_down_under_any_knob() {
    let all_on = IdealSpec {
        perfect_l1: true,
        perfect_l2: true,
        zero_vector_startup: true,
        infinite_lanes: true,
        infinite_issue: true,
    };
    for (profile, cfg) in lva_check::sweep_configs() {
        for case in lva_check::registered_kernels() {
            if !case.supports(cfg.vpu.isa) {
                continue;
            }
            let cycles = |spec: IdealSpec| {
                let mut cfg = cfg.clone();
                cfg.ideal = spec;
                let mut m = Machine::new(cfg);
                (case.run)(&mut m);
                m.cycles()
            };
            let factual = cycles(IdealSpec::NONE);
            assert!(factual > 0, "{}/{profile}: kernel ran", case.name);
            let mut floor = factual;
            for knob in IdealKnob::ALL {
                let cf = cycles(knob.spec());
                assert!(
                    cf <= factual,
                    "{}/{profile}: +{} increased cycles ({cf} > {factual})",
                    case.name,
                    knob.name()
                );
                floor = floor.min(cf);
            }
            let all = cycles(all_on);
            assert!(
                all <= floor,
                "{}/{profile}: all-on slower than best single knob ({all} > {floor})",
                case.name
            );
        }
    }
}

#[test]
fn experiment_analysis_is_monotone_and_job_count_invariant() {
    let e = Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
        ConvPolicy::gemm_only(lva_core::GemmVariant::opt3()),
        Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) },
    );
    let (factual, serial) = analyze_experiment(&e, 1);
    assert_eq!(serial.factual_cycles, factual.cycles);
    for o in &serial.outcomes {
        assert!(
            o.cycles <= factual.cycles,
            "+{} increased cycles ({} > {})",
            o.knob.name(),
            o.cycles,
            factual.cycles
        );
        assert_eq!(o.saved, factual.cycles - o.cycles, "exact on monotone totals");
        assert_eq!(o.per_layer_saved.len(), factual.report.layers.len());
    }
    // Every layer got a verdict, and verdicts are self-consistent.
    assert_eq!(serial.layers.len(), factual.report.layers.len());
    for l in &serial.layers {
        assert_eq!(l.saved.len(), IdealKnob::ALL.len());
        assert_eq!(l.dominant.is_none(), l.bound == lva_whatif::Bound::Compute);
    }
    // The fan-out is deterministic regardless of thread count.
    let (factual2, parallel) = analyze_experiment(&e, 4);
    assert_eq!(factual2.cycles, factual.cycles);
    assert_eq!(
        parallel.to_json().to_string_pretty(),
        serial.to_json().to_string_pretty(),
        "whatif analysis must not depend on --jobs"
    );
}
