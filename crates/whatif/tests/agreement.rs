//! The causal-vs-correlational agreement contract: for every directly-mapped
//! knob, the cycles a counterfactual actually recovers and the stall cycles
//! PR 1's attribution charged to the matching cause stay within
//! [`lva_whatif::AGREEMENT_TOLERANCE`] of each other (normalized by run
//! length), across the whole `lva-check` kernel registry at the four
//! Table II design points.
//!
//! The two views legitimately diverge — attribution charges the proximate
//! cause at stall time, counterfactuals measure end-to-end recovery with all
//! second-order interactions — so the tolerance is loose by design. What it
//! catches is structural drift: a broken knob or a mis-mapped cause shows up
//! as a normalized gap near 1.0.

use lva_whatif::{analyze_kernel, KnobCause, AGREEMENT_TOLERANCE};

#[test]
fn causal_and_attributed_stalls_agree() {
    let mut worst: Option<(String, f64)> = None;
    let mut checked = 0usize;
    for (profile, cfg) in lva_check::sweep_configs() {
        for case in lva_check::registered_kernels() {
            if !case.supports(cfg.vpu.isa) {
                continue;
            }
            let w = analyze_kernel(&case, &cfg);
            for a in &w.agreement {
                checked += 1;
                let label = format!(
                    "{}/{profile} +{}: causal={} attributed={} gap={:.3}",
                    case.name,
                    a.knob.name(),
                    a.causal_saved,
                    a.attributed,
                    a.norm_gap
                );
                assert!(
                    a.norm_gap <= AGREEMENT_TOLERANCE,
                    "agreement contract violated: {label} (tolerance {AGREEMENT_TOLERANCE})"
                );
                if worst.as_ref().is_none_or(|(_, g)| a.norm_gap > *g) {
                    worst = Some((label, a.norm_gap));
                }
            }
        }
    }
    // 13 kernels on RVV + 14 on SVE, 2 configs each, 4 mapped knobs.
    assert_eq!(checked, (13 + 14) * 2 * 4, "full registry coverage");
    let (label, _) = worst.expect("at least one check ran");
    eprintln!("worst agreement gap: {label}");
}

/// The knob→cause mapping itself is what the contract rides on; pin that
/// every mapped cause is distinct (no double counting in the cross-check).
#[test]
fn mapped_causes_are_distinct() {
    let causes: Vec<_> = lva_isa::IdealKnob::ALL.iter().filter_map(|k| k.cause()).collect();
    let mut dedup = causes.clone();
    dedup.dedup();
    assert_eq!(causes.len(), 4);
    assert_eq!(dedup.len(), causes.len(), "two knobs map to the same cause");
}
