//! The scale advisor: where does a throughput-vs-cores curve bend, is the
//! bend *contention* (the shared L2/DRAM port), and which co-design lever
//! recovers it?
//!
//! The `lva-scale` SoC simulator produces, per (network, sharding,
//! design point), a curve of throughput against core count together with
//! the exact per-core `Contention` stall share (PR 1's attribution
//! contract extended to the shared port) and the `infinite_shared_bw`
//! counterfactual — the same curve with arbitration waits idealized away.
//! This module is the pure analysis over those numbers, mirroring the
//! single-core advisor in the crate root: dominant evidence names the
//! bound, and the bound names the lever. Three levers are on the table,
//! straight from the co-design space:
//!
//! * **grow the shared L2** — a larger capacity at the knee's core count
//!   restores near-linear efficiency (the merged working set spilled);
//! * **switch the sharding** — the other partition strategy moves less
//!   data through the port at the same core count;
//! * **stop adding cores** — neither memory capacity nor partitioning
//!   recovers the curve; past the knee a core buys more port waits than
//!   useful cycles.
//!
//! All inputs are simulated quantities; the analysis is deterministic and
//! rendered into `BENCH_scaling.json` / `results/SCALING.md` by
//! `lva-bench`.

use lva_trace::Json;

/// Parallel efficiency (throughput relative to linear scaling from the
/// curve's first point) below which the curve counts as *bent* — the knee
/// is the first core count under this line.
pub const SCALING_KNEE_EFFICIENCY: f64 = 0.75;

/// A knee is blamed on the shared port only when the mean per-core
/// `Contention` stall share at the knee reaches this fraction — below it
/// the bend has another cause and the advisor defers to the per-point
/// single-core bound.
pub const CONTENTION_BOUND_SHARE: f64 = 0.05;

/// The other sharding strategy must beat the bent one by this factor at
/// the knee before "switch the sharding" is worth recommending over
/// cheaper levers.
pub const SHARDING_GAIN_MIN: f64 = 1.02;

/// One measured cell of a scaling curve (fixed network × sharding ×
/// design point, varying core count).
#[derive(Debug, Clone, Copy)]
pub struct ScaleCell {
    pub cores: u64,
    /// Frames per kilocycle of SoC makespan.
    pub throughput: f64,
    /// Mean per-core `Contention` stall cycles / core cycles ∈ [0, 1].
    pub contention_share: f64,
    /// The same cell under the `infinite_shared_bw` counterfactual (all
    /// arbitration waits idealized away; an upper bound on recovery).
    pub ideal_throughput: f64,
}

impl ScaleCell {
    /// Fraction of the counterfactual throughput lost to the shared port.
    pub fn contention_cost_frac(&self) -> f64 {
        if self.ideal_throughput <= 0.0 {
            0.0
        } else {
            ((self.ideal_throughput - self.throughput) / self.ideal_throughput).max(0.0)
        }
    }
}

/// Parallel efficiency per cell: measured throughput over the linear
/// extrapolation of the curve's first point. The first entry is 1.0 by
/// construction (an empty input yields an empty output).
pub fn scaling_efficiency(cells: &[ScaleCell]) -> Vec<f64> {
    let Some(first) = cells.first() else { return Vec::new() };
    let per_core = if first.cores == 0 { 0.0 } else { first.throughput / first.cores as f64 };
    cells
        .iter()
        .map(|c| {
            let linear = per_core * c.cores as f64;
            if linear <= 0.0 {
                0.0
            } else {
                c.throughput / linear
            }
        })
        .collect()
}

/// Index of the knee: the first cell whose parallel efficiency drops
/// under [`SCALING_KNEE_EFFICIENCY`]. `None` means the curve holds within
/// the band across the whole ladder.
pub fn find_knee(cells: &[ScaleCell]) -> Option<usize> {
    scaling_efficiency(cells).iter().position(|&e| e < SCALING_KNEE_EFFICIENCY)
}

/// The co-design lever the scale advisor recommends at a contention knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleLever {
    /// A larger shared L2 at the knee's core count restores efficiency.
    GrowL2,
    /// The alternative sharding strategy is materially faster there.
    SwitchSharding,
    /// Nothing on the table recovers it — stop scaling out.
    FewerCores,
}

impl ScaleLever {
    pub fn name(self) -> &'static str {
        match self {
            ScaleLever::GrowL2 => "grow_l2",
            ScaleLever::SwitchSharding => "switch_sharding",
            ScaleLever::FewerCores => "fewer_cores",
        }
    }
}

/// The advisor's verdict over one scaling curve.
#[derive(Debug, Clone)]
pub struct ScaleAdvice {
    /// Core count at the knee, if the curve bends.
    pub knee_cores: Option<u64>,
    /// Parallel efficiency per cell (same order as the input curve).
    pub efficiency: Vec<f64>,
    /// The knee is attributable to shared-port contention (the stall share
    /// clears [`CONTENTION_BOUND_SHARE`] *and* the `infinite_shared_bw`
    /// counterfactual restores the efficiency band there).
    pub contention_bound: bool,
    /// The recommended lever, when the knee is contention.
    pub lever: Option<ScaleLever>,
    /// One-line phrasing for the report.
    pub advice: &'static str,
}

impl ScaleAdvice {
    /// The `scale_advice` subsection of the scaling record.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        if let Some(k) = self.knee_cores {
            j = j.field("knee_cores", k);
        }
        j = j
            .field(
                "efficiency",
                Json::Arr(self.efficiency.iter().map(|&e| Json::from(e)).collect()),
            )
            .field("contention_bound", self.contention_bound);
        if let Some(l) = self.lever {
            j = j.field("lever", l.name());
        }
        j.field("advice", self.advice)
    }
}

/// Analyze one scaling curve. `l2_recovers` reports whether a larger
/// shared L2 at the knee's core count holds the efficiency band (the
/// caller measures it from the grid's L2 ladder); `other_sharding_gain`
/// is the alternative strategy's throughput over this one's at the knee
/// (1.0 when there is no alternative cell).
///
/// Lever priority is cheapest-first within the co-design space: capacity
/// (an L2 sizing the sweep already prices) beats re-partitioning (a
/// software change) beats giving up on cores.
pub fn advise(cells: &[ScaleCell], l2_recovers: bool, other_sharding_gain: f64) -> ScaleAdvice {
    let efficiency = scaling_efficiency(cells);
    let Some(knee) = find_knee(cells) else {
        return ScaleAdvice {
            knee_cores: None,
            efficiency,
            contention_bound: false,
            lever: None,
            advice: "scales within the efficiency band across the measured ladder — the shared \
                     port is not yet the limit",
        };
    };
    let cell = &cells[knee];
    // Contention owns the knee only if the attributed share is material
    // AND the counterfactual confirms the port is what bent the curve.
    let ideal_eff = {
        let per_core = cells[0].throughput / (cells[0].cores.max(1)) as f64;
        let linear = per_core * cell.cores as f64;
        if linear <= 0.0 {
            0.0
        } else {
            cell.ideal_throughput / linear
        }
    };
    let contention_bound =
        cell.contention_share >= CONTENTION_BOUND_SHARE && ideal_eff >= SCALING_KNEE_EFFICIENCY;
    if !contention_bound {
        return ScaleAdvice {
            knee_cores: Some(cell.cores),
            efficiency,
            contention_bound: false,
            lever: None,
            advice: "the bend is not shared-port contention: per-core efficiency falls while \
                     the counterfactual port leaves it bent — consult the per-point single-core \
                     bound instead",
        };
    }
    let (lever, advice) = if l2_recovers {
        (
            ScaleLever::GrowL2,
            "grow the shared L2: the merged working set spills at this core count and every \
             extra core amplifies port traffic (the paper's cache-capacity axis)",
        )
    } else if other_sharding_gain >= SHARDING_GAIN_MIN {
        (
            ScaleLever::SwitchSharding,
            "switch the sharding strategy: the alternative partition moves less data through \
             the shared port at this core count",
        )
    } else {
        (
            ScaleLever::FewerCores,
            "stop adding cores: past this knee a core buys more port waits than useful cycles \
             — spend the area on the memory system instead",
        )
    };
    ScaleAdvice {
        knee_cores: Some(cell.cores),
        efficiency,
        contention_bound: true,
        lever: Some(lever),
        advice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(cores: u64, tp: f64, share: f64, ideal: f64) -> ScaleCell {
        ScaleCell { cores, throughput: tp, contention_share: share, ideal_throughput: ideal }
    }

    #[test]
    fn efficiency_is_relative_to_linear_scaling() {
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(2, 1.8, 0.1, 2.0), cell(4, 2.0, 0.3, 4.0)];
        let eff = scaling_efficiency(&cells);
        assert_eq!(eff.len(), 3);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        assert!((eff[1] - 0.9).abs() < 1e-12);
        assert!((eff[2] - 0.5).abs() < 1e-12);
        assert_eq!(find_knee(&cells), Some(2), "knee where efficiency first drops under 0.75");
        assert_eq!(scaling_efficiency(&[]), Vec::<f64>::new());
    }

    #[test]
    fn linear_curve_has_no_knee_and_no_lever() {
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(2, 1.9, 0.02, 2.0), cell(4, 3.6, 0.04, 4.0)];
        assert_eq!(find_knee(&cells), None);
        let a = advise(&cells, false, 1.0);
        assert_eq!(a.knee_cores, None);
        assert!(!a.contention_bound);
        assert!(a.lever.is_none());
        assert!(a.advice.contains("not yet the limit"));
    }

    #[test]
    fn contention_knee_prefers_l2_then_sharding_then_fewer_cores() {
        // Bent at 4 cores with heavy contention; the counterfactual would
        // have held the line (ideal ≈ linear).
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(2, 1.9, 0.05, 2.0), cell(4, 2.4, 0.30, 3.9)];
        let a = advise(&cells, true, 1.5);
        assert_eq!(a.knee_cores, Some(4));
        assert!(a.contention_bound);
        assert_eq!(a.lever, Some(ScaleLever::GrowL2), "capacity beats re-partitioning");
        let a = advise(&cells, false, 1.5);
        assert_eq!(a.lever, Some(ScaleLever::SwitchSharding));
        let a = advise(&cells, false, 1.0);
        assert_eq!(a.lever, Some(ScaleLever::FewerCores));
        assert!(a.advice.contains("stop adding cores"));
    }

    #[test]
    fn knee_without_contention_evidence_defers_to_the_single_core_bound() {
        // Bent, but the counterfactual is bent too (ideal ≈ real): the port
        // did not cause this — e.g. a serial pipeline stage.
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(4, 2.0, 0.30, 2.1)];
        let a = advise(&cells, true, 2.0);
        assert_eq!(a.knee_cores, Some(4));
        assert!(!a.contention_bound);
        assert!(a.lever.is_none());
        assert!(a.advice.contains("single-core bound"));
        // Same shape but with a negligible attributed share: also deferred.
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(4, 2.0, 0.01, 4.0)];
        assert!(!advise(&cells, true, 2.0).contention_bound);
    }

    #[test]
    fn advice_serializes_for_the_scaling_record() {
        let cells = [cell(1, 1.0, 0.0, 1.0), cell(4, 2.4, 0.30, 3.9)];
        let j = advise(&cells, true, 1.0).to_json();
        assert_eq!(j.get("knee_cores").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("contention_bound").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("lever").and_then(Json::as_str), Some("grow_l2"));
        assert!(j.get("advice").and_then(Json::as_str).unwrap_or("").contains("shared L2"));
        assert_eq!(j.get("efficiency").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn contention_cost_fraction_is_bounded() {
        assert_eq!(cell(4, 2.0, 0.3, 4.0).contention_cost_frac(), 0.5);
        assert_eq!(cell(4, 2.0, 0.3, 0.0).contention_cost_frac(), 0.0);
        assert_eq!(cell(4, 4.0, 0.0, 2.0).contention_cost_frac(), 0.0, "clamped at zero");
    }
}
