//! SLO-aware design-point recommendation: the serving-tier extension of
//! the co-design advisor.
//!
//! The cycles/energy advisor answers "what is this run bound by"; the
//! serving observatory (`lva-serve` + `exp-serve`) measures what traffic a
//! design point can hold to a latency target. This module closes the loop:
//! given the measured tail latency of every Table II-style design point at
//! one offered load, name the **cheapest** point whose p99 meets the SLO —
//! and show the next-cheaper point that misses it, so the recommendation
//! carries its own counterfactual ("one rung down the ladder and you blow
//! the budget").
//!
//! Cost is a unitless hardware-provisioning proxy, not dollars: datapath
//! area scales with `lanes × (vlen/512)` (wider lanes and longer registers
//! both cost silicon), SRAM with L2 megabytes, and the A64FX's hardware
//! prefetch engine adds a constant. The absolute scale is arbitrary — only
//! the *order* of the ladder matters to the recommendation, and the order
//! is stable under any positive rescaling of the three terms' ratios used
//! here.

use lva_core::HwTarget;
use lva_trace::Json;

/// Unitless provisioning cost of a design point (see module docs).
pub fn design_cost(hw: &HwTarget) -> f64 {
    let cfg = hw.machine_config();
    let datapath = (cfg.vpu.vlen_bits as f64 / 512.0) * cfg.vpu.lanes as f64;
    let sram = cfg.mem.l2.bytes as f64 / (1 << 20) as f64;
    let prefetch = if matches!(hw, HwTarget::A64fx) { 2.0 } else { 0.0 };
    datapath + sram + prefetch
}

/// One design point's measured serving outcome at the load being decided.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Stable point name (e.g. `rvv2048x8/1MB`).
    pub name: String,
    /// [`design_cost`] of the point.
    pub cost: f64,
    /// Measured overall p99 latency (ms) at the decision load.
    pub p99_ms: f64,
    /// Measured deadline-miss fraction at the decision load.
    pub miss_frac: f64,
}

/// The advisor's serving verdict for one latency target.
#[derive(Debug, Clone)]
pub struct SloRecommendation {
    pub target_p99_ms: f64,
    /// Cheapest point whose measured p99 meets the target, if any does.
    pub recommended: Option<ServingPoint>,
    /// Most expensive point cheaper than the recommendation (the
    /// counterfactual rung: what you would buy if you shaved cost, and why
    /// it is not enough). `None` when the recommendation is already the
    /// cheapest point.
    pub next_cheaper: Option<ServingPoint>,
}

impl SloRecommendation {
    /// The `slo_recommendation` report section.
    pub fn to_json(&self) -> Json {
        let point = |p: &ServingPoint| {
            Json::obj()
                .field("point", p.name.as_str())
                .field("cost", p.cost)
                .field("p99_ms", p.p99_ms)
                .field("miss_frac", p.miss_frac)
        };
        let mut j = Json::obj().field("target_p99_ms", self.target_p99_ms);
        match &self.recommended {
            Some(p) => {
                j = j.field("met", true).field("recommended", point(p));
                if let Some(n) = &self.next_cheaper {
                    j = j.field("next_cheaper_misses", point(n));
                }
            }
            None => {
                j = j.field("met", false);
            }
        }
        j
    }
}

/// Pick the cheapest point meeting `target_p99_ms` (ties on cost break on
/// name, so the choice is total). By construction every point cheaper than
/// the recommendation misses the target — `next_cheaper` exhibits the
/// dearest such witness.
pub fn recommend(points: &[ServingPoint], target_p99_ms: f64) -> SloRecommendation {
    assert!(target_p99_ms > 0.0);
    let mut sorted: Vec<&ServingPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.cost.partial_cmp(&b.cost).expect("finite costs").then_with(|| a.name.cmp(&b.name))
    });
    let idx = sorted.iter().position(|p| p.p99_ms <= target_p99_ms);
    let recommended = idx.map(|i| sorted[i].clone());
    let next_cheaper = match idx {
        Some(i) if i > 0 => Some(sorted[i - 1].clone()),
        _ => None,
    };
    SloRecommendation { target_p99_ms, recommended, next_cheaper }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_cost_orders_the_table_ii_ladder() {
        let sve512_1m = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 1 << 20 };
        let sve512_4m = HwTarget::SveGem5 { vlen_bits: 512, l2_bytes: 4 << 20 };
        let a64fx = HwTarget::A64fx;
        let rvv2048_1m = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 };
        let rvv2048_4m = HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 4 << 20 };
        let ladder = [sve512_1m, sve512_4m, a64fx, rvv2048_1m, rvv2048_4m];
        let costs: Vec<f64> = ladder.iter().map(design_cost).collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "ladder must be strictly cost-ordered: {costs:?}");
        }
        // Spot-check the arithmetic: 2048/512 × 8 lanes + 1 MB = 33.
        assert_eq!(design_cost(&rvv2048_1m), 33.0);
    }

    fn pt(name: &str, cost: f64, p99: f64) -> ServingPoint {
        ServingPoint { name: name.into(), cost, p99_ms: p99, miss_frac: 0.01 }
    }

    #[test]
    fn recommend_picks_cheapest_meeting_and_exhibits_the_miss_below() {
        // Latency improves up the ladder; target sits between b and c.
        let points =
            [pt("a", 9.0, 40.0), pt("b", 12.0, 20.0), pt("c", 26.0, 8.0), pt("d", 33.0, 5.0)];
        let r = recommend(&points, 10.0);
        assert_eq!(r.recommended.as_ref().unwrap().name, "c");
        assert_eq!(r.next_cheaper.as_ref().unwrap().name, "b");
        assert!(r.next_cheaper.as_ref().unwrap().p99_ms > 10.0, "witness must miss");
        let j = r.to_json();
        assert_eq!(j.get("met").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("recommended").and_then(|p| p.get("point")).and_then(Json::as_str),
            Some("c")
        );
        assert_eq!(
            j.get("next_cheaper_misses").and_then(|p| p.get("point")).and_then(Json::as_str),
            Some("b")
        );
    }

    #[test]
    fn recommend_edges_cheapest_point_and_unmeetable_target() {
        let points = [pt("a", 9.0, 4.0), pt("b", 12.0, 3.0)];
        // The cheapest point already meets: no counterfactual rung below.
        let r = recommend(&points, 10.0);
        assert_eq!(r.recommended.as_ref().unwrap().name, "a");
        assert!(r.next_cheaper.is_none());
        // Nobody meets: honest `met: false`, no recommendation.
        let r = recommend(&points, 1.0);
        assert!(r.recommended.is_none());
        assert!(r.next_cheaper.is_none());
        assert_eq!(r.to_json().get("met").and_then(Json::as_bool), Some(false));
        // Order of the input slice is irrelevant (sorting is internal).
        let shuffled = [pt("b", 12.0, 3.0), pt("a", 9.0, 4.0)];
        assert_eq!(recommend(&shuffled, 10.0).recommended.unwrap().name, "a");
    }
}
