//! # lva-whatif — counterfactual profiling and the co-design advisor
//!
//! PR 1's `StallBreakdown` is *correlational*: it attributes each stalled
//! cycle to the proximate cause observed at stall time. This crate answers
//! the *causal* question a co-designer actually asks — "how many cycles
//! would I get back if this bottleneck vanished?" — by re-running the same
//! workload under opt-in [`IdealSpec`] idealizations (perfect first-level
//! cache, free DRAM, zero vector startup, infinite lanes, infinite issue)
//! and measuring `cycles_saved_if_fixed` directly.
//!
//! The two views are cross-checked: each knob maps to one [`StallCause`]
//! ([`IdealKnob::cause`]), and the analysis reports per-cause agreement
//! between causal savings and attributed stall cycles. Where they diverge
//! (overlapped latencies, second-order interactions) the causal number is
//! the one to trust; the attribution remains useful because it is free.
//!
//! Bound classification ([`Bound`]) follows dominant recovery: the knob that
//! saves the most cycles names the bound, unless no knob saves at least
//! [`COMPUTE_BOUND_THRESHOLD`] of the factual cycles — then the region is
//! compute-bound and the advisor recommends algorithmic work instead of
//! hardware. Methodology and the agreement contract live in DESIGN.md §13.

#![forbid(unsafe_code)]

pub mod scale;
pub mod slo;

pub use scale::{
    advise, find_knee, scaling_efficiency, ScaleAdvice, ScaleCell, ScaleLever,
    CONTENTION_BOUND_SHARE, SCALING_KNEE_EFFICIENCY,
};
pub use slo::{design_cost, recommend, ServingPoint, SloRecommendation};

use lva_check::KernelCase;
use lva_core::{parallel_map, EnergyModel, Experiment, RunSummary};
use lva_isa::{IdealKnob, IdealSpec, Machine, MachineConfig, StallBreakdown, StallCause};
use lva_trace::Json;

/// A knob must recover at least this fraction of factual cycles to name the
/// bound; below it the region is classified compute-bound (no modeled
/// resource is worth idealizing).
pub const COMPUTE_BOUND_THRESHOLD: f64 = 0.05;

/// Documented ceiling on the causal-vs-attributed gap, as a fraction of
/// factual cycles, for every directly-mapped knob across the `lva-check`
/// kernel registry at the four Table II design points (see the
/// `causal_and_attributed_stalls_agree` test, which enforces it).
///
/// Measured worst case at pinning time was 0.241 (`gemm_naive` on
/// rvv/4096b, `perfect_l1`: the attribution charged 0 cycles to
/// `MemLatency` because the decoupled memory unit's exposed miss time hides
/// inside unit-busy occupancy, yet the counterfactual recovered 24% of the
/// run — the classic case where the causal view sees through overlap that
/// fools the proximate-cause view). The contract is deliberately loose —
/// the two views answer different questions — but it bounds drift: a
/// mapping bug or a broken knob shows up as a gap near 1.0.
pub const AGREEMENT_TOLERANCE: f64 = 0.40;

/// What a region of the run is bound by, per dominant counterfactual
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// No idealization recovers ≥ [`COMPUTE_BOUND_THRESHOLD`]: the cycles
    /// are inherent to the executed element groups and dependency chains.
    Compute,
    /// Dominated by `perfect_l1` or `perfect_l2`: cache/DRAM service time.
    Memory,
    /// Dominated by `zero_vector_startup`: the pipeline ramp of short
    /// vectors (§V of the paper — the long-vector argument).
    Startup,
    /// Dominated by `infinite_lanes`: lane throughput on element groups.
    Lane,
    /// Dominated by `infinite_issue`: the scalar front end's issue gap.
    Issue,
}

impl Bound {
    pub fn name(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Memory => "memory",
            Bound::Startup => "startup",
            Bound::Lane => "lane",
            Bound::Issue => "issue",
        }
    }

    /// The bound a dominant knob names.
    pub fn of_knob(knob: IdealKnob) -> Bound {
        match knob {
            IdealKnob::PerfectL1 | IdealKnob::PerfectL2 => Bound::Memory,
            IdealKnob::ZeroVectorStartup => Bound::Startup,
            IdealKnob::InfiniteLanes => Bound::Lane,
            IdealKnob::InfiniteIssue => Bound::Issue,
        }
    }
}

/// The co-design lever a dominant knob recommends pulling, phrased for the
/// advisor report.
pub fn recommendation(bound: Bound, dominant: Option<IdealKnob>) -> &'static str {
    match (bound, dominant) {
        (Bound::Memory, Some(IdealKnob::PerfectL2)) => {
            "grow the L2 or block for its capacity (the paper's Fig. 7/9 cache-size axis)"
        }
        (Bound::Memory, _) => {
            "improve first-level locality: cache blocking, unit-stride layouts, packing"
        }
        (Bound::Startup, _) => {
            "lengthen vectors to amortize the startup ramp (fuse loops, pick longer trip counts)"
        }
        (Bound::Lane, _) => "add lanes / widen the datapath — element throughput is the limit",
        (Bound::Issue, _) => "close the issue gap: fewer, longer vector instructions per loop",
        (Bound::Compute, _) => {
            "compute-bound at this design point: reduce work algorithmically (Winograd, pruning)"
        }
    }
}

/// Extension trait wiring [`IdealKnob`] into the stall-attribution world.
pub trait KnobCause {
    /// The [`StallCause`] this knob's idealization removes, if the mapping
    /// is direct. `perfect_l2` returns `None`: it shares `MemLatency` with
    /// `perfect_l1` (the attribution cannot split L2 from DRAM service
    /// time), so it is excluded from the agreement cross-check.
    fn cause(self) -> Option<StallCause>;
}

impl KnobCause for IdealKnob {
    fn cause(self) -> Option<StallCause> {
        match self {
            IdealKnob::PerfectL1 => Some(StallCause::MemLatency),
            IdealKnob::PerfectL2 => None,
            IdealKnob::ZeroVectorStartup => Some(StallCause::VectorStartup),
            IdealKnob::InfiniteLanes => Some(StallCause::LaneOccupancy),
            IdealKnob::InfiniteIssue => Some(StallCause::IssueWidth),
        }
    }
}

/// One counterfactual outcome: the run under a single idealization knob.
#[derive(Debug, Clone)]
pub struct KnobOutcome {
    pub knob: IdealKnob,
    /// Total cycles of the counterfactual run.
    pub cycles: u64,
    /// `factual - counterfactual` — the causal cost of the modeled
    /// bottleneck. Idealizations are cycle-monotone, so this is exact on
    /// totals.
    pub saved: u64,
    /// Per-layer savings, aligned with the factual report's layer order.
    /// Saturating: a layer may individually slow down when a knob shifts
    /// warm-up traffic across layer boundaries, even though totals cannot.
    pub per_layer_saved: Vec<u64>,
}

impl KnobOutcome {
    pub fn saved_frac(&self, factual_cycles: u64) -> f64 {
        if factual_cycles == 0 {
            0.0
        } else {
            self.saved as f64 / factual_cycles as f64
        }
    }
}

/// Causal-vs-attributed cross-check for one directly-mapped knob.
#[derive(Debug, Clone, Copy)]
pub struct CauseAgreement {
    pub knob: IdealKnob,
    pub cause: StallCause,
    /// Cycles the counterfactual actually recovered.
    pub causal_saved: u64,
    /// Stall cycles PR 1's attribution charged to the matching cause.
    pub attributed: u64,
    /// `causal / attributed`; 1.0 when both are zero (perfect vacuous
    /// agreement), `f64::INFINITY` when only the attribution is zero.
    pub ratio: f64,
    /// `|causal - attributed| / factual_cycles` — the gap normalized by run
    /// length, the quantity [`AGREEMENT_TOLERANCE`] bounds.
    pub norm_gap: f64,
}

fn agreement(
    knob: IdealKnob,
    cause: StallCause,
    causal_saved: u64,
    attributed: u64,
    factual_cycles: u64,
) -> CauseAgreement {
    let ratio = if attributed == 0 {
        if causal_saved == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        causal_saved as f64 / attributed as f64
    };
    let norm_gap = if factual_cycles == 0 {
        0.0
    } else {
        causal_saved.abs_diff(attributed) as f64 / factual_cycles as f64
    };
    CauseAgreement { knob, cause, causal_saved, attributed, ratio, norm_gap }
}

/// Dominant-recovery classification shared by whole runs, layers, and
/// kernels: `(bound, dominant knob)` from per-knob savings in
/// [`IdealKnob::ALL`] order (first-listed knob wins ties).
pub fn classify(factual_cycles: u64, saved: &[u64]) -> (Bound, Option<IdealKnob>) {
    assert_eq!(saved.len(), IdealKnob::ALL.len());
    let mut best = 0usize;
    for (i, &s) in saved.iter().enumerate() {
        if s > saved[best] {
            best = i;
        }
    }
    let frac = if factual_cycles == 0 { 0.0 } else { saved[best] as f64 / factual_cycles as f64 };
    if frac < COMPUTE_BOUND_THRESHOLD {
        (Bound::Compute, None)
    } else {
        let knob = IdealKnob::ALL[best];
        (Bound::of_knob(knob), Some(knob))
    }
}

/// Energy view of one knob's counterfactual run.
///
/// Idealization knobs are timing-only — functional state and every event
/// counter are bit-identical to the factual run — so a counterfactual's
/// *dynamic* energy equals the factual one and the entire saving is static
/// energy over the recovered cycles. The interesting quantity is therefore
/// EDP: a knob that halves cycles nearly halves EDP even though it barely
/// moves joules.
#[derive(Debug, Clone, Copy)]
pub struct KnobEnergy {
    pub knob: IdealKnob,
    /// Total energy of the counterfactual run (J).
    pub energy_j: f64,
    /// `factual - counterfactual` joules: the energy recovered if this
    /// bottleneck vanished (all static, see above).
    pub energy_saved_j: f64,
    /// EDP of the counterfactual run (J·s).
    pub edp_js: f64,
    /// Fraction of the factual EDP this knob recovers.
    pub edp_saved_frac: f64,
}

/// The energy counterfactuals of one run plus the EDP-based bound
/// re-classification (same dominant-recovery rule and
/// [`COMPUTE_BOUND_THRESHOLD`] as the cycles classification, applied to
/// EDP savings instead of cycle savings).
#[derive(Debug, Clone)]
pub struct EnergyWhatif {
    /// Total energy of the factual run (J).
    pub factual_j: f64,
    /// EDP of the factual run (J·s).
    pub factual_edp_js: f64,
    /// One entry per knob, [`IdealKnob::ALL`] order.
    pub knobs: Vec<KnobEnergy>,
    /// What the run is bound by when the figure of merit is EDP.
    pub bound: Bound,
    pub dominant: Option<IdealKnob>,
}

impl EnergyWhatif {
    fn from_runs(e: &Experiment, factual: &RunSummary, cf: &[(IdealKnob, RunSummary)]) -> Self {
        let model = EnergyModel::default();
        let l2 = e.hw.l2_bytes();
        let f = model.estimate(&factual.report, l2);
        let (factual_j, factual_edp) = (f.total_j(), f.edp());
        let knobs: Vec<KnobEnergy> = cf
            .iter()
            .map(|(knob, s)| {
                let r = model.estimate(&s.report, l2);
                KnobEnergy {
                    knob: *knob,
                    energy_j: r.total_j(),
                    energy_saved_j: (factual_j - r.total_j()).max(0.0),
                    edp_js: r.edp(),
                    edp_saved_frac: if factual_edp > 0.0 {
                        ((factual_edp - r.edp()) / factual_edp).max(0.0)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let mut best = 0usize;
        for (i, k) in knobs.iter().enumerate() {
            if k.edp_saved_frac > knobs[best].edp_saved_frac {
                best = i;
            }
        }
        let (bound, dominant) =
            if knobs.is_empty() || knobs[best].edp_saved_frac < COMPUTE_BOUND_THRESHOLD {
                (Bound::Compute, None)
            } else {
                (Bound::of_knob(knobs[best].knob), Some(knobs[best].knob))
            };
        EnergyWhatif { factual_j, factual_edp_js: factual_edp, knobs, bound, dominant }
    }

    /// The `energy` subsection of the whatif report.
    pub fn to_json(&self) -> Json {
        let mut knobs = Json::obj();
        for k in &self.knobs {
            knobs = knobs.field(
                k.knob.name(),
                Json::obj()
                    .field("energy_j", k.energy_j)
                    .field("energy_saved_if_fixed_j", k.energy_saved_j)
                    .field("edp_js", k.edp_js)
                    .field("edp_saved_frac", k.edp_saved_frac),
            );
        }
        let mut j = Json::obj()
            .field("factual_j", self.factual_j)
            .field("factual_edp_js", self.factual_edp_js)
            .field("edp_bound", self.bound.name());
        if let Some(k) = self.dominant {
            j = j.field("edp_dominant_knob", k.name());
        }
        j.field("knobs", knobs)
    }
}

/// One layer's counterfactual verdict.
#[derive(Debug, Clone)]
pub struct LayerWhatif {
    pub index: usize,
    pub desc: String,
    pub factual_cycles: u64,
    /// Cycles saved per knob, [`IdealKnob::ALL`] order.
    pub saved: Vec<u64>,
    pub bound: Bound,
    pub dominant: Option<IdealKnob>,
}

/// The full counterfactual analysis of one experiment.
#[derive(Debug, Clone)]
pub struct WhatifAnalysis {
    pub factual_cycles: u64,
    /// One outcome per knob, [`IdealKnob::ALL`] order.
    pub outcomes: Vec<KnobOutcome>,
    pub layers: Vec<LayerWhatif>,
    pub bound: Bound,
    pub dominant: Option<IdealKnob>,
    /// Cross-checks for every directly-mapped knob.
    pub agreement: Vec<CauseAgreement>,
    /// Energy counterfactuals and the EDP-based re-classification.
    pub energy: EnergyWhatif,
}

impl WhatifAnalysis {
    fn from_runs(
        e: &Experiment,
        factual: &RunSummary,
        cf: &[(IdealKnob, RunSummary)],
    ) -> WhatifAnalysis {
        let factual_cycles = factual.cycles;
        let outcomes: Vec<KnobOutcome> = cf
            .iter()
            .map(|(knob, s)| KnobOutcome {
                knob: *knob,
                cycles: s.cycles,
                saved: factual_cycles.saturating_sub(s.cycles),
                per_layer_saved: factual
                    .report
                    .layers
                    .iter()
                    .zip(&s.report.layers)
                    .map(|(f, c)| f.cycles.saturating_sub(c.cycles))
                    .collect(),
            })
            .collect();
        let layers = factual
            .report
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let saved: Vec<u64> = outcomes
                    .iter()
                    .map(|o| o.per_layer_saved.get(i).copied().unwrap_or(0))
                    .collect();
                let (bound, dominant) = classify(l.cycles, &saved);
                LayerWhatif {
                    index: l.index,
                    desc: l.desc.clone(),
                    factual_cycles: l.cycles,
                    saved,
                    bound,
                    dominant,
                }
            })
            .collect();
        let saved: Vec<u64> = outcomes.iter().map(|o| o.saved).collect();
        let (bound, dominant) = classify(factual_cycles, &saved);
        let agreement = cross_check(&outcomes, &factual.report.stalls, factual_cycles);
        let energy = EnergyWhatif::from_runs(e, factual, cf);
        WhatifAnalysis { factual_cycles, outcomes, layers, bound, dominant, agreement, energy }
    }

    /// The advisor's one-line verdict for the whole run.
    pub fn recommendation(&self) -> &'static str {
        recommendation(self.bound, self.dominant)
    }

    /// Knobs ranked by cycles saved (descending, stable in ALL order).
    pub fn ranked(&self) -> Vec<&KnobOutcome> {
        let mut v: Vec<&KnobOutcome> = self.outcomes.iter().collect();
        v.sort_by_key(|o| std::cmp::Reverse(o.saved));
        v
    }

    /// The `whatif` report section (what [`lva_core::RunReport::with_whatif`]
    /// embeds).
    pub fn to_json(&self) -> Json {
        let mut knobs = Json::obj();
        for o in &self.outcomes {
            knobs = knobs.field(
                o.knob.name(),
                Json::obj()
                    .field("cycles", o.cycles)
                    .field("saved", o.saved)
                    .field("saved_frac", o.saved_frac(self.factual_cycles)),
            );
        }
        let agreement = Json::Arr(
            self.agreement
                .iter()
                .map(|a| {
                    Json::obj()
                        .field("knob", a.knob.name())
                        .field("cause", a.cause.name())
                        .field("causal_saved", a.causal_saved)
                        .field("attributed", a.attributed)
                        .field("ratio", a.ratio)
                        .field("norm_gap", a.norm_gap)
                })
                .collect(),
        );
        let layers = Json::Arr(
            self.layers
                .iter()
                .map(|l| {
                    let mut saved = Json::obj();
                    for (knob, s) in IdealKnob::ALL.iter().zip(&l.saved) {
                        saved = saved.field(knob.name(), *s);
                    }
                    let mut j = Json::obj()
                        .field("index", l.index as u64)
                        .field("desc", l.desc.as_str())
                        .field("cycles", l.factual_cycles)
                        .field("bound", l.bound.name());
                    if let Some(k) = l.dominant {
                        j = j.field("dominant_knob", k.name());
                    }
                    j.field("saved", saved)
                })
                .collect(),
        );
        let mut j = Json::obj()
            .field("factual_cycles", self.factual_cycles)
            .field("compute_bound_threshold", COMPUTE_BOUND_THRESHOLD)
            .field("bound", self.bound.name());
        if let Some(k) = self.dominant {
            j = j.field("dominant_knob", k.name());
        }
        j.field("recommendation", self.recommendation())
            .field("knobs", knobs)
            .field("agreement", agreement)
            .field("energy", self.energy.to_json())
            .field("layers", layers)
    }
}

fn cross_check(
    outcomes: &[KnobOutcome],
    stalls: &StallBreakdown,
    factual_cycles: u64,
) -> Vec<CauseAgreement> {
    outcomes
        .iter()
        .filter_map(|o| {
            o.knob.cause().map(|c| agreement(o.knob, c, o.saved, stalls.get(c), factual_cycles))
        })
        .collect()
}

/// Run the factual experiment plus one counterfactual per knob (six
/// simulations, fanned over `jobs` threads) and analyze.
pub fn analyze_experiment(e: &Experiment, jobs: usize) -> (RunSummary, WhatifAnalysis) {
    let specs: Vec<Option<IdealKnob>> =
        std::iter::once(None).chain(IdealKnob::ALL.into_iter().map(Some)).collect();
    let mut runs = parallel_map(&specs, jobs, |_, knob| {
        let spec = knob.map_or(IdealSpec::NONE, IdealKnob::spec);
        e.clone().with_ideal(spec).run()
    });
    let factual = runs.remove(0);
    let cf: Vec<(IdealKnob, RunSummary)> = IdealKnob::ALL.into_iter().zip(runs).collect();
    let analysis = WhatifAnalysis::from_runs(e, &factual, &cf);
    (factual, analysis)
}

/// [`analyze_experiment`] through a caller-supplied serial runner — the
/// `--retime` path hands `lva-retime`'s engine here so each idealized
/// variant re-times the shared recording instead of re-simulating.
/// Bit-identical to the parallel path (the engine guarantees equality
/// per run; everything downstream is pure).
pub fn analyze_experiment_with(
    e: &Experiment,
    run: &mut dyn FnMut(&Experiment) -> RunSummary,
) -> (RunSummary, WhatifAnalysis) {
    let factual = run(e);
    let cf: Vec<(IdealKnob, RunSummary)> = IdealKnob::ALL
        .into_iter()
        .map(|knob| (knob, run(&e.clone().with_ideal(knob.spec()))))
        .collect();
    let analysis = WhatifAnalysis::from_runs(e, &factual, &cf);
    (factual, analysis)
}

/// Like [`analyze_experiment`] but reusing an already-measured factual run
/// (five counterfactual simulations instead of six) — the
/// `exp-headline --with-whatif` path.
pub fn analyze_counterfactuals(
    e: &Experiment,
    factual: &RunSummary,
    jobs: usize,
) -> WhatifAnalysis {
    let knobs: Vec<IdealKnob> = IdealKnob::ALL.to_vec();
    let runs = parallel_map(&knobs, jobs, |_, knob| e.clone().with_ideal(knob.spec()).run());
    let cf: Vec<(IdealKnob, RunSummary)> = knobs.into_iter().zip(runs).collect();
    WhatifAnalysis::from_runs(e, factual, &cf)
}

/// [`analyze_counterfactuals`] through a caller-supplied serial runner
/// (see [`analyze_experiment_with`]).
pub fn analyze_counterfactuals_with(
    e: &Experiment,
    factual: &RunSummary,
    run: &mut dyn FnMut(&Experiment) -> RunSummary,
) -> WhatifAnalysis {
    let cf: Vec<(IdealKnob, RunSummary)> = IdealKnob::ALL
        .into_iter()
        .map(|knob| (knob, run(&e.clone().with_ideal(knob.spec()))))
        .collect();
    WhatifAnalysis::from_runs(e, factual, &cf)
}

/// Counterfactual verdict for one `lva-check` registry kernel at one design
/// point (no layer structure — the kernel is the unit).
#[derive(Debug, Clone)]
pub struct KernelWhatif {
    pub kernel: &'static str,
    pub factual_cycles: u64,
    /// Cycles saved per knob, [`IdealKnob::ALL`] order.
    pub saved: Vec<u64>,
    pub bound: Bound,
    pub dominant: Option<IdealKnob>,
    pub agreement: Vec<CauseAgreement>,
}

/// Drive one registry kernel factually and under every knob. Panics if the
/// kernel does not support the config's ISA (callers filter with
/// [`KernelCase::supports`]).
pub fn analyze_kernel(case: &KernelCase, cfg: &MachineConfig) -> KernelWhatif {
    assert!(case.supports(cfg.vpu.isa), "{} does not support this ISA", case.name);
    let measure = |spec: IdealSpec| {
        let mut cfg = cfg.clone();
        cfg.ideal = spec;
        let mut m = Machine::new(cfg);
        (case.run)(&mut m);
        (m.cycles(), m.stalls)
    };
    let (factual_cycles, stalls) = measure(IdealSpec::NONE);
    let mut saved = Vec::with_capacity(IdealKnob::ALL.len());
    for knob in IdealKnob::ALL {
        let (cycles, _) = measure(knob.spec());
        saved.push(factual_cycles.saturating_sub(cycles));
    }
    let (bound, dominant) = classify(factual_cycles, &saved);
    let agreement = IdealKnob::ALL
        .iter()
        .zip(&saved)
        .filter_map(|(knob, &s)| {
            knob.cause().map(|c| agreement(*knob, c, s, stalls.get(c), factual_cycles))
        })
        .collect();
    KernelWhatif { kernel: case.name, factual_cycles, saved, bound, dominant, agreement }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_picks_dominant_knob_with_threshold() {
        // 1000-cycle run; only perfect_l1 saves enough to matter.
        let (b, k) = classify(1000, &[400, 10, 0, 30, 0]);
        assert_eq!(b, Bound::Memory);
        assert_eq!(k, Some(IdealKnob::PerfectL1));
        // Nothing reaches 5%: compute-bound.
        let (b, k) = classify(1000, &[49, 10, 0, 30, 0]);
        assert_eq!(b, Bound::Compute);
        assert_eq!(k, None);
        // Ties resolve to the first knob in ALL order.
        let (_, k) = classify(1000, &[100, 100, 100, 100, 100]);
        assert_eq!(k, Some(IdealKnob::PerfectL1));
        // A zero-cycle region is trivially compute-bound.
        assert_eq!(classify(0, &[0, 0, 0, 0, 0]).0, Bound::Compute);
    }

    #[test]
    fn knob_cause_mapping_is_direct_except_perfect_l2() {
        assert_eq!(IdealKnob::PerfectL1.cause(), Some(StallCause::MemLatency));
        assert_eq!(IdealKnob::PerfectL2.cause(), None);
        assert_eq!(IdealKnob::ZeroVectorStartup.cause(), Some(StallCause::VectorStartup));
        assert_eq!(IdealKnob::InfiniteLanes.cause(), Some(StallCause::LaneOccupancy));
        assert_eq!(IdealKnob::InfiniteIssue.cause(), Some(StallCause::IssueWidth));
        // RawHazard has no knob: dependency chains are algorithmic, not a
        // hardware resource the co-design space can buy out.
        let mapped: Vec<StallCause> = IdealKnob::ALL.iter().filter_map(|k| k.cause()).collect();
        assert!(!mapped.contains(&StallCause::RawHazard));
    }

    #[test]
    fn agreement_ratio_edge_cases() {
        let a = agreement(IdealKnob::PerfectL1, StallCause::MemLatency, 0, 0, 100);
        assert_eq!(a.ratio, 1.0);
        assert_eq!(a.norm_gap, 0.0);
        let a = agreement(IdealKnob::PerfectL1, StallCause::MemLatency, 5, 0, 100);
        assert!(a.ratio.is_infinite());
        assert_eq!(a.norm_gap, 0.05);
        let a = agreement(IdealKnob::PerfectL1, StallCause::MemLatency, 50, 100, 1000);
        assert_eq!(a.ratio, 0.5);
        assert_eq!(a.norm_gap, 0.05);
    }

    #[test]
    fn energy_counterfactuals_are_static_only_and_edp_classified() {
        use lva_core::{ConvPolicy, GemmVariant, HwTarget, ModelId, Workload};
        let e = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 8, l2_bytes: 1 << 20 },
            ConvPolicy::gemm_only(GemmVariant::opt3()),
            Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(3) },
        );
        let (factual, a) = analyze_experiment(&e, 2);
        let en = &a.energy;
        assert_eq!(en.knobs.len(), IdealKnob::ALL.len());
        assert!(en.factual_j > 0.0 && en.factual_edp_js > 0.0);
        let model = EnergyModel::default();
        let static_mw = model.static_mw(e.hw.l2_bytes());
        for (o, k) in a.outcomes.iter().zip(&en.knobs) {
            assert_eq!(o.knob, k.knob);
            // Knobs are timing-only: every event counter is identical, so
            // the whole saving is static power over the recovered cycles.
            let want = static_mw * 1e-3 * model.seconds(o.saved);
            assert!(
                (k.energy_saved_j - want).abs() <= 1e-9 * en.factual_j.max(1e-12),
                "{:?}: saved {} J != static-only {} J",
                o.knob,
                k.energy_saved_j,
                want
            );
            // EDP savings are at least as large a fraction as cycle savings
            // (both energy and delay shrink together).
            assert!(k.edp_saved_frac >= o.saved_frac(factual.cycles) - 1e-12);
            assert!(k.edp_saved_frac <= 1.0);
        }
        // The JSON subsection rides inside the whatif section.
        let j = a.to_json();
        let sec = j.get("energy").expect("energy subsection");
        assert_eq!(sec.get("edp_bound").and_then(Json::as_str), Some(en.bound.name()));
        assert!(sec
            .get("knobs")
            .and_then(|k| k.get("perfect_l1"))
            .and_then(|k| k.get("energy_saved_if_fixed_j"))
            .is_some());
    }

    #[test]
    fn kernel_analysis_is_deterministic_and_classified() {
        let cases = lva_check::registered_kernels();
        let case = cases.iter().find(|c| c.name == "gemm_opt3").expect("registered");
        let cfg = MachineConfig::rvv_gem5(4096, 8, 1 << 20);
        let a = analyze_kernel(case, &cfg);
        let b = analyze_kernel(case, &cfg);
        assert_eq!(a.factual_cycles, b.factual_cycles);
        assert_eq!(a.saved, b.saved);
        assert_eq!(a.bound, b.bound);
        assert!(a.factual_cycles > 0);
        assert_eq!(a.saved.len(), IdealKnob::ALL.len());
        assert_eq!(a.agreement.len(), 4, "four directly-mapped knobs");
    }
}
