//! # lva-kernels — the convolutional-layer kernels of the co-design study
//!
//! This crate implements every kernel the paper's §IV optimizes, in two
//! forms:
//!
//! * **Scalar host references** ([`mod@reference`]) — plain Rust, no simulator;
//!   the ground truth for correctness tests.
//! * **Simulated kernels** — written against the [`lva_isa::Machine`]
//!   intrinsics API, producing identical numerics (modulo float
//!   reassociation) *and* cycle/cache statistics:
//!   - [`gemm::gemm_naive`] — Darknet's naive triple loop (Fig. 1), the
//!     `-fno-vectorize` baseline;
//!   - [`gemm::gemm_opt3`] — the optimized 3-loop implementation (Fig. 2):
//!     VLA j-loop, loop reorder, unrolled independent accumulators;
//!   - [`gemm::gemm_opt6`] — the BLIS-like 6-loop implementation (Fig. 3):
//!     blocking, packing of A and B, software prefetch, same micro-kernel;
//!   - [`im2col`] — scalar and vectorized image-to-column lowering;
//!   - [`aux`] — `fill_cpu`, `copy_cpu`, `add_bias`, `scale_bias`,
//!     `normalize_cpu`, `activate_array` (linear / ReLU / leaky);
//!   - [`direct`] — the im2col-free direct algorithm (§II-C: best for 1x1);
//!   - [`pool`] — maxpool and nearest-neighbour upsample;
//!   - [`fc`] — fully-connected layer and softmax.
//!
//! The convolution driver [`conv::conv_im2col_gemm`] strings these together
//! exactly like Darknet's `forward_convolutional_layer`.

#![forbid(unsafe_code)]
// Kernel entry points mirror BLAS/im2col calling conventions (machine,
// shape tuple, buffers, strides); bundling them into structs would only
// add indirection at every call site.
#![allow(clippy::too_many_arguments)]

pub mod aux;
pub mod conv;
pub mod depthwise;
pub mod direct;
pub mod fc;
pub mod gemm;
pub mod im2col;
pub mod pool;
pub mod reference;

pub use conv::{conv_im2col_gemm, conv_output_shape, ConvParams};
pub use depthwise::conv_depthwise_vec;
pub use direct::conv_direct_vec;
pub use gemm::{BlockSizes, GemmVariant, DEFAULT_UNROLL};
