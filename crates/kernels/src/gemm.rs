//! GEMM kernels: Darknet's naive triple loop (Fig. 1), the optimized 3-loop
//! implementation (Fig. 2), and the BLIS-like 6-loop implementation (Fig. 3).
//!
//! All variants compute `C += alpha * A * B` with row-major `A: MxK`,
//! `B: KxN`, `C: MxN`, exactly like Darknet's `gemm_nn` (inference uses
//! `alpha = 1`, and like the paper's kernels we skip the multiplication in
//! that case).
//!
//! ## Register allocation of the vectorized micro-kernel
//!
//! `v0` holds the streamed B row, `v1` is a spill temporary, and `v2..v31`
//! are C-row accumulators, so up to 30 rows can be unrolled before spilling.
//! The paper tunes the unroll factor to 16 on RISC-V Vector (32 would spill
//! and cost ~15%, §VI-A); requesting more than 30 here makes the surplus
//! rows operate directly on memory through `v1`, reproducing the spill
//! penalty.

use lva_isa::{KernelPhase, Machine, PrefetchTarget, VReg};
use lva_sim::{AccessKind, Buf};

/// Unroll factor the paper settled on for both optimized implementations.
pub const DEFAULT_UNROLL: usize = 16;

/// Vector register holding the streamed B row.
const VB: VReg = 0;
/// Spill temporary.
const VTMP: VReg = 1;
/// First accumulator register.
const VACC0: VReg = 2;
/// Accumulator registers available before spilling.
const AVAIL_ACC: usize = 30;

/// Blocking factors of the 6-loop implementation (`blockM x blockN x blockK`
/// in the paper's Table II notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl BlockSizes {
    /// The block size Table II found optimal on RISC-V Vector.
    pub const TABLE2_BEST: BlockSizes = BlockSizes { m: 16, n: 512, k: 128 };

    /// All block sizes swept in Table II, in the paper's row order.
    pub const TABLE2_SWEEP: [BlockSizes; 6] = [
        BlockSizes { m: 128, n: 1024, k: 256 },
        BlockSizes { m: 16, n: 1024, k: 128 },
        BlockSizes { m: 16, n: 512, k: 128 },
        BlockSizes { m: 16, n: 512, k: 256 },
        BlockSizes { m: 32, n: 512, k: 128 },
        BlockSizes { m: 64, n: 1024, k: 128 },
    ];

    /// Words needed for the packed-A and packed-B workspace.
    pub fn workspace_words(&self) -> usize {
        self.m * self.k + self.k * self.n
    }
}

/// Which GEMM implementation a convolution layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Fig. 1: scalar `-fno-vectorize` baseline.
    Naive,
    /// Fig. 2: vectorized, reordered, unrolled 3-loop implementation.
    Opt3 { unroll: usize },
    /// Fig. 3: BLIS-like blocked/packed/prefetched 6-loop implementation.
    Opt6 { unroll: usize, blocks: BlockSizes },
}

impl GemmVariant {
    /// The paper's default optimized 3-loop configuration.
    pub fn opt3() -> Self {
        GemmVariant::Opt3 { unroll: DEFAULT_UNROLL }
    }

    /// The paper's default optimized 6-loop configuration.
    pub fn opt6() -> Self {
        GemmVariant::Opt6 { unroll: DEFAULT_UNROLL, blocks: BlockSizes::TABLE2_BEST }
    }

    pub fn name(&self) -> &'static str {
        match self {
            GemmVariant::Naive => "naive",
            GemmVariant::Opt3 { .. } => "opt3",
            GemmVariant::Opt6 { .. } => "opt6",
        }
    }
}

/// Reusable packing workspace for [`gemm_opt6`] (Darknet-style: allocated
/// once per network, reused across layers).
#[derive(Debug, Clone, Copy)]
pub struct GemmWorkspace {
    pub a_pack: Buf,
    pub b_pack: Buf,
    blocks: BlockSizes,
}

impl GemmWorkspace {
    pub fn alloc(m: &mut Machine, blocks: BlockSizes) -> Self {
        GemmWorkspace {
            a_pack: m.mem.alloc(blocks.m * blocks.k),
            b_pack: m.mem.alloc(blocks.k * blocks.n),
            blocks,
        }
    }
}

/// Dispatch a GEMM by variant. For `Opt6`, `ws` must have been allocated
/// with the same block sizes.
pub fn gemm(
    m: &mut Machine,
    variant: GemmVariant,
    mm: usize,
    nn: usize,
    kk: usize,
    alpha: f32,
    a: Buf,
    b: Buf,
    c: Buf,
    ws: Option<&GemmWorkspace>,
) {
    match variant {
        GemmVariant::Naive => gemm_naive(m, mm, nn, kk, alpha, a, b, c),
        GemmVariant::Opt3 { unroll } => gemm_opt3(m, mm, nn, kk, alpha, a, b, c, unroll),
        GemmVariant::Opt6 { unroll, blocks } => {
            let ws = ws.expect("gemm_opt6 needs a workspace");
            assert_eq!(ws.blocks, blocks, "workspace allocated for different block sizes");
            gemm_opt6(m, mm, nn, kk, alpha, a, b, c, unroll, blocks, ws);
        }
    }
}

/// Fig. 1 — Darknet's naive GEMM compiled without vectorization. Functional
/// compute runs on host slices; timing is charged in bulk: one scalar
/// operation per multiply-add plus per-line cache traffic for the B and C
/// row streams.
pub fn gemm_naive(
    m: &mut Machine,
    mm: usize,
    nn: usize,
    kk: usize,
    alpha: f32,
    a: Buf,
    b: Buf,
    c: Buf,
) {
    m.phase(KernelPhase::Gemm, |m| {
        for i in 0..mm {
            for k in 0..kk {
                let a_part = alpha * m.scalar_read(a.addr(i * kk + k));
                let brow = b.slice(k * nn, nn);
                let crow = c.slice(i * nn, nn);
                // Functional.
                {
                    let (cs, bs) = m.mem.slice_mut2(crow, brow);
                    for j in 0..nn {
                        cs[j] += a_part * bs[j];
                    }
                }
                // Timing: stream B (read), C (read-modify-write), plus the
                // multiply-add and loop bookkeeping per element.
                m.scalar_stream(brow.base, nn, AccessKind::Read);
                m.scalar_stream(crow.base, nn, AccessKind::Write);
                m.charge_scalar_flops(2 * nn as u64);
                m.charge_scalar_ops(nn as u64); // index + branch overhead
            }
        }
    });
}

/// Fig. 2 — the optimized 3-loop implementation: the j loop advances by the
/// granted vector length, the i loop is unrolled over independent C-row
/// accumulators (reordered so each loaded B vector is reused `unroll`
/// times), and the inner body is a broadcast-free `vfmacc.vf`.
pub fn gemm_opt3(
    m: &mut Machine,
    mm: usize,
    nn: usize,
    kk: usize,
    alpha: f32,
    a: Buf,
    b: Buf,
    c: Buf,
    unroll: usize,
) {
    assert!(unroll >= 1, "unroll factor must be at least 1");
    m.phase(KernelPhase::Gemm, |m| {
        let mut j = 0;
        while j < nn {
            let gvl = m.setvl(nn - j);
            let mut i = 0;
            while i < mm {
                let u = unroll.min(mm - i);
                let in_regs = u.min(AVAIL_ACC);
                // Load C rows into the accumulators (Fig. 2 line 6).
                for r in 0..in_regs {
                    m.vle(VACC0 + r, c.addr((i + r) * nn + j), gvl);
                }
                for k in 0..kk {
                    m.charge_scalar_ops(1); // k-loop bookkeeping
                    m.vle(VB, b.addr(k * nn + j), gvl);
                    for r in 0..u {
                        let mut a_val = m.scalar_read(a.addr((i + r) * kk + k));
                        if alpha != 1.0 {
                            // "if ALPHA=1 then skip multiplication" (Fig. 2).
                            a_val *= alpha;
                            m.charge_scalar_flops(1);
                        }
                        if r < AVAIL_ACC {
                            m.vfmacc_vf(VACC0 + r, a_val, VB, gvl);
                        } else {
                            // Register spill: the surplus row lives in memory.
                            m.note_spill();
                            m.vle(VTMP, c.addr((i + r) * nn + j), gvl);
                            m.vfmacc_vf(VTMP, a_val, VB, gvl);
                            m.vse(VTMP, c.addr((i + r) * nn + j), gvl);
                        }
                    }
                }
                // Store C rows (Fig. 2 line 13).
                for r in 0..in_regs {
                    m.vse(VACC0 + r, c.addr((i + r) * nn + j), gvl);
                }
                i += u;
            }
            j += gvl;
        }
    });
}

/// Fig. 3 — the BLIS-like 6-loop implementation: `blockN/blockK/blockM`
/// tiling, vectorized packing of the A and B blocks (contiguous inner-loop
/// streams), software prefetch of C into L1, of the packed blocks into L2,
/// and of the upcoming packed rows into L1, with the Fig. 2 micro-kernel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_opt6(
    m: &mut Machine,
    mm: usize,
    nn: usize,
    kk: usize,
    alpha: f32,
    a: Buf,
    b: Buf,
    c: Buf,
    unroll: usize,
    blocks: BlockSizes,
    ws: &GemmWorkspace,
) {
    assert!(unroll >= 1);
    let line = m.sys.line_bytes() as u64;
    // Prefetch distance in k iterations.
    const PF_DIST: usize = 4;
    let mut j1 = 0;
    while j1 < nn {
        let nb = blocks.n.min(nn - j1);
        let mut k1 = 0;
        while k1 < kk {
            let kb = blocks.k.min(kk - k1);
            // Pack B block: rows k1..k1+kb, cols j1..j1+nb (Fig. 3 line 5).
            m.phase(KernelPhase::Pack, |m| {
                for kr in 0..kb {
                    copy_row_vec(m, b, (k1 + kr) * nn + j1, ws.b_pack, kr * nb, nb);
                }
            });
            let mut i1 = 0;
            while i1 < mm {
                let mb = blocks.m.min(mm - i1);
                // Pack A block: rows i1..i1+mb, cols k1..k1+kb (line 7).
                m.phase(KernelPhase::Pack, |m| {
                    for ir in 0..mb {
                        copy_row_vec(m, a, (i1 + ir) * kk + k1, ws.a_pack, ir * kb, kb);
                    }
                });
                // Inner kernel on the packed block.
                m.phase(KernelPhase::Gemm, |m| {
                    let mut j = 0;
                    while j < nb {
                        let gvl = m.setvl(nb - j);
                        let mut i = 0;
                        while i < mb {
                            let u = unroll.min(mb - i);
                            let in_regs = u.min(AVAIL_ACC);
                            // Prefetch the C block into L1 (line 11) and the
                            // packed blocks into L2 (lines 12-13).
                            for r in 0..u {
                                let row = c.addr((i1 + i + r) * nn + j1 + j);
                                let mut p = row;
                                while p < row + 4 * gvl as u64 {
                                    m.prefetch(p, PrefetchTarget::L1);
                                    p += line;
                                }
                            }
                            m.prefetch(ws.a_pack.addr(i * kb), PrefetchTarget::L2);
                            m.prefetch(ws.b_pack.addr(j), PrefetchTarget::L2);
                            // Load C (line 14).
                            for r in 0..in_regs {
                                m.vle(VACC0 + r, c.addr((i1 + i + r) * nn + j1 + j), gvl);
                            }
                            for k in 0..kb {
                                m.charge_scalar_ops(1);
                                // Prefetch upcoming packed rows into L1
                                // (lines 16-17).
                                if k + PF_DIST < kb {
                                    m.prefetch(
                                        ws.b_pack.addr((k + PF_DIST) * nb + j),
                                        PrefetchTarget::L1,
                                    );
                                    m.prefetch(
                                        ws.a_pack.addr(i * kb + k + PF_DIST),
                                        PrefetchTarget::L1,
                                    );
                                }
                                m.vle(VB, ws.b_pack.addr(k * nb + j), gvl);
                                for r in 0..u {
                                    let mut a_val = m.scalar_read(ws.a_pack.addr((i + r) * kb + k));
                                    if alpha != 1.0 {
                                        a_val *= alpha;
                                        m.charge_scalar_flops(1);
                                    }
                                    if r < AVAIL_ACC {
                                        m.vfmacc_vf(VACC0 + r, a_val, VB, gvl);
                                    } else {
                                        m.note_spill();
                                        m.vle(VTMP, c.addr((i1 + i + r) * nn + j1 + j), gvl);
                                        m.vfmacc_vf(VTMP, a_val, VB, gvl);
                                        m.vse(VTMP, c.addr((i1 + i + r) * nn + j1 + j), gvl);
                                    }
                                }
                            }
                            // Store C (line 23).
                            for r in 0..in_regs {
                                m.vse(VACC0 + r, c.addr((i1 + i + r) * nn + j1 + j), gvl);
                            }
                            i += u;
                        }
                        j += gvl;
                    }
                });
                i1 += mb;
            }
            k1 += kb;
        }
        j1 += nb;
    }
}

/// Vectorized row copy used by the packing steps (`vle` + `vse` per chunk).
fn copy_row_vec(m: &mut Machine, src: Buf, src_off: usize, dst: Buf, dst_off: usize, n: usize) {
    let mut x = 0;
    while x < n {
        let gvl = m.setvl(n - x);
        m.vle(VTMP, src.addr(src_off + x), gvl);
        m.vse(VTMP, dst.addr(dst_off + x), gvl);
        x += gvl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use lva_isa::MachineConfig;
    use lva_tensor::{approx_eq, host_random, Matrix};

    fn machine(vlen: usize) -> Machine {
        Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20))
    }

    /// Run a variant and compare against the host reference.
    fn check_variant(
        variant: GemmVariant,
        mm: usize,
        nn: usize,
        kk: usize,
        alpha: f32,
        vlen: usize,
    ) {
        let mut m = machine(vlen);
        let a = Matrix::random(&mut m, mm, kk, 1);
        let b = Matrix::random(&mut m, kk, nn, 2);
        let c0 = host_random(mm * nn, 3);
        let c = Matrix::from_host(&mut m, mm, nn, &c0);
        let ws = match variant {
            GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut m, blocks)),
            _ => None,
        };
        gemm(&mut m, variant, mm, nn, kk, alpha, a.buf, b.buf, c.buf, ws.as_ref());
        let mut want = c0;
        gemm_ref(mm, nn, kk, alpha, &a.to_host(&m), &b.to_host(&m), &mut want);
        assert!(
            approx_eq(&c.to_host(&m), &want, 1e-4, 1e-5),
            "{} mismatch at M={mm} N={nn} K={kk}",
            variant.name()
        );
    }

    #[test]
    fn naive_matches_reference() {
        check_variant(GemmVariant::Naive, 5, 33, 7, 1.0, 512);
        check_variant(GemmVariant::Naive, 1, 1, 1, 2.0, 512);
    }

    #[test]
    fn opt3_matches_reference_various_shapes() {
        for &(mm, nn, kk) in &[(4, 16, 8), (17, 100, 27), (1, 5, 3), (32, 64, 16)] {
            check_variant(GemmVariant::opt3(), mm, nn, kk, 1.0, 512);
        }
    }

    #[test]
    fn opt3_alpha_not_one() {
        check_variant(GemmVariant::Opt3 { unroll: 4 }, 9, 31, 11, 0.5, 512);
    }

    #[test]
    fn opt3_long_vectors() {
        check_variant(GemmVariant::opt3(), 8, 300, 12, 1.0, 4096);
    }

    #[test]
    fn opt3_spilling_unroll_is_correct_and_slower() {
        let run = |unroll: usize| {
            let mut m = machine(1024);
            let (mm, nn, kk) = (32, 128, 32);
            let a = Matrix::random(&mut m, mm, kk, 1);
            let b = Matrix::random(&mut m, kk, nn, 2);
            let c = Matrix::alloc(&mut m, mm, nn);
            gemm_opt3(&mut m, mm, nn, kk, 1.0, a.buf, b.buf, c.buf, unroll);
            let mut want = vec![0.0; mm * nn];
            gemm_ref(mm, nn, kk, 1.0, &a.to_host(&m), &b.to_host(&m), &mut want);
            assert!(approx_eq(&c.to_host(&m), &want, 1e-4, 1e-5));
            (m.cycles(), m.stats.spills)
        };
        let (t16, s16) = run(16);
        let (t32, s32) = run(32);
        assert_eq!(s16, 0);
        assert!(s32 > 0, "unroll 32 must spill");
        assert!(t32 > t16, "spilling should cost cycles: {t32} vs {t16}");
    }

    #[test]
    fn opt6_matches_reference_with_ragged_blocks() {
        let blocks = BlockSizes { m: 8, n: 48, k: 16 };
        check_variant(GemmVariant::Opt6 { unroll: 4, blocks }, 19, 101, 37, 1.0, 512);
    }

    #[test]
    fn opt6_table2_best_matches_reference() {
        check_variant(GemmVariant::opt6(), 33, 600, 130, 1.0, 2048);
    }

    #[test]
    fn opt3_beats_naive_by_a_wide_margin() {
        let (mm, nn, kk) = (16, 256, 64);
        let run = |variant: GemmVariant| {
            let mut m = machine(2048);
            let a = Matrix::random(&mut m, mm, kk, 1);
            let b = Matrix::random(&mut m, kk, nn, 2);
            let c = Matrix::alloc(&mut m, mm, nn);
            gemm(&mut m, variant, mm, nn, kk, 1.0, a.buf, b.buf, c.buf, None);
            m.cycles()
        };
        let naive = run(GemmVariant::Naive);
        let opt3 = run(GemmVariant::opt3());
        assert!(naive > 5 * opt3, "vectorization should win big: naive={naive} opt3={opt3}");
    }

    #[test]
    fn unrolling_helps_opt3() {
        let run = |unroll: usize| {
            let mut m = machine(2048);
            let (mm, nn, kk) = (32, 256, 64);
            let a = Matrix::random(&mut m, mm, kk, 1);
            let b = Matrix::random(&mut m, kk, nn, 2);
            let c = Matrix::alloc(&mut m, mm, nn);
            gemm_opt3(&mut m, mm, nn, kk, 1.0, a.buf, b.buf, c.buf, unroll);
            m.cycles()
        };
        let u1 = run(1);
        let u16 = run(16);
        assert!(u16 < u1, "unroll 16 ({u16}) should beat unroll 1 ({u1})");
    }

    #[test]
    fn flops_accounting() {
        let mut m = machine(512);
        let (mm, nn, kk) = (4, 32, 8);
        let a = Matrix::random(&mut m, mm, kk, 1);
        let b = Matrix::random(&mut m, kk, nn, 2);
        let c = Matrix::alloc(&mut m, mm, nn);
        gemm_opt3(&mut m, mm, nn, kk, 1.0, a.buf, b.buf, c.buf, 4);
        assert_eq!(m.stats.vec_flops, (2 * mm * nn * kk) as u64);
    }
}
