//! Fully-connected layer (VGG16's classifier head) and softmax.

use lva_isa::{KernelPhase, Machine, VReg};
use lva_sim::{AccessKind, Buf};

const VX: VReg = 0;
const VW: VReg = 1;
const VACC: VReg = 2;

/// `out[o] = sum_k W[o][k] * x[k]` — vectorized along the input dimension
/// with a `vfmacc.vv` accumulator and a final horizontal reduction.
pub fn fully_connected_vec(
    m: &mut Machine,
    w: Buf,
    x: Buf,
    out: Buf,
    outputs: usize,
    inputs: usize,
) {
    assert_eq!(w.words, outputs * inputs, "weight shape mismatch");
    assert!(x.words >= inputs && out.words >= outputs);
    m.phase(KernelPhase::Gemm, |m| {
        let vlen = m.vlen_elems();
        for o in 0..outputs {
            m.vbroadcast(VACC, 0.0, vlen);
            let mut k = 0;
            while k < inputs {
                let gvl = m.setvl(inputs - k);
                m.vle(VX, x.addr(k), gvl);
                m.vle(VW, w.addr(o * inputs + k), gvl);
                m.vfmacc_vv(VACC, VX, VW, gvl);
                k += gvl;
            }
            let s = m.vfredsum(VACC, vlen);
            m.scalar_write(out.addr(o), s);
        }
    });
}

/// Numerically-stable softmax. The exponential has no vector instruction in
/// our ISA subset (as in Darknet, where softmax stays scalar); max and sum
/// use vector reductions, the `exp` loop runs on the scalar core.
pub fn softmax_vec(m: &mut Machine, x: Buf, n: usize) {
    m.phase(KernelPhase::Softmax, |m| {
        // Vector max reduction.
        let mut mx = f32::NEG_INFINITY;
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vle(VX, x.addr(i), gvl);
            mx = mx.max(m.vfredmax(VX, gvl));
            i += gvl;
        }
        // Scalar exp pass (functional on the arena slice, bulk-charged).
        let mut sum = 0.0f32;
        {
            let xs = m.mem.words_mut(x.addr(0), n);
            for v in xs.iter_mut() {
                *v = (*v - mx).exp();
                sum += *v;
            }
        }
        m.scalar_stream(x.addr(0), n, AccessKind::Write);
        m.charge_scalar_flops(20 * n as u64); // exp ~ 20 flops each
                                              // Vector scale by 1/sum.
        let inv = 1.0 / sum;
        m.charge_scalar_flops(1);
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vle(VX, x.addr(i), gvl);
            m.vfmul_vf(VX, VX, inv, gvl);
            m.vse(VX, x.addr(i), gvl);
            i += gvl;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{fc_ref, softmax_ref};
    use lva_isa::MachineConfig;
    use lva_tensor::{approx_eq, host_random};

    fn machine() -> Machine {
        Machine::new(MachineConfig::sve_gem5(1024, 1 << 20))
    }

    #[test]
    fn fc_matches_reference() {
        let (outputs, inputs) = (5, 37);
        let mut m = machine();
        let wh = host_random(outputs * inputs, 1);
        let xh = host_random(inputs, 2);
        let w = m.mem.alloc_from(&wh);
        let x = m.mem.alloc_from(&xh);
        let out = m.mem.alloc(outputs);
        fully_connected_vec(&mut m, w, x, out, outputs, inputs);
        let want = fc_ref(&wh, &xh, outputs, inputs);
        assert!(approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5));
    }

    #[test]
    fn fc_single_output_and_input() {
        let mut m = machine();
        let w = m.mem.alloc_from(&[3.0]);
        let x = m.mem.alloc_from(&[4.0]);
        let out = m.mem.alloc(1);
        fully_connected_vec(&mut m, w, x, out, 1, 1);
        assert_eq!(m.mem.slice(out)[0], 12.0);
    }

    #[test]
    fn softmax_matches_reference() {
        let mut m = machine();
        let xh = host_random(100, 3);
        let x = m.mem.alloc_from(&xh);
        softmax_vec(&mut m, x, 100);
        let want = softmax_ref(&xh);
        assert!(approx_eq(m.mem.slice(x), &want, 1e-5, 1e-7));
        let total: f32 = m.mem.slice(x).iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }
}
