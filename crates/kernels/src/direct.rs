//! Direct (im2col-free) convolution, vectorized across the output row.
//!
//! §II-C of the paper: "no one-size-fits-all convolution implementation
//! exists: Winograd works best with 3x3/5x5 kernels, FFT with large
//! kernels, while the Direct algorithm is better for 1x1 kernel sizes."
//! This module provides that third algorithm: each output row is computed
//! as a sum of `in_c * k * k` scaled input-row vectors, with no lowering
//! buffer and no packing — minimal memory footprint, but no data reuse
//! through a lowered matrix either.
//!
//! For 1x1 stride-1 convolutions this is exactly Darknet's fast path
//! (GEMM on the raw input); for larger kernels it trades the im2col
//! workspace and its traffic for `k*k` strided passes over the input.

use crate::conv::ConvParams;
use lva_isa::{KernelPhase, Machine, VReg};
use lva_sim::Buf;
use lva_tensor::Tensor;

const VT: VReg = 0;
/// Output-row accumulators (unrolled over output channels).
const VACC0: VReg = 2;
/// Output channels processed per pass (reuses each loaded input vector);
/// with v0/v1 reserved, 16 accumulators fit comfortably in the register
/// file, matching the GEMM micro-kernel's unroll depth.
const OC_UNROLL: usize = 16;

/// Vectorized direct convolution: `out[oc][oy][ox] = sum w * in`, writing
/// (not accumulating) `out`. Weights are `[oc][ic][k][k]` flattened, the
/// same layout the GEMM path uses.
///
/// # Panics
/// Panics on shape mismatches.
pub fn conv_direct_vec(m: &mut Machine, p: &ConvParams, input: &Tensor, weights: Buf, out: Buf) {
    let (oh, ow) = p.out_hw();
    let kk = p.in_c * p.k * p.k;
    assert_eq!(input.shape.len(), p.in_c * p.in_h * p.in_w, "input shape mismatch");
    assert_eq!(weights.words, p.out_c * kk, "weight shape mismatch");
    assert!(out.words >= p.out_c * oh * ow, "output too small");
    // 1x1 stride-1: the spatial map is one contiguous vector per channel —
    // flatten the row loop so short image rows don't truncate the vectors.
    let (oh, ow) = if p.is_1x1_fast_path() { (1, oh * ow) } else { (oh, ow) };
    let p_eff =
        if p.is_1x1_fast_path() { ConvParams { in_h: 1, in_w: p.in_h * p.in_w, ..*p } } else { *p };
    let p = &p_eff;
    // Interior x-range where every kx tap is in bounds (cf. im2col).
    let x_lo = if p.pad > 0 { p.pad.div_ceil(p.stride) } else { 0 };
    let x_hi = {
        let upper = p.in_w as isize - 1 + p.pad as isize - (p.k as isize - 1);
        if upper < 0 {
            0
        } else {
            (upper as usize / p.stride + 1).min(ow)
        }
    };
    let x_lo = x_lo.min(x_hi);
    m.phase(KernelPhase::Gemm, |m| {
        let mut oc0 = 0;
        while oc0 < p.out_c {
            let ob = OC_UNROLL.min(p.out_c - oc0);
            for oy in 0..oh {
                m.charge_scalar_ops(2);
                // Vector interior.
                let mut x = x_lo;
                while x < x_hi {
                    let gvl = m.setvl(x_hi - x);
                    for o in 0..ob {
                        m.vbroadcast(VACC0 + o, 0.0, gvl);
                    }
                    for ci in 0..p.in_c {
                        for ky in 0..p.k {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy as usize >= p.in_h {
                                continue;
                            }
                            for kx in 0..p.k {
                                let ix0 = (x * p.stride + kx) as isize - p.pad as isize;
                                debug_assert!(ix0 >= 0);
                                let src = input
                                    .buf
                                    .addr((ci * p.in_h + iy as usize) * p.in_w + ix0 as usize);
                                if p.stride == 1 {
                                    m.vle(VT, src, gvl);
                                } else {
                                    m.vlse(VT, src, 4 * p.stride as u64, gvl);
                                }
                                for o in 0..ob {
                                    let w = m.scalar_read(
                                        weights.addr((oc0 + o) * kk + (ci * p.k + ky) * p.k + kx),
                                    );
                                    m.vfmacc_vf(VACC0 + o, w, VT, gvl);
                                }
                            }
                        }
                    }
                    for o in 0..ob {
                        m.vse(VACC0 + o, out.addr(((oc0 + o) * oh + oy) * ow + x), gvl);
                    }
                    x += gvl;
                }
                // Scalar borders.
                for ox in (0..x_lo).chain(x_hi..ow) {
                    for o in 0..ob {
                        let mut acc = 0.0f32;
                        for ci in 0..p.in_c {
                            for ky in 0..p.k {
                                for kx in 0..p.k {
                                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                                    let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < p.in_h
                                        && (ix as usize) < p.in_w
                                    {
                                        let v = m.scalar_read(input.buf.addr(
                                            (ci * p.in_h + iy as usize) * p.in_w + ix as usize,
                                        ));
                                        let w = m.scalar_read(
                                            weights
                                                .addr((oc0 + o) * kk + (ci * p.k + ky) * p.k + kx),
                                        );
                                        acc += v * w;
                                        m.charge_scalar_flops(2);
                                    }
                                }
                            }
                        }
                        m.scalar_write(out.addr(((oc0 + o) * oh + oy) * ow + ox), acc);
                    }
                }
            }
            oc0 += ob;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv_direct_ref;
    use lva_isa::MachineConfig;
    use lva_tensor::{approx_eq, Matrix, Shape};

    fn check(p: ConvParams, vlen: usize) {
        let mut m = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
        let (mm, nn, kk) = p.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 6);
        let out = m.mem.alloc(mm * nn);
        conv_direct_vec(&mut m, &p, &img, w.buf, out);
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5), "direct mismatch {p:?}");
    }

    #[test]
    fn direct_1x1() {
        check(ConvParams { in_c: 8, in_h: 7, in_w: 9, out_c: 4, k: 1, stride: 1, pad: 0 }, 512);
    }

    #[test]
    fn direct_3x3_s1_padded() {
        check(ConvParams { in_c: 3, in_h: 10, in_w: 10, out_c: 9, k: 3, stride: 1, pad: 1 }, 1024);
    }

    #[test]
    fn direct_3x3_s2() {
        check(ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 5, k: 3, stride: 2, pad: 1 }, 512);
    }

    #[test]
    fn direct_5x5_nopad() {
        check(ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 3, k: 5, stride: 1, pad: 0 }, 2048);
    }

    #[test]
    fn direct_more_channels_than_unroll() {
        check(ConvParams { in_c: 4, in_h: 6, in_w: 6, out_c: 19, k: 1, stride: 1, pad: 0 }, 512);
    }

    #[test]
    fn direct_skips_workspace_entirely() {
        // The whole point: no im2col buffer, no packing.
        let p = ConvParams { in_c: 4, in_h: 8, in_w: 8, out_c: 4, k: 3, stride: 1, pad: 1 };
        let mut m = Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(4, 8, 8), 5);
        let w = Matrix::random(&mut m, 4, 36, 6);
        let out = m.mem.alloc(4 * 64);
        let used_before = m.mem.used_words();
        conv_direct_vec(&mut m, &p, &img, w.buf, out);
        assert_eq!(m.mem.used_words(), used_before, "direct must not allocate");
        assert_eq!(m.phases.get(lva_isa::KernelPhase::Im2col), 0);
    }
}
