//! Pure-host scalar reference kernels: the correctness ground truth.
//!
//! These functions mirror the Darknet C code semantics exactly and never
//! touch the simulator; every simulated kernel is validated against them.

use crate::conv::ConvParams;

/// `C += alpha * A * B` with `A: MxK`, `B: KxN`, `C: MxN`, all row-major
/// (Darknet `gemm_nn` semantics, Fig. 1 loop order).
pub fn gemm_ref(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let a_part = alpha * a[i * k + kk];
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += a_part * brow[j];
            }
        }
    }
}

/// Darknet `im2col_cpu`: lower a CHW image into the `K x N` column matrix
/// with `K = c*k*k`, `N = out_h*out_w`; out-of-image taps read zero.
pub fn im2col_ref(p: &ConvParams, image: &[f32]) -> Vec<f32> {
    assert_eq!(image.len(), p.in_c * p.in_h * p.in_w);
    let (oh, ow) = p.out_hw();
    let kk = p.in_c * p.k * p.k;
    let n = oh * ow;
    let mut col = vec![0.0f32; kk * n];
    for row in 0..kk {
        let kx = row % p.k;
        let ky = (row / p.k) % p.k;
        let ci = row / (p.k * p.k);
        for oy in 0..oh {
            for ox in 0..ow {
                let iy = oy as isize * p.stride as isize + ky as isize - p.pad as isize;
                let ix = ox as isize * p.stride as isize + kx as isize - p.pad as isize;
                let v = if iy >= 0 && ix >= 0 && (iy as usize) < p.in_h && (ix as usize) < p.in_w {
                    image[(ci * p.in_h + iy as usize) * p.in_w + ix as usize]
                } else {
                    0.0
                };
                col[row * n + oy * ow + ox] = v;
            }
        }
    }
    col
}

/// Direct convolution: the algorithm-independent ground truth for every
/// convolution implementation (im2col+GEMM and Winograd).
/// `weights` layout: `[out_c][in_c][k][k]`.
pub fn conv_direct_ref(p: &ConvParams, image: &[f32], weights: &[f32]) -> Vec<f32> {
    assert_eq!(image.len(), p.in_c * p.in_h * p.in_w);
    assert_eq!(weights.len(), p.out_c * p.in_c * p.k * p.k);
    let (oh, ow) = p.out_hw();
    let mut out = vec![0.0f32; p.out_c * oh * ow];
    for oc in 0..p.out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ci in 0..p.in_c {
                    for ky in 0..p.k {
                        for kx in 0..p.k {
                            let iy = oy as isize * p.stride as isize + ky as isize - p.pad as isize;
                            let ix = ox as isize * p.stride as isize + kx as isize - p.pad as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < p.in_h
                                && (ix as usize) < p.in_w
                            {
                                acc += image[(ci * p.in_h + iy as usize) * p.in_w + ix as usize]
                                    * weights[((oc * p.in_c + ci) * p.k + ky) * p.k + kx];
                            }
                        }
                    }
                }
                out[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// `add_bias`: `x[c][i] += bias[c]` over `spatial` elements per channel.
pub fn add_bias_ref(x: &mut [f32], bias: &[f32], channels: usize, spatial: usize) {
    assert_eq!(x.len(), channels * spatial);
    for c in 0..channels {
        for i in 0..spatial {
            x[c * spatial + i] += bias[c];
        }
    }
}

/// `scale_bias`: `x[c][i] *= scale[c]`.
pub fn scale_bias_ref(x: &mut [f32], scale: &[f32], channels: usize, spatial: usize) {
    assert_eq!(x.len(), channels * spatial);
    for c in 0..channels {
        for i in 0..spatial {
            x[c * spatial + i] *= scale[c];
        }
    }
}

/// Batch-norm inference `normalize_cpu`: `x = (x - mean) / sqrt(var + eps)`.
pub fn normalize_ref(x: &mut [f32], mean: &[f32], var: &[f32], channels: usize, spatial: usize) {
    const EPS: f32 = 0.000001;
    for c in 0..channels {
        let inv = 1.0 / (var[c] + EPS).sqrt();
        for i in 0..spatial {
            x[c * spatial + i] = (x[c * spatial + i] - mean[c]) * inv;
        }
    }
}

/// Activation functions used by the studied networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Linear,
    Relu,
    /// Darknet leaky ReLU: `x > 0 ? x : 0.1 x`, i.e. `max(x, 0.1 x)`.
    Leaky,
}

/// `activate_array`.
pub fn activate_ref(x: &mut [f32], act: Activation) {
    match act {
        Activation::Linear => {}
        Activation::Relu => {
            for v in x {
                *v = v.max(0.0);
            }
        }
        Activation::Leaky => {
            for v in x {
                *v = v.max(0.1 * *v);
            }
        }
    }
}

/// Darknet `forward_maxpool_layer` for a CHW map. `padding` is the *total*
/// padding (Darknet convention, default `size - 1`), applied asymmetrically
/// with `padding / 2` before: `out = (w + padding - size) / stride + 1`.
/// Window taps outside the image read -inf.
pub fn maxpool_ref(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    stride: usize,
    padding: usize,
) -> Vec<f32> {
    let oh = (h + padding - size) / stride + 1;
    let ow = (w + padding - size) / stride + 1;
    let before = (padding / 2) as isize;
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut mx = f32::NEG_INFINITY;
                for ky in 0..size {
                    for kx in 0..size {
                        let iy = (oy * stride + ky) as isize - before;
                        let ix = (ox * stride + kx) as isize - before;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            mx = mx.max(x[(ci * h + iy as usize) * w + ix as usize]);
                        }
                    }
                }
                out[(ci * oh + oy) * ow + ox] = mx;
            }
        }
    }
    out
}

/// Nearest-neighbour 2x upsample (Darknet `upsample_layer`, stride 2).
pub fn upsample2_ref(x: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; c * 4 * h * w];
    let (oh, ow) = (2 * h, 2 * w);
    for ci in 0..c {
        for y in 0..oh {
            for xx in 0..ow {
                out[(ci * oh + y) * ow + xx] = x[(ci * h + y / 2) * w + xx / 2];
            }
        }
    }
    out
}

/// Fully-connected layer: `out = W x` with `W: out x in`.
pub fn fc_ref(w: &[f32], x: &[f32], outputs: usize, inputs: usize) -> Vec<f32> {
    assert_eq!(w.len(), outputs * inputs);
    assert_eq!(x.len(), inputs);
    (0..outputs)
        .map(|o| w[o * inputs..(o + 1) * inputs].iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

/// Numerically-stable softmax.
pub fn softmax_ref(x: &[f32]) -> Vec<f32> {
    let mx = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|v| (v - mx).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_tensor::host_random;

    #[test]
    fn gemm_ref_identity() {
        // A = I  =>  C += alpha * B
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b = host_random(n * n, 7);
        let mut c = vec![1.0; n * n];
        gemm_ref(n, n, n, 2.0, &a, &b, &mut c);
        for i in 0..n * n {
            assert!((c[i] - (1.0 + 2.0 * b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn im2col_matches_direct_conv_through_gemm() {
        let p = ConvParams { in_c: 3, in_h: 7, in_w: 7, out_c: 4, k: 3, stride: 1, pad: 1 };
        let img = host_random(p.in_c * p.in_h * p.in_w, 1);
        let w = host_random(p.out_c * p.in_c * p.k * p.k, 2);
        let col = im2col_ref(&p, &img);
        let (oh, ow) = p.out_hw();
        let mut out = vec![0.0; p.out_c * oh * ow];
        gemm_ref(p.out_c, oh * ow, p.in_c * p.k * p.k, 1.0, &w, &col, &mut out);
        let direct = conv_direct_ref(&p, &img, &w);
        for (x, y) in out.iter().zip(direct.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn strided_conv_shapes() {
        let p = ConvParams { in_c: 2, in_h: 8, in_w: 8, out_c: 3, k: 3, stride: 2, pad: 1 };
        assert_eq!(p.out_hw(), (4, 4));
        let img = host_random(p.in_c * 64, 3);
        let w = host_random(p.out_c * p.in_c * 9, 4);
        let direct = conv_direct_ref(&p, &img, &w);
        assert_eq!(direct.len(), p.out_c * 16);
        let col = im2col_ref(&p, &img);
        let mut out = vec![0.0; p.out_c * 16];
        gemm_ref(p.out_c, 16, p.in_c * 9, 1.0, &w, &col, &mut out);
        for (x, y) in out.iter().zip(direct.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn leaky_is_max_form() {
        let mut x = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        activate_ref(&mut x, Activation::Leaky);
        assert_eq!(x, vec![-0.2, -0.05, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut x = vec![-1.0, 0.5];
        activate_ref(&mut x, Activation::Relu);
        assert_eq!(x, vec![0.0, 0.5]);
    }

    #[test]
    fn normalize_zero_means_unit_var() {
        let mut x = vec![2.0, 4.0, 6.0, 8.0];
        normalize_ref(&mut x, &[5.0], &[1.0], 1, 4);
        assert!((x[0] + 3.0).abs() < 1e-3);
        assert!((x[3] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn maxpool_2x2_s2() {
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 1.0, 2.0, 3.0,
            4.0, 5.0, 6.0, 7.0,
        ];
        let out = maxpool_ref(&x, 1, 4, 4, 2, 2, 0);
        assert_eq!(out, vec![6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn maxpool_s1_same_size_with_pad() {
        // Darknet yolov3-tiny layer 11: size 2, stride 1, padding 1 keeps
        // the spatial size: out = (w + 1 - 2)/1 + 1 = w.
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let out = maxpool_ref(&x, 1, 3, 3, 2, 1, 1);
        assert_eq!(out.len(), 9);
        // pad_before = 0: window [y..y+2) x [x..x+2), clipped at the edges.
        assert_eq!(out[0], 4.0);
        assert_eq!(out[8], 8.0);
    }

    #[test]
    fn upsample_doubles() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let out = upsample2_ref(&x, 1, 2, 2);
        assert_eq!(out.len(), 16);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 1.0);
        assert_eq!(out[4], 1.0);
        assert_eq!(out[15], 4.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax_ref(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn fc_matches_manual_dot() {
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![5.0, 6.0];
        assert_eq!(fc_ref(&w, &x, 2, 2), vec![17.0, 39.0]);
    }
}
