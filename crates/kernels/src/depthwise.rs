//! Depthwise convolution — the paper's stated future work ("extend our
//! algorithmic optimizations ... to more kernels in DNN inference").
//!
//! Each input channel is convolved with its own `k x k` filter (groups =
//! channels, as in MobileNet's depthwise-separable blocks). The kernel has
//! no channel reduction, so there is no GEMM to lower to: the natural
//! vectorization is the direct form over the output row — unit-stride loads
//! for stride 1, strided loads otherwise — with the same interior/border
//! split as the other spatial kernels. Arithmetic intensity is intrinsically
//! low (`k^2` MACs per output, no operand reuse across channels), which is
//! why these layers end up memory-bound on every profile.

use crate::conv::ConvParams;
use lva_isa::{KernelPhase, Machine, VReg};
use lva_sim::Buf;
use lva_tensor::Tensor;

const VT: VReg = 0;
const VACC: VReg = 1;

/// Depthwise geometry helper: the [`ConvParams`] equivalent with
/// `out_c == in_c` and per-channel filters.
pub fn depthwise_params(
    in_c: usize,
    in_h: usize,
    in_w: usize,
    k: usize,
    stride: usize,
) -> ConvParams {
    ConvParams { in_c, in_h, in_w, out_c: in_c, k, stride, pad: k / 2 }
}

/// Flops of a depthwise layer (2 per MAC, `k^2` MACs per output element).
pub fn depthwise_flops(p: &ConvParams) -> u64 {
    let (oh, ow) = p.out_hw();
    2 * (p.in_c * oh * ow * p.k * p.k) as u64
}

/// Vectorized depthwise convolution: `out[c] = conv2d(in[c], w[c])`.
/// Weights are `[c][k][k]` flattened; `out` is written (not accumulated).
///
/// # Panics
/// Panics on shape mismatches or if `p.out_c != p.in_c`.
pub fn conv_depthwise_vec(m: &mut Machine, p: &ConvParams, input: &Tensor, weights: Buf, out: Buf) {
    assert_eq!(p.out_c, p.in_c, "depthwise keeps the channel count");
    assert_eq!(input.shape.len(), p.in_c * p.in_h * p.in_w, "input shape mismatch");
    assert_eq!(weights.words, p.in_c * p.k * p.k, "weight shape mismatch");
    let (oh, ow) = p.out_hw();
    assert!(out.words >= p.in_c * oh * ow, "output too small");
    // Interior x-range where every kx tap is in bounds.
    let x_lo = if p.pad > 0 { p.pad.div_ceil(p.stride) } else { 0 };
    let x_hi = {
        let upper = p.in_w as isize - 1 + p.pad as isize - (p.k as isize - 1);
        if upper < 0 {
            0
        } else {
            (upper as usize / p.stride + 1).min(ow)
        }
    };
    let x_lo = x_lo.min(x_hi);
    m.phase(KernelPhase::Gemm, |m| {
        for c in 0..p.in_c {
            // Per-channel taps stay in scalar registers across the row loop.
            let mut taps = [0.0f32; 64];
            for (t, tap) in taps.iter_mut().enumerate().take(p.k * p.k) {
                *tap = m.scalar_read(weights.addr(c * p.k * p.k + t));
            }
            for oy in 0..oh {
                m.charge_scalar_ops(2);
                let mut x = x_lo;
                while x < x_hi {
                    let gvl = m.setvl(x_hi - x);
                    m.vbroadcast(VACC, 0.0, gvl);
                    for ky in 0..p.k {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy as usize >= p.in_h {
                            continue;
                        }
                        for kx in 0..p.k {
                            let ix0 = (x * p.stride + kx) as isize - p.pad as isize;
                            debug_assert!(ix0 >= 0);
                            let src = input.addr(c, iy as usize, ix0 as usize);
                            if p.stride == 1 {
                                m.vle(VT, src, gvl);
                            } else {
                                m.vlse(VT, src, 4 * p.stride as u64, gvl);
                            }
                            m.vfmacc_vf(VACC, taps[ky * p.k + kx], VT, gvl);
                        }
                    }
                    m.vse(VACC, out.addr((c * oh + oy) * ow + x), gvl);
                    x += gvl;
                }
                // Scalar borders.
                for ox in (0..x_lo).chain(x_hi..ow) {
                    let mut acc = 0.0f32;
                    for ky in 0..p.k {
                        for kx in 0..p.k {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < p.in_h
                                && (ix as usize) < p.in_w
                            {
                                let v = m.scalar_read(input.addr(c, iy as usize, ix as usize));
                                acc += v * taps[ky * p.k + kx];
                                m.charge_scalar_flops(2);
                            }
                        }
                    }
                    m.scalar_write(out.addr((c * oh + oy) * ow + ox), acc);
                }
            }
        }
    });
}

/// Host reference depthwise convolution.
pub fn conv_depthwise_ref(p: &ConvParams, image: &[f32], weights: &[f32]) -> Vec<f32> {
    assert_eq!(p.out_c, p.in_c);
    assert_eq!(image.len(), p.in_c * p.in_h * p.in_w);
    assert_eq!(weights.len(), p.in_c * p.k * p.k);
    let (oh, ow) = p.out_hw();
    let mut out = vec![0.0f32; p.in_c * oh * ow];
    for c in 0..p.in_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..p.k {
                    for kx in 0..p.k {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < p.in_h && (ix as usize) < p.in_w {
                            acc += image[(c * p.in_h + iy as usize) * p.in_w + ix as usize]
                                * weights[(c * p.k + ky) * p.k + kx];
                        }
                    }
                }
                out[(c * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::MachineConfig;
    use lva_tensor::{approx_eq, host_random, Shape};

    fn check(in_c: usize, hw: usize, k: usize, stride: usize, vlen: usize) {
        let p = depthwise_params(in_c, hw, hw, k, stride);
        let mut m = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(in_c, hw, hw), 3);
        let wh = host_random(in_c * k * k, 4);
        let w = m.mem.alloc_from(&wh);
        let (oh, ow) = p.out_hw();
        let out = m.mem.alloc(in_c * oh * ow);
        conv_depthwise_vec(&mut m, &p, &img, w, out);
        let want = conv_depthwise_ref(&p, &img.to_host(&m), &wh);
        assert!(approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5), "dw mismatch {p:?}");
    }

    #[test]
    fn depthwise_3x3_s1() {
        check(4, 10, 3, 1, 1024);
    }

    #[test]
    fn depthwise_3x3_s2() {
        check(3, 12, 3, 2, 512);
    }

    #[test]
    fn depthwise_5x5() {
        check(2, 14, 5, 1, 2048);
    }

    #[test]
    fn depthwise_single_channel() {
        check(1, 8, 3, 1, 512);
    }

    #[test]
    fn depthwise_flops_formula() {
        let p = depthwise_params(16, 20, 20, 3, 1);
        assert_eq!(depthwise_flops(&p), 2 * 16 * 400 * 9);
    }

    #[test]
    fn depthwise_is_channelwise_independent() {
        // Zeroing one channel's filter must zero exactly that channel.
        let p = depthwise_params(3, 6, 6, 3, 1);
        let mut m = Machine::new(MachineConfig::sve_gem5(512, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(3, 6, 6), 3);
        let mut wh = host_random(27, 4);
        wh[9..18].fill(0.0); // channel 1
        let w = m.mem.alloc_from(&wh);
        let out = m.mem.alloc(3 * 36);
        conv_depthwise_vec(&mut m, &p, &img, w, out);
        let o = m.mem.slice(out);
        assert!(o[36..72].iter().all(|&v| v == 0.0), "channel 1 must be zero");
        assert!(o[..36].iter().any(|&v| v != 0.0));
    }
}
