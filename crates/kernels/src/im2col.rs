//! Image-to-column lowering (`im2col_cpu`), scalar and vectorized.
//!
//! The column matrix has `K = in_c * k * k` rows and `N = out_h * out_w`
//! columns; each row corresponds to one `(channel, ky, kx)` filter tap.
//! For stride 1 the inner copy is unit-strided (a `vle`/`vse` pair); for
//! larger strides it is a strided vector load. Padding columns are filled
//! with vector splats of zero, so the whole kernel is vectorized as §IV-A
//! requires ("we begin by vectorizing all kernels of the convolutional
//! layer").

use crate::conv::ConvParams;
use lva_isa::{KernelPhase, Machine, VReg};
use lva_sim::{AccessKind, Buf};
use lva_tensor::Tensor;

const VT: VReg = 0;
const VZ: VReg = 1;

/// Vectorized im2col: lowers `image` into `col` (size `K * N`).
///
/// # Panics
/// Panics if `col` is smaller than `K * N` words.
pub fn im2col_vec(m: &mut Machine, p: &ConvParams, image: &Tensor, col: Buf) {
    let (oh, ow) = p.out_hw();
    let n = oh * ow;
    let kk = p.in_c * p.k * p.k;
    assert!(col.words >= kk * n, "column workspace too small");
    assert_eq!(image.shape.len(), p.in_c * p.in_h * p.in_w);
    m.phase(KernelPhase::Im2col, |m| {
        // A zero register for padding fills.
        let vlen = m.vlen_elems();
        m.vbroadcast(VZ, 0.0, vlen);
        for row in 0..kk {
            let kx = row % p.k;
            let ky = (row / p.k) % p.k;
            let ci = row / (p.k * p.k);
            for oy in 0..oh {
                m.charge_scalar_ops(2); // row/oy bookkeeping
                let dst_off = row * n + oy * ow;
                let iy = oy as isize * p.stride as isize + ky as isize - p.pad as isize;
                if iy < 0 || iy as usize >= p.in_h {
                    fill_zero(m, col, dst_off, ow);
                    continue;
                }
                let iy = iy as usize;
                // Valid ox range: 0 <= ox*s + kx - pad < in_w.
                let (x0, x1) = valid_ox_range(p, kx);
                if x0 > 0 {
                    fill_zero(m, col, dst_off, x0.min(ow));
                }
                if x1 > x0 {
                    // ix(x0) = x0*s + kx - pad, guaranteed in-bounds by the
                    // valid-range computation.
                    let ix0 = (x0 * p.stride + kx) as isize - p.pad as isize;
                    debug_assert!(ix0 >= 0);
                    let src0 = image.addr(ci, iy, ix0 as usize);
                    copy_strided(m, src0, col, dst_off + x0, x1 - x0, p.stride);
                }
                if x1 < ow {
                    fill_zero(m, col, dst_off + x1, ow - x1);
                }
            }
        }
    });
}

/// Valid output-x interval `[x0, x1)` for filter tap column `kx`.
fn valid_ox_range(p: &ConvParams, kx: usize) -> (usize, usize) {
    let (_, ow) = p.out_hw();
    // ix = ox*s + kx - pad >= 0  =>  ox >= ceil((pad - kx) / s)
    let x0 = if p.pad > kx { (p.pad - kx).div_ceil(p.stride) } else { 0 };
    // ix <= in_w - 1  =>  ox <= (in_w - 1 + pad - kx) / s
    let upper = p.in_w as isize - 1 + p.pad as isize - kx as isize;
    let x1 = if upper < 0 { 0 } else { (upper as usize / p.stride + 1).min(ow) };
    (x0.min(ow), x1)
}

/// Vector zero-fill of `n` words of `dst` starting at `off`.
fn fill_zero(m: &mut Machine, dst: Buf, off: usize, n: usize) {
    let mut x = 0;
    while x < n {
        let gvl = m.setvl(n - x);
        m.vse(VZ, dst.addr(off + x), gvl);
        x += gvl;
    }
}

/// Copy `n` elements from `src0` with element stride `s` into contiguous
/// `dst[off..]`; unit stride uses `vle`, otherwise `vlse`.
fn copy_strided(m: &mut Machine, src0: u64, dst: Buf, off: usize, n: usize, s: usize) {
    let mut x = 0;
    while x < n {
        let gvl = m.setvl(n - x);
        if s == 1 {
            m.vle(VT, src0 + 4 * x as u64, gvl);
        } else {
            m.vlse(VT, src0 + 4 * (x * s) as u64, 4 * s as u64, gvl);
        }
        m.vse(VT, dst.addr(off + x), gvl);
        x += gvl;
    }
}

/// Scalar im2col used by the naive baseline: functional on host slices,
/// timing charged in bulk (per-element ops plus line-granular streams).
pub fn im2col_scalar(m: &mut Machine, p: &ConvParams, image: &Tensor, col: Buf) {
    let (oh, ow) = p.out_hw();
    let n = oh * ow;
    let kk = p.in_c * p.k * p.k;
    assert!(col.words >= kk * n, "column workspace too small");
    m.phase(KernelPhase::Im2col, |m| {
        // Functional: reuse the host reference on arena slices.
        let img = m.mem.slice(image.buf).to_vec();
        let lowered = crate::reference::im2col_ref(p, &img);
        m.mem.slice_mut(col)[..kk * n].copy_from_slice(&lowered);
        // Timing.
        for row in 0..kk {
            for oy in 0..oh {
                m.charge_scalar_ops(ow as u64 * 2);
                m.scalar_stream(col.addr(row * n + oy * ow), ow, AccessKind::Write);
            }
            // Input row traffic: approximately one read stream per output row.
            let ci = row / (p.k * p.k);
            for y in 0..oh.min(p.in_h) {
                m.scalar_stream(
                    image.addr(ci, y.min(p.in_h - 1), 0),
                    p.in_w.min(ow * p.stride),
                    AccessKind::Read,
                );
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::im2col_ref;
    use lva_isa::MachineConfig;
    use lva_tensor::Shape;

    fn machine() -> Machine {
        Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20))
    }

    fn check_vec(p: ConvParams) {
        let mut m = machine();
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 9);
        let (oh, ow) = p.out_hw();
        let kk = p.in_c * p.k * p.k;
        let col = m.mem.alloc(kk * oh * ow);
        im2col_vec(&mut m, &p, &img, col);
        let want = im2col_ref(&p, &img.to_host(&m));
        assert_eq!(m.mem.slice(col)[..want.len()], want[..], "mismatch for {p:?}");
    }

    #[test]
    fn vectorized_matches_reference_3x3_s1_p1() {
        check_vec(ConvParams { in_c: 3, in_h: 9, in_w: 11, out_c: 1, k: 3, stride: 1, pad: 1 });
    }

    #[test]
    fn vectorized_matches_reference_3x3_s2_p1() {
        check_vec(ConvParams { in_c: 2, in_h: 12, in_w: 10, out_c: 1, k: 3, stride: 2, pad: 1 });
    }

    #[test]
    fn vectorized_matches_reference_1x1() {
        check_vec(ConvParams { in_c: 4, in_h: 6, in_w: 6, out_c: 1, k: 1, stride: 1, pad: 0 });
    }

    #[test]
    fn vectorized_matches_reference_5x5_nopad() {
        check_vec(ConvParams { in_c: 1, in_h: 16, in_w: 16, out_c: 1, k: 5, stride: 1, pad: 0 });
    }

    #[test]
    fn vectorized_matches_reference_wide_pad() {
        check_vec(ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 7, stride: 1, pad: 3 });
    }

    #[test]
    fn scalar_matches_reference() {
        let p = ConvParams { in_c: 3, in_h: 9, in_w: 9, out_c: 1, k: 3, stride: 1, pad: 1 };
        let mut m = machine();
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 9);
        let (oh, ow) = p.out_hw();
        let col = m.mem.alloc(p.in_c * 9 * oh * ow);
        im2col_scalar(&mut m, &p, &img, col);
        let want = im2col_ref(&p, &img.to_host(&m));
        assert_eq!(m.mem.slice(col)[..want.len()], want[..]);
        assert!(m.cycles() > 0);
    }

    #[test]
    fn valid_range_logic() {
        let p = ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 3, stride: 1, pad: 1 };
        assert_eq!(valid_ox_range(&p, 0), (1, 8)); // ix = ox - 1
        assert_eq!(valid_ox_range(&p, 1), (0, 8)); // ix = ox
        assert_eq!(valid_ox_range(&p, 2), (0, 7)); // ix = ox + 1
    }
}
