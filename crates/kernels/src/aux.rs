//! Auxiliary convolutional-layer kernels: `fill_cpu`, `copy_cpu`,
//! `add_bias`, `scale_bias`, `normalize_cpu`, `activate_array` — all
//! vectorized with the VLA pattern (§IV-A vectorizes every kernel of the
//! layer; the paper notes the compiler fails on normalization/activation,
//! which are therefore manually vectorized).

pub use crate::reference::Activation;
use lva_isa::{KernelPhase, Machine, VReg};
use lva_sim::Buf;

const VT: VReg = 0;
const VU: VReg = 1;

/// `fill_cpu`: set `n` words of `x` to `val`.
pub fn fill_vec(m: &mut Machine, x: Buf, off: usize, n: usize, val: f32) {
    m.phase(KernelPhase::FillCopy, |m| {
        let vlen = m.vlen_elems();
        m.vbroadcast(VT, val, vlen);
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vse(VT, x.addr(off + i), gvl);
            i += gvl;
        }
    });
}

/// `copy_cpu`: copy `n` words from `src` to `dst`.
pub fn copy_vec(m: &mut Machine, src: Buf, src_off: usize, dst: Buf, dst_off: usize, n: usize) {
    m.phase(KernelPhase::FillCopy, |m| {
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vle(VT, src.addr(src_off + i), gvl);
            m.vse(VT, dst.addr(dst_off + i), gvl);
            i += gvl;
        }
    });
}

/// `shortcut`-style accumulation: `dst[i] += src[i]` over `n` words.
pub fn add_inplace_vec(m: &mut Machine, src: Buf, dst: Buf, n: usize) {
    m.phase(KernelPhase::FillCopy, |m| {
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vle(VT, src.addr(i), gvl);
            m.vle(VU, dst.addr(i), gvl);
            m.vfadd_vv(VU, VU, VT, gvl);
            m.vse(VU, dst.addr(i), gvl);
            i += gvl;
        }
    });
}

/// `add_bias`: `x[c][s] += bias[c]` for `channels x spatial` data.
pub fn add_bias_vec(m: &mut Machine, x: Buf, bias: Buf, channels: usize, spatial: usize) {
    m.phase(KernelPhase::Bias, |m| {
        for c in 0..channels {
            let b = m.scalar_read(bias.addr(c));
            let mut i = 0;
            while i < spatial {
                let gvl = m.setvl(spatial - i);
                m.vle(VT, x.addr(c * spatial + i), gvl);
                m.vfadd_vf(VT, VT, b, gvl);
                m.vse(VT, x.addr(c * spatial + i), gvl);
                i += gvl;
            }
        }
    });
}

/// `scale_bias`: `x[c][s] *= scale[c]`.
pub fn scale_bias_vec(m: &mut Machine, x: Buf, scale: Buf, channels: usize, spatial: usize) {
    m.phase(KernelPhase::Bias, |m| {
        for c in 0..channels {
            let s = m.scalar_read(scale.addr(c));
            let mut i = 0;
            while i < spatial {
                let gvl = m.setvl(spatial - i);
                m.vle(VT, x.addr(c * spatial + i), gvl);
                m.vfmul_vf(VT, VT, s, gvl);
                m.vse(VT, x.addr(c * spatial + i), gvl);
                i += gvl;
            }
        }
    });
}

/// Batch-norm inference `normalize_cpu`: `x = (x - mean[c]) * rsqrt(var[c])`.
/// The per-channel scalars are computed once on the scalar core; the sweep
/// over the feature map is a vector `add` + `mul` pipeline.
pub fn normalize_vec(
    m: &mut Machine,
    x: Buf,
    mean: Buf,
    var: Buf,
    channels: usize,
    spatial: usize,
) {
    const EPS: f32 = 0.000001;
    m.phase(KernelPhase::Normalize, |m| {
        for c in 0..channels {
            let mu = m.scalar_read(mean.addr(c));
            let v = m.scalar_read(var.addr(c));
            m.charge_scalar_flops(3); // sqrt + add + reciprocal
            let inv = 1.0 / (v + EPS).sqrt();
            let mut i = 0;
            while i < spatial {
                let gvl = m.setvl(spatial - i);
                m.vle(VT, x.addr(c * spatial + i), gvl);
                m.vfadd_vf(VT, VT, -mu, gvl);
                m.vfmul_vf(VT, VT, inv, gvl);
                m.vse(VT, x.addr(c * spatial + i), gvl);
                i += gvl;
            }
        }
    });
}

/// `activate_array` over `n` words.
pub fn activate_vec(m: &mut Machine, x: Buf, n: usize, act: Activation) {
    if act == Activation::Linear {
        return;
    }
    m.phase(KernelPhase::Activate, |m| {
        let mut i = 0;
        while i < n {
            let gvl = m.setvl(n - i);
            m.vle(VT, x.addr(i), gvl);
            match act {
                Activation::Linear => unreachable!(),
                Activation::Relu => m.vfmax_vf(VT, VT, 0.0, gvl),
                Activation::Leaky => {
                    // leaky(x) = max(x, 0.1 x)
                    m.vfmul_vf(VU, VT, 0.1, gvl);
                    m.vfmax_vv(VT, VT, VU, gvl);
                }
            }
            m.vse(VT, x.addr(i), gvl);
            i += gvl;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use lva_isa::MachineConfig;
    use lva_tensor::{approx_eq, host_random};

    fn machine() -> Machine {
        Machine::new(MachineConfig::sve_gem5(512, 1 << 20))
    }

    #[test]
    fn fill_and_copy() {
        let mut m = machine();
        let a = m.mem.alloc(100);
        let b = m.mem.alloc(100);
        fill_vec(&mut m, a, 0, 100, 2.5);
        assert!(m.mem.slice(a).iter().all(|&v| v == 2.5));
        copy_vec(&mut m, a, 10, b, 0, 80);
        assert!(m.mem.slice(b)[..80].iter().all(|&v| v == 2.5));
        assert_eq!(m.mem.slice(b)[80], 0.0);
    }

    #[test]
    fn add_inplace_matches() {
        let mut m = machine();
        let xs = host_random(77, 1);
        let ys = host_random(77, 2);
        let a = m.mem.alloc_from(&xs);
        let b = m.mem.alloc_from(&ys);
        add_inplace_vec(&mut m, a, b, 77);
        let want: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
        assert!(approx_eq(m.mem.slice(b), &want, 1e-6, 0.0));
    }

    #[test]
    fn bias_scale_normalize_match_reference() {
        let (c, s) = (3, 37);
        let mut m = machine();
        let x0 = host_random(c * s, 1);
        let bias = host_random(c, 2);
        let scale: Vec<f32> = host_random(c, 3).iter().map(|v| v + 2.0).collect();
        let mean = host_random(c, 4);
        let var: Vec<f32> = host_random(c, 5).iter().map(|v| v.abs() + 0.5).collect();

        let x = m.mem.alloc_from(&x0);
        let bb = m.mem.alloc_from(&bias);
        let sb = m.mem.alloc_from(&scale);
        let mb = m.mem.alloc_from(&mean);
        let vb = m.mem.alloc_from(&var);

        normalize_vec(&mut m, x, mb, vb, c, s);
        scale_bias_vec(&mut m, x, sb, c, s);
        add_bias_vec(&mut m, x, bb, c, s);

        let mut want = x0;
        reference::normalize_ref(&mut want, &mean, &var, c, s);
        reference::scale_bias_ref(&mut want, &scale, c, s);
        reference::add_bias_ref(&mut want, &bias, c, s);
        assert!(approx_eq(m.mem.slice(x), &want, 1e-5, 1e-6));
    }

    #[test]
    fn activations_match_reference() {
        for act in [Activation::Relu, Activation::Leaky, Activation::Linear] {
            let mut m = machine();
            let x0 = host_random(101, 7);
            let x = m.mem.alloc_from(&x0);
            activate_vec(&mut m, x, 101, act);
            let mut want = x0;
            reference::activate_ref(&mut want, act);
            assert!(approx_eq(m.mem.slice(x), &want, 1e-6, 0.0), "{act:?}");
        }
    }

    #[test]
    fn linear_activation_is_free() {
        let mut m = machine();
        let x = m.mem.alloc(64);
        let t0 = m.cycles();
        activate_vec(&mut m, x, 64, Activation::Linear);
        assert_eq!(m.cycles(), t0);
    }
}
