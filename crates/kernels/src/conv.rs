//! Convolution layer parameters and the im2col+GEMM forward driver.

use crate::gemm::{gemm, GemmVariant, GemmWorkspace};
use crate::im2col::{im2col_scalar, im2col_vec};
use lva_isa::Machine;
use lva_sim::Buf;
use lva_tensor::Tensor;

/// Geometry of one convolutional layer (square kernels, symmetric padding —
/// all layers of the studied networks fit this, with Darknet's `pad = k/2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    pub in_c: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub out_c: usize,
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvParams {
    /// Output spatial dimensions `(out_h, out_w)`.
    pub fn out_hw(&self) -> (usize, usize) {
        (
            (self.in_h + 2 * self.pad - self.k) / self.stride + 1,
            (self.in_w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// GEMM dimensions `(M, N, K)` of the lowered convolution:
    /// `M = out_c`, `N = out_h*out_w`, `K = in_c*k*k` (§IV-A).
    pub fn gemm_mnk(&self) -> (usize, usize, usize) {
        let (oh, ow) = self.out_hw();
        (self.out_c, oh * ow, self.in_c * self.k * self.k)
    }

    /// Multiply-add flops of the layer (2 per MAC).
    pub fn flops(&self) -> u64 {
        let (m, n, k) = self.gemm_mnk();
        2 * (m * n * k) as u64
    }

    /// Words of im2col workspace needed (`K * N`), zero when the lowering is
    /// skipped (1x1 stride-1 unpadded convolutions use the input directly,
    /// as Darknet does).
    pub fn workspace_words(&self) -> usize {
        if self.is_1x1_fast_path() {
            0
        } else {
            let (_, n, k) = self.gemm_mnk();
            n * k
        }
    }

    /// Whether im2col degenerates to the identity.
    pub fn is_1x1_fast_path(&self) -> bool {
        self.k == 1 && self.stride == 1 && self.pad == 0
    }
}

/// Output shape helper for building networks.
pub fn conv_output_shape(p: &ConvParams) -> lva_tensor::Shape {
    let (oh, ow) = p.out_hw();
    lva_tensor::Shape::new(p.out_c, oh, ow)
}

/// Forward convolution via im2col+GEMM, Darknet style.
///
/// * `weights`: `out_c x (in_c*k*k)` row-major (Darknet layout flattened);
/// * `col`: workspace of at least [`ConvParams::workspace_words`] words;
/// * `out`: `out_c * out_h * out_w` words, **accumulated into** (callers
///   zero-fill or bias-fill first, as `forward_convolutional_layer` does).
///
/// The naive variant uses scalar im2col; optimized variants use the
/// vectorized one (§IV-A vectorizes *all* kernels of the layer).
pub fn conv_im2col_gemm(
    m: &mut Machine,
    variant: GemmVariant,
    p: &ConvParams,
    input: &Tensor,
    weights: Buf,
    col: Buf,
    out: Buf,
    ws: Option<&GemmWorkspace>,
) {
    let (mm, nn, kk) = p.gemm_mnk();
    assert_eq!(weights.words, mm * kk, "weight buffer shape mismatch");
    assert!(out.words >= mm * nn, "output buffer too small");
    let b = if p.is_1x1_fast_path() {
        input.buf
    } else {
        match variant {
            GemmVariant::Naive => im2col_scalar(m, p, input, col),
            _ => im2col_vec(m, p, input, col),
        }
        col
    };
    gemm(m, variant, mm, nn, kk, 1.0, weights, b, out, ws);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmWorkspace;
    use crate::reference::conv_direct_ref;
    use lva_isa::{KernelPhase, MachineConfig};
    use lva_tensor::{approx_eq, Matrix, Shape};

    fn machine() -> Machine {
        Machine::new(MachineConfig::rvv_gem5(1024, 8, 1 << 20))
    }

    fn check(p: ConvParams, variant: GemmVariant) {
        let mut m = machine();
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
        let (mm, nn, kk) = p.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 6);
        let col = m.mem.alloc(p.workspace_words().max(1));
        let out = m.mem.alloc(mm * nn);
        let wsp = match variant {
            GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut m, blocks)),
            _ => None,
        };
        conv_im2col_gemm(&mut m, variant, &p, &img, w.buf, col, out, wsp.as_ref());
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(
            approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5),
            "conv mismatch {p:?} {}",
            variant.name()
        );
    }

    #[test]
    fn conv3x3_s1_all_variants() {
        let p = ConvParams { in_c: 3, in_h: 10, in_w: 10, out_c: 8, k: 3, stride: 1, pad: 1 };
        check(p, GemmVariant::Naive);
        check(p, GemmVariant::opt3());
        check(p, GemmVariant::opt6());
    }

    #[test]
    fn conv3x3_s2() {
        let p = ConvParams { in_c: 4, in_h: 12, in_w: 12, out_c: 6, k: 3, stride: 2, pad: 1 };
        check(p, GemmVariant::opt3());
    }

    #[test]
    fn conv1x1_fast_path_skips_im2col() {
        let p = ConvParams { in_c: 8, in_h: 6, in_w: 6, out_c: 4, k: 1, stride: 1, pad: 0 };
        assert!(p.is_1x1_fast_path());
        assert_eq!(p.workspace_words(), 0);
        let mut m = machine();
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
        let (mm, nn, kk) = p.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 6);
        let col = m.mem.alloc(1);
        let out = m.mem.alloc(mm * nn);
        conv_im2col_gemm(&mut m, GemmVariant::opt3(), &p, &img, w.buf, col, out, None);
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5));
        assert_eq!(m.phases.get(KernelPhase::Im2col), 0, "1x1 must skip im2col");
    }

    #[test]
    fn conv_runs_on_the_a64fx_profile_too() {
        // Cross-profile smoke: same kernel code, prefetching machine.
        let p = ConvParams { in_c: 4, in_h: 12, in_w: 12, out_c: 6, k: 3, stride: 1, pad: 1 };
        let mut m = Machine::new(MachineConfig::a64fx());
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
        let (mm, nn, kk) = p.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 6);
        let col = m.mem.alloc(p.workspace_words());
        let out = m.mem.alloc(mm * nn);
        let ws = GemmWorkspace::alloc(&mut m, lva_kernels_blocks());
        conv_im2col_gemm(&mut m, GemmVariant::opt6(), &p, &img, w.buf, col, out, Some(&ws));
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(approx_eq(m.mem.slice(out), &want, 1e-4, 1e-5));
        assert!(m.sys.l1.stats.prefetch_fills > 0, "A64FX HW prefetcher must fire");
    }

    fn lva_kernels_blocks() -> crate::BlockSizes {
        crate::BlockSizes::TABLE2_BEST
    }

    #[test]
    fn workspace_words_formula() {
        let p = ConvParams { in_c: 8, in_h: 10, in_w: 12, out_c: 2, k: 3, stride: 1, pad: 1 };
        let (_, n, k) = p.gemm_mnk();
        assert_eq!(p.workspace_words(), n * k);
        assert_eq!(p.flops(), 2 * (2 * 120 * 72) as u64);
    }

    #[test]
    fn gemm_dims_match_table4_layer1() {
        // Table IV L1 at 608x608: M=32, N=369664, K=27.
        let p = ConvParams { in_c: 3, in_h: 608, in_w: 608, out_c: 32, k: 3, stride: 1, pad: 1 };
        assert_eq!(p.gemm_mnk(), (32, 369664, 27));
    }

    #[test]
    fn gemm_dims_match_table4_layer2() {
        // Table IV L2: M=64, N=92416 (=304^2), K=288 after a stride-2 conv.
        let p = ConvParams { in_c: 32, in_h: 608, in_w: 608, out_c: 64, k: 3, stride: 2, pad: 1 };
        assert_eq!(p.gemm_mnk(), (64, 92416, 288));
    }
}
