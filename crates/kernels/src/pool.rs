//! Pooling and upsampling kernels (maxpool layers of YOLOv3-tiny/VGG16 and
//! the upsample layers of the YOLOv3 detection heads), vectorized across the
//! output row with strided loads; boundary columns where a window tap falls
//! outside the image are handled by a scalar epilogue.

use lva_isa::{KernelPhase, Machine, VReg};
use lva_tensor::Tensor;

const VT: VReg = 0;
const VACC: VReg = 1;

/// Maxpool geometry. `padding` is Darknet's *total* padding (default
/// `size - 1`), applied asymmetrically with `padding / 2` before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolParams {
    pub size: usize,
    pub stride: usize,
    pub padding: usize,
}

impl PoolParams {
    /// Darknet defaults: `padding = size - 1`.
    pub fn darknet(size: usize, stride: usize) -> Self {
        PoolParams { size, stride, padding: size - 1 }
    }

    /// Output spatial dims for an `h x w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + self.padding - self.size) / self.stride + 1,
            (w + self.padding - self.size) / self.stride + 1,
        )
    }
}

/// Vectorized maxpool: `out` must be a `c x out_h x out_w` tensor.
pub fn maxpool_vec(m: &mut Machine, p: &PoolParams, input: &Tensor, out: &Tensor) {
    let (c, h, w) = (input.shape.c, input.shape.h, input.shape.w);
    let (oh, ow) = p.out_hw(h, w);
    assert_eq!(out.shape.c, c);
    assert_eq!((out.shape.h, out.shape.w), (oh, ow));
    // Interior columns: every kx tap in-bounds for ix = ox*s + kx - before.
    let before = p.padding / 2;
    let x_lo = before.div_ceil(p.stride); // from kx = 0
    let x_hi = {
        // from kx = size-1: ix <= w-1 -> ox <= (w-1+before-(size-1))/s
        let upper = w as isize - 1 + before as isize - (p.size as isize - 1);
        if upper < 0 {
            0
        } else {
            (upper as usize / p.stride + 1).min(ow)
        }
    };
    let x_lo = x_lo.min(x_hi);
    m.phase(KernelPhase::Pool, |m| {
        for ci in 0..c {
            for oy in 0..oh {
                m.charge_scalar_ops(2);
                // Vector interior.
                let mut x = x_lo;
                while x < x_hi {
                    let gvl = m.setvl(x_hi - x);
                    m.vbroadcast(VACC, f32::NEG_INFINITY, gvl);
                    for ky in 0..p.size {
                        let iy = (oy * p.stride + ky) as isize - before as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..p.size {
                            let ix0 = (x * p.stride + kx) as isize - before as isize;
                            debug_assert!(ix0 >= 0);
                            let src = input.addr(ci, iy as usize, ix0 as usize);
                            m.vlse(VT, src, 4 * p.stride as u64, gvl);
                            m.vfmax_vv(VACC, VACC, VT, gvl);
                        }
                    }
                    m.vse(VACC, out.addr(ci, oy, x), gvl);
                    x += gvl;
                }
                // Scalar borders.
                for ox in (0..x_lo).chain(x_hi..ow) {
                    let mut mx = f32::NEG_INFINITY;
                    for ky in 0..p.size {
                        for kx in 0..p.size {
                            let iy = (oy * p.stride + ky) as isize - before as isize;
                            let ix = (ox * p.stride + kx) as isize - before as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                mx =
                                    mx.max(m.scalar_read(input.addr(ci, iy as usize, ix as usize)));
                            }
                        }
                    }
                    m.scalar_write(out.addr(ci, oy, ox), mx);
                }
            }
        }
    });
}

/// Vectorized nearest-neighbour 2x upsample: one unit-stride load per input
/// row chunk, four strided stores (even/odd columns of the two output rows).
pub fn upsample2_vec(m: &mut Machine, input: &Tensor, out: &Tensor) {
    let (c, h, w) = (input.shape.c, input.shape.h, input.shape.w);
    assert_eq!(out.shape.c, c);
    assert_eq!((out.shape.h, out.shape.w), (2 * h, 2 * w));
    m.phase(KernelPhase::Upsample, |m| {
        for ci in 0..c {
            for y in 0..h {
                let mut x = 0;
                while x < w {
                    let gvl = m.setvl(w - x);
                    m.vle(VT, input.addr(ci, y, x), gvl);
                    for dy in 0..2 {
                        let row = out.addr(ci, 2 * y + dy, 2 * x);
                        m.vsse(VT, row, 8, gvl);
                        m.vsse(VT, row + 4, 8, gvl);
                    }
                    x += gvl;
                }
            }
        }
    });
}

/// Global average pooling (Darknet `[avgpool]`): one scalar per channel.
/// Vectorized as a running vector sum per channel row plus a horizontal
/// reduction.
pub fn global_avgpool_vec(m: &mut Machine, input: &Tensor, out: &Tensor) {
    let (c, h, w) = (input.shape.c, input.shape.h, input.shape.w);
    assert_eq!((out.shape.c, out.shape.h, out.shape.w), (c, 1, 1));
    let spatial = h * w;
    m.phase(KernelPhase::Pool, |m| {
        let vlen = m.vlen_elems();
        for ci in 0..c {
            m.vbroadcast(VACC, 0.0, vlen);
            let mut i = 0;
            while i < spatial {
                let gvl = m.setvl(spatial - i);
                m.vle(VT, input.buf.addr(ci * spatial + i), gvl);
                m.vfadd_vv(VACC, VACC, VT, gvl);
                i += gvl;
            }
            let sum = m.vfredsum(VACC, vlen);
            m.charge_scalar_flops(1);
            m.scalar_write(out.addr(ci, 0, 0), sum / spatial as f32);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{maxpool_ref, upsample2_ref};
    use lva_isa::MachineConfig;
    use lva_tensor::Shape;

    fn machine() -> Machine {
        Machine::new(MachineConfig::sve_gem5(512, 1 << 20))
    }

    fn check_pool(c: usize, h: usize, w: usize, p: PoolParams) {
        let mut m = machine();
        let input = Tensor::random(&mut m, Shape::new(c, h, w), 3);
        let (oh, ow) = p.out_hw(h, w);
        let out = Tensor::alloc(&mut m, Shape::new(c, oh, ow));
        maxpool_vec(&mut m, &p, &input, &out);
        let want = maxpool_ref(&input.to_host(&m), c, h, w, p.size, p.stride, p.padding);
        assert_eq!(out.to_host(&m), want, "maxpool mismatch {p:?} on {c}x{h}x{w}");
    }

    #[test]
    fn maxpool_2x2_s2_matches() {
        check_pool(3, 8, 8, PoolParams { size: 2, stride: 2, padding: 0 });
    }

    #[test]
    fn maxpool_darknet_2x2_s2_matches() {
        // Darknet default padding = size-1 handles odd sizes: 9 -> 5.
        check_pool(2, 9, 5, PoolParams::darknet(2, 2));
    }

    #[test]
    fn maxpool_2x2_s1_p1_same_size() {
        // yolov3-tiny layer 11: spatial size preserved.
        let p = PoolParams::darknet(2, 1);
        assert_eq!(p.out_hw(13, 13), (13, 13));
        check_pool(2, 13, 13, p);
    }

    #[test]
    fn maxpool_3x3_s2_padded_matches() {
        check_pool(1, 6, 6, PoolParams { size: 3, stride: 2, padding: 2 });
    }

    #[test]
    fn global_avgpool_matches() {
        let mut m = machine();
        let input = Tensor::random(&mut m, Shape::new(4, 6, 7), 8);
        let out = Tensor::alloc(&mut m, Shape::new(4, 1, 1));
        global_avgpool_vec(&mut m, &input, &out);
        let host = input.to_host(&m);
        for ci in 0..4 {
            let want: f32 = host[ci * 42..(ci + 1) * 42].iter().sum::<f32>() / 42.0;
            let got = out.to_host(&m)[ci];
            assert!((got - want).abs() < 1e-4, "ch {ci}: {got} vs {want}");
        }
    }

    #[test]
    fn upsample_matches() {
        let mut m = machine();
        let input = Tensor::random(&mut m, Shape::new(3, 5, 7), 4);
        let out = Tensor::alloc(&mut m, Shape::new(3, 10, 14));
        upsample2_vec(&mut m, &input, &out);
        let want = upsample2_ref(&input.to_host(&m), 3, 5, 7);
        assert_eq!(out.to_host(&m), want);
    }
}
