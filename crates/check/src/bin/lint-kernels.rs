//! `lint-kernels` — run the kernel sanitizer and the co-design capacity
//! linter over every registered kernel on both ISA profiles, print the
//! results as JSON, and exit nonzero if anything was flagged.
//!
//! CI runs this as a correctness gate; see DESIGN.md "Static analysis".

use lva_check::{
    capacity_checks, check_kernel, lint_capacity, registered_kernels, sweep_configs, Finding,
};
use lva_core::Json;
use lva_isa::IsaKind;
use lva_kernels::{BlockSizes, DEFAULT_UNROLL};

/// Deepest Winograd channel count in the studied networks (YOLOv3 reaches
/// 512-in-channel 3x3 layers; Winograd capacity is checked at that depth).
const WINOGRAD_MAX_IN_C: usize = 512;

fn main() {
    // `--jobs N` fans the per-design-point checks out over worker threads
    // (0 = all cores). Findings are collected in design-point order, so the
    // report is identical for every N.
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                let n: usize =
                    args.next().and_then(|v| v.parse().ok()).expect("--jobs needs an integer");
                jobs = if n == 0 { lva_core::default_jobs() } else { n };
            }
            "--help" | "-h" => {
                eprintln!(
                    "lint-kernels: kernel sanitizer + capacity linter\n\nOptions:\n  --jobs N   check design points on N threads (0 = all cores)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let configs = sweep_configs();
    let kernels = registered_kernels();

    // One unit of work per design point: sanitize every supported kernel
    // and lint the capacity model. Each returns its own findings/capacity
    // block; submission-order collection keeps the report deterministic.
    let per_point = lva_core::parallel_map(&configs, jobs, |_, (profile, cfg)| {
        let mut findings: Vec<Finding> = Vec::new();
        let mut runs = 0usize;
        for case in kernels.iter().filter(|c| c.supports(cfg.vpu.isa)) {
            findings.extend(check_kernel(case, profile, cfg));
            runs += 1;
        }
        let wino = (cfg.vpu.isa == IsaKind::Sve).then_some(WINOGRAD_MAX_IN_C);
        let checks = capacity_checks(cfg, BlockSizes::TABLE2_BEST, DEFAULT_UNROLL, wino);
        findings.extend(lint_capacity(profile, &checks));
        let capacity = Json::obj().field("profile", *profile).field(
            "checks",
            checks.iter().map(lva_check::CapacityCheck::to_json).collect::<Vec<_>>(),
        );
        (findings, capacity, runs)
    });
    let mut findings: Vec<Finding> = Vec::new();
    let mut capacity = Vec::new();
    let mut runs = 0usize;
    for (f, c, r) in per_point {
        findings.extend(f);
        capacity.push(c);
        runs += r;
    }

    let report = Json::obj()
        .field("tool", "lint-kernels")
        .field("profiles", configs.iter().map(|(p, _)| Json::from(*p)).collect::<Vec<_>>())
        .field("kernels", kernels.iter().map(|k| Json::from(k.name)).collect::<Vec<_>>())
        .field("kernel_runs", runs)
        .field("capacity", capacity)
        .field("findings", findings.iter().map(Finding::to_json).collect::<Vec<_>>())
        .field("finding_count", findings.len());
    println!("{}", report.to_string_pretty());

    if !findings.is_empty() {
        eprintln!("lint-kernels: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}
