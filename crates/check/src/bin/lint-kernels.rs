//! `lint-kernels` — run the kernel sanitizer and the co-design capacity
//! linter over every registered kernel on both ISA profiles, print the
//! results as JSON, and exit nonzero if anything was flagged.
//!
//! Exit codes distinguish *what* went wrong: 0 = clean, 1 = findings
//! (the gate tripped), 2 = internal error (a kernel panicked or the
//! arguments were malformed) — so CI can tell a red gate from a broken
//! tool. CI runs this as a correctness gate; see DESIGN.md "Static
//! analysis".

use std::panic::{catch_unwind, AssertUnwindSafe};

use lva_check::{
    capacity_checks, check_kernel, lint_capacity, registered_kernels, sweep_configs, Finding,
};
use lva_core::cli::Opts;
use lva_core::Json;
use lva_isa::IsaKind;
use lva_kernels::{BlockSizes, DEFAULT_UNROLL};

/// Deepest Winograd channel count in the studied networks (YOLOv3 reaches
/// 512-in-channel 3x3 layers; Winograd capacity is checked at that depth).
const WINOGRAD_MAX_IN_C: usize = 512;

fn main() {
    // `--jobs N` fans the per-design-point checks out over worker threads
    // (0 = all cores). Findings are collected in design-point order, so the
    // report is identical for every N.
    let opts = Opts::parse_tool("lint-kernels: kernel sanitizer + capacity linter");

    let configs = sweep_configs();
    let kernels = registered_kernels();

    // One unit of work per design point: sanitize every supported kernel
    // and lint the capacity model. Each returns its own findings/capacity
    // block; submission-order collection keeps the report deterministic.
    // A panicking kernel is an internal error (exit 2), not a finding.
    type PointResult = Result<(Vec<Finding>, Json, usize), String>;
    let per_point: Vec<PointResult> =
        lva_core::parallel_map(&configs, opts.jobs, |_, (profile, cfg)| {
            catch_unwind(AssertUnwindSafe(|| {
                let mut findings: Vec<Finding> = Vec::new();
                let mut runs = 0usize;
                for case in kernels.iter().filter(|c| c.supports(cfg.vpu.isa)) {
                    findings.extend(check_kernel(case, profile, cfg));
                    runs += 1;
                }
                let wino = (cfg.vpu.isa == IsaKind::Sve).then_some(WINOGRAD_MAX_IN_C);
                let checks = capacity_checks(cfg, BlockSizes::TABLE2_BEST, DEFAULT_UNROLL, wino);
                findings.extend(lint_capacity(profile, &checks));
                let capacity = Json::obj().field("profile", *profile).field(
                    "checks",
                    checks.iter().map(lva_check::CapacityCheck::to_json).collect::<Vec<_>>(),
                );
                (findings, capacity, runs)
            }))
            .map_err(|e| format!("{profile}: {}", panic_message(&e)))
        });

    let mut findings: Vec<Finding> = Vec::new();
    let mut capacity = Vec::new();
    let mut runs = 0usize;
    let mut errors: Vec<String> = Vec::new();
    for r in per_point {
        match r {
            Ok((f, c, r)) => {
                findings.extend(f);
                capacity.push(c);
                runs += r;
            }
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("lint-kernels: internal error in {e}");
        }
        std::process::exit(2);
    }

    let report = Json::obj()
        .field("tool", "lint-kernels")
        .field("version", env!("CARGO_PKG_VERSION"))
        .field("design_points", configs.iter().map(|(p, _)| Json::from(*p)).collect::<Vec<_>>())
        .field("kernels", kernels.iter().map(|k| Json::from(k.name)).collect::<Vec<_>>())
        .field("kernel_runs", runs)
        .field("capacity", capacity)
        .field("findings", findings.iter().map(Finding::to_json).collect::<Vec<_>>())
        .field("finding_count", findings.len());
    println!("{}", report.to_string_pretty());
    if opts.json {
        save_results_json(&report, "lint-kernels");
    }
    lva_trace::flush();

    if !findings.is_empty() {
        eprintln!("lint-kernels: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

fn save_results_json(report: &Json, name: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create results/: {e}");
        std::process::exit(2);
    }
    let path = dir.join(format!("{name}.json"));
    let mut body = report.to_string_pretty();
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("could not save {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}
