//! The four sanitizer passes over a recorded vector-event stream.
//!
//! Each pass is a linear fold over the [`VecEvent`]s a recording
//! [`lva_isa::Machine`] captured, plus the allocation registry of the arena
//! the kernel ran in. Findings are deduplicated on a per-pass key (the same
//! bug inside a loop is reported once, not once per iteration).
//!
//! Pass semantics:
//!
//! * **uninit-read** — def-use analysis over the 32 vector registers. A
//!   definition with vector length `vl` defines the first `vl` lanes; lanes
//!   beyond `vl` keep their previous contents, so the defined prefix of a
//!   register only ever grows (this is what makes the common broadcast-full /
//!   accumulate-partial / reduce-full idiom legal). A read of more lanes
//!   than are defined is flagged.
//! * **oob** — every memory-touching event must fall inside the single live
//!   allocation that contains its start address; running past the end of a
//!   [`lva_sim::Buf`] (even into the padding before the next one) is flagged.
//! * **war-overlap** — load provenance: a register loaded from memory
//!   "remembers" its source range; a later store that overlaps the range
//!   (from a *different* register — writing a register back to where it was
//!   loaded from is the GEMM accumulator idiom) marks the copy stale, and
//!   any subsequent read of the stale register is flagged. Redefinition
//!   clears both provenance and staleness.
//! * **vl-discipline** — a partial vector length (shorter than a full
//!   register) may only be the exact length of the active `setvl`/`whilelt`
//!   grant, so predicated tails happen exactly where a grant says they do;
//!   full-register operation (`vl == vlen`) is the whole-register idiom and
//!   is always legal.

use crate::Finding;
use lva_isa::{EventKind, VReg, VecEvent, NUM_VREGS};
use lva_sim::AllocRecord;
use std::collections::HashSet;

/// Everything the passes need to know about one recorded kernel run.
pub struct EventTrace<'a> {
    pub kernel: &'a str,
    pub profile: &'a str,
    pub events: &'a [VecEvent],
    pub allocs: &'a [AllocRecord],
    /// Full register length in `f32` elements on the machine that ran.
    pub vlen_elems: usize,
}

impl EventTrace<'_> {
    fn finding(&self, pass: &'static str, detail: String) -> Finding {
        Finding { pass, kernel: self.kernel.to_string(), profile: self.profile.to_string(), detail }
    }

    /// Label of the allocation containing `addr`, for messages.
    fn buf_name(&self, addr: u64) -> &str {
        self.allocs.iter().find(|r| r.contains(addr)).map_or("<unmapped>", |r| r.label.as_str())
    }
}

/// Run all four passes.
pub fn sanitize(t: &EventTrace) -> Vec<Finding> {
    let mut out = uninit_reads(t);
    out.extend(oob_accesses(t));
    out.extend(war_overlaps(t));
    out.extend(vl_discipline(t));
    out
}

/// Registers read by an event (loads and grants read none).
fn reads_of(ev: &VecEvent) -> &[Option<VReg>] {
    match ev.kind {
        EventKind::Arith | EventKind::Store | EventKind::Reduce => &ev.srcs,
        _ => &[],
    }
}

/// Pass 1: reads of register lanes no definition has reached.
pub fn uninit_reads(t: &EventTrace) -> Vec<Finding> {
    let mut defined = [0usize; NUM_VREGS];
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, ev) in t.events.iter().enumerate() {
        for &src in reads_of(ev).iter().flatten() {
            let have = defined[src];
            if have < ev.vl && seen.insert((ev.op, src)) {
                out.push(t.finding(
                    "uninit-read",
                    format!(
                        "event {i}: {} reads v{src} over {} lanes but only {have} are defined",
                        ev.op, ev.vl
                    ),
                ));
            }
        }
        if let Some(dst) = ev.dst {
            if matches!(ev.kind, EventKind::Load | EventKind::Arith) {
                // Monotone: lanes beyond vl keep their old (defined) values.
                defined[dst] = defined[dst].max(ev.vl);
            }
        }
    }
    out
}

/// Pass 2: accesses that run past the end of the buffer they start in.
pub fn oob_accesses(t: &EventTrace) -> Vec<Finding> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, ev) in t.events.iter().enumerate() {
        if !ev.touches_memory() {
            continue;
        }
        match t.allocs.iter().find(|r| r.contains(ev.lo)) {
            None => {
                if seen.insert((ev.op, u64::MAX)) {
                    out.push(t.finding(
                        "oob",
                        format!(
                            "event {i}: {} (vl={}) touches [{:#x}, {:#x}) outside any live \
                             allocation",
                            ev.op, ev.vl, ev.lo, ev.hi
                        ),
                    ));
                }
            }
            Some(r) => {
                let end = r.buf.base + r.buf.bytes() as u64;
                if ev.hi > end && seen.insert((ev.op, r.buf.base)) {
                    out.push(t.finding(
                        "oob",
                        format!(
                            "event {i}: {} (vl={}) runs {} bytes past the end of '{}' \
                             ({} words at {:#x})",
                            ev.op,
                            ev.vl,
                            ev.hi - end,
                            r.label,
                            r.buf.words,
                            r.buf.base
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Pass 3: stale register copies (write-after-read overlap hazards).
pub fn war_overlaps(t: &EventTrace) -> Vec<Finding> {
    // Per register: the memory range it was loaded from, if still live.
    let mut prov: [Option<(u64, u64)>; NUM_VREGS] = [None; NUM_VREGS];
    // Per register: the store op + event index that overwrote its source.
    let mut stale: [Option<(&'static str, usize)>; NUM_VREGS] = [None; NUM_VREGS];
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, ev) in t.events.iter().enumerate() {
        for &src in reads_of(ev).iter().flatten() {
            if let Some((store_op, j)) = stale[src] {
                if seen.insert(src) {
                    let (lo, _) = prov[src].unwrap_or((0, 0));
                    out.push(t.finding(
                        "war-overlap",
                        format!(
                            "event {i}: {} reads v{src}, a stale copy of '{}' — {store_op} at \
                             event {j} overwrote its source range after the load",
                            ev.op,
                            t.buf_name(lo)
                        ),
                    ));
                }
            }
        }
        match ev.kind {
            EventKind::Load => {
                prov[ev.dst.expect("loads define a register")] = Some((ev.lo, ev.hi));
                stale[ev.dst.expect("loads define a register")] = None;
            }
            EventKind::Arith => {
                if let Some(dst) = ev.dst {
                    prov[dst] = None;
                    stale[dst] = None;
                }
            }
            EventKind::Store if ev.writes_memory() => {
                let src = ev.srcs[0];
                for r in 0..NUM_VREGS {
                    // Storing a register over its own source range is the
                    // accumulator write-back idiom, not a hazard.
                    if Some(r) == src {
                        continue;
                    }
                    if let Some((lo, hi)) = prov[r] {
                        if ev.lo < hi && lo < ev.hi && stale[r].is_none() {
                            stale[r] = Some((ev.op, i));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Pass 4: every partial vector length must be an active grant.
pub fn vl_discipline(t: &EventTrace) -> Vec<Finding> {
    let mut grant: Option<usize> = None;
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, ev) in t.events.iter().enumerate() {
        match ev.kind {
            EventKind::Grant => grant = Some(ev.vl),
            EventKind::Load | EventKind::Store | EventKind::Arith | EventKind::Reduce => {
                if ev.vl == t.vlen_elems {
                    continue; // whole-register idiom
                }
                match grant {
                    Some(g) if ev.vl == g => {}
                    Some(g) => {
                        if seen.insert((ev.op, ev.vl)) {
                            out.push(t.finding(
                                "vl-discipline",
                                format!(
                                    "event {i}: {} uses vl={} but the active grant is {g} \
                                     (vlen={})",
                                    ev.op, ev.vl, t.vlen_elems
                                ),
                            ));
                        }
                    }
                    None => {
                        if seen.insert((ev.op, ev.vl)) {
                            out.push(t.finding(
                                "vl-discipline",
                                format!(
                                    "event {i}: {} uses partial vl={} with no preceding \
                                     setvl/whilelt grant (vlen={})",
                                    ev.op, ev.vl, t.vlen_elems
                                ),
                            ));
                        }
                    }
                }
            }
            EventKind::PhaseBegin | EventKind::PhaseEnd => {}
        }
    }
    out
}
