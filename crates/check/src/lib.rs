//! # lva-check — vector-kernel sanitizer and co-design capacity linter
//!
//! Static analysis for the study's simulated kernels, in two halves:
//!
//! * **Kernel sanitizer** ([`sanitize`]) — replays the [`lva_isa::VecEvent`]
//!   stream a recording [`Machine`] captured while a kernel ran and checks
//!   architectural discipline: no reads of undefined register lanes, no
//!   accesses past the end of the [`lva_sim::Buf`] they belong to, no use of
//!   register copies whose backing memory was overwritten (stale-copy /
//!   write-after-read hazards), and no vector lengths that were never granted
//!   by `setvl`/`whilelt`. Recording is timing-neutral (cycle counts are
//!   bit-identical with the hook on or off — asserted by this crate's tests),
//!   so the sanitizer sees exactly the production kernels.
//!
//! * **Capacity linter** ([`capacity`]) — purely static: given the GEMM block
//!   sizes and Winograd tile parameters plus a [`MachineConfig`], it computes
//!   the per-level working-set footprints that §V of the paper sizes the
//!   cache hierarchy around, and flags any panel that exceeds its intended
//!   level (packed-A vs L1, packed-B vs L2, the streamed micro-panel vs the
//!   L1 or the RVV vector cache, the Winograd tile rows vs L1).
//!
//! The `lint-kernels` binary runs both halves over every registered kernel
//! ([`registry`]) on both ISA profiles across a representative config sweep,
//! emits the findings as JSON, and exits nonzero when anything is flagged —
//! CI runs it as a correctness gate.

#![forbid(unsafe_code)]

pub mod capacity;
pub mod registry;
pub mod sanitize;

use lva_core::Json;
use lva_isa::{Machine, MachineConfig, DEFAULT_L2_BYTES};

pub use capacity::{capacity_checks, lint_capacity, CapacityCheck};
pub use registry::{registered_kernels, KernelCase};
pub use sanitize::{sanitize, EventTrace};

/// One sanitizer or capacity-linter finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which pass produced it: `"uninit-read"`, `"oob"`, `"war-overlap"`,
    /// `"vl-discipline"`, or `"capacity"`.
    pub pass: &'static str,
    /// The kernel under analysis (`"static"` for capacity findings).
    pub kernel: String,
    /// The machine profile the kernel ran on (e.g. `"rvv/16384b"`).
    pub profile: String,
    /// Human-readable description naming the registers/buffers involved.
    pub detail: String,
}

impl Finding {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("pass", self.pass)
            .field("kernel", self.kernel.as_str())
            .field("profile", self.profile.as_str())
            .field("detail", self.detail.as_str())
    }
}

/// A registered kernel's recorded run on one machine configuration:
/// everything the static analyses downstream (the sanitizer here, the
/// dependence-graph certifier in `lva-depgraph`) need — the event stream,
/// the named-allocation registry, the hardware vector length, and the
/// simulated cycle count the run produced while being recorded.
#[derive(Debug)]
pub struct RecordedKernel {
    pub events: Vec<lva_isa::VecEvent>,
    pub allocs: Vec<lva_sim::AllocRecord>,
    pub vlen_elems: usize,
    pub cycles: u64,
}

/// Run one registered kernel on `cfg` with event recording enabled and
/// return the captured run. Recording is timing-neutral, so `cycles` is
/// bit-identical to an unrecorded run (asserted by tests here and in
/// `lva-depgraph`).
pub fn record_kernel(case: &KernelCase, cfg: &MachineConfig) -> RecordedKernel {
    let mut m = Machine::new(cfg.clone());
    m.record_events();
    (case.run)(&mut m);
    RecordedKernel {
        events: m.take_events(),
        allocs: m.mem.allocs().to_vec(),
        vlen_elems: m.vlen_elems(),
        cycles: m.cycles(),
    }
}

/// Run one registered kernel on `cfg` with event recording enabled and
/// sanitize the captured stream.
pub fn check_kernel(case: &KernelCase, profile: &str, cfg: &MachineConfig) -> Vec<Finding> {
    let rec = record_kernel(case, cfg);
    let trace = EventTrace {
        kernel: case.name,
        profile,
        events: &rec.events,
        allocs: &rec.allocs,
        vlen_elems: rec.vlen_elems,
    };
    sanitize(&trace)
}

/// The representative hardware design points the linter sweeps: both ISA
/// profiles, each at a short and at its maximum vector length (the co-design
/// axis of §V).
pub fn sweep_configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("rvv/4096b", MachineConfig::rvv_gem5(4096, 8, DEFAULT_L2_BYTES)),
        ("rvv/16384b", MachineConfig::rvv_gem5(16384, 8, DEFAULT_L2_BYTES)),
        ("sve/512b", MachineConfig::sve_gem5(512, DEFAULT_L2_BYTES)),
        ("sve/2048b", MachineConfig::sve_gem5(2048, DEFAULT_L2_BYTES)),
    ]
}
