//! The registry of kernels the linter runs: every simulated kernel in the
//! workspace, instantiated at a small representative shape.
//!
//! Shapes are deliberately tiny (the sanitizer analyzes the event stream,
//! whose density of distinct behaviours — tails, predication, packing,
//! spills — matters more than size), but each is chosen to exercise a
//! partial final vector (`n` not a multiple of any sweep vector length) so
//! the tail-handling discipline is actually covered.

use lva_isa::{IsaKind, Machine};
use lva_kernels::aux::{
    add_bias_vec, add_inplace_vec, copy_vec, fill_vec, normalize_vec, scale_bias_vec,
};
use lva_kernels::fc::{fully_connected_vec, softmax_vec};
use lva_kernels::gemm::{gemm_naive, gemm_opt3, gemm_opt6, GemmWorkspace};
use lva_kernels::im2col::im2col_vec;
use lva_kernels::pool::{global_avgpool_vec, maxpool_vec, upsample2_vec, PoolParams};
use lva_kernels::{
    conv_depthwise_vec, conv_direct_vec, conv_im2col_gemm, BlockSizes, ConvParams, GemmVariant,
};
use lva_tensor::{host_random, Matrix, Shape, Tensor};
use lva_winograd::{winograd_conv_vla, WinogradPlan};

/// One kernel the linter knows how to drive.
pub struct KernelCase {
    pub name: &'static str,
    /// The representative shape the case instantiates, as a stable label
    /// (recorded in `RetimeCertificate`s so a certificate names exactly
    /// what was proven).
    pub shape: &'static str,
    /// `None` runs on both ISA profiles; `Some(isa)` restricts it.
    pub isa: Option<IsaKind>,
    pub run: fn(&mut Machine),
}

impl KernelCase {
    pub fn supports(&self, isa: IsaKind) -> bool {
        self.isa.is_none_or(|k| k == isa)
    }
}

/// Every kernel under the sanitizer's gate.
pub fn registered_kernels() -> Vec<KernelCase> {
    vec![
        KernelCase { name: "gemm_naive", shape: "m4 n40 k9", isa: None, run: run_gemm_naive },
        KernelCase { name: "gemm_opt3", shape: "m8 n100 k27", isa: None, run: run_gemm_opt3 },
        KernelCase {
            name: "gemm_opt6",
            shape: "m16 n96 k32 blocks 8x64x16",
            isa: None,
            run: run_gemm_opt6,
        },
        KernelCase { name: "im2col", shape: "3x9x9 k3 s2 p1", isa: None, run: run_im2col },
        KernelCase {
            name: "conv_im2col_gemm",
            shape: "3x10x10 oc4 k3 s1 p1",
            isa: None,
            run: run_conv_im2col,
        },
        KernelCase {
            name: "conv_direct_3x3",
            shape: "4x10x10 oc6 k3 s1 p1",
            isa: None,
            run: run_direct_3x3,
        },
        KernelCase {
            name: "conv_direct_1x1",
            shape: "8x6x6 oc4 k1 s1 p0",
            isa: None,
            run: run_direct_1x1,
        },
        KernelCase {
            name: "conv_depthwise",
            shape: "4x10x10 k3 s1",
            isa: None,
            run: run_depthwise,
        },
        KernelCase { name: "maxpool", shape: "4x8x8 2x2 s2", isa: None, run: run_maxpool },
        KernelCase { name: "upsample2", shape: "3x6x6 -> 3x12x12", isa: None, run: run_upsample2 },
        KernelCase {
            name: "global_avgpool",
            shape: "4x7x7 -> 4x1x1",
            isa: None,
            run: run_global_avgpool,
        },
        KernelCase { name: "fc_softmax", shape: "10x64", isa: None, run: run_fc_softmax },
        KernelCase { name: "aux_ops", shape: "c3 s50 + copy64", isa: None, run: run_aux_ops },
        KernelCase {
            name: "winograd_f6x3",
            shape: "8x12x12 oc4 k3 s1 p1",
            isa: Some(IsaKind::Sve),
            run: run_winograd,
        },
    ]
}

fn run_gemm_naive(m: &mut Machine) {
    let (mm, nn, kk) = (4, 40, 9);
    let a = Matrix::random(m, mm, kk, 1);
    let b = Matrix::random(m, kk, nn, 2);
    let c = m.mem.alloc_named("c", mm * nn);
    gemm_naive(m, mm, nn, kk, 1.0, a.buf, b.buf, c);
}

fn run_gemm_opt3(m: &mut Machine) {
    let (mm, nn, kk) = (8, 100, 27);
    let a = Matrix::random(m, mm, kk, 1);
    let b = Matrix::random(m, kk, nn, 2);
    let c = m.mem.alloc_named("c", mm * nn);
    gemm_opt3(m, mm, nn, kk, 1.0, a.buf, b.buf, c, 4);
}

fn run_gemm_opt6(m: &mut Machine) {
    let (mm, nn, kk) = (16, 96, 32);
    let blocks = BlockSizes { m: 8, n: 64, k: 16 };
    let a = Matrix::random(m, mm, kk, 1);
    let b = Matrix::random(m, kk, nn, 2);
    let c = m.mem.alloc_named("c", mm * nn);
    let ws = GemmWorkspace::alloc(m, blocks);
    gemm_opt6(m, mm, nn, kk, 1.0, a.buf, b.buf, c, 4, blocks, &ws);
}

fn run_im2col(m: &mut Machine) {
    // Stride-2 with padding exercises the gather/border paths of the
    // vectorized lowering on their own.
    let p = ConvParams { in_c: 3, in_h: 9, in_w: 9, out_c: 1, k: 3, stride: 2, pad: 1 };
    let img = Tensor::random(m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
    let col = m.mem.alloc_named("col", p.workspace_words());
    im2col_vec(m, &p, &img, col);
}

fn run_conv_im2col(m: &mut Machine) {
    let p = ConvParams { in_c: 3, in_h: 10, in_w: 10, out_c: 4, k: 3, stride: 1, pad: 1 };
    let img = Tensor::random(m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
    let (mm, nn, kk) = p.gemm_mnk();
    let w = Matrix::random(m, mm, kk, 6);
    let col = m.mem.alloc_named("col", p.workspace_words());
    let out = m.mem.alloc_named("out", mm * nn);
    conv_im2col_gemm(m, GemmVariant::Opt3 { unroll: 4 }, &p, &img, w.buf, col, out, None);
}

fn run_direct_3x3(m: &mut Machine) {
    let p = ConvParams { in_c: 4, in_h: 10, in_w: 10, out_c: 6, k: 3, stride: 1, pad: 1 };
    direct_case(m, p);
}

fn run_direct_1x1(m: &mut Machine) {
    let p = ConvParams { in_c: 8, in_h: 6, in_w: 6, out_c: 4, k: 1, stride: 1, pad: 0 };
    direct_case(m, p);
}

fn direct_case(m: &mut Machine, p: ConvParams) {
    let img = Tensor::random(m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
    let w = m.mem.alloc_from(&host_random(p.out_c * p.in_c * p.k * p.k, 6));
    let (oh, ow) = p.out_hw();
    let out = m.mem.alloc_named("out", p.out_c * oh * ow);
    conv_direct_vec(m, &p, &img, w, out);
}

fn run_depthwise(m: &mut Machine) {
    let p = lva_kernels::depthwise::depthwise_params(4, 10, 10, 3, 1);
    let img = Tensor::random(m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
    let w = m.mem.alloc_from(&host_random(p.in_c * p.k * p.k, 6));
    let (oh, ow) = p.out_hw();
    let out = m.mem.alloc_named("out", p.in_c * oh * ow);
    conv_depthwise_vec(m, &p, &img, w, out);
}

fn run_maxpool(m: &mut Machine) {
    let p = PoolParams { size: 2, stride: 2, padding: 0 };
    let input = Tensor::random(m, Shape::new(4, 8, 8), 5);
    let (oh, ow) = p.out_hw(8, 8);
    let out = Tensor::alloc(m, Shape::new(4, oh, ow));
    maxpool_vec(m, &p, &input, &out);
}

fn run_upsample2(m: &mut Machine) {
    let input = Tensor::random(m, Shape::new(3, 6, 6), 5);
    let out = Tensor::alloc(m, Shape::new(3, 12, 12));
    upsample2_vec(m, &input, &out);
}

fn run_global_avgpool(m: &mut Machine) {
    let input = Tensor::random(m, Shape::new(4, 7, 7), 5);
    let out = Tensor::alloc(m, Shape::new(4, 1, 1));
    global_avgpool_vec(m, &input, &out);
}

fn run_fc_softmax(m: &mut Machine) {
    let (outputs, inputs) = (10, 64);
    let w = Matrix::random(m, outputs, inputs, 1);
    let x = m.mem.alloc_from(&host_random(inputs, 2));
    let out = m.mem.alloc_named("out", outputs);
    fully_connected_vec(m, w.buf, x, out, outputs, inputs);
    softmax_vec(m, out, outputs);
}

fn run_aux_ops(m: &mut Machine) {
    let (channels, spatial) = (3, 50);
    let x = m.mem.alloc_named("x", channels * spatial);
    let bias = m.mem.alloc_from(&host_random(channels, 1));
    let scale = m.mem.alloc_from(&host_random(channels, 2));
    let mean = m.mem.alloc_from(&host_random(channels, 3));
    let var = m.mem.alloc_from(&[0.5; 3]);
    fill_vec(m, x, 0, channels * spatial, 0.25);
    add_bias_vec(m, x, bias, channels, spatial);
    scale_bias_vec(m, x, scale, channels, spatial);
    normalize_vec(m, x, mean, var, channels, spatial);
    let src = m.mem.alloc_from(&host_random(64, 4));
    let dst = m.mem.alloc_named("dst", 64);
    copy_vec(m, src, 0, dst, 0, 64);
    add_inplace_vec(m, src, dst, 64);
}

fn run_winograd(m: &mut Machine) {
    let p = ConvParams { in_c: 8, in_h: 12, in_w: 12, out_c: 4, k: 3, stride: 1, pad: 1 };
    let input = Tensor::random(m, Shape::new(p.in_c, p.in_h, p.in_w), 5);
    let weights = m.mem.alloc_from(&host_random(p.out_c * p.in_c * 9, 6));
    let (oh, ow) = p.out_hw();
    let out = m.mem.alloc_named("out", p.out_c * oh * ow);
    let mut plan = WinogradPlan::new(m, p, weights);
    winograd_conv_vla(m, &mut plan, &input, out);
}
