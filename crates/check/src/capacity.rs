//! The co-design capacity linter: static working-set footprints vs the
//! cache hierarchy (§V of the paper, mechanized).
//!
//! The BLIS-style 6-loop GEMM keeps the packed A panel (`blockM x blockK`)
//! resident in L1 while the packed B panel (`blockK x blockN`) streams from
//! L2, and the micro-kernel streams one `blockK x VL` column slice of B per
//! register tile; Table II's block-size sweep is exactly a search over
//! footprints that respect those levels. Winograd's inter-tile channel
//! packing similarly keeps one transformed tile row (`VL/4` channels x 64
//! frequencies) hot while the V working set streams from L2. The linter
//! evaluates each footprint against half of its target level's capacity —
//! half, because the paper's kernels always double-buffer a panel against
//! the outputs and the other operand sharing the level — and flags any
//! parameter choice that cannot fit.

use crate::Finding;
use lva_isa::{IsaKind, MachineConfig, NUM_VREGS};
use lva_kernels::BlockSizes;
use lva_sim::VpuPath;

/// Winograd F(6,3) operates on 8x8 tiles: 64 frequencies per tile.
const WINO_FREQS: usize = 64;
/// Channels are packed in groups of 4 (two 8x4 half-rows per channel).
const WINO_GROUP: usize = 4;
/// Registers the GEMM micro-kernels reserve outside the accumulator file
/// (the streamed B row and the spill temporary).
const RESERVED_VREGS: usize = 2;

/// One evaluated footprint.
#[derive(Debug, Clone)]
pub struct CapacityCheck {
    /// What is being sized (e.g. `"a-panel"`).
    pub name: &'static str,
    /// The hierarchy level it must fit: `"L1"`, `"L2"`, `"vcache"`, or
    /// `"vregs"`.
    pub level: &'static str,
    /// Footprint in bytes (registers for `"vregs"`).
    pub used: usize,
    /// Available budget at that level, same unit.
    pub budget: usize,
    /// The formula, with numbers substituted.
    pub detail: String,
}

impl CapacityCheck {
    pub fn ok(&self) -> bool {
        self.used <= self.budget
    }

    pub fn to_json(&self) -> lva_core::Json {
        lva_core::Json::obj()
            .field("name", self.name)
            .field("level", self.level)
            .field("used", self.used)
            .field("budget", self.budget)
            .field("ok", self.ok())
            .field("detail", self.detail.as_str())
    }
}

/// Evaluate every footprint of a software setup on `cfg`. `winograd_in_c`
/// is the deepest channel count Winograd will see (SVE only; ignored on
/// RISC-V Vector, where Winograd does not run).
pub fn capacity_checks(
    cfg: &MachineConfig,
    blocks: BlockSizes,
    unroll: usize,
    winograd_in_c: Option<usize>,
) -> Vec<CapacityCheck> {
    let vlen = cfg.vpu.vlen_elems();
    let l1_half = cfg.mem.l1.bytes / 2;
    let l2_half = cfg.mem.l2.bytes / 2;
    let mut out = vec![
        CapacityCheck {
            name: "unroll-accumulators",
            level: "vregs",
            used: unroll + RESERVED_VREGS,
            budget: NUM_VREGS,
            detail: format!(
                "unroll {unroll} + {RESERVED_VREGS} reserved regs vs {NUM_VREGS} vector registers"
            ),
        },
        CapacityCheck {
            name: "a-panel",
            level: "L1",
            used: blocks.m * blocks.k * 4,
            budget: l1_half,
            detail: format!(
                "packed A panel blockM*blockK*4 = {}*{}*4 B vs L1/2 = {l1_half} B",
                blocks.m, blocks.k
            ),
        },
        CapacityCheck {
            name: "b-panel",
            level: "L2",
            used: blocks.k * blocks.n * 4,
            budget: l2_half,
            detail: format!(
                "packed B panel blockK*blockN*4 = {}*{}*4 B vs L2/2 = {l2_half} B",
                blocks.k, blocks.n
            ),
        },
    ];
    match cfg.mem.vpu_path {
        VpuPath::ThroughL1 => out.push(CapacityCheck {
            name: "b-micropanel",
            level: "L1",
            used: blocks.k * vlen * 4,
            budget: l1_half,
            detail: format!(
                "streamed B micro-panel blockK*VL*4 = {}*{vlen}*4 B vs L1/2 = {l1_half} B",
                blocks.k
            ),
        }),
        VpuPath::DecoupledL2 { vcache_bytes } => out.push(CapacityCheck {
            name: "vector-row",
            level: "vcache",
            used: vlen * 4,
            budget: vcache_bytes,
            detail: format!(
                "one max-length register row VL*4 = {vlen}*4 B vs vector cache = {vcache_bytes} B"
            ),
        }),
    }
    if cfg.vpu.isa == IsaKind::Sve {
        if let Some(in_c) = winograd_in_c {
            out.push(CapacityCheck {
                name: "winograd-tile-row",
                level: "L1",
                used: (vlen / WINO_GROUP) * WINO_FREQS * 4,
                budget: l1_half,
                detail: format!(
                    "transformed tile row (VL/{WINO_GROUP})*{WINO_FREQS}*4 = \
                     ({vlen}/{WINO_GROUP})*{WINO_FREQS}*4 B vs L1/2 = {l1_half} B"
                ),
            });
            out.push(CapacityCheck {
                name: "winograd-v-panel",
                level: "L2",
                used: in_c * WINO_FREQS * 4,
                budget: l2_half,
                detail: format!(
                    "V working set in_c*{WINO_FREQS}*4 = {in_c}*{WINO_FREQS}*4 B vs \
                     L2/2 = {l2_half} B"
                ),
            });
        }
    }
    out
}

/// Convert failed checks into findings.
pub fn lint_capacity(profile: &str, checks: &[CapacityCheck]) -> Vec<Finding> {
    checks
        .iter()
        .filter(|c| !c.ok())
        .map(|c| Finding {
            pass: "capacity",
            kernel: "static".to_string(),
            profile: profile.to_string(),
            detail: format!(
                "{} exceeds {} budget: {} > {} ({})",
                c.name, c.level, c.used, c.budget, c.detail
            ),
        })
        .collect()
}
