//! Sanitizer validation: one deliberately-broken kernel per pass, each
//! asserting the exact finding; plus the two properties the whole scheme
//! rests on — recording is timing-neutral, and every registered production
//! kernel is clean on every swept design point.

use lva_check::{
    capacity_checks, check_kernel, lint_capacity, registered_kernels, sanitize, sweep_configs,
    EventTrace, Finding,
};
use lva_isa::{Machine, MachineConfig, VecEvent};
use lva_kernels::{BlockSizes, DEFAULT_UNROLL};
use lva_sim::AllocRecord;

/// A small RVV machine: vlen 512 bits = 16 f32 lanes.
fn machine() -> Machine {
    Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20))
}

fn run_broken(build: impl FnOnce(&mut Machine)) -> (Vec<VecEvent>, Vec<AllocRecord>, usize) {
    let mut m = machine();
    m.record_events();
    build(&mut m);
    (m.take_events(), m.mem.allocs().to_vec(), m.vlen_elems())
}

fn findings_of(events: &[VecEvent], allocs: &[AllocRecord], vlen: usize) -> Vec<Finding> {
    sanitize(&EventTrace { kernel: "broken", profile: "test", events, allocs, vlen_elems: vlen })
}

#[test]
fn uninit_read_is_flagged() {
    let (events, allocs, vlen) = run_broken(|m| {
        let a = m.mem.alloc_named("a", 32);
        let g = m.setvl(16);
        m.vle(1, a.addr(0), g);
        m.vfadd_vv(3, 1, 2, g); // v2 was never defined
    });
    let f = findings_of(&events, &allocs, vlen);
    assert_eq!(f.len(), 1, "expected exactly the uninit finding, got {f:?}");
    assert_eq!(f[0].pass, "uninit-read");
    assert!(f[0].detail.contains("reads v2"), "detail: {}", f[0].detail);
    assert!(f[0].detail.contains("only 0 are defined"), "detail: {}", f[0].detail);
}

#[test]
fn partial_definition_prefix_is_tracked() {
    // Defining 8 lanes then reading 16 is the bug; reading 8 is fine.
    let (events, allocs, vlen) = run_broken(|m| {
        let a = m.mem.alloc_named("a", 32);
        let g8 = m.setvl(8);
        m.vle(1, a.addr(0), g8);
        let g16 = m.setvl(16);
        m.vse(1, a.addr(16), g16); // reads lanes 8..16 of v1: undefined
    });
    let f = findings_of(&events, &allocs, vlen);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].pass, "uninit-read");
    assert!(f[0].detail.contains("only 8 are defined"), "detail: {}", f[0].detail);
}

#[test]
fn oob_past_buffer_end_is_flagged_and_names_the_buffer() {
    let (events, allocs, vlen) = run_broken(|m| {
        // "small" is 8 words but padded to the 16-word allocation grain, so
        // a 16-lane load stays inside the arena (no hard panic) while
        // overrunning the buffer — exactly what the per-allocation pass is
        // for.
        let small = m.mem.alloc_named("small", 8);
        let _victim = m.mem.alloc_named("victim", 64);
        let g = m.setvl(16);
        m.vle(1, small.addr(0), g);
    });
    let f = findings_of(&events, &allocs, vlen);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].pass, "oob");
    assert!(f[0].detail.contains("'small'"), "detail: {}", f[0].detail);
    assert!(f[0].detail.contains("32 bytes past the end"), "detail: {}", f[0].detail);
}

#[test]
fn war_overlap_is_flagged() {
    let (events, allocs, vlen) = run_broken(|m| {
        let shared = m.mem.alloc_named("shared", 32);
        let g = m.setvl(16);
        m.vle(1, shared.addr(0), g); // v1 <- shared[0..16]
        m.vbroadcast(2, 1.0, g);
        m.vse(2, shared.addr(0), g); // overwrites v1's source range
        m.vfadd_vv(3, 1, 1, g); // reads the stale copy
    });
    let f = findings_of(&events, &allocs, vlen);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].pass, "war-overlap");
    assert!(f[0].detail.contains("v1"), "detail: {}", f[0].detail);
    assert!(f[0].detail.contains("'shared'"), "detail: {}", f[0].detail);
}

#[test]
fn writeback_of_the_same_register_is_not_a_war_hazard() {
    // The GEMM accumulator idiom: load C, accumulate, store C back.
    let (events, allocs, vlen) = run_broken(|m| {
        let c = m.mem.alloc_named("c", 32);
        let g = m.setvl(16);
        m.vle(1, c.addr(0), g);
        m.vfadd_vf(1, 1, 2.0, g);
        m.vse(1, c.addr(0), g);
        m.vfadd_vv(3, 1, 1, g); // still reading v1 afterwards is fine
    });
    let f = findings_of(&events, &allocs, vlen);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn ungoverned_partial_vl_is_flagged() {
    let (events, allocs, vlen) = run_broken(|m| {
        let a = m.mem.alloc_named("a", 32);
        let g = m.setvl(12);
        assert_eq!(g, 12);
        m.vbroadcast(1, 0.0, 16); // vl == vlen: whole-register idiom, legal
        m.vse(1, a.addr(0), 10); // partial vl that matches no grant
    });
    let f = findings_of(&events, &allocs, vlen);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].pass, "vl-discipline");
    assert!(f[0].detail.contains("vl=10"), "detail: {}", f[0].detail);
    assert!(f[0].detail.contains("grant is 12"), "detail: {}", f[0].detail);
}

#[test]
fn recording_is_timing_neutral_for_every_kernel_and_profile() {
    for (profile, cfg) in sweep_configs() {
        for case in registered_kernels().iter().filter(|c| c.supports(cfg.vpu.isa)) {
            let mut plain = Machine::new(cfg.clone());
            (case.run)(&mut plain);
            let mut recorded = Machine::new(cfg.clone());
            recorded.record_events();
            (case.run)(&mut recorded);
            assert!(!recorded.take_events().is_empty() || case.name == "gemm_naive");
            assert_eq!(
                plain.cycles(),
                recorded.cycles(),
                "recording changed the cycle count of {} on {profile}",
                case.name
            );
        }
    }
}

#[test]
fn every_registered_kernel_is_clean_on_every_profile() {
    // The same gate CI enforces through `lint-kernels`, as a tier-1 test.
    for (profile, cfg) in sweep_configs() {
        for case in registered_kernels().iter().filter(|c| c.supports(cfg.vpu.isa)) {
            let f = check_kernel(case, profile, &cfg);
            assert!(f.is_empty(), "{} on {profile}: {f:#?}", case.name);
        }
    }
}

#[test]
fn paper_block_sizes_fit_every_swept_design_point() {
    for (profile, cfg) in sweep_configs() {
        let checks = capacity_checks(&cfg, BlockSizes::TABLE2_BEST, DEFAULT_UNROLL, Some(512));
        let f = lint_capacity(profile, &checks);
        assert!(f.is_empty(), "{profile}: {f:#?}");
    }
}

#[test]
fn oversized_blocks_are_flagged_by_the_capacity_linter() {
    // Table II's worst row: blockM=128, blockN=1024, blockK=256. Its packed
    // B panel is 1 MiB (the whole L2) and its SVE micro-panel is 64 KiB
    // (the whole L1) — both over budget.
    let blocks = BlockSizes { m: 128, n: 1024, k: 256 };
    let (profile, cfg) = sweep_configs().remove(3); // sve/2048b
    let checks = capacity_checks(&cfg, blocks, DEFAULT_UNROLL, None);
    let f = lint_capacity(profile, &checks);
    let names: Vec<&str> = f.iter().map(|x| x.detail.split_whitespace().next().unwrap()).collect();
    assert!(names.contains(&"b-panel"), "{f:#?}");
    assert!(names.contains(&"b-micropanel"), "{f:#?}");
}

#[test]
fn overlong_unroll_is_flagged() {
    let (profile, cfg) = sweep_configs().remove(0);
    let checks = capacity_checks(&cfg, BlockSizes::TABLE2_BEST, 31, None);
    let f = lint_capacity(profile, &checks);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].detail.contains("unroll-accumulators"), "{}", f[0].detail);
}
