//! Predicted-vs-simulated validation of the `lva-prof` reuse-distance
//! profiler over the whole kernel registry.
//!
//! The Mattson model predicts the hit rate of a *fully-associative* LRU
//! cache from the demand stream alone; the simulator runs set-associative
//! LRU caches. On the gem5 profiles (no prefetchers) the only divergence is
//! conflict misses, which the registry's streaming/blocked kernels barely
//! produce — so at the paper's Table II design points the predicted L2 hit
//! rate must track the simulated one to within 1% absolute (the PR's
//! acceptance criterion for the headline GEMM and Winograd kernels).
//!
//! The same pass pins the observational guarantees: attaching the profiler
//! never changes a cycle count, and every miss gets exactly one 3C class.

use lva_check::registry::{registered_kernels, KernelCase};
use lva_isa::{Machine, MachineConfig};
use lva_prof::MemProfile;
use lva_sim::TapLevel;

/// Table II / §V design points: RVV 2048-bit × 8 lanes and SVE 512-bit,
/// with the L2 at 1 MB (the paper's default) and 4 MB (first sweep step).
fn design_points() -> Vec<(String, MachineConfig)> {
    let mut out = Vec::new();
    for l2 in [1usize << 20, 4 << 20] {
        out.push((format!("rvv/2048b/L2={}MB", l2 >> 20), MachineConfig::rvv_gem5(2048, 8, l2)));
        out.push((format!("sve/512b/L2={}MB", l2 >> 20), MachineConfig::sve_gem5(512, l2)));
    }
    out
}

fn run_profiled(case: &KernelCase, cfg: &MachineConfig) -> (Machine, MemProfile) {
    let mut m = Machine::new(cfg.clone());
    let handle = lva_prof::attach(&mut m.sys);
    (case.run)(&mut m);
    let profile = handle.detach(&mut m.sys);
    (m, profile)
}

/// Every (design point, supported kernel) pair, flattened so the heavy
/// validation loops can fan out over [`lva_core::parallel_map`]. Each pair
/// is an independent simulation; a panic in any worker still fails the
/// test at scope join.
fn agreement_pairs() -> Vec<(String, MachineConfig, KernelCase)> {
    let mut out = Vec::new();
    for (name, cfg) in design_points() {
        for case in registered_kernels() {
            if case.supports(cfg.vpu.isa) {
                out.push((name.clone(), cfg.clone(), case));
            }
        }
    }
    out
}

#[test]
fn profiler_is_timing_neutral_on_every_registry_kernel() {
    let pairs = agreement_pairs();
    lva_core::parallel_map(&pairs, lva_core::default_jobs(), |_, (name, cfg, case)| {
        let mut plain = Machine::new(cfg.clone());
        (case.run)(&mut plain);
        let (profiled, _) = run_profiled(case, cfg);
        assert_eq!(
            profiled.cycles(),
            plain.cycles(),
            "{} @ {name}: tap must not perturb timing",
            case.name
        );
    });
}

#[test]
fn predicted_l2_hit_rate_within_1pct_of_simulated() {
    let pairs = agreement_pairs();
    lva_core::parallel_map(&pairs, lva_core::default_jobs(), |_, (name, cfg, case)| {
        let (m, profile) = run_profiled(case, cfg);
        let l2 = profile.level(TapLevel::L2).expect("l2 profiled");
        assert_eq!(l2.accesses, m.sys.l2.stats.accesses, "{} @ {name}", case.name);
        if l2.accesses == 0 {
            return;
        }
        let predicted = l2.predicted_hit_rate();
        let simulated = l2.sim_hit_rate();
        assert!(
            (predicted - simulated).abs() < 0.01,
            "{} @ {name}: predicted L2 hit rate {predicted:.4} vs simulated {simulated:.4} \
             ({} accesses) — agreement criterion is 1% absolute",
            case.name,
            l2.accesses,
        );
    });
}

#[test]
fn misses_are_fully_classified_and_curve_is_monotone() {
    let (_, cfg) = &design_points()[0];
    for case in registered_kernels() {
        if !case.supports(cfg.vpu.isa) {
            continue;
        }
        let (m, profile) = run_profiled(&case, cfg);
        for (level, stats) in [(TapLevel::L1, &m.sys.l1.stats), (TapLevel::L2, &m.sys.l2.stats)] {
            let Some(lp) = profile.level(level) else { continue };
            if lp.accesses == 0 {
                continue;
            }
            assert_eq!(
                stats.three_c.classified(),
                stats.misses,
                "{}: every {} miss needs exactly one 3C class",
                case.name,
                level.name()
            );
            // The capacity curve never decreases with more capacity.
            let curve = lp.curve_bytes();
            for w in curve.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: non-monotone curve", case.name);
            }
        }
    }
}
