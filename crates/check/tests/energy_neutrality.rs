//! The energy-accounting contract at kernel granularity: attaching the
//! `lva-energy` streaming probe (event sink + memory tap) must leave cycle
//! counts bit-identical, and the counts it streams must equal the
//! machine's own aggregate counters — per kernel, per Table II design
//! point.

use lva_check::registered_kernels;
use lva_energy::{EnergyCounts, EnergyModel};
use lva_isa::{Machine, MachineConfig};

/// Three Table II design points: RVV at the short and long ends of the
/// vector-length axis, plus the SVE profile (no vector cache, hardware
/// prefetch) so both memory-path shapes are covered.
fn design_points() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("rvv/512b", MachineConfig::rvv_gem5(512, 8, 1 << 20)),
        ("rvv/4096b", MachineConfig::rvv_gem5(4096, 8, 1 << 20)),
        ("sve/512b", MachineConfig::sve_gem5(512, 1 << 20)),
    ]
}

/// Counts a finished machine reports, shaped like the probe's tally.
fn aggregate_counts(m: &Machine) -> EnergyCounts {
    let v = &m.stats;
    let s = m.sys.stats();
    EnergyCounts {
        vec_flops: v.vec_flops,
        vec_instrs: v.vec_instrs,
        scalar_ops: v.scalar_ops + v.scalar_flops,
        l1_accesses: s.l1.accesses + s.vcache.accesses,
        l2_accesses: s.l2.accesses,
        dram_transfers: s.dram_reads + s.dram_writes,
        l1_prefetch_fills: s.l1.prefetch_fills + s.vcache.prefetch_fills,
        l2_prefetch_fills: s.l2.prefetch_fills,
    }
}

#[test]
fn energy_probe_is_timing_neutral_for_every_kernel_and_design_point() {
    for (profile, cfg) in design_points() {
        for case in registered_kernels().iter().filter(|c| c.supports(cfg.vpu.isa)) {
            let mut plain = Machine::new(cfg.clone());
            (case.run)(&mut plain);
            let mut probed = Machine::new(cfg.clone());
            let probe = lva_energy::attach(&mut probed);
            (case.run)(&mut probed);
            assert_eq!(
                plain.cycles(),
                probed.cycles(),
                "energy accounting changed the cycle count of {} on {profile}",
                case.name
            );
            assert_eq!(
                plain.stats, probed.stats,
                "energy accounting changed VPU counters of {} on {profile}",
                case.name
            );
            // The streamed counts must equal the machine's own aggregates —
            // the integer half of the sum-to-total invariant. Kernels run
            // outside any layer scope, so everything lands in `outside`.
            let report = lva_nn::NetReport {
                layers: Vec::new(),
                cycles: probed.cycles(),
                phases: probed.phases.clone(),
                vpu: probed.stats,
                mem: probed.sys.stats(),
                stalls: probed.stalls,
            };
            let want = aggregate_counts(&probed);
            let att = probe.finish(&mut probed, &report, &EnergyModel::default(), 1 << 20);
            assert!(att.layers.is_empty(), "no layer scopes in a bare kernel run");
            assert!(att.reconciliation_rel_err().is_finite());
            assert!(
                att.reconciliation_rel_err() < 1e-6,
                "{} on {profile}: streamed {} J vs aggregate {} J",
                case.name,
                att.total.total_j(),
                att.report.total_j()
            );
            // White-box: the outside bucket carries exactly the aggregates.
            assert_eq!(att.outside_counts, want, "{} on {profile}", case.name);
        }
    }
}
