//! The event-energy model — constants and the two charging paths.
//!
//! §I motivates vector CPUs by energy efficiency and §V notes that caches
//! "occupy significant die area", but the paper stops at performance. This
//! module closes the loop with a simple, documented event-energy model so
//! the harness can report energy-per-inference and energy-delay product
//! across the same design grid, exposing the point where ever-larger L2
//! caches stop paying for their leakage.
//!
//! The constants are order-of-magnitude values for a 7 nm-class process
//! (CACTI-flavoured SRAM access energies, DRAM interface energy, published
//! FMA energy estimates). Absolute joules are indicative; *relative*
//! comparisons across design points are the purpose.
//!
//! Two consumers share one charging function ([`EnergyModel::charge`]):
//!
//! * the **aggregate** path ([`EnergyModel::estimate`]) folds a finished
//!   run's counters ([`EnergyCounts::from_report`]) into one
//!   [`EnergyBreakdown`];
//! * the **streaming** path (`crate::probe`) accumulates the same integer
//!   counts per layer as events arrive and charges each layer separately.
//!
//! Because both paths multiply the *same integer counts* by the *same
//! constants*, the streamed per-layer total reconciles with the aggregate
//! estimate to float-rounding precision — the sum-to-total invariant the
//! tests pin at 1e-6 relative.

use lva_nn::NetReport;

/// Event energies and static power of a simulated design point.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Energy per single-precision vector flop (pJ).
    pub pj_per_vector_flop: f64,
    /// Energy per scalar operation unit, fetch/decode included (pJ).
    pub pj_per_scalar_op: f64,
    /// Energy per vector instruction issued (control overhead) (pJ).
    pub pj_per_vec_instr: f64,
    /// Energy per L1 / vector-cache line access (pJ).
    pub pj_per_l1_access: f64,
    /// Energy per L2 access for a 1 MB array (pJ); scales with sqrt(size).
    pub pj_per_l2_access_1mb: f64,
    /// Energy per DRAM line transfer (pJ).
    pub pj_per_dram_access: f64,
    /// L2 leakage + refresh power per MiB (mW).
    pub leakage_mw_per_mb_l2: f64,
    /// Static core power excluding the L2 (mW).
    pub core_static_mw: f64,
    /// Clock frequency (GHz) used to convert cycles to seconds.
    pub freq_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_vector_flop: 0.8,
            pj_per_scalar_op: 8.0,
            pj_per_vec_instr: 15.0,
            pj_per_l1_access: 12.0,
            pj_per_l2_access_1mb: 30.0,
            pj_per_dram_access: 2_500.0,
            leakage_mw_per_mb_l2: 8.0,
            core_static_mw: 150.0,
            freq_ghz: 2.0,
        }
    }
}

/// Integer event counts of one attribution scope (a layer, or a whole run).
/// The accumulation unit of the streaming probe: counts are exact, and the
/// model constants are applied only when a scope is charged, so streamed
/// and aggregate joules agree to float rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounts {
    /// Vector flops executed (scaled by granted vl and the op's
    /// flops-per-element, exactly like `VpuStats::vec_flops`).
    pub vec_flops: u64,
    /// Vector instructions issued.
    pub vec_instrs: u64,
    /// Scalar operation units charged (ops + scalar flops).
    pub scalar_ops: u64,
    /// First-level demand accesses (L1 data cache + vector cache).
    pub l1_accesses: u64,
    /// L2 demand accesses (misses + writebacks from the first level).
    pub l2_accesses: u64,
    /// DRAM line transfers (fetches + dirty-victim writebacks).
    pub dram_transfers: u64,
    /// Prefetcher fills into the first level.
    pub l1_prefetch_fills: u64,
    /// Prefetcher fills into the L2.
    pub l2_prefetch_fills: u64,
}

impl EnergyCounts {
    /// The counts of a completed run, from its aggregate counters — the
    /// reference the streamed per-layer counts must sum to.
    pub fn from_report(report: &NetReport) -> EnergyCounts {
        let v = &report.vpu;
        let m = &report.mem;
        EnergyCounts {
            vec_flops: v.vec_flops,
            vec_instrs: v.vec_instrs,
            scalar_ops: v.scalar_ops + v.scalar_flops,
            l1_accesses: m.l1.accesses + m.vcache.accesses,
            l2_accesses: m.l2.accesses,
            dram_transfers: m.dram_reads + m.dram_writes,
            l1_prefetch_fills: m.l1.prefetch_fills + m.vcache.prefetch_fills,
            l2_prefetch_fills: m.l2.prefetch_fills,
        }
    }

    pub fn add(&mut self, o: &EnergyCounts) {
        self.vec_flops += o.vec_flops;
        self.vec_instrs += o.vec_instrs;
        self.scalar_ops += o.scalar_ops;
        self.l1_accesses += o.l1_accesses;
        self.l2_accesses += o.l2_accesses;
        self.dram_transfers += o.dram_transfers;
        self.l1_prefetch_fills += o.l1_prefetch_fills;
        self.l2_prefetch_fills += o.l2_prefetch_fills;
    }

    pub fn is_zero(&self) -> bool {
        *self == EnergyCounts::default()
    }
}

/// Joules of one attribution scope, one field per bucket. Every simulated
/// event is charged to exactly one bucket (the same contract as
/// `StallBreakdown`): a vector op's flops land in `vector_alu_j`, its issue
/// in `vector_issue_j`, each cache access at the level that served it, each
/// DRAM line transfer in `dram_j`, each prefetcher fill in `prefetch_j`,
/// and leakage over the scope's cycles in `static_j`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Vector datapath energy: flops × pJ/flop.
    pub vector_alu_j: f64,
    /// Vector control energy: instructions issued × pJ/instr.
    pub vector_issue_j: f64,
    /// Scalar core energy (address arithmetic, loop control, scalar flops).
    pub scalar_j: f64,
    /// First-level array energy (L1 data cache + vector cache accesses).
    pub l1_j: f64,
    /// L2 array energy (sqrt-capacity-scaled per access).
    pub l2_j: f64,
    /// DRAM interface energy (line transfers, both directions).
    pub dram_j: f64,
    /// Prefetcher fill energy, charged at the filled level's access energy.
    pub prefetch_j: f64,
    /// Leakage + static core power over the scope's cycles.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Dynamic compute energy (ALU + issue + scalar).
    pub fn compute_j(&self) -> f64 {
        self.vector_alu_j + self.vector_issue_j + self.scalar_j
    }

    /// Dynamic memory-hierarchy energy (L1 + L2 + DRAM + prefetch fills).
    pub fn memory_j(&self) -> f64 {
        self.l1_j + self.l2_j + self.dram_j + self.prefetch_j
    }

    /// All buckets summed: the scope's total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j() + self.memory_j() + self.static_j
    }

    /// A bucket's share of the total; 0 for an empty scope (no NaN).
    pub fn frac(&self, bucket_j: f64) -> f64 {
        let t = self.total_j();
        if t > 0.0 {
            bucket_j / t
        } else {
            0.0
        }
    }

    pub fn add(&mut self, o: &EnergyBreakdown) {
        self.vector_alu_j += o.vector_alu_j;
        self.vector_issue_j += o.vector_issue_j;
        self.scalar_j += o.scalar_j;
        self.l1_j += o.l1_j;
        self.l2_j += o.l2_j;
        self.dram_j += o.dram_j;
        self.prefetch_j += o.prefetch_j;
        self.static_j += o.static_j;
    }

    /// Named buckets in report order (for serialization and tables).
    pub fn buckets(&self) -> [(&'static str, f64); 8] {
        [
            ("vector_alu", self.vector_alu_j),
            ("vector_issue", self.vector_issue_j),
            ("scalar", self.scalar_j),
            ("l1", self.l1_j),
            ("l2", self.l2_j),
            ("dram", self.dram_j),
            ("prefetch_fill", self.prefetch_j),
            ("static", self.static_j),
        ]
    }
}

/// Energy estimate for one run, the compute/memory/static view consumers
/// key their tables on. All derived metrics are guarded against zero-cycle
/// and zero-access runs (no NaN, mirroring the `CacheStats` guards).
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Dynamic compute energy (vector flops + scalar ops + issue), joules.
    pub compute_j: f64,
    /// Dynamic memory-hierarchy energy, joules.
    pub memory_j: f64,
    /// Static/leakage energy over the run's wall time, joules.
    pub static_j: f64,
    /// Run wall time in seconds.
    pub seconds: f64,
}

impl EnergyReport {
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.memory_j + self.static_j
    }

    /// Energy-delay product (J*s): the co-design figure of merit that
    /// penalizes both slow and power-hungry points.
    pub fn edp(&self) -> f64 {
        self.total_j() * self.seconds
    }

    /// Energy-delay-squared product (J*s²): weights latency harder, for
    /// latency-critical deployments.
    pub fn ed2p(&self) -> f64 {
        self.total_j() * self.seconds * self.seconds
    }

    /// Average power draw over the run (W); 0 for a zero-cycle run.
    pub fn avg_power_w(&self) -> f64 {
        if self.seconds > 0.0 {
            self.total_j() / self.seconds
        } else {
            0.0
        }
    }

    /// Achieved energy per mathematical flop (pJ); 0 when no flops ran.
    pub fn pj_per_flop(&self, flops: u64) -> f64 {
        if flops > 0 {
            self.total_j() * 1e12 / flops as f64
        } else {
            0.0
        }
    }
}

impl EnergyModel {
    /// L2 access energy scaled to the configured capacity (bit-line and
    /// wire energy grow roughly with the square root of the array).
    pub fn pj_per_l2_access(&self, l2_bytes: usize) -> f64 {
        let ratio = l2_bytes as f64 / f64::from(1 << 20);
        self.pj_per_l2_access_1mb * ratio.max(1.0).sqrt()
    }

    /// Static power of the design point (core + L2 leakage), in mW.
    pub fn static_mw(&self, l2_bytes: usize) -> f64 {
        self.core_static_mw + self.leakage_mw_per_mb_l2 * (l2_bytes as f64 / f64::from(1 << 20))
    }

    /// Static energy over `cycles` at the model's clock, in joules.
    pub fn static_j(&self, cycles: u64, l2_bytes: usize) -> f64 {
        self.static_mw(l2_bytes) * 1e-3 * self.seconds(cycles)
    }

    /// Cycles → seconds at the model's clock frequency.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Charge one scope's integer counts plus its cycles (for static
    /// energy) into joules per bucket. The single multiplication point both
    /// the streaming and the aggregate paths go through.
    pub fn charge(&self, c: &EnergyCounts, cycles: u64, l2_bytes: usize) -> EnergyBreakdown {
        const PJ: f64 = 1e-12;
        let l2_pj = self.pj_per_l2_access(l2_bytes);
        EnergyBreakdown {
            vector_alu_j: PJ * c.vec_flops as f64 * self.pj_per_vector_flop,
            vector_issue_j: PJ * c.vec_instrs as f64 * self.pj_per_vec_instr,
            scalar_j: PJ * c.scalar_ops as f64 * self.pj_per_scalar_op,
            l1_j: PJ * c.l1_accesses as f64 * self.pj_per_l1_access,
            l2_j: PJ * c.l2_accesses as f64 * l2_pj,
            dram_j: PJ * c.dram_transfers as f64 * self.pj_per_dram_access,
            prefetch_j: PJ
                * (c.l1_prefetch_fills as f64 * self.pj_per_l1_access
                    + c.l2_prefetch_fills as f64 * l2_pj),
            static_j: self.static_j(cycles, l2_bytes),
        }
    }

    /// Estimate the energy of a completed run on a design point with
    /// `l2_bytes` of L2, from the run's aggregate counters.
    pub fn estimate(&self, report: &NetReport, l2_bytes: usize) -> EnergyReport {
        let b = self.charge(&EnergyCounts::from_report(report), report.cycles, l2_bytes);
        EnergyReport {
            compute_j: b.compute_j(),
            memory_j: b.memory_j(),
            static_j: b.static_j,
            seconds: self.seconds(report.cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_access_energy_scales_sublinearly() {
        let m = EnergyModel::default();
        let e1 = m.pj_per_l2_access(1 << 20);
        let e256 = m.pj_per_l2_access(256 << 20);
        assert!(e256 > e1);
        assert!(e256 < 256.0 * e1);
        assert!((e256 / e1 - 16.0).abs() < 1e-9, "sqrt scaling");
    }

    #[test]
    fn breakdown_buckets_sum_to_total() {
        let m = EnergyModel::default();
        let c = EnergyCounts {
            vec_flops: 1000,
            vec_instrs: 10,
            scalar_ops: 50,
            l1_accesses: 200,
            l2_accesses: 40,
            dram_transfers: 5,
            l1_prefetch_fills: 3,
            l2_prefetch_fills: 7,
        };
        let b = m.charge(&c, 10_000, 4 << 20);
        let by_bucket: f64 = b.buckets().iter().map(|(_, j)| j).sum();
        assert!((by_bucket - b.total_j()).abs() < 1e-18);
        assert!(b.buckets().iter().all(|(_, j)| *j > 0.0), "every bucket charged: {b:?}");
        assert!((b.compute_j() + b.memory_j() + b.static_j - b.total_j()).abs() < 1e-18);
    }

    /// The satellite regression: a zero-cycle / zero-access scope must
    /// produce finite zeros everywhere, never NaN (mirrors the `CacheStats`
    /// guards).
    #[test]
    fn degenerate_runs_are_nan_free() {
        let m = EnergyModel::default();
        let b = m.charge(&EnergyCounts::default(), 0, 1 << 20);
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.frac(b.dram_j), 0.0, "empty scope fraction is 0, not NaN");
        let r = EnergyReport { compute_j: 0.0, memory_j: 0.0, static_j: 0.0, seconds: 0.0 };
        for v in [r.total_j(), r.edp(), r.ed2p(), r.avg_power_w(), r.pj_per_flop(0)] {
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
        // Non-degenerate fractions still work.
        let b = m.charge(&EnergyCounts { vec_flops: 1, ..Default::default() }, 1, 1 << 20);
        assert!(b.frac(b.vector_alu_j) > 0.0 && b.frac(b.vector_alu_j) <= 1.0);
    }

    #[test]
    fn charge_matches_hand_computation() {
        let m = EnergyModel::default();
        let c = EnergyCounts { dram_transfers: 4, ..Default::default() };
        let b = m.charge(&c, 2_000_000_000, 2 << 20);
        assert!((b.dram_j - 4.0 * 2_500.0e-12).abs() < 1e-18);
        // 2 GHz, 2e9 cycles = 1 s; 150 mW core + 16 mW leakage for 2 MB.
        assert!((b.static_j - 0.166).abs() < 1e-12, "{}", b.static_j);
    }
}
