//! The streaming attribution probe: per-layer energy from the live hooks.
//!
//! [`attach`] installs two observers on a [`Machine`] — an `EventSink` on
//! the VPU side (every vector op and scalar charge) and an [`AccessSink`]
//! on the memory side (every cache access, DRAM line transfer, prefetch
//! fill) — sharing one tally. Layer boundaries arrive through the tap's
//! [`TapScope`] markers, so every count lands in the layer that caused it.
//!
//! Both hooks are the existing timing-neutral ones: the timing model never
//! reads probe state, so cycle counts are bit-identical with the probe
//! attached or not (asserted per kernel × design point in `lva-check` and
//! per experiment in `lva-bench`).
//!
//! The probe accumulates *integer counts* only; joules appear when
//! [`EnergyProbe::finish`] charges each layer through the same
//! [`EnergyModel::charge`] the aggregate estimate uses. Because the hooks
//! fire exactly once per counted event, the streamed per-layer counts sum
//! to the run's aggregate counters, and the streamed joules reconcile with
//! [`EnergyModel::estimate`] to float rounding (pinned at 1e-6 relative).

use std::cell::RefCell;
use std::rc::Rc;

use crate::model::{EnergyBreakdown, EnergyCounts, EnergyModel, EnergyReport};
use lva_isa::record::{EventKind, EventSink, VecEvent};
use lva_isa::Machine;
use lva_nn::NetReport;
use lva_sim::cache::AccessKind;
use lva_sim::tap::{AccessSink, TapLevel, TapScope};
use lva_trace::Json;

/// Vector flops per element of a mnemonic — the same table the timing
/// model's `count_arith` call sites use. The full-network reconciliation
/// test (streamed vs aggregate within 1e-6) keeps the two in sync: a new
/// mnemonic charged differently here would break it immediately.
pub fn flops_per_elem(op: &str) -> u64 {
    match op {
        "vfmacc.vf" | "vfmacc.vv" | "vfnmsac.vv" => 2,
        "vfmul.vf" | "vfmul.vv" | "vfadd.vv" | "vfadd.vf" | "vfsub.vv" | "vfmax.vf"
        | "vfmax.vv" | "vfdiv.vv" | "vfsqrt" | "vfredsum" | "vfredmax" => 1,
        _ => 0,
    }
}

/// Shared mutable tally: counts per layer plus an `outside` bucket for
/// events that fire before the first layer or between layers (expected to
/// stay empty during a normal network run).
#[derive(Debug, Default)]
struct Tally {
    /// Position in `layers` of the currently open layer, if any.
    current: Option<usize>,
    layers: Vec<(usize, String, EnergyCounts)>,
    outside: EnergyCounts,
}

impl Tally {
    fn bucket(&mut self) -> &mut EnergyCounts {
        match self.current {
            Some(i) => &mut self.layers[i].2,
            None => &mut self.outside,
        }
    }
}

/// VPU-side half: charges vector ops and scalar work to the open layer.
struct VpuProbe(Rc<RefCell<Tally>>);

impl EventSink for VpuProbe {
    fn event(&mut self, e: &VecEvent) {
        match e.kind {
            EventKind::Load | EventKind::Store | EventKind::Arith | EventKind::Reduce => {
                let mut t = self.0.borrow_mut();
                let b = t.bucket();
                b.vec_instrs += 1;
                b.vec_flops += e.vl as u64 * flops_per_elem(e.op);
            }
            // Grants charge their scalar op through the scalar hook; phase
            // markers carry no energy.
            EventKind::Grant | EventKind::PhaseBegin | EventKind::PhaseEnd => {}
        }
    }

    fn scalar_ops(&mut self, n: u64) {
        self.0.borrow_mut().bucket().scalar_ops += n;
    }
}

/// Memory-side half: charges cache/DRAM traffic and tracks layer scope.
struct MemProbe(Rc<RefCell<Tally>>);

impl AccessSink for MemProbe {
    fn access(&mut self, level: TapLevel, _line: u64, _kind: AccessKind, _hit: bool) {
        let mut t = self.0.borrow_mut();
        let b = t.bucket();
        match level {
            TapLevel::L1 | TapLevel::VectorCache => b.l1_accesses += 1,
            TapLevel::L2 => b.l2_accesses += 1,
        }
    }

    fn prefetch_fill(&mut self, level: TapLevel, _line: u64) {
        let mut t = self.0.borrow_mut();
        let b = t.bucket();
        match level {
            TapLevel::L1 | TapLevel::VectorCache => b.l1_prefetch_fills += 1,
            TapLevel::L2 => b.l2_prefetch_fills += 1,
        }
    }

    fn dram_transfer(&mut self, _kind: AccessKind) {
        self.0.borrow_mut().bucket().dram_transfers += 1;
    }

    fn scope(&mut self, scope: TapScope<'_>) {
        let mut t = self.0.borrow_mut();
        match scope {
            TapScope::LayerBegin { index, desc } => {
                t.layers.push((index, desc.to_string(), EnergyCounts::default()));
                t.current = Some(t.layers.len() - 1);
            }
            TapScope::LayerEnd => t.current = None,
            TapScope::PhaseBegin { .. } | TapScope::PhaseEnd => {}
        }
    }
}

/// Owner side of an attached probe; call [`EnergyProbe::finish`] when the
/// run is over.
#[derive(Debug)]
pub struct EnergyProbe {
    tally: Rc<RefCell<Tally>>,
}

/// Install the streaming energy probe on `m` (both the VPU event sink and
/// the memory tap). Attach after `reset_timing` and before the run; the
/// probe observes only events from then on.
///
/// The probe occupies the machine's single tap slot, so it cannot be
/// combined with `lva_prof::attach` on the same run.
pub fn attach(m: &mut Machine) -> EnergyProbe {
    let tally = Rc::new(RefCell::new(Tally::default()));
    m.set_event_sink(Box::new(VpuProbe(Rc::clone(&tally))));
    m.sys.set_tap(Box::new(MemProbe(Rc::clone(&tally))));
    EnergyProbe { tally }
}

/// One layer's attributed energy.
#[derive(Debug, Clone)]
pub struct LayerEnergy {
    pub index: usize,
    pub desc: String,
    /// Cycles the layer took (from its [`lva_nn::LayerReport`]); basis of
    /// its static-energy share.
    pub cycles: u64,
    /// Integer event counts streamed into this layer.
    pub counts: EnergyCounts,
    /// The counts charged through the model.
    pub breakdown: EnergyBreakdown,
}

/// The finished attribution: per-layer joules, the residual `outside`
/// bucket, the streamed total, and the aggregate reference it reconciles
/// against.
#[derive(Debug, Clone)]
pub struct EnergyAttribution {
    pub layers: Vec<LayerEnergy>,
    /// Events outside any layer plus static energy of cycles not covered
    /// by a layer (run prologue/epilogue). Near-zero on a network run.
    pub outside: EnergyBreakdown,
    /// Integer counts behind `outside` (all of a bare kernel run's counts
    /// land here — kernels open no layer scope).
    pub outside_counts: EnergyCounts,
    /// Sum of every layer's breakdown plus `outside` — the streamed total.
    pub total: EnergyBreakdown,
    /// The aggregate estimate from the run's counters (the reference of
    /// the sum-to-total invariant).
    pub report: EnergyReport,
    /// Mathematical flops of the run (for the energy roofline).
    pub flops: u64,
    /// Run wall time in seconds.
    pub seconds: f64,
    /// Floor set by the datapath alone: mathematical flops at pJ/flop.
    pub floor_j: f64,
}

impl EnergyProbe {
    /// Detach both hooks and charge the streamed counts into per-layer
    /// joules, using `report` for layer cycles and the aggregate reference.
    pub fn finish(
        self,
        m: &mut Machine,
        report: &NetReport,
        model: &EnergyModel,
        l2_bytes: usize,
    ) -> EnergyAttribution {
        drop(m.take_event_sink());
        drop(m.sys.take_tap());
        let tally = Rc::try_unwrap(self.tally)
            .unwrap_or_else(|_| panic!("energy probe still installed elsewhere"))
            .into_inner();

        let mut layers = Vec::with_capacity(tally.layers.len());
        let mut covered_cycles = 0u64;
        let mut total = EnergyBreakdown::default();
        for (index, desc, counts) in tally.layers {
            let cycles = report.layers.iter().find(|l| l.index == index).map_or(0, |l| l.cycles);
            covered_cycles += cycles;
            let breakdown = model.charge(&counts, cycles, l2_bytes);
            total.add(&breakdown);
            layers.push(LayerEnergy { index, desc, cycles, counts, breakdown });
        }
        // Residual cycles (prologue/epilogue outside any layer) carry the
        // remaining static energy, so layers + outside == whole run.
        let residual = report.cycles.saturating_sub(covered_cycles);
        let outside = model.charge(&tally.outside, residual, l2_bytes);
        total.add(&outside);

        let flops = report.flops();
        EnergyAttribution {
            layers,
            outside,
            outside_counts: tally.outside,
            total,
            report: model.estimate(report, l2_bytes),
            flops,
            seconds: model.seconds(report.cycles),
            floor_j: 1e-12 * flops as f64 * model.pj_per_vector_flop,
        }
    }
}

impl EnergyAttribution {
    /// Relative disagreement between the streamed total and the aggregate
    /// estimate — the sum-to-total invariant, pinned below 1e-6 by tests.
    pub fn reconciliation_rel_err(&self) -> f64 {
        let agg = self.report.total_j();
        if agg > 0.0 {
            (self.total.total_j() - agg).abs() / agg
        } else {
            self.total.total_j().abs()
        }
    }

    /// Energy roofline: how close the run's joules are to the datapath
    /// floor (mathematical flops × pJ/flop), as % of total. 100% would
    /// mean every joule went into mandatory arithmetic.
    pub fn roofline_pct(&self) -> f64 {
        let t = self.total.total_j();
        if t > 0.0 {
            100.0 * self.floor_j / t
        } else {
            0.0
        }
    }

    fn breakdown_json(b: &EnergyBreakdown) -> Json {
        let mut o = Json::obj().field("total_j", b.total_j());
        for (name, j) in b.buckets() {
            o = o.field(&format!("{name}_j"), j);
        }
        o
    }

    /// The `energy` section of a `RunReport`: run-level metrics, the
    /// bucket breakdown, and per-layer joules.
    pub fn to_json(&self) -> Json {
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                Json::obj()
                    .field("index", l.index)
                    .field("desc", l.desc.as_str())
                    .field("cycles", l.cycles)
                    .field("total_j", l.breakdown.total_j())
                    .field("breakdown", Self::breakdown_json(&l.breakdown))
            })
            .collect();
        Json::obj()
            .field("total_j", self.total.total_j())
            .field("compute_j", self.total.compute_j())
            .field("memory_j", self.total.memory_j())
            .field("static_j", self.total.static_j)
            .field("seconds", self.seconds)
            .field("edp_js", self.report.edp())
            .field("ed2p_js2", self.report.ed2p())
            .field("avg_power_w", self.report.avg_power_w())
            .field("pj_per_flop", self.report.pj_per_flop(self.flops))
            .field("roofline_pct", self.roofline_pct())
            .field("reconciliation_rel_err", self.reconciliation_rel_err())
            .field("breakdown", Self::breakdown_json(&self.total))
            .field("outside_j", self.outside.total_j())
            .field("layers", layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_table_covers_the_fma_and_ew_ops() {
        assert_eq!(flops_per_elem("vfmacc.vf"), 2);
        assert_eq!(flops_per_elem("vfredsum"), 1);
        assert_eq!(flops_per_elem("vle"), 0);
        assert_eq!(flops_per_elem("vbroadcast"), 0);
    }

    #[test]
    fn tally_routes_counts_to_the_open_layer() {
        let rc = Rc::new(RefCell::new(Tally::default()));
        let mut vpu = VpuProbe(Rc::clone(&rc));
        let mut mem = MemProbe(Rc::clone(&rc));

        vpu.scalar_ops(3); // before any layer → outside
        mem.scope(TapScope::LayerBegin { index: 0, desc: "conv" });
        vpu.event(&VecEvent::load("vle", 1, 0, 64, 16));
        vpu.event(&VecEvent::arith("vfmacc.vf", 2, [Some(1), None, None], 16));
        vpu.event(&VecEvent::grant("setvl", 100, 16)); // no energy event
        mem.access(TapLevel::L1, 0, AccessKind::Read, true);
        mem.access(TapLevel::L2, 0, AccessKind::Read, false);
        mem.dram_transfer(AccessKind::Read);
        mem.prefetch_fill(TapLevel::L2, 4);
        mem.scope(TapScope::LayerEnd);
        drop((vpu, mem));

        let t = Rc::try_unwrap(rc).unwrap().into_inner();
        assert_eq!(t.outside.scalar_ops, 3);
        assert_eq!(t.layers.len(), 1);
        let c = t.layers[0].2;
        assert_eq!(c.vec_instrs, 2, "grant is not an issued vector op");
        assert_eq!(c.vec_flops, 32, "16 lanes x 2 flops for the fma");
        assert_eq!((c.l1_accesses, c.l2_accesses, c.dram_transfers), (1, 1, 1));
        assert_eq!(c.l2_prefetch_fills, 1);
    }
}
