//! lva-energy: streaming energy attribution for the co-design study.
//!
//! The paper motivates long-vector CPUs by energy efficiency (§I) and
//! warns that large caches occupy significant die area (§V), but evaluates
//! performance only. This crate gives energy the same observability the
//! stall attributor gives cycles:
//!
//! * [`EnergyModel`] — documented event energies (pJ per vector flop,
//!   scalar op, issue, cache access, DRAM transfer) plus static power, with
//!   sqrt-capacity scaling of the L2 access energy.
//! * [`attach`]/[`EnergyProbe`] — a probe on the existing timing-neutral
//!   hooks (the `VecEvent` recorder path and the `AccessSink` tap) that
//!   streams every simulated event into exactly one bucket of a per-layer
//!   [`EnergyBreakdown`]. Cycle counts are bit-identical with the probe on
//!   or off.
//! * [`EnergyAttribution`] — the finished per-layer view, which reconciles
//!   with the aggregate [`EnergyModel::estimate`] to within 1e-6 relative
//!   (the sum-to-total invariant; both paths multiply the same integer
//!   counts by the same constants).
//!
//! Consumers: `lva-core` re-exports the model for `RunReport`'s optional
//! `energy` section, `lva-whatif` derives energy counterfactuals and an
//! EDP-based bound classification, and `exp-energy` sweeps the VL × L2
//! grid into a cycles-vs-energy Pareto frontier.

#![forbid(unsafe_code)]

mod model;
mod probe;

pub use model::{EnergyBreakdown, EnergyCounts, EnergyModel, EnergyReport};
pub use probe::{attach, flops_per_elem, EnergyAttribution, EnergyProbe, LayerEnergy};
