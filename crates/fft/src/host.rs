//! Host reference FFT and FFT convolution (the correctness ground truth
//! for the simulated implementation).

use lva_kernels::ConvParams;

/// A complex number over `f32` (kept local: the workspace has no external
/// numerics dependencies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f32,
    pub im: f32,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// `e^(i * theta)`.
    pub fn cis(theta: f64) -> Complex {
        Complex { re: theta.cos() as f32, im: theta.sin() as f32 }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

/// Naive O(n^2) DFT (forward for `sign = -1.0`), for validating the FFT.
pub fn dft_naive(x: &[Complex], sign: f64) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let w = Complex::cis(sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                acc = acc + v * w;
            }
            acc
        })
        .collect()
}

/// Bit-reversal permutation (shared with the VLA implementation).
pub fn bit_reverse_permute<T>(x: &mut [T]) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            x.swap(i, j);
        }
    }
}

/// In-place iterative radix-2 FFT; `sign = -1.0` forward, `+1.0` inverse
/// (inverse is unscaled: divide by `n` yourself).
///
/// # Panics
/// Panics unless the length is a power of two.
pub fn fft_inplace(x: &mut [Complex], sign: f64) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(x);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for j in 0..len / 2 {
                let w = Complex::cis(ang * j as f64);
                let a = x[start + j];
                let b = x[start + j + len / 2] * w;
                x[start + j] = a + b;
                x[start + j + len / 2] = a - b;
            }
        }
        len *= 2;
    }
}

/// 2D FFT of a `p x p` row-major grid (rows then columns).
pub fn fft2_inplace(x: &mut [Complex], p: usize, sign: f64) {
    assert_eq!(x.len(), p * p);
    for row in x.chunks_mut(p) {
        fft_inplace(row, sign);
    }
    let mut col = vec![Complex::ZERO; p];
    for c in 0..p {
        for r in 0..p {
            col[r] = x[r * p + c];
        }
        fft_inplace(&mut col, sign);
        for r in 0..p {
            x[r * p + c] = col[r];
        }
    }
}

/// Padded FFT grid size for a convolution: next power of two that holds the
/// full linear convolution `in + k - 1`.
pub fn fft_grid(p: &ConvParams) -> usize {
    let need = p.in_h.max(p.in_w) + p.k - 1;
    need.next_power_of_two()
}

/// Host FFT convolution with [`ConvParams`] semantics (any stride; output
/// identical to `conv_direct_ref` up to float error).
///
/// Correlation (what CNNs call convolution) is computed as a cyclic
/// convolution with the kernel conjugate-reversed: we transform the kernel
/// *flipped*, multiply spectra, inverse-transform, and read the valid
/// region starting at offset `k - 1 - pad`.
pub fn conv_fft_ref(p: &ConvParams, image: &[f32], weights: &[f32]) -> Vec<f32> {
    assert_eq!(image.len(), p.in_c * p.in_h * p.in_w);
    assert_eq!(weights.len(), p.out_c * p.in_c * p.k * p.k);
    let (oh, ow) = p.out_hw();
    let grid = fft_grid(p);
    let n2 = grid * grid;

    // Transform every input channel once.
    let xhat: Vec<Vec<Complex>> = (0..p.in_c)
        .map(|ci| {
            let mut g = vec![Complex::ZERO; n2];
            for y in 0..p.in_h {
                for x in 0..p.in_w {
                    g[y * grid + x].re = image[(ci * p.in_h + y) * p.in_w + x];
                }
            }
            fft2_inplace(&mut g, grid, -1.0);
            g
        })
        .collect();

    let mut out = vec![0.0f32; p.out_c * oh * ow];
    let mut acc = vec![Complex::ZERO; n2];
    for oc in 0..p.out_c {
        acc.fill(Complex::ZERO);
        for ci in 0..p.in_c {
            // Flipped kernel -> correlation.
            let mut wk = vec![Complex::ZERO; n2];
            for ky in 0..p.k {
                for kx in 0..p.k {
                    wk[(p.k - 1 - ky) * grid + (p.k - 1 - kx)].re =
                        weights[((oc * p.in_c + ci) * p.k + ky) * p.k + kx];
                }
            }
            fft2_inplace(&mut wk, grid, -1.0);
            for (a, (x, w)) in acc.iter_mut().zip(xhat[ci].iter().zip(wk.iter())) {
                *a = *a + *x * *w;
            }
        }
        fft2_inplace(&mut acc, grid, 1.0);
        let scale = 1.0 / n2 as f32;
        // Valid correlation output (oy, ox) lives at cyclic position
        // (oy*s - pad + k - 1, ...).
        for oy in 0..oh {
            for ox in 0..ow {
                let y = (oy * p.stride + p.k - 1) as isize - p.pad as isize;
                let x = (ox * p.stride + p.k - 1) as isize - p.pad as isize;
                debug_assert!(y >= 0 && x >= 0, "pad <= k-1 for the studied layers");
                out[(oc * oh + oy) * ow + ox] = acc[y as usize * grid + x as usize].re * scale;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_kernels::reference::conv_direct_ref;
    use lva_tensor::host_random;

    fn cvec(re: &[f32]) -> Vec<Complex> {
        re.iter().map(|&r| Complex::new(r, 0.0)).collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 64] {
            let data = cvec(&host_random(n, n as u64));
            let mut got = data.clone();
            fft_inplace(&mut got, -1.0);
            let want = dft_naive(&data, -1.0);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.re - w.re).abs() < 1e-3 && (g.im - w.im).abs() < 1e-3, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_fft_roundtrips() {
        let data = cvec(&host_random(128, 7));
        let mut x = data.clone();
        fft_inplace(&mut x, -1.0);
        fft_inplace(&mut x, 1.0);
        for (g, w) in x.iter().zip(&data) {
            assert!((g.re / 128.0 - w.re).abs() < 1e-4);
            assert!((g.im / 128.0).abs() < 1e-4);
        }
    }

    #[test]
    fn fft2_roundtrips() {
        let p = 16;
        let data = cvec(&host_random(p * p, 9));
        let mut x = data.clone();
        fft2_inplace(&mut x, p, -1.0);
        fft2_inplace(&mut x, p, 1.0);
        let scale = (p * p) as f32;
        for (g, w) in x.iter().zip(&data) {
            assert!((g.re / scale - w.re).abs() < 1e-4);
        }
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn conv_fft_matches_direct_various() {
        for p in [
            ConvParams { in_c: 2, in_h: 9, in_w: 9, out_c: 3, k: 3, stride: 1, pad: 1 },
            ConvParams { in_c: 1, in_h: 12, in_w: 12, out_c: 2, k: 5, stride: 1, pad: 2 },
            ConvParams { in_c: 3, in_h: 10, in_w: 10, out_c: 2, k: 7, stride: 1, pad: 3 },
            ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 2, k: 3, stride: 2, pad: 1 },
            ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 1, stride: 1, pad: 0 },
        ] {
            let img = host_random(p.in_c * p.in_h * p.in_w, 3);
            let w = host_random(p.out_c * p.in_c * p.k * p.k, 4);
            let got = conv_fft_ref(&p, &img, &w);
            let want = conv_direct_ref(&p, &img, &w);
            for (i, (g, d)) in got.iter().zip(&want).enumerate() {
                assert!((g - d).abs() < 5e-3, "{p:?} idx {i}: {g} vs {d}");
            }
        }
    }

    #[test]
    fn grid_size_covers_linear_convolution() {
        let p = ConvParams { in_c: 1, in_h: 20, in_w: 20, out_c: 1, k: 11, stride: 1, pad: 5 };
        assert_eq!(fft_grid(&p), 32);
    }
}
