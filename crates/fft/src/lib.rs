//! # lva-fft — FFT convolution, the paper's large-kernel algorithm
//!
//! §II-C of the paper: "FFT works best with layers with large kernel
//! sizes". This crate completes the algorithm menu (im2col+GEMM, Winograd,
//! Direct, FFT) with a from-scratch implementation:
//!
//! * [`host`] — a reference radix-2 complex FFT (validated against a naive
//!   DFT), 2D transforms, and a host FFT-convolution used as ground truth;
//! * [`vla`] — the simulated implementation: a **split-complex** layout
//!   (separate real/imaginary planes, the standard choice for vector
//!   machines because every butterfly stage becomes unit-stride vector
//!   arithmetic over precomputed twiddle tables), 2D transforms with
//!   strided column passes, per-frequency channel accumulation using
//!   `vfmacc`/`vfnmsac` pairs, and offline (untimed) weight transforms —
//!   the same methodology as the Winograd path.
//!
//! FFT convolution trades multiplications for a padded frequency image of
//! `P x P >= (in + k - 1)` per channel, so its memory footprint is the
//! largest of the four algorithms — one reason the paper's networks (1x1 /
//! 3x3 kernels) never choose it, exactly as §II-C prescribes.

#![forbid(unsafe_code)]
pub mod host;
pub mod vla;

pub use host::{conv_fft_ref, dft_naive, fft_inplace, Complex};
pub use vla::{conv_fft_vla, FftConvPlan};
