//! The simulated FFT convolution: split-complex planes, gather-based
//! radix-2 stages over precomputed index/twiddle tables, and per-frequency
//! channel accumulation.
//!
//! Layout choice: **split-complex** (separate real and imaginary planes).
//! Interleaved complex would force every butterfly through stride-2
//! accesses; split planes make all arithmetic unit-stride and need no
//! complex shuffles — the standard choice on vector machines.
//!
//! Each radix-2 stage processes all `P/2` butterflies of a row (or column)
//! in one pass: the `a`/`b` operands are fetched with structured gathers
//! over per-stage index tables (contiguous runs of `len/2`, so they are
//! charged as 4-element-group accesses for `len >= 8`), twiddles come from
//! unit-stride tables, and the four output planes are scattered back.

use crate::host::{bit_reverse_permute, fft2_inplace, Complex};
use lva_isa::{IsaKind, KernelPhase, Machine, VReg};
use lva_kernels::ConvParams;
use lva_sim::Buf;
use lva_tensor::Tensor;

// Register map for the butterfly kernel.
const AR: VReg = 0;
const AI: VReg = 1;
const BR: VReg = 2;
const BI: VReg = 3;
const WR: VReg = 4;
const WI: VReg = 5;
const T1: VReg = 6;
const T2: VReg = 7;
const OR2: VReg = 8;
const OI2: VReg = 9;
// Registers for the frequency-domain accumulation.
const ACR: VReg = 10;
const ACI: VReg = 11;
const XR: VReg = 12;
const XI: VReg = 13;
const FWR: VReg = 14;
const FWI: VReg = 15;
const VT: VReg = 16;

/// One radix-2 stage's precomputed tables.
#[derive(Debug)]
struct Stage {
    /// Butterfly `a` element offsets (within a row), length `P/2`.
    a_idx: Vec<u32>,
    /// Butterfly `b` element offsets.
    b_idx: Vec<u32>,
    /// Column-pass variants (scaled by the grid pitch).
    a_idx_col: Vec<u32>,
    b_idx_col: Vec<u32>,
    /// Forward twiddles for each butterfly (unit-stride tables in the
    /// arena).
    tw_re: Buf,
    tw_im: Buf,
    /// Inverse twiddles (conjugate).
    itw_re: Buf,
    itw_im: Buf,
    /// Butterfly group length of this stage.
    len: usize,
}

/// Pre-built state for one FFT-convolution layer.
#[derive(Debug)]
pub struct FftConvPlan {
    pub params: ConvParams,
    /// Padded grid edge (power of two).
    pub grid: usize,
    stages: Vec<Stage>,
    /// Bit-reversal permutation (row and column variants).
    brev: Vec<u32>,
    brev_col: Vec<u32>,
    /// Transformed input planes `[ic][P*P]` (re, im).
    xhat_re: Buf,
    xhat_im: Buf,
    /// Offline-transformed (flipped) weights `[oc][ic][P*P]` (re, im).
    what_re: Buf,
    what_im: Buf,
    /// Frequency accumulator planes.
    acc_re: Buf,
    acc_im: Buf,
}

impl FftConvPlan {
    /// Build a plan: allocate planes, precompute stage tables, and
    /// transform the weights offline (functional only, untimed — the same
    /// treatment as the Winograd weight transform, §VII-A).
    ///
    /// # Panics
    /// Panics unless `pad <= k - 1` (true for all studied layers) and the
    /// machine is an SVE profile (gathers; RVV is excluded like §VII).
    pub fn new(m: &mut Machine, p: ConvParams, weights: Buf) -> Self {
        assert!(p.pad < p.k.max(1), "FFT path requires pad <= k-1");
        assert_eq!(
            m.config().vpu.isa,
            IsaKind::Sve,
            "FFT convolution uses structured gathers (SVE profile only)"
        );
        assert_eq!(weights.words, p.out_c * p.in_c * p.k * p.k, "weight shape mismatch");
        let grid = crate::host::fft_grid(&p);
        let n2 = grid * grid;
        // Stage tables.
        let mut stages = Vec::new();
        let mut len = 2usize;
        while len <= grid {
            let half = len / 2;
            let mut a_idx = Vec::with_capacity(grid / 2);
            let mut b_idx = Vec::with_capacity(grid / 2);
            let mut tw_re_v = Vec::with_capacity(grid / 2);
            let mut tw_im_v = Vec::with_capacity(grid / 2);
            for start in (0..grid).step_by(len) {
                for j in 0..half {
                    a_idx.push((start + j) as u32);
                    b_idx.push((start + j + half) as u32);
                    let w = Complex::cis(-2.0 * std::f64::consts::PI * j as f64 / len as f64);
                    tw_re_v.push(w.re);
                    tw_im_v.push(w.im);
                }
            }
            let a_idx_col: Vec<u32> = a_idx.iter().map(|&i| i * grid as u32).collect();
            let b_idx_col: Vec<u32> = b_idx.iter().map(|&i| i * grid as u32).collect();
            let itw_im_v: Vec<f32> = tw_im_v.iter().map(|x| -x).collect();
            stages.push(Stage {
                a_idx,
                b_idx,
                a_idx_col,
                b_idx_col,
                tw_re: m.mem.alloc_from(&tw_re_v),
                tw_im: m.mem.alloc_from(&tw_im_v),
                itw_re: m.mem.alloc_from(&tw_re_v),
                itw_im: m.mem.alloc_from(&itw_im_v),
                len,
            });
            len *= 2;
        }
        let mut brev: Vec<u32> = (0..grid as u32).collect();
        bit_reverse_permute(&mut brev);
        let brev_col: Vec<u32> = brev.iter().map(|&i| i * grid as u32).collect();

        let xhat_re = m.mem.alloc(p.in_c * n2);
        let xhat_im = m.mem.alloc(p.in_c * n2);
        let what_re = m.mem.alloc(p.out_c * p.in_c * n2);
        let what_im = m.mem.alloc(p.out_c * p.in_c * n2);
        // Offline weight transform: flipped kernel, forward 2D FFT (host).
        {
            let w_host = m.mem.slice(weights).to_vec();
            let mut gridbuf = vec![Complex::ZERO; n2];
            for oc in 0..p.out_c {
                for ci in 0..p.in_c {
                    gridbuf.fill(Complex::ZERO);
                    for ky in 0..p.k {
                        for kx in 0..p.k {
                            gridbuf[(p.k - 1 - ky) * grid + (p.k - 1 - kx)].re =
                                w_host[((oc * p.in_c + ci) * p.k + ky) * p.k + kx];
                        }
                    }
                    fft2_inplace(&mut gridbuf, grid, -1.0);
                    let off = (oc * p.in_c + ci) * n2;
                    let wre = m.mem.slice_mut(what_re);
                    for (i, c) in gridbuf.iter().enumerate() {
                        wre[off + i] = c.re;
                    }
                    let wim = m.mem.slice_mut(what_im);
                    for (i, c) in gridbuf.iter().enumerate() {
                        wim[off + i] = c.im;
                    }
                }
            }
        }
        FftConvPlan {
            params: p,
            grid,
            stages,
            brev,
            brev_col,
            xhat_re,
            xhat_im,
            what_re,
            what_im,
            acc_re: m.mem.alloc(n2),
            acc_im: m.mem.alloc(n2),
        }
    }

    /// Arena words held by this plan (reporting).
    pub fn footprint_words(&self) -> usize {
        self.xhat_re.words * 2 + self.what_re.words * 2 + self.acc_re.words * 2
    }
}

/// One radix-2 stage applied to every row (or column) of a `P x P`
/// split-complex grid.
#[allow(clippy::too_many_arguments)]
fn stage_pass(
    m: &mut Machine,
    re: Buf,
    im: Buf,
    grid: usize,
    stage: &Stage,
    inverse: bool,
    columns: bool,
) {
    let half_n = grid / 2;
    let (a_idx, b_idx) =
        if columns { (&stage.a_idx_col, &stage.b_idx_col) } else { (&stage.a_idx, &stage.b_idx) };
    let (twr, twi) =
        if inverse { (stage.itw_re, stage.itw_im) } else { (stage.tw_re, stage.tw_im) };
    let structured = stage.len >= 8; // contiguous 4-groups in the index sets
    for lane in 0..grid {
        // Row pass: base walks rows; column pass: base walks columns.
        let base_off = if columns { lane } else { lane * grid };
        let mut j = 0;
        while j < half_n {
            let gvl = m.setvl(half_n - j);
            let ai = &a_idx[j..j + gvl];
            let bi = &b_idx[j..j + gvl];
            if structured {
                m.vgather4(AR, re.addr(base_off), ai, gvl);
                m.vgather4(AI, im.addr(base_off), ai, gvl);
                m.vgather4(BR, re.addr(base_off), bi, gvl);
                m.vgather4(BI, im.addr(base_off), bi, gvl);
            } else {
                m.vgather(AR, re.addr(base_off), ai, gvl);
                m.vgather(AI, im.addr(base_off), ai, gvl);
                m.vgather(BR, re.addr(base_off), bi, gvl);
                m.vgather(BI, im.addr(base_off), bi, gvl);
            }
            m.vle(WR, twr.addr(j), gvl);
            m.vle(WI, twi.addr(j), gvl);
            // t = b * w  (complex).
            m.vfmul_vv(T1, BR, WR, gvl);
            m.vfnmsac_vv(T1, BI, WI, gvl);
            m.vfmul_vv(T2, BR, WI, gvl);
            m.vfmacc_vv(T2, BI, WR, gvl);
            // a' = a + t ; b' = a - t.
            m.vfsub_vv(OR2, AR, T1, gvl);
            m.vfsub_vv(OI2, AI, T2, gvl);
            m.vfadd_vv(AR, AR, T1, gvl);
            m.vfadd_vv(AI, AI, T2, gvl);
            if structured {
                m.vscatter4(AR, re.addr(base_off), ai, gvl);
                m.vscatter4(AI, im.addr(base_off), ai, gvl);
                m.vscatter4(OR2, re.addr(base_off), bi, gvl);
                m.vscatter4(OI2, im.addr(base_off), bi, gvl);
            } else {
                m.vscatter(AR, re.addr(base_off), ai, gvl);
                m.vscatter(AI, im.addr(base_off), ai, gvl);
                m.vscatter(OR2, re.addr(base_off), bi, gvl);
                m.vscatter(OI2, im.addr(base_off), bi, gvl);
            }
            j += gvl;
        }
    }
}

/// Bit-reversal permutation of every row (or column) of the grid, through
/// a gather into registers and a unit-stride store back.
fn brev_pass(m: &mut Machine, plan: &FftConvPlan, re: Buf, im: Buf, columns: bool) {
    let grid = plan.grid;
    let perm = if columns { &plan.brev_col } else { &plan.brev };
    for lane in 0..grid {
        let base_off = if columns { lane } else { lane * grid };
        let mut j = 0;
        while j < grid {
            let gvl = m.setvl(grid - j);
            // Gather the permuted elements, store them contiguously into a
            // scratch register image, then write back in order. For rows
            // the write-back is unit-stride; for columns it is strided.
            m.vgather(AR, re.addr(base_off), &perm[j..j + gvl], gvl);
            m.vgather(AI, im.addr(base_off), &perm[j..j + gvl], gvl);
            if columns {
                m.vsse(AR, re.addr(base_off + j * grid), 4 * grid as u64, gvl);
                m.vsse(AI, im.addr(base_off + j * grid), 4 * grid as u64, gvl);
            } else {
                m.vse(AR, re.addr(base_off + j), gvl);
                m.vse(AI, im.addr(base_off + j), gvl);
            }
            j += gvl;
        }
    }
}

/// Full 2D FFT (rows then columns) of one split-complex grid.
fn fft2_vla(m: &mut Machine, plan: &FftConvPlan, re: Buf, im: Buf, inverse: bool) {
    // NOTE on ordering: bit-reversal first, then the stages, per dimension.
    brev_pass(m, plan, re, im, false);
    for stage in &plan.stages {
        stage_pass(m, re, im, plan.grid, stage, inverse, false);
    }
    brev_pass(m, plan, re, im, true);
    for stage in &plan.stages {
        stage_pass(m, re, im, plan.grid, stage, inverse, true);
    }
}

/// Forward convolution through the frequency domain. `out` receives
/// `oc x oh x ow` (overwritten).
pub fn conv_fft_vla(m: &mut Machine, plan: &mut FftConvPlan, input: &Tensor, out: Buf) {
    let p = plan.params;
    assert_eq!(input.shape.len(), p.in_c * p.in_h * p.in_w, "input shape mismatch");
    let (oh, ow) = p.out_hw();
    assert!(out.words >= p.out_c * oh * ow, "output too small");
    let grid = plan.grid;
    let n2 = grid * grid;

    // Forward-transform every input channel.
    m.phase(KernelPhase::WinogradInputTransform, |m| {
        for ci in 0..p.in_c {
            let re = plan.xhat_re.slice(ci * n2, n2);
            let im = plan.xhat_im.slice(ci * n2, n2);
            lva_kernels::aux::fill_vec(m, re, 0, n2, 0.0);
            lva_kernels::aux::fill_vec(m, im, 0, n2, 0.0);
            for y in 0..p.in_h {
                lva_kernels::aux::copy_vec(
                    m,
                    input.buf,
                    (ci * p.in_h + y) * p.in_w,
                    re,
                    y * grid,
                    p.in_w,
                );
            }
            fft2_vla(m, plan, re, im, false);
        }
    });

    // Per output channel: accumulate spectra, inverse-transform, extract.
    for oc in 0..p.out_c {
        m.phase(KernelPhase::WinogradTupleMul, |m| {
            let mut off = 0;
            while off < n2 {
                let gvl = m.setvl(n2 - off);
                m.vbroadcast(ACR, 0.0, gvl);
                m.vbroadcast(ACI, 0.0, gvl);
                for ci in 0..p.in_c {
                    let woff = (oc * p.in_c + ci) * n2 + off;
                    m.vle(XR, plan.xhat_re.addr(ci * n2 + off), gvl);
                    m.vle(XI, plan.xhat_im.addr(ci * n2 + off), gvl);
                    m.vle(FWR, plan.what_re.addr(woff), gvl);
                    m.vle(FWI, plan.what_im.addr(woff), gvl);
                    // acc += x * w (complex).
                    m.vfmacc_vv(ACR, XR, FWR, gvl);
                    m.vfnmsac_vv(ACR, XI, FWI, gvl);
                    m.vfmacc_vv(ACI, XR, FWI, gvl);
                    m.vfmacc_vv(ACI, XI, FWR, gvl);
                }
                m.vse(ACR, plan.acc_re.addr(off), gvl);
                m.vse(ACI, plan.acc_im.addr(off), gvl);
                off += gvl;
            }
        });
        m.phase(KernelPhase::WinogradOutputTransform, |m| {
            fft2_vla(m, plan, plan.acc_re, plan.acc_im, true);
            // Extract the valid correlation window, scaled by 1/P^2.
            let scale = 1.0 / n2 as f32;
            for oy in 0..oh {
                let y = oy * p.stride + p.k - 1 - p.pad;
                let mut ox = 0;
                while ox < ow {
                    let gvl = m.setvl(ow - ox);
                    let x0 = ox * p.stride + p.k - 1 - p.pad;
                    if p.stride == 1 {
                        m.vle(VT, plan.acc_re.addr(y * grid + x0), gvl);
                    } else {
                        m.vlse(VT, plan.acc_re.addr(y * grid + x0), 4 * p.stride as u64, gvl);
                    }
                    m.vfmul_vf(VT, VT, scale, gvl);
                    m.vse(VT, out.addr((oc * oh + oy) * ow + ox), gvl);
                    ox += gvl;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::MachineConfig;
    use lva_kernels::reference::conv_direct_ref;
    use lva_tensor::{approx_eq, Matrix, Shape};

    fn run(p: ConvParams, vlen: usize) -> (Vec<f32>, Vec<f32>, u64) {
        let mut m = Machine::new(MachineConfig::sve_gem5(vlen, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 11);
        let (mm, nn, kk) = p.gemm_mnk();
        let w = Matrix::random(&mut m, mm, kk, 12);
        let out = m.mem.alloc(mm * nn);
        let mut plan = FftConvPlan::new(&mut m, p, w.buf);
        m.reset_timing();
        conv_fft_vla(&mut m, &mut plan, &img, out);
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        (m.mem.slice(out).to_vec(), want, m.cycles())
    }

    #[test]
    fn fft_conv_matches_direct_3x3() {
        let p = ConvParams { in_c: 2, in_h: 10, in_w: 10, out_c: 3, k: 3, stride: 1, pad: 1 };
        let (got, want, cycles) = run(p, 512);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
        assert!(cycles > 0);
    }

    #[test]
    fn fft_conv_matches_direct_7x7() {
        let p = ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 2, k: 7, stride: 1, pad: 3 };
        let (got, want, _) = run(p, 1024);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn fft_conv_matches_direct_11x11() {
        let p = ConvParams { in_c: 1, in_h: 16, in_w: 16, out_c: 2, k: 11, stride: 1, pad: 5 };
        let (got, want, _) = run(p, 2048);
        assert!(approx_eq(&got, &want, 1e-2, 1e-2));
    }

    #[test]
    fn fft_conv_stride2() {
        let p = ConvParams { in_c: 2, in_h: 12, in_w: 12, out_c: 2, k: 5, stride: 2, pad: 2 };
        let (got, want, _) = run(p, 512);
        assert!(approx_eq(&got, &want, 5e-3, 5e-3));
    }

    #[test]
    fn longer_vectors_speed_up_fft_conv() {
        let p = ConvParams { in_c: 4, in_h: 20, in_w: 20, out_c: 4, k: 7, stride: 1, pad: 3 };
        let (_, _, t512) = run(p, 512);
        let (_, _, t2048) = run(p, 2048);
        assert!(t2048 < t512, "2048b {t2048} should beat 512b {t512}");
    }

    #[test]
    #[should_panic(expected = "SVE profile only")]
    fn rvv_rejected() {
        let mut m = Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20));
        let p = ConvParams { in_c: 1, in_h: 8, in_w: 8, out_c: 1, k: 3, stride: 1, pad: 1 };
        let w = Matrix::random(&mut m, 1, 9, 1);
        let _ = FftConvPlan::new(&mut m, p, w.buf);
    }
}
