//! The simulated machine: scalar core + VLA vector unit + memory hierarchy.
//!
//! All kernel code in this workspace is written against this API, in the
//! shape of the paper's pseudocode (Figs. 1–4): `setvl`/`whilelt`, vector
//! loads/stores, broadcast, `vfmacc`, software prefetch, and bulk-charged
//! scalar work for the non-vectorized baseline.
//!
//! ## Timing model
//!
//! * A front-end clock `now` advances by one cycle per issued vector
//!   instruction (plus explicitly charged scalar work).
//! * The vector unit is busy until `unit_free`; an instruction occupies it
//!   for its *chime* (`ceil(active/lanes)` for arithmetic, line-transfer plus
//!   exposed miss time for memory ops).
//! * Each destination register has a scoreboard entry `ready[r]`; an
//!   instruction cannot start before its sources are ready (in-order cores)
//!   or before `ready - ooo_window` (the A64FX-like out-of-order profile).
//!   Unrolling over independent accumulators therefore hides the
//!   `startup = pipe_depth + lanes` latency exactly as §IV-A describes.
//! * Vector memory operations charge the cache hierarchy per distinct line
//!   touched; miss latencies beyond the first-level hit overlap with a
//!   memory-level-parallelism factor `mlp`.

use crate::config::{IsaKind, MachineConfig};
use crate::pred::Pred;
use crate::record::{EventSink, VecEvent};
use crate::refit::{
    fold_levels, phases_delta, vpu_accum, vpu_delta, EntrySnapshot, Fold128, LayerEffect,
    LayerMemo, MemoKey, RefitPlan,
};
use crate::replay::{
    r32, ArithShape, IndexedOp, LayerReplay, ProbeTape, ReduceOp, ReplayOp, ReplayTrace,
    SegmentReplay, TapePlayer, TapeRecorder, VArithOp,
};
use crate::stats::{KernelPhase, PhaseTimer, StallBreakdown, StallCause, VpuStats};
use lva_sim::{AccessKind, IdealSpec, MemSystem, Memory, PrefetchTarget, TapScope, VpuPath};
use std::sync::Arc;

/// Number of architectural vector registers (both RVV and SVE have 32).
pub const NUM_VREGS: usize = 32;

/// One recorded pipeline-timeline event, in simulated cycles. Captured by
/// the opt-in recorder behind [`Machine::record_pipe_events`] and turned
/// into Chrome trace-event tracks by `lva-prof`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEvent {
    /// A kernel phase opened at cycle `at`.
    PhaseBegin { phase: KernelPhase, at: u64 },
    /// The innermost open kernel phase closed at cycle `at`.
    PhaseEnd { phase: KernelPhase, at: u64 },
    /// The front end waited over `[start, end)`, attributed to `cause`.
    /// Intervals on the same cause never overlap and appear in
    /// non-decreasing start order (asserted by the exporter's validator).
    Stall { cause: StallCause, start: u64, end: u64 },
}

/// A vector register name (0..32).
pub type VReg = usize;

/// The simulated machine. See module docs.
pub struct Machine {
    cfg: MachineConfig,
    pub mem: Memory,
    pub sys: MemSystem,
    /// Register file: `NUM_VREGS * vlen_elems` elements, row per register.
    regs: Vec<f32>,
    vlen_elems: usize,
    now: u64,
    unit_free: u64,
    ready: [u64; NUM_VREGS],
    /// Fractional scalar cycles not yet committed to `now`.
    scalar_frac: f64,
    /// Recent missed lines (ring), for sequential-miss overlap on
    /// prefetching platforms: a miss on the next line of any recent miss
    /// stream is a *late prefetch* whose fill is already in flight.
    recent_misses: [u64; 8],
    recent_miss_pos: usize,
    /// Exposed-miss share of the occupancy of the *next* instruction to
    /// issue; set by the memory-cost helpers, consumed by [`Self::issue`].
    next_occ_mem: u64,
    /// Shared-port contention share of the next instruction's occupancy
    /// (multi-core SoC runs only; identically zero on a single core). Unlike
    /// `next_occ_mem` the port wait is serialized — it never divides by the
    /// memory-level parallelism.
    next_occ_cont: u64,
    /// Occupancy split of the last issued instruction (exposed-miss part /
    /// contention part / total), used to attribute the unit-busy wait of its
    /// successor.
    last_occ_mem: u64,
    last_occ_cont: u64,
    last_occ_total: u64,
    pub stats: VpuStats,
    pub phases: PhaseTimer,
    /// Per-cause attribution of every front-end stall cycle. Bookkeeping
    /// only: the timing model is identical whether anyone reads this.
    pub stalls: StallBreakdown,
    /// Opt-in event recorder for the `lva-check` sanitizer. `None` (the
    /// default) records nothing; when enabled, every vector op appends one
    /// [`VecEvent`]. Pure observation — the timing model never reads it, so
    /// cycle counts are bit-identical with recording on or off.
    rec: Option<Vec<VecEvent>>,
    /// Opt-in streaming event sink (the `lva-energy` probe). Unlike `rec`,
    /// which buffers events for post-hoc analysis, the sink consumes each
    /// [`VecEvent`] as it happens plus the scalar-op charges the recorder
    /// never sees. Pure observation under the same contract as `rec`.
    sink: Option<Box<dyn EventSink>>,
    /// Opt-in pipeline-interval recorder for the timeline exporter
    /// (`lva-prof`): kernel-phase boundaries and per-cause stall intervals
    /// in simulated cycles. Pure observation, exactly like `rec`.
    pipe: Option<Vec<PipeEvent>>,
    /// Events discarded after [`Self::MAX_PIPE_EVENTS`] was reached
    /// (reported by [`Self::pipe_events_dropped`], never silent).
    pipe_dropped: u64,
    /// Route vector memory ops through the retained per-element reference
    /// implementations instead of the coalesced fast paths. The reference
    /// path is the pre-coalescing code, kept so equivalence tests can prove
    /// the fast paths bit-identical in cycles, stats, and register contents.
    ref_model: bool,
    /// Opt-in semantic replay log (the `lva-retime` capture hook): every
    /// public op appends one [`ReplayOp`] with the arguments its timing
    /// depends on. Pure observation, exactly like `rec`.
    rlog: Option<ReplayTrace>,
    /// Opt-in probe-tape recorder: stores the serving level of every cache
    /// probe so later refits can skip the cache arrays. Pure observation.
    tape_rec: Option<TapeRecorder>,
    /// Probe-tape playback: when set, cache probes read serving levels from
    /// the tape instead of touching `sys`'s cache arrays, and latencies are
    /// computed by [`MemSystem::served_latency`]. Only installed by the
    /// replay executor; never active on a live machine.
    tape_play: Option<TapePlayer>,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        let vlen_elems = cfg.vpu.vlen_elems();
        let mut sys = MemSystem::new(cfg.mem.clone());
        sys.set_ideal(cfg.ideal);
        Machine {
            mem: Memory::with_mib(cfg.arena_mib),
            sys,
            regs: vec![0.0; NUM_VREGS * vlen_elems],
            vlen_elems,
            now: 0,
            unit_free: 0,
            ready: [0; NUM_VREGS],
            scalar_frac: 0.0,
            recent_misses: [u64::MAX - 1; 8],
            recent_miss_pos: 0,
            next_occ_mem: 0,
            next_occ_cont: 0,
            last_occ_mem: 0,
            last_occ_cont: 0,
            last_occ_total: 0,
            stats: VpuStats::default(),
            phases: PhaseTimer::default(),
            stalls: StallBreakdown::default(),
            rec: None,
            sink: None,
            pipe: None,
            pipe_dropped: 0,
            ref_model: false,
            rlog: None,
            tape_rec: None,
            tape_play: None,
            cfg,
        }
    }

    /// Switch vector memory ops to the per-element reference implementations
    /// (slow, used by the coalescing-equivalence tests). Timing, statistics,
    /// and functional state are identical on both paths by construction —
    /// that identity is what the `stream_equivalence` test suite pins.
    pub fn set_reference_model(&mut self, on: bool) {
        self.ref_model = on;
    }

    /// Whether the per-element reference model is active.
    pub fn is_reference_model(&self) -> bool {
        self.ref_model
    }

    /// Select counterfactual idealization knobs (`lva-whatif`). Timing-only:
    /// functional state, cache state transitions, statistics, and recorded
    /// event streams are bit-identical to the factual machine under any
    /// spec; with [`IdealSpec::NONE`] cycle counts are bit-identical too —
    /// pinned the same way [`Self::set_reference_model`] is.
    pub fn set_ideal(&mut self, spec: IdealSpec) {
        self.cfg.ideal = spec;
        self.sys.set_ideal(spec);
    }

    /// The active idealization spec.
    pub fn ideal(&self) -> IdealSpec {
        self.cfg.ideal
    }

    // ------------------------------------------------------------------
    // Event recording (the `lva-check` sanitizer hook)
    // ------------------------------------------------------------------

    /// Start recording vector-op events (clears any previous recording).
    pub fn record_events(&mut self) {
        self.rec = Some(Vec::new());
    }

    /// Whether event recording is active.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Stop recording and return the captured event stream.
    pub fn take_events(&mut self) -> Vec<VecEvent> {
        self.rec.take().unwrap_or_default()
    }

    /// Install a streaming [`EventSink`] (replacing any previous one). The
    /// sink sees the same [`VecEvent`]s the recorder would buffer, plus
    /// scalar-op charges, as they happen. Pure observation: the timing
    /// model never reads sink state, so cycle counts are bit-identical
    /// with a sink installed or not.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Remove and return the installed event sink, if any.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Whether a streaming event sink is installed.
    pub fn has_event_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Feed an event to the recorder and/or sink. The closure only runs
    /// when at least one observer is active, so the disabled path costs
    /// two branches.
    #[inline]
    fn rec(&mut self, f: impl FnOnce() -> VecEvent) {
        if self.rec.is_none() && self.sink.is_none() {
            return;
        }
        let e = f();
        if let Some(sink) = self.sink.as_mut() {
            sink.event(&e);
        }
        if let Some(events) = self.rec.as_mut() {
            events.push(e);
        }
    }

    // ------------------------------------------------------------------
    // Pipeline-interval recording (the `lva-prof` timeline hook)
    // ------------------------------------------------------------------

    /// Upper bound on buffered pipeline events. Full-network runs at the
    /// default experiment scales stay well under it; a run that exceeds it
    /// keeps the prefix and counts the overflow instead of growing without
    /// bound.
    pub const MAX_PIPE_EVENTS: usize = 4 << 20;

    /// Start recording pipeline-timeline events (clears any previous
    /// recording). Timing-neutral: the model never reads the buffer.
    pub fn record_pipe_events(&mut self) {
        self.pipe = Some(Vec::new());
        self.pipe_dropped = 0;
    }

    /// Whether pipeline-interval recording is active.
    pub fn is_recording_pipe(&self) -> bool {
        self.pipe.is_some()
    }

    /// Stop recording and return the captured pipeline events.
    pub fn take_pipe_events(&mut self) -> Vec<PipeEvent> {
        self.pipe.take().unwrap_or_default()
    }

    /// Events dropped by the [`Self::MAX_PIPE_EVENTS`] cap in the current /
    /// latest recording (0 in any realistic run).
    pub fn pipe_events_dropped(&self) -> u64 {
        self.pipe_dropped
    }

    /// Append a pipeline event if recording is on (closure only runs when
    /// enabled; one branch otherwise).
    #[inline]
    fn pipe(&mut self, f: impl FnOnce() -> PipeEvent) {
        if let Some(events) = self.pipe.as_mut() {
            if events.len() < Self::MAX_PIPE_EVENTS {
                events.push(f());
            } else {
                self.pipe_dropped += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Semantic replay log + probe tape (the `lva-retime` hooks)
    // ------------------------------------------------------------------

    /// Start capturing the semantic replay log and the probe tape (clears
    /// any previous capture). Pure observation: timing, statistics, and
    /// functional state are bit-identical with capturing on or off.
    pub fn start_capture(&mut self) {
        self.rlog = Some(ReplayTrace::default());
        self.tape_rec = Some(TapeRecorder {
            tape: ProbeTape { geometry: self.cfg.mem.state_fingerprint(), ..ProbeTape::default() },
        });
    }

    /// Whether a semantic capture is active.
    pub fn is_capturing(&self) -> bool {
        self.rlog.is_some()
    }

    /// Stop capturing and return the semantic trace plus the probe tape
    /// (with the final segment closed). `None` if no capture was active.
    pub fn finish_capture(&mut self) -> Option<(ReplayTrace, ProbeTape)> {
        let trace = self.rlog.take()?;
        let tape = self.take_probe_tape().expect("capture always records a tape");
        Some((trace, tape))
    }

    /// Start recording only the probe tape (used during a live replay to
    /// make later same-geometry refits possible). Clears any previous tape.
    pub fn record_probe_tape(&mut self) {
        self.tape_rec = Some(TapeRecorder {
            tape: ProbeTape { geometry: self.cfg.mem.state_fingerprint(), ..ProbeTape::default() },
        });
    }

    /// Stop tape recording and return the tape with its final segment
    /// closed on the current `sys` statistics.
    pub fn take_probe_tape(&mut self) -> Option<ProbeTape> {
        let mut rec = self.tape_rec.take()?;
        rec.end_segment(self.sys.stats());
        Some(rec.tape)
    }

    /// Install a probe tape for refit playback. Fails (leaving the machine
    /// untouched) unless the tape's state-geometry fingerprint matches this
    /// machine's memory system — the refit validity condition.
    pub fn play_probe_tape(&mut self, tape: Arc<ProbeTape>) -> Result<(), String> {
        let mine = self.cfg.mem.state_fingerprint();
        if tape.geometry != mine {
            return Err(format!(
                "probe tape geometry mismatch: tape recorded at [{}], machine is [{mine}]",
                tape.geometry
            ));
        }
        self.tape_play = Some(TapePlayer { tape, cursor: 0, seg: 0 });
        Ok(())
    }

    /// Append a semantic op if capturing (closure only runs when enabled).
    #[inline]
    fn rlog(&mut self, f: impl FnOnce() -> ReplayOp) {
        if let Some(log) = self.rlog.as_mut() {
            log.ops.push(f());
        }
    }

    /// Probe the memory system for a scalar access, honoring tape playback
    /// and tape recording. Returns the access latency in cycles.
    #[inline]
    fn probe_scalar(&mut self, addr: u64, kind: AccessKind) -> u32 {
        if let Some(tp) = self.tape_play.as_mut() {
            let lvl = tp.next_level();
            return self.sys.served_latency(lvl, false);
        }
        let (lvl, lat) = self.sys.demand_scalar(addr, kind);
        if let Some(tr) = self.tape_rec.as_mut() {
            tr.tape.levels.push(lvl.to_u8());
        }
        lat
    }

    /// Probe the memory system for a vector access (see
    /// [`Self::probe_scalar`]). `train` gates hardware-prefetcher training,
    /// exactly as [`MemSystem::demand_vector_opts`] does.
    #[inline]
    fn probe_vector(&mut self, addr: u64, kind: AccessKind, train: bool) -> u32 {
        if let Some(tp) = self.tape_play.as_mut() {
            let lvl = tp.next_level();
            return self.sys.served_latency(lvl, true);
        }
        let (lvl, lat) = self.sys.demand_vector_opts(addr, kind, train);
        if let Some(tr) = self.tape_rec.as_mut() {
            tr.tape.levels.push(lvl.to_u8());
        }
        lat
    }

    /// Hard bounds check for a vector memory access: the byte range
    /// `[lo, hi)` must lie inside the allocated arena. Panics with the
    /// offending op, address, `vl`, and the nearest buffer's name instead of
    /// an index panic deep inside [`Memory`].
    #[inline]
    fn check_vec(&self, op: &str, lo: u64, hi: u64, vl: usize) {
        if let Err(why) = self.mem.check_range(lo, hi) {
            panic!("{op} (vl={vl}) out of range: {why}");
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Hardware vector length in single-precision elements.
    #[inline]
    pub fn vlen_elems(&self) -> usize {
        self.vlen_elems
    }

    /// Current cycle count: the time at which all issued work has completed.
    pub fn cycles(&self) -> u64 {
        let rmax = self.ready.iter().copied().max().unwrap_or(0);
        self.now.max(self.unit_free).max(rmax)
    }

    /// Reset the clock, scoreboard and statistics (cache contents survive,
    /// like the paper's exclusion of the network-setup phase).
    pub fn reset_timing(&mut self) {
        self.rlog(|| ReplayOp::ResetTiming);
        if let Some(tr) = self.tape_rec.as_mut() {
            // Snapshot the segment's stats before they are zeroed below.
            tr.end_segment(self.sys.stats());
        }
        self.now = 0;
        self.unit_free = 0;
        self.ready = [0; NUM_VREGS];
        self.scalar_frac = 0.0;
        self.next_occ_mem = 0;
        self.next_occ_cont = 0;
        self.last_occ_mem = 0;
        self.last_occ_cont = 0;
        self.last_occ_total = 0;
        self.stats = VpuStats::default();
        self.phases = PhaseTimer::default();
        self.stalls = StallBreakdown::default();
        self.sys.reset_stats();
    }

    /// Run `f` attributing its cycles to kernel phase `p` (§II-B breakdown).
    /// When tracing is enabled, the phase is also emitted as a span with its
    /// simulated cycle delta attached.
    pub fn phase<R>(&mut self, p: KernelPhase, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.cycles();
        let mut sp = lva_trace::span(p.name());
        self.rlog(|| ReplayOp::PhaseBegin { phase: p });
        self.tl_phase_begin(p);
        let r = f(self);
        self.rlog(|| ReplayOp::PhaseEnd { phase: p });
        let t1 = self.tl_phase_end(p);
        let dt = t1 - t0;
        self.phases.add(p, dt);
        sp.set("cycles", dt);
        r
    }

    /// Observer half of a phase opening (recorded event, pipeline marker,
    /// tap scope) — shared between [`Self::phase`] and the replay executor.
    #[inline]
    fn tl_phase_begin(&mut self, p: KernelPhase) {
        let t0 = self.cycles();
        self.rec(|| VecEvent::phase_marker(true, p));
        self.pipe(|| PipeEvent::PhaseBegin { phase: p, at: t0 });
        self.sys.tap_scope(TapScope::PhaseBegin { name: p.name() });
    }

    /// Observer half of a phase closing; returns the closing cycle count.
    #[inline]
    fn tl_phase_end(&mut self, p: KernelPhase) -> u64 {
        self.rec(|| VecEvent::phase_marker(false, p));
        let t1 = self.cycles();
        self.pipe(|| PipeEvent::PhaseEnd { phase: p, at: t1 });
        self.sys.tap_scope(TapScope::PhaseEnd);
        t1
    }

    /// Mark the start of network layer `index` (`lva-nn` calls this around
    /// each layer's kernels): forwards the boundary to the address-stream
    /// tap and the replay log.
    pub fn layer_begin(&mut self, index: usize, desc: &str) {
        if let Some(log) = self.rlog.as_mut() {
            let d = log.push_desc(desc);
            log.ops.push(ReplayOp::LayerBegin { index: index as u32, desc: d });
        }
        self.sys.tap_scope(TapScope::LayerBegin { index, desc });
    }

    /// Mark the end of the innermost open network layer.
    pub fn layer_end(&mut self) {
        self.rlog(|| ReplayOp::LayerEnd);
        self.sys.tap_scope(TapScope::LayerEnd);
    }

    // ------------------------------------------------------------------
    // Register file access (functional state)
    // ------------------------------------------------------------------

    /// Read-only view of register `r` (full hardware length).
    #[inline]
    pub fn vreg(&self, r: VReg) -> &[f32] {
        debug_assert!(r < NUM_VREGS);
        &self.regs[r * self.vlen_elems..(r + 1) * self.vlen_elems]
    }

    /// Two distinct registers, the first mutable (for `vd op= vs` forms).
    #[inline]
    fn vreg_pair(&mut self, vd: VReg, vs: VReg) -> (&mut [f32], &[f32]) {
        debug_assert!(vd != vs, "vd must differ from vs");
        let n = self.vlen_elems;
        if vd < vs {
            let (lo, hi) = self.regs.split_at_mut(vs * n);
            (&mut lo[vd * n..(vd + 1) * n], &hi[..n])
        } else {
            let (lo, hi) = self.regs.split_at_mut(vd * n);
            (&mut hi[..n], &lo[vs * n..(vs + 1) * n])
        }
    }

    /// Destination row mutable plus two source rows (`vd op= va ∘ vb`
    /// forms). `vd` must differ from both sources; `va` may equal `vb`.
    /// Handing out plain slices lets the lane loops run without per-element
    /// bounds checks, which is what allows them to auto-vectorize.
    #[inline]
    fn vreg_tri(&mut self, vd: VReg, va: VReg, vb: VReg) -> (&mut [f32], &[f32], &[f32]) {
        debug_assert!(vd != va && vd != vb);
        let n = self.vlen_elems;
        let (lo, rest) = self.regs.split_at_mut(vd * n);
        let (d, hi) = rest.split_at_mut(n);
        let (lo, hi): (&[f32], &[f32]) = (lo, hi);
        let row = |r: VReg| {
            if r < vd {
                &lo[r * n..(r + 1) * n]
            } else {
                &hi[(r - vd - 1) * n..(r - vd) * n]
            }
        };
        (d, row(va), row(vb))
    }

    // ------------------------------------------------------------------
    // Timing primitives
    // ------------------------------------------------------------------

    /// Commit fractional scalar cycles into the front-end clock.
    #[inline]
    fn commit_scalar(&mut self) {
        if self.scalar_frac >= 1.0 {
            let whole = self.scalar_frac as u64;
            self.now += whole;
            self.scalar_frac -= whole as f64;
        }
    }

    /// Source readiness as seen by the issue stage (OoO window applies).
    #[inline]
    fn src_ready(&self, r: VReg) -> u64 {
        self.ready[r].saturating_sub(self.cfg.core.ooo_window)
    }

    // Effective timing parameters under the active [`IdealSpec`]. Each is
    // the identity with its knob off, so the factual machine's arithmetic is
    // untouched; with the knob on the parameter takes its idealized value.
    // All five only ever shrink a cost — that componentwise inequality is
    // what makes every idealization cycle-monotone (DESIGN.md §13).

    /// `startup()` — 0 under `zero_vector_startup`.
    #[inline]
    fn eff_startup(&self) -> u64 {
        if self.cfg.ideal.zero_vector_startup {
            0
        } else {
            self.cfg.vpu.startup()
        }
    }

    /// Pipeline-depth share of memory result latency — 0 under
    /// `zero_vector_startup` (the fill depth is the startup the knob removes).
    #[inline]
    fn eff_pipe_depth(&self) -> u64 {
        if self.cfg.ideal.zero_vector_startup {
            0
        } else {
            self.cfg.vpu.pipe_depth as u64
        }
    }

    /// `chime(vl)` — 1 under `infinite_lanes`.
    #[inline]
    fn eff_chime(&self, vl: usize) -> u64 {
        if self.cfg.ideal.infinite_lanes {
            1
        } else {
            self.cfg.vpu.chime(vl)
        }
    }

    /// A lane-throughput occupancy term (bus transfers, per-element
    /// gather/scatter slots, permutes) — collapses to 1 cycle under
    /// `infinite_lanes`. Exposed miss time is never routed through here.
    #[inline]
    fn eff_throughput(&self, cycles: u64) -> u64 {
        if self.cfg.ideal.infinite_lanes {
            cycles.min(1)
        } else {
            cycles
        }
    }

    /// `inter_instr_gap` — 0 under `infinite_issue`.
    #[inline]
    fn eff_gap(&self) -> u64 {
        if self.cfg.ideal.infinite_issue {
            0
        } else {
            self.cfg.vpu.inter_instr_gap as u64
        }
    }

    /// Issue one vector instruction.
    ///
    /// `occupancy`: cycles the vector unit stays busy; `result_latency`:
    /// cycles from start until `dst` (if any) is ready.
    #[inline]
    fn issue(
        &mut self,
        srcs: [Option<VReg>; 2],
        dst: Option<VReg>,
        occupancy: u64,
        result_latency: u64,
    ) {
        self.commit_scalar();
        let t0 = self.now;
        let unit_start = t0.max(self.unit_free);
        let mut start = unit_start;
        for s in srcs.into_iter().flatten() {
            start = start.max(self.src_ready(s));
        }
        self.attribute_stall(t0, unit_start, start, occupancy);
        self.unit_free = start + occupancy + self.eff_gap();
        if let Some(d) = dst {
            self.ready[d] = start + result_latency.max(occupancy);
        }
        self.now = start;
        self.scalar_frac += self.cfg.core.issue_cycles;
        self.stats.vec_instrs += 1;
    }

    /// Attribute the wait of one issue to stall causes. Pure bookkeeping:
    /// called with the already-computed issue times, it never changes them.
    ///
    /// The wait decomposes exactly into two windows:
    /// `[t0, unit_start)` — the vector unit was still busy. Its tail is the
    /// fixed `inter_instr_gap` (IssueWidth); the rest is the previous
    /// instruction's occupancy, split between its exposed cache-miss share
    /// (MemLatency) and chime/lane work (LaneOccupancy) in proportion.
    /// `[unit_start, start)` — sources were not ready: up to one pipeline
    /// `startup()` is the vector-startup ramp (VectorStartup), anything
    /// beyond is dependency latency the window could not hide (RawHazard).
    #[inline]
    fn attribute_stall(&mut self, t0: u64, unit_start: u64, start: u64, occupancy: u64) {
        // The recorder branch is checked once up front; on the hot path
        // (recording off, the default) the interval bookkeeping below is
        // skipped entirely instead of re-testing the Option per event.
        let recording = self.pipe.is_some();
        let unit_busy = unit_start - t0;
        if unit_busy > 0 {
            let gap = unit_busy.min(self.eff_gap());
            self.stalls.add(StallCause::IssueWidth, gap);
            let occ_wait = unit_busy - gap;
            if occ_wait > 0 {
                // `last_occ_mem == 0` (pure-compute predecessor, the common
                // case) makes the proportional split trivially 0 — skip the
                // integer division on that path. Same guard for the
                // contention share, which doubles as the single-core
                // bit-identity argument: with no shared port it is always
                // zero and this path computes exactly what it always did.
                let mem = if self.last_occ_mem == 0 {
                    0
                } else {
                    (occ_wait * self.last_occ_mem).checked_div(self.last_occ_total).unwrap_or(0)
                };
                let cont = if self.last_occ_cont == 0 {
                    0
                } else {
                    (occ_wait * self.last_occ_cont).checked_div(self.last_occ_total).unwrap_or(0)
                };
                self.stalls.add(StallCause::MemLatency, mem);
                self.stalls.add(StallCause::Contention, cont);
                self.stalls.add(StallCause::LaneOccupancy, occ_wait - mem - cont);
                // Chronologically the occupancy wait fills [t0, unit_start - gap);
                // the proportional mem/contention/lane split is laid out in
                // that order.
                if recording {
                    if mem > 0 {
                        self.pipe(|| PipeEvent::Stall {
                            cause: StallCause::MemLatency,
                            start: t0,
                            end: t0 + mem,
                        });
                    }
                    if cont > 0 {
                        self.pipe(|| PipeEvent::Stall {
                            cause: StallCause::Contention,
                            start: t0 + mem,
                            end: t0 + mem + cont,
                        });
                    }
                    if occ_wait > mem + cont {
                        self.pipe(|| PipeEvent::Stall {
                            cause: StallCause::LaneOccupancy,
                            start: t0 + mem + cont,
                            end: t0 + occ_wait,
                        });
                    }
                }
            }
            if recording && gap > 0 {
                self.pipe(|| PipeEvent::Stall {
                    cause: StallCause::IssueWidth,
                    start: unit_start - gap,
                    end: unit_start,
                });
            }
        }
        let raw_wait = start - unit_start;
        if raw_wait > 0 {
            let ramp = raw_wait.min(self.eff_startup());
            self.stalls.add(StallCause::VectorStartup, ramp);
            self.stalls.add(StallCause::RawHazard, raw_wait - ramp);
            if recording {
                if ramp > 0 {
                    self.pipe(|| PipeEvent::Stall {
                        cause: StallCause::VectorStartup,
                        start: unit_start,
                        end: unit_start + ramp,
                    });
                }
                if raw_wait > ramp {
                    self.pipe(|| PipeEvent::Stall {
                        cause: StallCause::RawHazard,
                        start: unit_start + ramp,
                        end: start,
                    });
                }
            }
        }
        self.stalls.note_total(start - t0);
        self.last_occ_mem = std::mem::take(&mut self.next_occ_mem).min(occupancy);
        // Clamp so `mem + cont ≤ total` and the proportional split above can
        // never over-attribute the occupancy wait.
        self.last_occ_cont =
            std::mem::take(&mut self.next_occ_cont).min(occupancy - self.last_occ_mem);
        self.last_occ_total = occupancy;
    }

    /// Attribute the front-end wait for a scalar result consumed from the
    /// vector unit (reductions): the startup ramp plus dependency latency.
    #[inline]
    fn attribute_consume_wait(&mut self, lat: u64) {
        let ramp = lat.min(self.eff_startup());
        self.stalls.add(StallCause::VectorStartup, ramp);
        self.stalls.add(StallCause::RawHazard, lat - ramp);
        self.stalls.note_total(lat);
        // Called after `now` advanced past the wait: it covered [now-lat, now).
        let t0 = self.now - lat;
        if ramp > 0 {
            self.pipe(|| PipeEvent::Stall {
                cause: StallCause::VectorStartup,
                start: t0,
                end: t0 + ramp,
            });
        }
        if lat > ramp {
            let end = self.now;
            self.pipe(|| PipeEvent::Stall { cause: StallCause::RawHazard, start: t0 + ramp, end });
        }
    }

    /// Miss-latency adjustment: on platforms with a hardware prefetcher, a
    /// miss whose line directly follows the previous missed line is a late
    /// prefetch — most of its fill latency is already in flight — so only a
    /// quarter of it is exposed.
    #[inline]
    fn miss_extra(&mut self, line: u64, raw_extra: u64) -> u64 {
        let seq = self.recent_misses.iter().any(|&m| line == m.wrapping_add(1));
        self.recent_misses[self.recent_miss_pos] = line;
        self.recent_miss_pos = (self.recent_miss_pos + 1) % self.recent_misses.len();
        if seq && self.cfg.mem.hw_prefetch.is_some() {
            raw_extra / 4
        } else {
            raw_extra
        }
    }

    /// Aggregate the cache cost of one vector memory instruction.
    ///
    /// Returns `(occupancy, result_latency)` for [`Self::issue`]. Visits
    /// each line in `lines` (byte addresses, one representative per line).
    #[inline]
    fn mem_instr_cost<I: Iterator<Item = u64>>(
        &mut self,
        lines: I,
        kind: AccessKind,
        bytes: u64,
    ) -> (u64, u64) {
        let vpu = self.cfg.vpu;
        let base_lat = match self.cfg.mem.vpu_path {
            VpuPath::ThroughL1 => self.cfg.mem.l1.hit_latency,
            VpuPath::DecoupledL2 { .. } => 2,
        } as u64;
        let mut extra: u64 = 0;
        let mut n_lines: u64 = 0;
        let lb = self.sys.line_bytes() as u64;
        for addr in lines {
            let lat = self.probe_vector(addr, kind, true);
            let raw = (lat as u64).saturating_sub(base_lat);
            extra += if raw > 0 { self.miss_extra(addr / lb, raw) } else { 0 };
            n_lines += 1;
        }
        // Long accesses expose more line fills to overlap: effective MLP
        // grows with the number of lines in flight (capped).
        let eff_mlp = (vpu.mlp as u64).max(n_lines / 2).min(8);
        let exposed = extra / eff_mlp;
        // Shared-port arbitration waits (multi-core SoC runs; always zero on
        // a single core) are serialized transfers: they extend the occupancy
        // un-divided by MLP.
        let cont = self.sys.take_contention();
        let tx = bytes.div_ceil(vpu.bus_bytes as u64);
        let occ = self.eff_throughput(tx) + exposed + cont;
        let lat = self.eff_pipe_depth() + base_lat + occ;
        self.next_occ_mem = exposed;
        self.next_occ_cont = cont;
        (occ.max(1), lat)
    }

    // ------------------------------------------------------------------
    // Vector length / predication
    // ------------------------------------------------------------------

    /// RVV `vsetvl`: granted vector length for a requested `rvl` elements.
    #[inline]
    pub fn setvl(&mut self, rvl: usize) -> usize {
        self.rlog(|| ReplayOp::Setvl { rvl: r32(rvl as u64, "setvl rvl") });
        self.tl_setvl(rvl)
    }

    /// Timing half of [`Self::setvl`] (shared with the replay executor):
    /// the scalar-op charge and the recorded grant event.
    #[inline]
    fn tl_setvl(&mut self, rvl: usize) -> usize {
        self.scalar_ops_tl(1);
        let granted = rvl.min(self.vlen_elems);
        self.rec(|| VecEvent::grant("setvl", rvl, granted));
        granted
    }

    /// SVE `whilelt`: predicate for lanes `i..n`.
    #[inline]
    pub fn whilelt(&mut self, i: usize, n: usize) -> Pred {
        self.rlog(|| ReplayOp::Whilelt {
            i: r32(i as u64, "whilelt i"),
            n: r32(n as u64, "whilelt n"),
        });
        self.tl_whilelt(i, n)
    }

    /// Timing half of [`Self::whilelt`] (shared with the replay executor).
    #[inline]
    fn tl_whilelt(&mut self, i: usize, n: usize) -> Pred {
        self.scalar_ops_tl(1);
        let p = Pred::whilelt(i, n, self.vlen_elems);
        self.rec(|| VecEvent::grant("whilelt", n.saturating_sub(i), p.active));
        p
    }

    /// SVE `svcntw`: number of 32-bit lanes (Fig. 4 line 3).
    #[inline]
    pub fn svcntw(&self) -> usize {
        self.vlen_elems
    }

    // ------------------------------------------------------------------
    // Vector memory operations
    // ------------------------------------------------------------------

    /// Unit-stride vector load of `vl` elements from byte address `addr`.
    pub fn vle(&mut self, vd: VReg, addr: u64, vl: usize) {
        debug_assert!(vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        self.check_vec("vle", addr, addr + 4 * vl as u64, vl);
        self.rlog(|| ReplayOp::VLoad { vd: vd as u8, vl: vl as u16, addr: r32(addr, "vle addr") });
        // Functional.
        let n = self.vlen_elems;
        if self.ref_model {
            // Reference path: one scalar arena read per element.
            for i in 0..vl {
                let v = self.mem.read_addr(addr + 4 * i as u64);
                self.regs[vd * n + i] = v;
            }
        } else {
            // Copy out of memory into the register row. Split borrows: the
            // register file and arena are distinct fields.
            let words = self.mem.words(addr, vl);
            let dst = &mut self.regs[vd * n..vd * n + vl];
            dst.copy_from_slice(words);
        }
        self.tl_vle(vd, addr, vl);
    }

    /// Timing half of [`Self::vle`] (shared with the replay executor).
    fn tl_vle(&mut self, vd: VReg, addr: u64, vl: usize) {
        self.rec(|| VecEvent::load("vle", vd, addr, addr + 4 * vl as u64, vl));
        let lb = self.sys.line_bytes() as u64;
        let first = addr / lb;
        let last = (addr + 4 * vl as u64 - 1) / lb;
        let (occ, lat) = self.mem_instr_cost(
            (first..=last).map(move |l| l * lb),
            AccessKind::Read,
            4 * vl as u64,
        );
        self.issue([None, None], Some(vd), occ, lat);
        self.stats.vec_mem_instrs += 1;
        self.stats.active_elems += vl as u64;
    }

    /// Unit-stride vector store of `vl` elements to byte address `addr`.
    pub fn vse(&mut self, vs: VReg, addr: u64, vl: usize) {
        debug_assert!(vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        self.check_vec("vse", addr, addr + 4 * vl as u64, vl);
        self.rlog(|| ReplayOp::VStore { vs: vs as u8, vl: vl as u16, addr: r32(addr, "vse addr") });
        let n = self.vlen_elems;
        if self.ref_model {
            for i in 0..vl {
                let v = self.regs[vs * n + i];
                self.mem.write_addr(addr + 4 * i as u64, v);
            }
        } else {
            let reg_row = vd_row(&self.regs, vs, n, vl);
            self.mem.words_mut(addr, vl).copy_from_slice(reg_row);
        }
        self.tl_vse(vs, addr, vl);
    }

    /// Timing half of [`Self::vse`] (shared with the replay executor).
    fn tl_vse(&mut self, vs: VReg, addr: u64, vl: usize) {
        self.rec(|| VecEvent::store("vse", vs, addr, addr + 4 * vl as u64, vl));
        let lb = self.sys.line_bytes() as u64;
        let first = addr / lb;
        let last = (addr + 4 * vl as u64 - 1) / lb;
        let (occ, _lat) = self.mem_instr_cost(
            (first..=last).map(move |l| l * lb),
            AccessKind::Write,
            4 * vl as u64,
        );
        // Stores retire through the store buffer: they occupy the unit but
        // the source register is already available; no new result.
        self.issue([Some(vs), None], None, occ, occ);
        self.stats.vec_mem_instrs += 1;
        self.stats.active_elems += vl as u64;
    }

    /// Strided vector load: element `i` comes from `addr + i * stride_bytes`.
    pub fn vlse(&mut self, vd: VReg, addr: u64, stride_bytes: u64, vl: usize) {
        debug_assert!(vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let hi = addr + (vl as u64 - 1) * stride_bytes + 4;
        self.check_vec("vlse", addr, hi, vl);
        self.rlog(|| ReplayOp::VLoadStrided {
            vd: vd as u8,
            vl: vl as u16,
            addr: r32(addr, "vlse addr"),
            stride: r32(stride_bytes, "vlse stride"),
        });
        let n = self.vlen_elems;
        if self.ref_model || !stride_bytes.is_multiple_of(4) {
            for i in 0..vl {
                let v = self.mem.read_addr(addr + i as u64 * stride_bytes);
                self.regs[vd * n + i] = v;
            }
        } else if stride_bytes == 0 {
            let v = self.mem.read_addr(addr);
            self.regs[vd * n..vd * n + vl].fill(v);
        } else {
            // One arena borrow spanning the whole access, stepped per lane.
            let step = (stride_bytes / 4) as usize;
            let words = self.mem.words(addr, (vl - 1) * step + 1);
            let dst = &mut self.regs[vd * n..vd * n + vl];
            for (d, s) in dst.iter_mut().zip(words.iter().step_by(step)) {
                *d = *s;
            }
        }
        self.tl_vlse(vd, addr, stride_bytes, vl);
    }

    /// Timing half of [`Self::vlse`] (shared with the replay executor).
    fn tl_vlse(&mut self, vd: VReg, addr: u64, stride_bytes: u64, vl: usize) {
        self.rec(|| {
            VecEvent::load("vlse", vd, addr, addr + (vl as u64 - 1) * stride_bytes + 4, vl)
        });
        let (occ, lat) = self.strided_cost(addr, stride_bytes, vl, AccessKind::Read);
        self.issue([None, None], Some(vd), occ, lat);
        self.stats.vec_mem_instrs += 1;
        self.stats.active_elems += vl as u64;
    }

    /// Strided vector store: element `i` goes to `addr + i * stride_bytes`.
    pub fn vsse(&mut self, vs: VReg, addr: u64, stride_bytes: u64, vl: usize) {
        debug_assert!(vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let hi = addr + (vl as u64 - 1) * stride_bytes + 4;
        self.check_vec("vsse", addr, hi, vl);
        self.rlog(|| ReplayOp::VStoreStrided {
            vs: vs as u8,
            vl: vl as u16,
            addr: r32(addr, "vsse addr"),
            stride: r32(stride_bytes, "vsse stride"),
        });
        let n = self.vlen_elems;
        if self.ref_model || !stride_bytes.is_multiple_of(4) || stride_bytes == 0 {
            // Per-element reference path; also the stride-0 case, where
            // element order decides the surviving value.
            for i in 0..vl {
                let v = self.regs[vs * n + i];
                self.mem.write_addr(addr + i as u64 * stride_bytes, v);
            }
        } else {
            let step = (stride_bytes / 4) as usize;
            let row = vd_row(&self.regs, vs, n, vl);
            let words = self.mem.words_mut(addr, (vl - 1) * step + 1);
            for (k, &v) in row.iter().enumerate() {
                words[k * step] = v;
            }
        }
        self.tl_vsse(vs, addr, stride_bytes, vl);
    }

    /// Timing half of [`Self::vsse`] (shared with the replay executor).
    fn tl_vsse(&mut self, vs: VReg, addr: u64, stride_bytes: u64, vl: usize) {
        self.rec(|| {
            VecEvent::store("vsse", vs, addr, addr + (vl as u64 - 1) * stride_bytes + 4, vl)
        });
        let (occ, _) = self.strided_cost(addr, stride_bytes, vl, AccessKind::Write);
        self.issue([Some(vs), None], None, occ, occ);
        self.stats.vec_mem_instrs += 1;
        self.stats.active_elems += vl as u64;
    }

    /// Cost of a strided/indexed access: per-element issue plus line traffic
    /// (consecutive duplicate lines deduplicated, as a coalescing LSU would).
    ///
    /// The probe loop steps line-by-line instead of element-by-element: a
    /// strided stream is monotone, so consecutive-duplicate dedup equals full
    /// dedup, and each line's *first-touching element address* is computed
    /// directly — the exact address the per-element loop would have probed.
    /// The modeled per-element occupancy charge (`vl * gather_elem_cycles`)
    /// is untouched; only the redundant functional line probes are skipped.
    /// [`Self::strided_cost_ref`] retains the per-element loop for the
    /// equivalence tests.
    fn strided_cost(
        &mut self,
        addr: u64,
        stride_bytes: u64,
        vl: usize,
        kind: AccessKind,
    ) -> (u64, u64) {
        if self.ref_model {
            return self.strided_cost_ref(addr, stride_bytes, vl, kind);
        }
        let lb = self.sys.line_bytes() as u64;
        let lb_shift = lb.trailing_zeros();
        let vpu = self.cfg.vpu;
        let base_lat = match self.cfg.mem.vpu_path {
            VpuPath::ThroughL1 => self.cfg.mem.l1.hit_latency,
            VpuPath::DecoupledL2 { .. } => 2,
        } as u64;
        let mut extra: u64 = 0;
        if stride_bytes == 0 {
            // Every element reads the same address: one probe.
            let lat = self.probe_vector(addr, kind, false);
            extra = (lat as u64).saturating_sub(base_lat);
        } else if stride_bytes < lb {
            // Sub-line stride: every line between the first and last element
            // is touched; skip straight to each line's first toucher.
            let last = addr + (vl as u64 - 1) * stride_bytes;
            let mut a = addr;
            loop {
                let lat = self.probe_vector(a, kind, false);
                extra += (lat as u64).saturating_sub(base_lat);
                let next_line_start = ((a >> lb_shift) + 1) << lb_shift;
                if last < next_line_start {
                    break;
                }
                a += (next_line_start - a).div_ceil(stride_bytes) * stride_bytes;
            }
        } else {
            // Stride of a line or more: consecutive elements always land on
            // distinct lines, so every element's line is probed.
            let mut a = addr;
            for _ in 0..vl {
                let lat = self.probe_vector(a, kind, false);
                extra += (lat as u64).saturating_sub(base_lat);
                a += stride_bytes;
            }
        }
        let exposed = extra / vpu.mlp as u64;
        let cont = self.sys.take_contention();
        let occ = self.eff_throughput(vl as u64 * vpu.gather_elem_cycles as u64) + exposed + cont;
        let lat = self.eff_pipe_depth() + base_lat + occ;
        self.next_occ_mem = exposed;
        self.next_occ_cont = cont;
        (occ, lat)
    }

    /// The pre-coalescing per-element probe loop, byte-for-byte the original
    /// implementation. Kept as the ground truth [`Self::strided_cost`] is
    /// tested against (`set_reference_model` routes here).
    fn strided_cost_ref(
        &mut self,
        addr: u64,
        stride_bytes: u64,
        vl: usize,
        kind: AccessKind,
    ) -> (u64, u64) {
        let lb = self.sys.line_bytes() as u64;
        let vpu = self.cfg.vpu;
        let base_lat = match self.cfg.mem.vpu_path {
            VpuPath::ThroughL1 => self.cfg.mem.l1.hit_latency,
            VpuPath::DecoupledL2 { .. } => 2,
        } as u64;
        let mut extra: u64 = 0;
        let mut last_line = u64::MAX;
        for i in 0..vl {
            let a = addr + i as u64 * stride_bytes;
            let line = a / lb;
            if line != last_line {
                let lat = self.probe_vector(a, kind, false);
                extra += (lat as u64).saturating_sub(base_lat);
                last_line = line;
            }
        }
        let exposed = extra / vpu.mlp as u64;
        let cont = self.sys.take_contention();
        let occ = self.eff_throughput(vl as u64 * vpu.gather_elem_cycles as u64) + exposed + cont;
        let lat = self.eff_pipe_depth() + base_lat + occ;
        self.next_occ_mem = exposed;
        self.next_occ_cont = cont;
        (occ, lat)
    }

    /// Indexed gather load: element `i` comes from `base + 4 * idx[i]`
    /// (indices in elements, as RVV `vluxei32` / SVE gather with a vector of
    /// offsets). A sentinel index of `u32::MAX` marks an inactive lane
    /// (predicated out): the lane loads 0.0 and is not charged.
    // The `0..vl` loops below index both `idx` and the register file;
    // iterator rewrites would obscure the lane/offset correspondence.
    #[allow(clippy::needless_range_loop)]
    pub fn vgather(&mut self, vd: VReg, base: u64, idx: &[u32], vl: usize) {
        debug_assert!(vl <= idx.len() && vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let range = indexed_range(base, &idx[..vl]);
        if let Some((lo, hi)) = range {
            self.check_vec("vgather", lo, hi, vl);
        }
        self.rlog_indexed(IndexedOp::Gather, vd, base, &idx[..vl]);
        self.gather_elems(vd, base, &idx[..vl], range);
        self.tl_indexed(IndexedOp::Gather, vd, base, &idx[..vl]);
    }

    /// Indexed scatter store: element `i` goes to `base + 4 * idx[i]`.
    /// Lanes whose index is `u32::MAX` are predicated out (not stored, not
    /// charged).
    #[allow(clippy::needless_range_loop)]
    pub fn vscatter(&mut self, vs: VReg, base: u64, idx: &[u32], vl: usize) {
        debug_assert!(vl <= idx.len() && vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let range = indexed_range(base, &idx[..vl]);
        if let Some((lo, hi)) = range {
            self.check_vec("vscatter", lo, hi, vl);
        }
        self.rlog_indexed(IndexedOp::Scatter, vs, base, &idx[..vl]);
        self.scatter_elems(vs, base, &idx[..vl], range);
        self.tl_indexed(IndexedOp::Scatter, vs, base, &idx[..vl]);
    }

    /// Structured gather where lanes come in contiguous groups of four
    /// elements (SVE "create tuples of four vectors and transpose" — LD1 of
    /// 16-byte chunks plus ZIP/TRN register permutes, §VII). Functionally
    /// identical to [`Self::vgather`], but charged per 4-element group plus
    /// a fixed permute overhead instead of per element. RISC-V Vector has
    /// no such instructions, which is why the paper excludes it from the
    /// Winograd analysis.
    #[allow(clippy::needless_range_loop)]
    pub fn vgather4(&mut self, vd: VReg, base: u64, idx: &[u32], vl: usize) {
        debug_assert!(vl <= idx.len() && vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let range = indexed_range(base, &idx[..vl]);
        if let Some((lo, hi)) = range {
            self.check_vec("vgather4", lo, hi, vl);
        }
        self.rlog_indexed(IndexedOp::Gather4, vd, base, &idx[..vl]);
        self.gather_elems(vd, base, &idx[..vl], range);
        self.tl_indexed(IndexedOp::Gather4, vd, base, &idx[..vl]);
    }

    /// Structured scatter, the store-side counterpart of [`Self::vgather4`]
    /// (register transpose + ST1 of 16-byte chunks).
    #[allow(clippy::needless_range_loop)]
    pub fn vscatter4(&mut self, vs: VReg, base: u64, idx: &[u32], vl: usize) {
        debug_assert!(vl <= idx.len() && vl <= self.vlen_elems);
        if vl == 0 {
            return;
        }
        let range = indexed_range(base, &idx[..vl]);
        if let Some((lo, hi)) = range {
            self.check_vec("vscatter4", lo, hi, vl);
        }
        self.rlog_indexed(IndexedOp::Scatter4, vs, base, &idx[..vl]);
        self.scatter_elems(vs, base, &idx[..vl], range);
        self.tl_indexed(IndexedOp::Scatter4, vs, base, &idx[..vl]);
    }

    /// Functional half of an indexed gather: lane `i` reads
    /// `base + 4 * idx[i]`; sentinel (`u32::MAX`) lanes load 0.0. The fast
    /// path borrows the arena once across the access's byte range and
    /// indexes inside it; the reference path issues one `read_addr` per
    /// lane, as the original implementation did.
    // The reference loop indexes `idx` and the register file by lane on
    // purpose — it is the original implementation, kept verbatim.
    #[allow(clippy::needless_range_loop)]
    fn gather_elems(&mut self, vd: VReg, base: u64, idx: &[u32], range: Option<(u64, u64)>) {
        let n = self.vlen_elems;
        let vl = idx.len();
        if self.ref_model {
            for i in 0..vl {
                self.regs[vd * n + i] = if idx[i] == u32::MAX {
                    0.0
                } else {
                    self.mem.read_addr(base + 4 * u64::from(idx[i]))
                };
            }
            return;
        }
        let Some((lo, hi)) = range else {
            // All lanes predicated out: they load 0.0.
            self.regs[vd * n..vd * n + vl].fill(0.0);
            return;
        };
        let words = self.mem.words(lo, ((hi - lo) / 4) as usize);
        let dst = &mut self.regs[vd * n..vd * n + vl];
        for (d, &ix) in dst.iter_mut().zip(idx) {
            *d = if ix == u32::MAX {
                0.0
            } else {
                words[((base + 4 * u64::from(ix) - lo) / 4) as usize]
            };
        }
    }

    /// Functional half of an indexed scatter: lane `i` writes
    /// `base + 4 * idx[i]`; sentinel lanes are skipped. Writes land in lane
    /// order on both paths, so duplicate indices resolve identically.
    // The reference loop indexes `idx` and the register file by lane on
    // purpose — it is the original implementation, kept verbatim.
    #[allow(clippy::needless_range_loop)]
    fn scatter_elems(&mut self, vs: VReg, base: u64, idx: &[u32], range: Option<(u64, u64)>) {
        let n = self.vlen_elems;
        let vl = idx.len();
        if self.ref_model {
            for i in 0..vl {
                if idx[i] == u32::MAX {
                    continue;
                }
                let v = self.regs[vs * n + i];
                self.mem.write_addr(base + 4 * u64::from(idx[i]), v);
            }
            return;
        }
        let Some((lo, hi)) = range else { return };
        let row = vd_row(&self.regs, vs, n, vl);
        let words = self.mem.words_mut(lo, ((hi - lo) / 4) as usize);
        for (&v, &ix) in row.iter().zip(idx) {
            if ix != u32::MAX {
                words[((base + 4 * u64::from(ix) - lo) / 4) as usize] = v;
            }
        }
    }

    /// Cost of a structured group-of-4 indexed access: one issue slot per
    /// group plus a fixed permute cost, with line-granular cache charging.
    fn grouped_cost(&mut self, base: u64, idx: &[u32], kind: AccessKind) -> (u64, u64) {
        let lb = self.sys.line_bytes() as u64;
        let vpu = self.cfg.vpu;
        let base_lat = match self.cfg.mem.vpu_path {
            VpuPath::ThroughL1 => self.cfg.mem.l1.hit_latency,
            VpuPath::DecoupledL2 { .. } => 2,
        } as u64;
        let mut extra: u64 = 0;
        let mut last_line = u64::MAX;
        let mut active: u64 = 0;
        for &ix in idx {
            if ix == u32::MAX {
                continue;
            }
            active += 1;
            let a = base + 4 * ix as u64;
            let line = a / lb;
            if line != last_line {
                let lat = self.probe_vector(a, kind, false);
                let raw = (lat as u64).saturating_sub(base_lat);
                extra += if raw > 0 { self.miss_extra(line, raw) } else { 0 };
                last_line = line;
            }
        }
        let exposed = extra / vpu.mlp as u64;
        let cont = self.sys.take_contention();
        // One slot per 4-element group + 2 cycles of ZIP/TRN permutes.
        let occ = self.eff_throughput(active.div_ceil(4).max(1) + 2) + exposed + cont;
        let lat = self.eff_pipe_depth() + base_lat + occ;
        self.next_occ_mem = exposed;
        self.next_occ_cont = cont;
        (occ, lat)
    }

    fn indexed_cost(&mut self, base: u64, idx: &[u32], kind: AccessKind) -> (u64, u64) {
        let lb = self.sys.line_bytes() as u64;
        let vpu = self.cfg.vpu;
        let base_lat = match self.cfg.mem.vpu_path {
            VpuPath::ThroughL1 => self.cfg.mem.l1.hit_latency,
            VpuPath::DecoupledL2 { .. } => 2,
        } as u64;
        let mut extra: u64 = 0;
        let mut last_line = u64::MAX;
        let mut active: u64 = 0;
        for &ix in idx {
            if ix == u32::MAX {
                continue;
            }
            active += 1;
            let a = base + 4 * ix as u64;
            let line = a / lb;
            if line != last_line {
                let lat = self.probe_vector(a, kind, false);
                extra += (lat as u64).saturating_sub(base_lat);
                last_line = line;
            }
        }
        let exposed = extra / vpu.mlp as u64;
        let cont = self.sys.take_contention();
        let occ =
            self.eff_throughput((active * vpu.gather_elem_cycles as u64).max(1)) + exposed + cont;
        let lat = self.eff_pipe_depth() + base_lat + occ;
        self.next_occ_mem = exposed;
        self.next_occ_cont = cont;
        (occ, lat)
    }

    /// Append a [`ReplayOp::VIndexed`] with the lane indices copied into the
    /// trace's shared pool (no-op unless capturing).
    fn rlog_indexed(&mut self, op: IndexedOp, reg: VReg, base: u64, idx: &[u32]) {
        if let Some(log) = self.rlog.as_mut() {
            let range = log.push_idx(idx);
            log.ops.push(ReplayOp::VIndexed {
                op,
                reg: reg as u8,
                base: r32(base, "indexed base"),
                idx: range,
            });
        }
    }

    /// Timing half of the four indexed ops (shared with the replay
    /// executor): recorded event, cache/occupancy cost, issue, statistics.
    fn tl_indexed(&mut self, op: IndexedOp, reg: VReg, base: u64, idx: &[u32]) {
        let vl = idx.len();
        self.rec(|| {
            let (lo, hi) = indexed_range(base, idx).unwrap_or((0, 0));
            let ev = match op {
                IndexedOp::Gather => VecEvent::load("vgather", reg, lo, hi, vl),
                IndexedOp::Scatter => VecEvent::store("vscatter", reg, lo, hi, vl),
                IndexedOp::Gather4 => VecEvent::load("vgather4", reg, lo, hi, vl),
                IndexedOp::Scatter4 => VecEvent::store("vscatter4", reg, lo, hi, vl),
            };
            ev.with_active(active_lanes(idx))
        });
        match op {
            IndexedOp::Gather => {
                let (occ, lat) = self.indexed_cost(base, idx, AccessKind::Read);
                self.issue([None, None], Some(reg), occ, lat);
            }
            IndexedOp::Scatter => {
                let (occ, _) = self.indexed_cost(base, idx, AccessKind::Write);
                self.issue([Some(reg), None], None, occ, occ);
            }
            IndexedOp::Gather4 => {
                let (occ, lat) = self.grouped_cost(base, idx, AccessKind::Read);
                self.issue([None, None], Some(reg), occ, lat);
            }
            IndexedOp::Scatter4 => {
                let (occ, _) = self.grouped_cost(base, idx, AccessKind::Write);
                self.issue([Some(reg), None], None, occ, occ);
            }
        }
        self.stats.vec_mem_instrs += 1;
        self.stats.active_elems += vl as u64;
    }

    /// Software prefetch of the line at `addr` (§IV-A: dropped by the RVV
    /// compiler, a no-op on SVE@gem5, effective on A64FX).
    pub fn prefetch(&mut self, addr: u64, target: PrefetchTarget) {
        self.rlog(|| ReplayOp::Prefetch { addr: r32(addr, "prefetch addr"), target });
        self.tl_prefetch(addr, target);
    }

    /// Timing half of [`Self::prefetch`] (shared with the replay executor).
    /// Under tape playback the prefetch request itself is skipped — its
    /// effect on serving levels is already baked into the tape.
    fn tl_prefetch(&mut self, addr: u64, target: PrefetchTarget) {
        self.stats.sw_prefetches += 1;
        if self.cfg.mem.sw_prefetch_effective {
            if self.tape_play.is_none() {
                self.sys.sw_prefetch(addr, target);
            }
            self.scalar_ops_tl(1);
        } else if self.cfg.vpu.isa == IsaKind::Sve {
            // gem5 executes the instruction as a no-op: one issue slot.
            self.scalar_ops_tl(1);
        }
        // RVV: the compiler drops the intrinsic entirely — zero cost.
    }

    // ------------------------------------------------------------------
    // Vector arithmetic
    // ------------------------------------------------------------------

    #[inline]
    fn arith_cost(&self, vl: usize) -> (u64, u64) {
        let chime = self.eff_chime(vl);
        (chime, self.eff_startup() + chime)
    }

    #[inline]
    fn count_arith(&mut self, vl: usize, flops_per_elem: u64) {
        self.stats.active_elems += vl as u64;
        self.stats.vec_flops += vl as u64 * flops_per_elem;
    }

    /// Append a [`ReplayOp::VArith`] (no-op unless capturing).
    #[inline]
    fn rlog_arith(&mut self, op: VArithOp, vd: VReg, a: VReg, b: VReg, vl: usize) {
        self.rlog(|| ReplayOp::VArith { op, vd: vd as u8, a: a as u8, b: b as u8, vl: vl as u16 });
    }

    /// Timing half of every vector arithmetic op (shared between the public
    /// per-instruction API and the replay executor): the recorded event, the
    /// issue-stage source list, the occupancy/latency cost and the FLOP
    /// count, all reconstructed from the op's [`ArithShape`]. Register
    /// operands that a shape does not use are ignored.
    fn tl_varith(&mut self, op: VArithOp, vd: VReg, a: VReg, b: VReg, vl: usize) {
        let shape = op.shape();
        self.rec(|| {
            let ev_vl = if matches!(op, VArithOp::Broadcast) { vl.max(1) } else { vl };
            let srcs = match shape {
                ArithShape::Nullary => [None, None, None],
                ArithShape::Unary => [Some(a), None, None],
                ArithShape::UnaryAcc => [Some(a), Some(vd), None],
                ArithShape::Binary => [Some(a), Some(b), None],
                ArithShape::BinaryAcc => [Some(a), Some(b), Some(vd)],
            };
            VecEvent::arith(op.name(), vd, srcs, ev_vl)
        });
        let srcs = match shape {
            ArithShape::Nullary => [None, None],
            ArithShape::Unary => [Some(a), None],
            ArithShape::UnaryAcc => [Some(a), Some(vd)],
            ArithShape::Binary | ArithShape::BinaryAcc => [Some(a), Some(b)],
        };
        if op.is_slow() {
            // Division/sqrt are unpipelined-ish: several cycles per lane group.
            let chime = 8 * self.eff_chime(vl);
            self.issue(srcs, Some(vd), chime, self.eff_startup() + chime);
        } else {
            // Broadcast occupies a single slot regardless of `vl`.
            let cost_vl = if matches!(op, VArithOp::Broadcast) { 1 } else { vl };
            let (occ, lat) = self.arith_cost(cost_vl);
            self.issue(srcs, Some(vd), occ, lat);
        }
        self.count_arith(vl, op.flops_per_elem());
    }

    /// Broadcast a scalar into all lanes (RVV `vfmv.v.f` / SVE `svdup`).
    pub fn vbroadcast(&mut self, vd: VReg, x: f32, vl: usize) {
        self.rlog_arith(VArithOp::Broadcast, vd, 0, 0, vl);
        // Functionally fills vl.max(1) lanes; the recorded event says the
        // same so the uninitialized-read pass sees the true defined prefix.
        let n = self.vlen_elems;
        self.regs[vd * n..vd * n + vl.max(1)].fill(x);
        self.tl_varith(VArithOp::Broadcast, vd, 0, 0, vl);
    }

    /// Register move `vd = vs`.
    pub fn vmv(&mut self, vd: VReg, vs: VReg, vl: usize) {
        if vd == vs {
            return;
        }
        self.rlog_arith(VArithOp::Mv, vd, vs, 0, vl);
        let (d, s) = self.vreg_pair(vd, vs);
        d[..vl].copy_from_slice(&s[..vl]);
        self.tl_varith(VArithOp::Mv, vd, vs, 0, vl);
    }

    /// `vd[i] += a * vs[i]` — RVV `vfmacc.vf` / SVE `svmla_n` (Fig. 2 l.11).
    pub fn vfmacc_vf(&mut self, vd: VReg, a: f32, vs: VReg, vl: usize) {
        self.rlog_arith(VArithOp::MaccVf, vd, vs, 0, vl);
        {
            let (d, s) = self.vreg_pair(vd, vs);
            for (d, &s) in d[..vl].iter_mut().zip(&s[..vl]) {
                *d = fma32(a, s, *d);
            }
        }
        self.tl_varith(VArithOp::MaccVf, vd, vs, 0, vl);
    }

    /// `vd[i] -= va[i] * vb[i]` — RVV `vfnmsac.vv` / SVE `FMLS`.
    pub fn vfnmsac_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        debug_assert!(vd != va && vd != vb);
        self.rlog_arith(VArithOp::NmsacVv, vd, va, vb, vl);
        {
            let (d, a, b) = self.vreg_tri(vd, va, vb);
            for ((d, &x), &y) in d[..vl].iter_mut().zip(&a[..vl]).zip(&b[..vl]) {
                *d = fma32(-x, y, *d);
            }
        }
        self.tl_varith(VArithOp::NmsacVv, vd, va, vb, vl);
    }

    /// `vd[i] += va[i] * vb[i]` — RVV `vfmacc.vv`.
    pub fn vfmacc_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        debug_assert!(vd != va && vd != vb);
        self.rlog_arith(VArithOp::MaccVv, vd, va, vb, vl);
        {
            let (d, a, b) = self.vreg_tri(vd, va, vb);
            for ((d, &x), &y) in d[..vl].iter_mut().zip(&a[..vl]).zip(&b[..vl]) {
                *d = fma32(x, y, *d);
            }
        }
        self.tl_varith(VArithOp::MaccVv, vd, va, vb, vl);
    }

    /// `vd[i] = va[i] * b + vc_scalar`-style helpers are composed from the
    /// primitives below.
    /// `vd[i] = vs[i] * a`.
    pub fn vfmul_vf(&mut self, vd: VReg, vs: VReg, a: f32, vl: usize) {
        self.rlog_arith(VArithOp::MulVf, vd, vs, 0, vl);
        if vd == vs {
            let n = self.vlen_elems;
            for x in &mut self.regs[vd * n..vd * n + vl] {
                *x *= a;
            }
        } else {
            let (d, s) = self.vreg_pair(vd, vs);
            for i in 0..vl {
                d[i] = s[i] * a;
            }
        }
        self.tl_varith(VArithOp::MulVf, vd, vs, 0, vl);
    }

    /// `vd[i] = va[i] * vb[i]`.
    pub fn vfmul_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        self.rlog_arith(VArithOp::MulVv, vd, va, vb, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[va * n + i] * self.regs[vb * n + i];
        }
        self.tl_varith(VArithOp::MulVv, vd, va, vb, vl);
    }

    /// `vd[i] = va[i] + vb[i]`.
    pub fn vfadd_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        self.rlog_arith(VArithOp::AddVv, vd, va, vb, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[va * n + i] + self.regs[vb * n + i];
        }
        self.tl_varith(VArithOp::AddVv, vd, va, vb, vl);
    }

    /// `vd[i] = vs[i] + a`.
    pub fn vfadd_vf(&mut self, vd: VReg, vs: VReg, a: f32, vl: usize) {
        self.rlog_arith(VArithOp::AddVf, vd, vs, 0, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[vs * n + i] + a;
        }
        self.tl_varith(VArithOp::AddVf, vd, vs, 0, vl);
    }

    /// `vd[i] = va[i] - vb[i]`.
    pub fn vfsub_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        self.rlog_arith(VArithOp::SubVv, vd, va, vb, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[va * n + i] - self.regs[vb * n + i];
        }
        self.tl_varith(VArithOp::SubVv, vd, va, vb, vl);
    }

    /// `vd[i] = max(vs[i], a)` (leaky/ReLU building block).
    pub fn vfmax_vf(&mut self, vd: VReg, vs: VReg, a: f32, vl: usize) {
        self.rlog_arith(VArithOp::MaxVf, vd, vs, 0, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[vs * n + i].max(a);
        }
        self.tl_varith(VArithOp::MaxVf, vd, vs, 0, vl);
    }

    /// `vd[i] = max(va[i], vb[i])` (maxpool building block).
    pub fn vfmax_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        self.rlog_arith(VArithOp::MaxVv, vd, va, vb, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[va * n + i].max(self.regs[vb * n + i]);
        }
        self.tl_varith(VArithOp::MaxVv, vd, va, vb, vl);
    }

    /// `vd[i] = va[i] / vb[i]`.
    pub fn vfdiv_vv(&mut self, vd: VReg, va: VReg, vb: VReg, vl: usize) {
        self.rlog_arith(VArithOp::DivVv, vd, va, vb, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[va * n + i] / self.regs[vb * n + i];
        }
        self.tl_varith(VArithOp::DivVv, vd, va, vb, vl);
    }

    /// `vd[i] = sqrt(vs[i])`.
    pub fn vfsqrt(&mut self, vd: VReg, vs: VReg, vl: usize) {
        self.rlog_arith(VArithOp::Sqrt, vd, vs, 0, vl);
        let n = self.vlen_elems;
        for i in 0..vl {
            self.regs[vd * n + i] = self.regs[vs * n + i].sqrt();
        }
        self.tl_varith(VArithOp::Sqrt, vd, vs, 0, vl);
    }

    /// Timing half of the reductions (shared with the replay executor): the
    /// front end waits for the scalar result.
    fn tl_reduce(&mut self, op: ReduceOp, vs: VReg, vl: usize) {
        self.rec(|| VecEvent::reduce(op.name(), vs, vl));
        // The log2(lanes) reduction-tree term stays even under
        // `infinite_lanes`: more lanes deepen the tree, they don't flatten it.
        let chime = self.eff_chime(vl) + (self.cfg.vpu.lanes as f64).log2().ceil() as u64;
        let lat = self.eff_startup() + chime;
        self.issue([Some(vs), None], None, chime, lat);
        self.now += lat; // core consumes the scalar
        self.attribute_consume_wait(lat);
        self.count_arith(vl, 1);
    }

    /// Horizontal sum of the first `vl` lanes; the scalar result is consumed
    /// by the core, so the front end waits for it.
    pub fn vfredsum(&mut self, vs: VReg, vl: usize) -> f32 {
        self.rlog(|| ReplayOp::Reduce { op: ReduceOp::Sum, vs: vs as u8, vl: vl as u16 });
        let n = self.vlen_elems;
        let sum: f32 = self.regs[vs * n..vs * n + vl].iter().sum();
        self.tl_reduce(ReduceOp::Sum, vs, vl);
        sum
    }

    /// Horizontal max of the first `vl` lanes.
    pub fn vfredmax(&mut self, vs: VReg, vl: usize) -> f32 {
        self.rlog(|| ReplayOp::Reduce { op: ReduceOp::Max, vs: vs as u8, vl: vl as u16 });
        let n = self.vlen_elems;
        let mx = self.regs[vs * n..vs * n + vl].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        self.tl_reduce(ReduceOp::Max, vs, vl);
        mx
    }

    /// Record a register spill inserted by a kernel (unroll > registers).
    pub fn note_spill(&mut self) {
        self.rlog(|| ReplayOp::Spill);
        self.stats.spills += 1;
    }

    /// A gem5-`stats.txt`-flavoured dump of the machine state: cycle count,
    /// instruction mix, consumed vector length, and per-level cache
    /// statistics. One `name value` pair per line, suitable for diffing
    /// across design points.
    pub fn dump_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let st = self.sys.stats();
        let mut line = |k: &str, v: String| {
            let _ = writeln!(out, "{k:<48} {v}");
        };
        line("sim_cycles", self.cycles().to_string());
        line("system.cpu.vpu.vec_instrs", self.stats.vec_instrs.to_string());
        line("system.cpu.vpu.vec_mem_instrs", self.stats.vec_mem_instrs.to_string());
        line("system.cpu.vpu.vec_flops", self.stats.vec_flops.to_string());
        line("system.cpu.vpu.avg_vlen_bits", format!("{:.1}", self.stats.avg_vlen_bits()));
        line("system.cpu.vpu.sw_prefetches", self.stats.sw_prefetches.to_string());
        line("system.cpu.vpu.register_spills", self.stats.spills.to_string());
        line("system.cpu.scalar_ops", self.stats.scalar_ops.to_string());
        line("system.cpu.scalar_flops", self.stats.scalar_flops.to_string());
        line("system.cpu.vpu.stall_cycles_total", self.stalls.total().to_string());
        for cause in StallCause::ALL {
            line(
                &format!("system.cpu.vpu.stall_cycles.{}", cause.name()),
                self.stalls.get(cause).to_string(),
            );
        }
        for (name, c) in [("l1d", &st.l1), ("l2", &st.l2), ("vcache", &st.vcache)] {
            if c.accesses == 0 && c.prefetch_fills == 0 {
                continue;
            }
            line(&format!("system.{name}.overall_accesses"), c.accesses.to_string());
            line(&format!("system.{name}.overall_hits"), c.hits.to_string());
            line(&format!("system.{name}.overall_misses"), c.misses.to_string());
            line(&format!("system.{name}.overall_miss_rate"), format!("{:.6}", c.miss_rate()));
            line(&format!("system.{name}.writebacks"), c.writebacks.to_string());
            line(&format!("system.{name}.prefetch_fills"), c.prefetch_fills.to_string());
            line(&format!("system.{name}.prefetch_hits"), c.prefetch_hits.to_string());
        }
        line("system.mem.reads", st.dram_reads.to_string());
        line("system.mem.writes", st.dram_writes.to_string());
        out
    }

    // ------------------------------------------------------------------
    // Scalar side
    // ------------------------------------------------------------------

    /// Charge `n` scalar operation units (address arithmetic, branches, …).
    #[inline]
    pub fn charge_scalar_ops(&mut self, n: u64) {
        self.rlog(|| ReplayOp::ScalarOps { n: r32(n, "scalar-op count") });
        self.scalar_ops_tl(n);
    }

    /// Timing half of [`Self::charge_scalar_ops`], also used by ops that
    /// charge scalar work internally (`setvl`, `whilelt`, `prefetch`) so the
    /// replay log never records the same charge twice. One fractional-cycle
    /// addition per call — replaying call-by-call keeps the `f64`
    /// accumulation bit-identical.
    #[inline]
    fn scalar_ops_tl(&mut self, n: u64) {
        self.stats.scalar_ops += n;
        if let Some(sink) = self.sink.as_mut() {
            sink.scalar_ops(n);
        }
        self.scalar_frac += n as f64 * self.cfg.core.scalar_cpi;
        self.commit_scalar();
    }

    /// Charge `n` scalar floating-point operations.
    #[inline]
    pub fn charge_scalar_flops(&mut self, n: u64) {
        self.rlog(|| ReplayOp::ScalarFlops { n: r32(n, "scalar-flop count") });
        self.scalar_flops_tl(n);
    }

    /// Timing half of [`Self::charge_scalar_flops`].
    #[inline]
    fn scalar_flops_tl(&mut self, n: u64) {
        self.stats.scalar_flops += n;
        if let Some(sink) = self.sink.as_mut() {
            sink.scalar_ops(n);
        }
        self.scalar_frac += n as f64 * self.cfg.core.scalar_cpi;
        self.commit_scalar();
    }

    /// Scalar load with cache timing (hit latency assumed pipelined away;
    /// a fraction of miss latency is exposed). Charged at the *kernel*
    /// scalar rate: these are the A-operand reads and address bookkeeping
    /// inside vector micro-kernels, which dual-issue with vector work.
    pub fn scalar_read(&mut self, addr: u64) -> f32 {
        self.check_vec("scalar_read", addr, addr + 4, 1);
        let v = self.mem.read_addr(addr);
        self.rlog(|| ReplayOp::ScalarRead { addr: r32(addr, "scalar_read addr") });
        self.tl_scalar_mem(addr, AccessKind::Read);
        v
    }

    /// Scalar store with cache timing (kernel scalar rate, see
    /// [`Self::scalar_read`]).
    pub fn scalar_write(&mut self, addr: u64, v: f32) {
        self.check_vec("scalar_write", addr, addr + 4, 1);
        self.mem.write_addr(addr, v);
        self.rlog(|| ReplayOp::ScalarWrite { addr: r32(addr, "scalar_write addr") });
        self.tl_scalar_mem(addr, AccessKind::Write);
    }

    /// Timing half of [`Self::scalar_read`] / [`Self::scalar_write`]
    /// (shared with the replay executor).
    #[inline]
    fn tl_scalar_mem(&mut self, addr: u64, kind: AccessKind) {
        let lat = self.probe_scalar(addr, kind);
        // Hits expose no latency: their charge is exactly the kernel CPI
        // (`0.0 + cpi == cpi` in f64), so the hit path skips the exposure
        // arithmetic without perturbing the accumulated fraction.
        self.scalar_frac += if lat > self.cfg.mem.l1.hit_latency {
            f64::from(lat - self.cfg.mem.l1.hit_latency) * self.cfg.core.scalar_miss_exposure
                + self.cfg.core.kernel_scalar_cpi
        } else {
            self.cfg.core.kernel_scalar_cpi
        };
        self.commit_scalar();
        self.charge_scalar_contention();
    }

    /// Bulk timing for a sequential scalar read of `words` elements starting
    /// at `addr`: one cache probe per line, no per-element charge (callers
    /// charge compute via [`Self::charge_scalar_ops`]). Functional access is
    /// done by the caller on [`Self::mem`] slices.
    pub fn scalar_stream(&mut self, addr: u64, words: usize, kind: AccessKind) {
        if words == 0 {
            return;
        }
        self.rlog(|| ReplayOp::ScalarStream {
            addr: r32(addr, "scalar_stream addr"),
            words: r32(words as u64, "scalar_stream words"),
            write: matches!(kind, AccessKind::Write),
        });
        self.tl_scalar_stream(addr, words, kind);
    }

    /// Timing half of [`Self::scalar_stream`] (shared with the replay
    /// executor).
    fn tl_scalar_stream(&mut self, addr: u64, words: usize, kind: AccessKind) {
        let lb = self.sys.line_bytes() as u64;
        let first = addr / lb;
        let last = (addr + 4 * words as u64 - 1) / lb;
        let mut exposed = 0.0;
        for line in first..=last {
            let lat = self.probe_scalar(line * lb, kind);
            exposed += (lat.saturating_sub(self.cfg.mem.l1.hit_latency)) as f64
                * self.cfg.core.scalar_miss_exposure;
        }
        self.scalar_frac += exposed;
        self.commit_scalar();
        self.charge_scalar_contention();
    }

    /// Charge shared-port waits accumulated by *scalar* cache probes
    /// directly to the clock (multi-core SoC runs only). The scalar side has
    /// no occupancy machinery to carry the wait into the next issue, so the
    /// stall is taken — and attributed to `Contention` — on the spot. A
    /// single core drains exactly zero here, leaving the arithmetic of this
    /// function unreached (the bit-identity contract).
    #[inline]
    fn charge_scalar_contention(&mut self) {
        let cont = self.sys.take_contention();
        if cont == 0 {
            return;
        }
        let t0 = self.now;
        self.now += cont;
        self.stalls.add(StallCause::Contention, cont);
        self.stalls.note_total(cont);
        self.pipe(|| PipeEvent::Stall { cause: StallCause::Contention, start: t0, end: t0 + cont });
    }

    // ------------------------------------------------------------------
    // The replay executor (the `lva-retime` engine's workhorse)
    // ------------------------------------------------------------------

    /// Re-execute a captured semantic trace through the timing model,
    /// skipping all functional work. Returns one [`SegmentReplay`] per
    /// `reset_timing()`-delimited segment (a segment boundary snapshot plus
    /// the final tail), each carrying exactly what the full simulator would
    /// have reported for that segment.
    ///
    /// The machine must be freshly built for the target design point with
    /// the same hardware vector length the trace was captured at (vector
    /// lengths recorded in the ops are grants of the capture machine; the
    /// caller enforces the stream-key match). For a **tape refit**, install
    /// the capture's probe tape with [`Self::play_probe_tape`] first; for a
    /// **live replay**, leave it out and the recorded addresses drive this
    /// machine's real memory hierarchy (optionally recording a fresh tape
    /// via [`Self::record_probe_tape`]).
    pub fn replay(&mut self, trace: &ReplayTrace) -> Vec<SegmentReplay> {
        self.replay_with(trace, None)
    }

    /// [`Self::replay`] with an optional per-layer timing memo (the
    /// retime-many fast path; see [`crate::refit`]). On a **tape refit**
    /// with no observers installed, each `LayerBegin..LayerEnd` region
    /// whose [`MemoKey`] (reduced op signature × tape slice × relative
    /// entry state) is already in `memo` is *applied* as a stored state
    /// delta instead of interpreted — bit-identical by the timing model's
    /// translation invariance — and missed regions are interpreted once and
    /// stored. With observers present (event sink, recorder, pipeline
    /// recorder, address tap, replay log, tape recorder), on a live replay,
    /// or on the reference model, the memo is ignored entirely: those paths
    /// have per-op side effects a state delta cannot reproduce.
    ///
    /// `memo` must be scoped to exactly this machine configuration and the
    /// installed tape's geometry; the caller (the `lva-retime` store) keys
    /// its memo instances accordingly.
    pub fn replay_with(
        &mut self,
        trace: &ReplayTrace,
        memo: Option<(&RefitPlan, &mut LayerMemo)>,
    ) -> Vec<SegmentReplay> {
        self.replay_span(trace, 0, false, memo).0
    }

    /// Replay only the setup prologue — everything up to and including the
    /// first `ResetTiming` — and return the index of the first measured op.
    /// Lets a caller install observers (e.g. the energy probe) *between*
    /// setup and the measured segment, exactly where a full run attaches
    /// them, before finishing with [`Self::replay_from`].
    pub fn replay_setup(&mut self, trace: &ReplayTrace) -> usize {
        self.replay_span(trace, 0, true, None).1
    }

    /// Replay from op index `start` (as returned by [`Self::replay_setup`])
    /// to the end of the trace, returning one [`SegmentReplay`] per
    /// remaining segment.
    pub fn replay_from(&mut self, trace: &ReplayTrace, start: usize) -> Vec<SegmentReplay> {
        self.replay_span(trace, start, false, None).0
    }

    /// Execute the recorded op under `cur` and advance the cursor; `false`
    /// once the cursor's range is exhausted (no op executed).
    ///
    /// This is the steppable face of the replay executor: the multi-core SoC
    /// event loop (`lva-scale`) interleaves N machines by driving each one
    /// recorded op at a time, publishing the core's clock to the shared
    /// memory port before every step. Op-for-op it runs exactly the `tl_*`
    /// timing functions the batch executor runs, so a cursor walked start to
    /// end is bit-identical to [`Self::replay_from`] over the same range.
    /// Segment boundaries stay with the caller: a [`ReplayOp::ResetTiming`]
    /// inside the range is a contract violation (panics) — the SoC loop owns
    /// its barrier protocol and slices cursors between boundaries.
    pub fn replay_step(&mut self, trace: &ReplayTrace, cur: &mut ReplayCursor) -> bool {
        let Some(&op) = trace.ops.get(cur.i).filter(|_| cur.i < cur.end) else {
            return false;
        };
        cur.i += 1;
        match op {
            ReplayOp::Setvl { rvl } => {
                self.tl_setvl(rvl as usize);
            }
            ReplayOp::Whilelt { i, n } => {
                self.tl_whilelt(i as usize, n as usize);
            }
            ReplayOp::VLoad { vd, vl, addr } => self.tl_vle(vd as VReg, addr as u64, vl as usize),
            ReplayOp::VStore { vs, vl, addr } => self.tl_vse(vs as VReg, addr as u64, vl as usize),
            ReplayOp::VLoadStrided { vd, vl, addr, stride } => {
                self.tl_vlse(vd as VReg, addr as u64, stride as u64, vl as usize);
            }
            ReplayOp::VStoreStrided { vs, vl, addr, stride } => {
                self.tl_vsse(vs as VReg, addr as u64, stride as u64, vl as usize);
            }
            ReplayOp::VIndexed { op, reg, base, idx } => {
                let lanes = &trace.idx_pool[idx.off as usize..(idx.off + idx.len) as usize];
                self.tl_indexed(op, reg as VReg, base as u64, lanes);
            }
            ReplayOp::VArith { op, vd, a, b, vl } => {
                self.tl_varith(op, vd as VReg, a as VReg, b as VReg, vl as usize);
            }
            ReplayOp::Reduce { op, vs, vl } => self.tl_reduce(op, vs as VReg, vl as usize),
            ReplayOp::Prefetch { addr, target } => self.tl_prefetch(addr as u64, target),
            ReplayOp::ScalarOps { n } => self.scalar_ops_tl(n as u64),
            ReplayOp::ScalarFlops { n } => self.scalar_flops_tl(n as u64),
            ReplayOp::ScalarRead { addr } => self.tl_scalar_mem(addr as u64, AccessKind::Read),
            ReplayOp::ScalarWrite { addr } => self.tl_scalar_mem(addr as u64, AccessKind::Write),
            ReplayOp::ScalarStream { addr, words, write } => {
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                self.tl_scalar_stream(addr as u64, words as usize, kind);
            }
            ReplayOp::PhaseBegin { phase } => {
                let t0 = self.cycles();
                self.tl_phase_begin(phase);
                cur.phase_stack.push((phase, t0));
            }
            ReplayOp::PhaseEnd { phase } => {
                let t1 = self.tl_phase_end(phase);
                let (p, t0) = cur.phase_stack.pop().expect("replay_step: PhaseEnd without open");
                debug_assert_eq!(p, phase, "replay_step: mismatched phase nesting");
                self.phases.add(phase, t1 - t0);
            }
            ReplayOp::LayerBegin { index, desc } => {
                self.sys.tap_scope(TapScope::LayerBegin {
                    index: index as usize,
                    desc: &trace.descs[desc as usize],
                });
            }
            ReplayOp::LayerEnd => self.sys.tap_scope(TapScope::LayerEnd),
            ReplayOp::Spill => self.stats.spills += 1,
            ReplayOp::ResetTiming => {
                panic!("replay_step: ResetTiming inside a cursor range — slice at boundaries")
            }
        }
        true
    }

    /// Advance the front-end clock to at least `t` without doing work: an
    /// *idle* wait, deliberately not a stall (nothing was issued and nothing
    /// blocked the front-end — the core simply has no frame to work on).
    /// Used by the SoC pipeline-sharding loop for inter-stage frame
    /// handoffs; `lva-scale` reports the skipped span separately as pipeline
    /// idle time.
    pub fn advance_to(&mut self, t: u64) {
        self.commit_scalar();
        self.now = self.now.max(t);
    }

    /// The replay executor: run ops from `start`, optionally stopping right
    /// after the first `ResetTiming` boundary; returns the completed
    /// segments and the index of the next unexecuted op.
    fn replay_span(
        &mut self,
        trace: &ReplayTrace,
        start: usize,
        stop_after_reset: bool,
        mut memo: Option<(&RefitPlan, &mut LayerMemo)>,
    ) -> (Vec<SegmentReplay>, usize) {
        let mut segments = Vec::new();
        // (phase, cycles at open) — mirrors the call stack of `phase()`.
        let mut phase_stack: Vec<(KernelPhase, u64)> = Vec::new();
        // Open layer: (index, desc, cycles/stalls/instr/elem snapshots).
        let mut layer_open: Option<(usize, u32, u64, StallBreakdown, u64, u64)> = None;
        let mut layers: Vec<LayerReplay> = Vec::new();
        // Memoization is sound only when replay state is *all* the state:
        // tape playback (no cache arrays evolving) and no per-op observers.
        let memo_static_ok = self.tape_play.is_some()
            && self.rec.is_none()
            && self.sink.is_none()
            && self.pipe.is_none()
            && self.rlog.is_none()
            && self.tape_rec.is_none()
            && !self.ref_model
            && !self.sys.has_tap();
        // Next entry of the plan's region list (one per LayerBegin).
        let mut next_region = 0usize;
        // Entry snapshot of a missed region being interpreted for capture.
        let mut pending: Option<EntrySnapshot> = None;
        let ops = &trace.ops;
        let mut i = start;
        while i < ops.len() {
            match ops[i] {
                ReplayOp::Setvl { rvl } => {
                    self.tl_setvl(rvl as usize);
                }
                ReplayOp::Whilelt { i, n } => {
                    self.tl_whilelt(i as usize, n as usize);
                }
                ReplayOp::VLoad { vd, vl, addr } => {
                    self.tl_vle(vd as VReg, addr as u64, vl as usize);
                }
                ReplayOp::VStore { vs, vl, addr } => {
                    self.tl_vse(vs as VReg, addr as u64, vl as usize);
                }
                ReplayOp::VLoadStrided { vd, vl, addr, stride } => {
                    self.tl_vlse(vd as VReg, addr as u64, stride as u64, vl as usize);
                }
                ReplayOp::VStoreStrided { vs, vl, addr, stride } => {
                    self.tl_vsse(vs as VReg, addr as u64, stride as u64, vl as usize);
                }
                ReplayOp::VIndexed { op, reg, base, idx } => {
                    let lanes = &trace.idx_pool[idx.off as usize..(idx.off + idx.len) as usize];
                    self.tl_indexed(op, reg as VReg, base as u64, lanes);
                }
                ReplayOp::VArith { op, vd, a, b, vl } => {
                    self.tl_varith(op, vd as VReg, a as VReg, b as VReg, vl as usize);
                }
                ReplayOp::Reduce { op, vs, vl } => {
                    self.tl_reduce(op, vs as VReg, vl as usize);
                }
                ReplayOp::Prefetch { addr, target } => {
                    self.tl_prefetch(addr as u64, target);
                }
                ReplayOp::ScalarOps { n } => {
                    self.scalar_ops_tl(n as u64);
                }
                ReplayOp::ScalarFlops { n } => {
                    self.scalar_flops_tl(n as u64);
                }
                ReplayOp::ScalarRead { addr } => {
                    self.tl_scalar_mem(addr as u64, AccessKind::Read);
                }
                ReplayOp::ScalarWrite { addr } => {
                    self.tl_scalar_mem(addr as u64, AccessKind::Write);
                }
                ReplayOp::ScalarStream { addr, words, write } => {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    self.tl_scalar_stream(addr as u64, words as usize, kind);
                }
                ReplayOp::PhaseBegin { phase } => {
                    let t0 = self.cycles();
                    self.tl_phase_begin(phase);
                    phase_stack.push((phase, t0));
                }
                ReplayOp::PhaseEnd { phase } => {
                    let t1 = self.tl_phase_end(phase);
                    let (p, t0) = phase_stack.pop().expect("replay: PhaseEnd without open phase");
                    debug_assert_eq!(p, phase, "replay: mismatched phase nesting");
                    self.phases.add(phase, t1 - t0);
                }
                ReplayOp::LayerBegin { index, desc } => {
                    self.sys.tap_scope(TapScope::LayerBegin {
                        index: index as usize,
                        desc: &trace.descs[desc as usize],
                    });
                    layer_open = Some((
                        index as usize,
                        desc,
                        self.cycles(),
                        self.stalls,
                        self.stats.vec_instrs,
                        self.stats.active_elems,
                    ));
                    if memo_static_ok {
                        if let Some((plan, store)) = memo.as_mut() {
                            let region = plan.regions[next_region];
                            next_region += 1;
                            debug_assert_eq!(
                                region.begin_op, i,
                                "refit plan misaligned with trace"
                            );
                            // Below the out-of-order window the scoreboard's
                            // `saturating_sub` breaks translation invariance;
                            // interpret such (rare, run-initial) layers.
                            if region.balanced && self.now >= self.cfg.core.ooo_window {
                                let tp = self.tape_play.as_ref().expect("memo requires tape");
                                let key = MemoKey {
                                    sig: region.sig,
                                    slice: fold_levels(tp.peek(region.probes)),
                                    entry: self.entry_fold(plan.geometry.hw_prefetch),
                                };
                                if let Some(eff) = store.map.get(&key) {
                                    let eff = eff.clone();
                                    self.apply_effect(&eff);
                                    self.tape_play
                                        .as_mut()
                                        .expect("memo requires tape")
                                        .skip(region.probes);
                                    store.hits += 1;
                                    // Resume at the region's LayerEnd, which
                                    // runs its normal bookkeeping.
                                    i = region.end_op;
                                    continue;
                                }
                                store.misses += 1;
                                pending = Some(EntrySnapshot {
                                    key,
                                    now: self.now,
                                    cursor: self
                                        .tape_play
                                        .as_ref()
                                        .expect("memo requires tape")
                                        .cursor,
                                    probes: region.probes,
                                    stalls: self.stalls,
                                    phases: self.phases.clone(),
                                    stats: self.stats,
                                });
                            }
                        }
                    }
                }
                ReplayOp::LayerEnd => {
                    if let Some(snap) = pending.take() {
                        let (plan, store) =
                            memo.as_mut().expect("pending memo capture without context");
                        let consumed = self.tape_play.as_ref().expect("memo requires tape").cursor
                            - snap.cursor;
                        assert_eq!(
                            consumed as u64, snap.probes,
                            "refit plan probe count diverged from timing consumption"
                        );
                        let eff = self.effect_since(&snap, plan.geometry.hw_prefetch);
                        store.map.insert(snap.key, eff);
                    }
                    self.sys.tap_scope(TapScope::LayerEnd);
                    let (index, desc, t0, stalls0, instrs0, elems0) =
                        layer_open.take().expect("replay: LayerEnd without open layer");
                    layers.push(LayerReplay {
                        index,
                        desc: trace.descs[desc as usize].clone(),
                        cycles: self.cycles() - t0,
                        stalls: self.stalls.since(&stalls0),
                        d_instrs: self.stats.vec_instrs - instrs0,
                        d_elems: self.stats.active_elems - elems0,
                    });
                }
                ReplayOp::Spill => {
                    self.stats.spills += 1;
                }
                ReplayOp::ResetTiming => {
                    segments.push(self.segment_snapshot(std::mem::take(&mut layers)));
                    if let Some(tp) = self.tape_play.as_mut() {
                        tp.next_segment();
                    }
                    self.reset_timing();
                    if stop_after_reset {
                        return (segments, i + 1);
                    }
                }
            }
            i += 1;
        }
        assert!(!stop_after_reset, "replay_setup: trace has no ResetTiming boundary");
        segments.push(self.segment_snapshot(layers));
        (segments, i)
    }

    /// Fold the timing-relevant machine state *relative to `now`* — the
    /// entry-state component of a layer [`MemoKey`]. Everything the timing
    /// functions read that is not config or op-stream: scoreboard distances,
    /// the fractional scalar accumulator, the occupancy-split carry-overs,
    /// and (only when a hardware prefetcher can read it) the recent-miss
    /// ring with its absolute line numbers.
    fn entry_fold(&self, ring_relevant: bool) -> Fold128 {
        let mut f = Fold128::new(0x0045_4E54_5259);
        let now = self.now as i64;
        f.push((self.unit_free as i64 - now) as u64);
        for &r in &self.ready {
            f.push((r as i64 - now) as u64);
        }
        f.push(self.scalar_frac.to_bits());
        f.push(self.next_occ_mem);
        f.push(self.next_occ_cont);
        f.push(self.last_occ_mem);
        f.push(self.last_occ_cont);
        f.push(self.last_occ_total);
        if ring_relevant {
            for &m in &self.recent_misses {
                f.push(m);
            }
            f.push(self.recent_miss_pos as u64);
        }
        f.finish()
    }

    /// Diff the machine state against a region-entry snapshot into a
    /// [`LayerEffect`]: scoreboard exits relative to the entry `now`
    /// (translation-invariant), determined exit values, and accumulator
    /// deltas.
    fn effect_since(&self, snap: &EntrySnapshot, ring_relevant: bool) -> LayerEffect {
        let base = snap.now as i64;
        let mut ready_rel = [0i64; NUM_VREGS];
        for (rel, &r) in ready_rel.iter_mut().zip(self.ready.iter()) {
            *rel = r as i64 - base;
        }
        LayerEffect {
            d_now: self.now - snap.now,
            uf_rel: self.unit_free as i64 - base,
            ready_rel,
            frac_bits: self.scalar_frac.to_bits(),
            next_occ_mem: self.next_occ_mem,
            next_occ_cont: self.next_occ_cont,
            last_occ_mem: self.last_occ_mem,
            last_occ_cont: self.last_occ_cont,
            last_occ_total: self.last_occ_total,
            ring: ring_relevant.then_some((self.recent_misses, self.recent_miss_pos)),
            stalls_d: self.stalls.since(&snap.stalls),
            phases_d: phases_delta(&snap.phases, &self.phases),
            stats_d: vpu_delta(&snap.stats, &self.stats),
        }
    }

    /// Apply a stored [`LayerEffect`] at the current `now` — the memo-hit
    /// fast path, bit-identical to interpreting the region (given an equal
    /// [`MemoKey`] and `now >= ooo_window`; see [`crate::refit`]).
    fn apply_effect(&mut self, eff: &LayerEffect) {
        let base = self.now as i64;
        self.now += eff.d_now;
        self.unit_free = (base + eff.uf_rel) as u64;
        for (r, &rel) in self.ready.iter_mut().zip(eff.ready_rel.iter()) {
            *r = (base + rel) as u64;
        }
        self.scalar_frac = f64::from_bits(eff.frac_bits);
        self.next_occ_mem = eff.next_occ_mem;
        self.next_occ_cont = eff.next_occ_cont;
        self.last_occ_mem = eff.last_occ_mem;
        self.last_occ_cont = eff.last_occ_cont;
        self.last_occ_total = eff.last_occ_total;
        if let Some((ring, pos)) = eff.ring {
            self.recent_misses = ring;
            self.recent_miss_pos = pos;
        }
        self.stalls.merge(&eff.stalls_d);
        self.phases.merge(&eff.phases_d);
        vpu_accum(&mut self.stats, &eff.stats_d);
    }

    /// The current segment's complete timing results (cache statistics from
    /// the tape under refit playback, from the live counters otherwise).
    fn segment_snapshot(&mut self, layers: Vec<LayerReplay>) -> SegmentReplay {
        let mem = match self.tape_play.as_ref() {
            Some(tp) => tp.segment_stats(),
            None => self.sys.stats(),
        };
        SegmentReplay {
            cycles: self.cycles(),
            stalls: self.stalls,
            phases: self.phases.clone(),
            vpu: self.stats,
            mem,
            layers,
        }
    }
}

/// Position state of a steppable replay (see [`Machine::replay_step`]): the
/// next op index, the exclusive range end, and the open-phase stack that
/// mirrors `phase()` nesting across steps.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    i: usize,
    end: usize,
    phase_stack: Vec<(KernelPhase, u64)>,
}

impl ReplayCursor {
    /// Cursor over `ops[start..end)` of a [`ReplayTrace`].
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "cursor range reversed: {start}..{end}");
        ReplayCursor { i: start, end, phase_stack: Vec::new() }
    }

    /// Next op index to execute.
    pub fn pos(&self) -> usize {
        self.i
    }

    /// Whether the range is exhausted.
    pub fn done(&self) -> bool {
        self.i >= self.end
    }
}

/// Helper to borrow a register row immutably from the raw backing store.
#[inline]
fn vd_row(regs: &[f32], r: VReg, n: usize, vl: usize) -> &[f32] {
    &regs[r * n..r * n + vl]
}

/// Fused multiply-add emulated in double precision: the `f32` product is
/// exact in `f64` (24×24 significand bits < 53), so the only deviation from
/// a true fused op is the final double rounding — identical except in rare
/// tie-straddling corner cases. Used instead of `f32::mul_add`, which lowers
/// to an indirect `fmaf` libm call on baseline x86-64 and dominated the
/// simulator's host profile. Timing is data-independent, so modeled cycles
/// are unaffected.
#[inline(always)]
fn fma32(a: f32, b: f32, c: f32) -> f32 {
    (f64::from(a) * f64::from(b) + f64::from(c)) as f32
}

/// Byte range `[lo, hi)` covered by the active lanes of an indexed access
/// (lanes with the `u32::MAX` sentinel are predicated out). `None` when no
/// lane is active.
#[inline]
fn indexed_range(base: u64, idx: &[u32]) -> Option<(u64, u64)> {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for &ix in idx {
        if ix == u32::MAX {
            continue;
        }
        let a = base + 4 * ix as u64;
        lo = lo.min(a);
        hi = hi.max(a + 4);
    }
    (lo < hi).then_some((lo, hi))
}

/// Lanes of an indexed access that are not sentinel-predicated — the count
/// the per-element gather/scatter occupancy charges, recorded as
/// [`VecEvent::active`] (only evaluated inside a recording closure).
#[inline]
fn active_lanes(idx: &[u32]) -> usize {
    idx.iter().filter(|&&ix| ix != u32::MAX).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    const ARENA_BASE_TEST: u64 = lva_sim::mem::ARENA_BASE;

    fn machine() -> Machine {
        Machine::new(MachineConfig::rvv_gem5(512, 8, 1 << 20))
    }

    #[test]
    fn setvl_grants_at_most_hw_length() {
        let mut m = machine();
        assert_eq!(m.vlen_elems(), 16);
        assert_eq!(m.setvl(100), 16);
        assert_eq!(m.setvl(7), 7);
    }

    #[test]
    fn load_compute_store_roundtrip() {
        let mut m = machine();
        let a = m.mem.alloc(16);
        let c = m.mem.alloc(16);
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        m.mem.slice_mut(a).copy_from_slice(&src);
        let vl = m.setvl(16);
        m.vle(1, a.addr(0), vl);
        m.vbroadcast(2, 0.0, vl);
        m.vfmacc_vf(2, 3.0, 1, vl);
        m.vse(2, c.addr(0), vl);
        let out = m.mem.slice(c);
        for (i, &v) in out.iter().enumerate().take(16) {
            assert_eq!(v, 3.0 * i as f32);
        }
        assert!(m.cycles() > 0);
    }

    #[test]
    fn dependent_fmas_slower_than_independent() {
        // 8 FMAs into ONE accumulator (chain) vs 8 accumulators (unrolled).
        let mk = || Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let mut chain = mk();
        let vl = chain.setvl(64);
        chain.vbroadcast(0, 1.0, vl);
        chain.vbroadcast(1, 2.0, vl);
        let t0 = chain.cycles();
        for _ in 0..8 {
            chain.vfmacc_vf(1, 1.5, 0, vl);
        }
        let chained = chain.cycles() - t0;

        let mut unrolled = mk();
        let vl = unrolled.setvl(64);
        unrolled.vbroadcast(0, 1.0, vl);
        for r in 1..=8 {
            unrolled.vbroadcast(r, 2.0, vl);
        }
        let t0 = unrolled.cycles();
        for r in 1..=8 {
            unrolled.vfmacc_vf(r, 1.5, 0, vl);
        }
        let parallel = unrolled.cycles() - t0;
        assert!(
            parallel * 2 < chained,
            "unrolled {parallel} should be much faster than chained {chained}"
        );
    }

    #[test]
    fn vector_traffic_bypasses_l1_on_rvv() {
        let mut m = machine();
        let a = m.mem.alloc(64);
        m.vle(0, a.addr(0), 16);
        assert_eq!(m.sys.l1.stats.accesses, 0);
        assert!(m.sys.l2.stats.accesses > 0);
    }

    #[test]
    fn vector_traffic_through_l1_on_sve() {
        let mut m = Machine::new(MachineConfig::sve_gem5(512, 1 << 20));
        let a = m.mem.alloc(64);
        m.vle(0, a.addr(0), 16);
        assert!(m.sys.l1.stats.accesses > 0);
    }

    #[test]
    fn strided_load_gathers_correctly() {
        let mut m = machine();
        let a = m.mem.alloc(64);
        for i in 0..64 {
            m.mem.write(a, i, i as f32);
        }
        m.vlse(3, a.addr(0), 16, 8); // stride 16 bytes = 4 elements
        let r = m.vreg(3);
        for (i, &v) in r.iter().enumerate().take(8) {
            assert_eq!(v, (4 * i) as f32);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = machine();
        let a = m.mem.alloc(32);
        let b = m.mem.alloc(32);
        for i in 0..32 {
            m.mem.write(a, i, i as f32);
        }
        let idx: Vec<u32> = (0..8).map(|i| 31 - 4 * i).collect();
        m.vgather(4, a.base, &idx, 8);
        let got: Vec<f32> = m.vreg(4)[..8].to_vec();
        let want: Vec<f32> = idx.iter().map(|&i| i as f32).collect();
        assert_eq!(got, want);
        m.vscatter(4, b.base, &idx, 8);
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(m.mem.read(b, i as usize), want[k]);
        }
    }

    #[test]
    fn longer_vectors_amortize_startup() {
        // Same element count, two vector lengths, hot caches: the long-VL
        // machine should need fewer cycles for pure compute.
        let run = |vlen: usize| {
            let mut m = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
            let total = 4096usize;
            let t0 = m.cycles();
            let mut i = 0;
            while i < total {
                let vl = m.setvl(total - i);
                m.vfmacc_vf(1, 1.0, 0, vl);
                i += vl;
            }
            m.cycles() - t0
        };
        let short = run(512);
        let long = run(8192);
        assert!(long < short, "8192b {long} should beat 512b {short}");
    }

    #[test]
    fn reduction_matches_host() {
        let mut m = machine();
        let vl = m.setvl(16);
        let a = m.mem.alloc(16);
        let data: Vec<f32> = (0..16).map(|i| (i as f32) * 0.5).collect();
        m.mem.slice_mut(a).copy_from_slice(&data);
        m.vle(0, a.addr(0), vl);
        let s = m.vfredsum(0, vl);
        assert!((s - data.iter().sum::<f32>()).abs() < 1e-5);
        let mx = m.vfredmax(0, vl);
        assert_eq!(mx, 7.5);
    }

    #[test]
    fn prefetch_is_free_on_rvv_and_counted() {
        let mut m = machine();
        let c0 = m.cycles();
        m.prefetch(0x1_0000, PrefetchTarget::L1);
        assert_eq!(m.stats.sw_prefetches, 1);
        assert_eq!(m.cycles(), c0, "dropped prefetch must cost nothing on RVV");
    }

    #[test]
    fn phase_attribution() {
        let mut m = machine();
        m.phase(KernelPhase::Gemm, |m| {
            m.vbroadcast(0, 1.0, 16);
            m.vfmacc_vf(1, 2.0, 0, 16);
        });
        assert!(m.phases.get(KernelPhase::Gemm) > 0);
        assert_eq!(m.phases.get(KernelPhase::Im2col), 0);
    }

    #[test]
    fn avg_vlen_tracks_tails() {
        let mut m = machine(); // VL = 16 elements
        let mut i = 0;
        let n = 24; // one full vector + one half vector
        while i < n {
            let vl = m.setvl(n - i);
            m.vfmacc_vf(1, 1.0, 0, vl);
            i += vl;
        }
        assert_eq!(m.stats.vec_instrs, 2);
        // (16 + 8) / 2 = 12 elements = 384 bits.
        assert!((m.stats.avg_vlen_bits() - 384.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_stream_charges_per_line() {
        let mut m = machine();
        let a = m.mem.alloc(1024);
        m.scalar_stream(a.addr(0), 1024, AccessKind::Read);
        // 1024 words * 4 B / 64 B = 64 lines.
        assert_eq!(m.sys.l1.stats.accesses, 64);
    }

    #[test]
    fn vfnmsac_is_negated_fma() {
        let mut m = machine();
        let vl = m.setvl(8);
        let a = m.mem.alloc(8);
        let b = m.mem.alloc(8);
        for i in 0..8 {
            m.mem.write(a, i, (i + 1) as f32);
            m.mem.write(b, i, 2.0);
        }
        m.vle(1, a.addr(0), vl);
        m.vle(2, b.addr(0), vl);
        m.vbroadcast(3, 100.0, vl);
        m.vfnmsac_vv(3, 1, 2, vl); // 100 - (i+1)*2
        for i in 0..8 {
            assert_eq!(m.vreg(3)[i], 100.0 - 2.0 * (i + 1) as f32);
        }
        assert_eq!(m.stats.vec_flops, 16, "fnmsac counts 2 flops per lane");
    }

    #[test]
    fn whilelt_predicated_loop_processes_tail() {
        let mut m = Machine::new(MachineConfig::sve_gem5(512, 1 << 20));
        let n = 21; // 16 + 5 tail
        let a = m.mem.alloc(n);
        let mut i = 0;
        loop {
            let p = m.whilelt(i, n);
            if p.none() {
                break;
            }
            m.vbroadcast(0, i as f32, p.active);
            m.vse(0, a.addr(i), p.active);
            i += p.active;
        }
        assert_eq!(m.mem.read(a, 0), 0.0);
        assert_eq!(m.mem.read(a, 16), 16.0);
        assert_eq!(m.mem.read(a, 20), 16.0);
    }

    #[test]
    fn vse_zero_length_is_noop() {
        let mut m = machine();
        let a = m.mem.alloc(8);
        let c0 = m.cycles();
        m.vle(0, a.addr(0), 0);
        m.vse(0, a.addr(0), 0);
        m.vlse(0, a.addr(0), 4, 0);
        m.vgather(0, a.base, &[], 0);
        assert_eq!(m.cycles(), c0);
        assert_eq!(m.stats.vec_instrs, 0);
    }

    #[test]
    fn stats_dump_is_parseable_and_complete() {
        let mut m = machine();
        let a = m.mem.alloc(64);
        m.vle(0, a.addr(0), 16);
        m.vfmacc_vf(1, 2.0, 0, 16);
        let dump = m.dump_stats();
        assert!(dump.contains("sim_cycles"));
        assert!(dump.contains("system.cpu.vpu.vec_instrs"));
        assert!(dump.contains("system.vcache.overall_accesses"), "RVV has a vector cache");
        assert!(!dump.contains("system.l1d."), "no scalar traffic yet");
        // Every line is `key value` with a numeric value.
        for l in dump.lines() {
            let mut parts = l.split_whitespace();
            let _key = parts.next().expect("key");
            let val = parts.next().expect("value");
            assert!(val.parse::<f64>().is_ok(), "unparseable value in: {l}");
        }
    }

    #[test]
    fn stall_causes_sum_to_total() {
        // A mixed workload exercising every attribution path: dependent FMA
        // chains (RawHazard/VectorStartup), cold loads (MemLatency), long
        // vectors (LaneOccupancy), back-to-back issue (IssueWidth), and
        // reductions (consume wait).
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let a = m.mem.alloc(4096);
        let vl = m.setvl(64);
        for r in 0..8 {
            m.vle(r, a.addr(r * 64), vl);
        }
        for _ in 0..16 {
            m.vfmacc_vf(9, 1.5, 8, vl); // dependent chain
        }
        m.vfredsum(9, vl);
        m.vlse(10, a.addr(0), 20, vl);
        let idx: Vec<u32> = (0..vl as u32).map(|i| (i * 37) % 1024).collect();
        m.vgather(11, a.base, &idx, vl);
        assert!(m.stalls.total() > 0, "workload must actually stall");
        assert_eq!(
            m.stalls.attributed(),
            m.stalls.total(),
            "every stalled cycle must be attributed to exactly one cause"
        );
        // The same invariant holds on the SVE path and after a reset.
        m.reset_timing();
        assert_eq!(m.stalls.total(), 0);
        let mut s = Machine::new(MachineConfig::sve_gem5(512, 1 << 20));
        let b = s.mem.alloc(1024);
        for i in 0..16 {
            s.vle(1, b.addr(i * 16), 16);
            s.vfmacc_vf(2, 1.0, 1, 16);
        }
        s.vfredmax(2, 16);
        assert!(s.stalls.total() > 0);
        assert_eq!(s.stalls.attributed(), s.stalls.total());
    }

    #[test]
    fn dependent_chain_stalls_are_hazards_not_memory() {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let vl = m.setvl(64);
        m.vbroadcast(0, 1.0, vl);
        for _ in 0..32 {
            m.vfmacc_vf(1, 1.5, 0, vl);
        }
        let hazard = m.stalls.get(StallCause::RawHazard) + m.stalls.get(StallCause::VectorStartup);
        assert!(hazard > 0, "a dependent chain must expose dependency stalls");
        assert_eq!(m.stalls.get(StallCause::MemLatency), 0, "no memory traffic issued");
    }

    #[test]
    fn cold_streaming_loads_stall_on_memory() {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        let a = m.mem.alloc(1 << 16);
        let vl = m.setvl(64);
        // Independent destination registers: no RAW pressure, only the unit
        // being busy with exposed miss time.
        for i in 0..64usize {
            m.vle(i % 16, a.addr(i * 256), vl);
        }
        assert!(
            m.stalls.get(StallCause::MemLatency) > 0,
            "cold misses must surface as memory stalls: {:?}",
            m.stalls
        );
    }

    #[test]
    fn recording_is_off_by_default_and_captures_ops_when_on() {
        use crate::record::EventKind;
        let mut m = machine();
        assert!(!m.is_recording());
        let a = m.mem.alloc(16);
        m.vle(0, a.addr(0), 16);
        assert!(m.take_events().is_empty(), "nothing recorded while off");

        m.record_events();
        let vl = m.setvl(16);
        m.vle(1, a.addr(0), vl);
        m.vfmacc_vf(2, 2.0, 1, vl);
        m.vse(2, a.addr(0), vl);
        let ev = m.take_events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].kind, EventKind::Grant);
        assert_eq!((ev[0].requested, ev[0].vl), (16, 16));
        assert_eq!(ev[1].kind, EventKind::Load);
        assert_eq!((ev[1].lo, ev[1].hi), (a.base, a.base + 64));
        assert_eq!(ev[2].kind, EventKind::Arith);
        assert_eq!(ev[2].srcs, [Some(1), Some(2), None]);
        assert_eq!(ev[3].kind, EventKind::Store);
        assert!(!m.is_recording(), "take_events stops the recording");
    }

    #[test]
    fn phase_markers_are_recorded() {
        use crate::record::EventKind;
        let mut m = machine();
        m.record_events();
        m.phase(KernelPhase::Gemm, |m| m.vbroadcast(0, 1.0, 16));
        let ev = m.take_events();
        assert_eq!(ev[0].kind, EventKind::PhaseBegin);
        assert_eq!(ev[0].phase, Some(KernelPhase::Gemm));
        assert_eq!(ev[2].kind, EventKind::PhaseEnd);
    }

    #[test]
    #[should_panic(expected = "acts")]
    fn out_of_range_vle_names_the_buffer() {
        let mut m = machine();
        let a = m.mem.alloc_named("acts", 16);
        // One full vector starting past the end of the only allocation.
        m.vle(0, a.base + 4 * 16, 16);
    }

    #[test]
    #[should_panic(expected = "scalar_write")]
    fn out_of_range_scalar_write_fails_loudly() {
        let mut m = machine();
        let _a = m.mem.alloc_named("acts", 16);
        m.scalar_write(ARENA_BASE_TEST + 4096, 1.0);
    }

    #[test]
    fn ooo_hides_dependency_latency() {
        let dep_time = |ooo: u64| {
            let mut cfg = MachineConfig::a64fx();
            cfg.core.ooo_window = ooo;
            let mut m = Machine::new(cfg);
            let vl = m.setvl(16);
            let t0 = m.cycles();
            for _ in 0..32 {
                m.vfmacc_vf(1, 1.5, 0, vl); // dependent chain
            }
            m.cycles() - t0
        };
        assert!(dep_time(96) < dep_time(0));
    }

    /// A small workload with phases, dependent chains (RAW + startup stalls),
    /// and memory traffic (mem/occupancy stalls).
    fn pipe_workload(m: &mut Machine) {
        let a = m.mem.alloc(4096);
        let vl = m.setvl(64);
        m.phase(KernelPhase::Pack, |m| {
            for i in 0..16 {
                m.vle(0, a.addr(i * 64), vl);
                m.vse(0, a.addr(i * 64), vl);
            }
        });
        m.phase(KernelPhase::Gemm, |m| {
            m.vbroadcast(0, 1.0, vl);
            for _ in 0..8 {
                m.vfmacc_vf(1, 1.5, 0, vl);
            }
            let _ = m.vfredsum(1, vl);
        });
    }

    #[test]
    fn pipe_recording_is_timing_neutral() {
        let mut off = machine();
        pipe_workload(&mut off);
        let mut on = machine();
        on.record_pipe_events();
        pipe_workload(&mut on);
        assert_eq!(on.cycles(), off.cycles(), "pipe recording must not perturb timing");
        assert!(!on.take_pipe_events().is_empty());
        assert_eq!(on.pipe_events_dropped(), 0);
        assert!(off.take_pipe_events().is_empty());
    }

    #[test]
    fn pipe_events_are_well_formed() {
        let mut m = machine();
        m.record_pipe_events();
        pipe_workload(&mut m);
        let total = m.cycles();
        let evs = m.take_pipe_events();
        assert!(evs.iter().any(|e| matches!(e, PipeEvent::Stall { .. })), "expected stalls");

        // Stall intervals are non-empty, within the run, and per cause the
        // recorded durations sum to the stall breakdown counters.
        let mut by_cause = std::collections::HashMap::new();
        for e in &evs {
            if let PipeEvent::Stall { cause, start, end } = e {
                assert!(start < end, "empty/inverted interval {e:?}");
                assert!(*end <= total, "interval {e:?} past end of run {total}");
                *by_cause.entry(*cause).or_insert(0u64) += end - start;
            }
        }
        for (cause, cycles) in &by_cause {
            assert_eq!(
                *cycles,
                m.stalls.get(*cause),
                "recorded intervals for {cause:?} disagree with the stall breakdown"
            );
        }

        // Phase begin/end pairs balance and nest in time order.
        let mut open: Vec<(KernelPhase, u64)> = Vec::new();
        let mut seen_phases = 0;
        for e in &evs {
            match e {
                PipeEvent::PhaseBegin { phase, at } => open.push((*phase, *at)),
                PipeEvent::PhaseEnd { phase, at } => {
                    let (p, t0) = open.pop().expect("PhaseEnd without PhaseBegin");
                    assert_eq!(p, *phase);
                    assert!(*at >= t0);
                    seen_phases += 1;
                }
                PipeEvent::Stall { .. } => {}
            }
        }
        assert!(open.is_empty(), "unclosed phases: {open:?}");
        assert_eq!(seen_phases, 2);
    }
}
