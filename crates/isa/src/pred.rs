//! SVE-style predication.
//!
//! The kernels in this study only need the `whilelt` loop-tail pattern: a
//! predicate with the first `active` lanes set (ARM-SVE processes partial
//! vectors this way instead of a scalar tail loop, §II-A). We therefore model
//! a predicate as its active prefix length, which keeps the functional and
//! timing paths identical to RVV's `vsetvl` while letting SVE kernels read
//! like SVE code.

/// A lane predicate with the first `active` lanes set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pred {
    pub active: usize,
}

impl Pred {
    /// A predicate covering all `vlen` lanes.
    pub fn all(vlen_elems: usize) -> Self {
        Pred { active: vlen_elems }
    }

    /// `whilelt i, n` for a register of `vlen_elems` lanes: lanes
    /// `0..min(vlen, n - i)` active; empty when `i >= n`.
    pub fn whilelt(i: usize, n: usize, vlen_elems: usize) -> Self {
        Pred { active: n.saturating_sub(i).min(vlen_elems) }
    }

    /// True when no lane is active (`b.none` / loop exit condition).
    pub fn none(&self) -> bool {
        self.active == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whilelt_full_partial_empty() {
        assert_eq!(Pred::whilelt(0, 100, 16).active, 16);
        assert_eq!(Pred::whilelt(96, 100, 16).active, 4);
        assert!(Pred::whilelt(100, 100, 16).none());
        assert!(Pred::whilelt(120, 100, 16).none());
    }

    #[test]
    fn whilelt_covers_exactly_n_elements() {
        // Iterating by the predicate's active count covers n exactly once.
        for n in [0usize, 1, 15, 16, 17, 100] {
            let mut covered = 0;
            let mut i = 0;
            loop {
                let p = Pred::whilelt(i, n, 16);
                if p.none() {
                    break;
                }
                covered += p.active;
                i += p.active;
            }
            assert_eq!(covered, n);
        }
    }
}
