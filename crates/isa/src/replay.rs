//! Semantic replay log: the trace-once / retime-many substrate.
//!
//! Every public [`crate::Machine`] operation can append one compact
//! [`ReplayOp`] carrying exactly the semantic arguments its *timing* depends
//! on (addresses, vector lengths, strides, index vectors, scalar-op counts —
//! never data values, which the timing model is independent of by
//! construction). Re-executing the ops through the very same private timing
//! functions the live machine uses — against a fresh [`lva_sim::MemSystem`]
//! at any design point — reproduces cycles, stall attribution, VPU
//! statistics, and cache counters **bit-identically** to a full simulation
//! of the same stream, while skipping all functional work (register-file
//! traffic, arena reads/writes, bounds checks, kernel host loops).
//!
//! Two replay modes exist:
//!
//! * **Live replay** — the recorded ops drive a real memory hierarchy built
//!   for the target config. Valid for *any* design point whose functional
//!   stream is the recorded one (certified by `lva-depgraph`), including
//!   different line sizes, cache geometries and prefetchers, because line
//!   addresses are recomputed from the semantic arguments at replay time.
//! * **Tape refit** — a [`ProbeTape`] recorded during a capture or live
//!   replay stores the serving [`MemLevel`] of every cache probe (2 bits of
//!   information, stored as one byte). Replaying against the tape skips the
//!   cache arrays entirely: each probe's latency is
//!   [`lva_sim::MemSystem::served_latency`]`(level)` — a pure function of
//!   the per-level latency constants and the [`lva_sim::IdealSpec`] — and
//!   cache statistics come from per-segment snapshots stored in the tape.
//!   Valid only when the target's *state geometry*
//!   ([`lva_sim::MemSystemConfig::state_fingerprint`]) equals the tape's;
//!   latency constants, idealization knobs, lane counts and core CPIs may
//!   all differ.

use crate::stats::{KernelPhase, PhaseTimer, StallBreakdown, VpuStats};
use lva_sim::{MemSystemStats, PrefetchTarget};

/// Vector arithmetic micro-op, the consolidated form of the machine's
/// per-instruction arithmetic API. One enum value plus (vd, a, b, vl)
/// reconstructs the recorded event, the issue-stage source list, the
/// occupancy/latency cost and the FLOP count of the original call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VArithOp {
    /// `vbroadcast` — splat a scalar (functionally fills `vl.max(1)` lanes).
    Broadcast,
    /// `vmv` — register move.
    Mv,
    /// `vfmacc.vf` — `vd += a * vs`.
    MaccVf,
    /// `vfmacc.vv` — `vd += va * vb`.
    MaccVv,
    /// `vfnmsac.vv` — `vd -= va * vb`.
    NmsacVv,
    /// `vfmul.vf`.
    MulVf,
    /// `vfmul.vv`.
    MulVv,
    /// `vfadd.vf`.
    AddVf,
    /// `vfadd.vv`.
    AddVv,
    /// `vfsub.vv`.
    SubVv,
    /// `vfmax.vf`.
    MaxVf,
    /// `vfmax.vv`.
    MaxVv,
    /// `vfdiv.vv` — unpipelined-ish, 8× chime.
    DivVv,
    /// `vfsqrt` — unpipelined-ish, 8× chime.
    Sqrt,
}

/// Operand shape of a [`VArithOp`]: which registers appear as recorded-event
/// sources and as issue-stage dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithShape {
    /// No register sources (broadcast).
    Nullary,
    /// One source `a`.
    Unary,
    /// One source `a` plus the destination as accumulator (`.vf` FMA).
    UnaryAcc,
    /// Two sources `a`, `b`.
    Binary,
    /// Two sources plus the destination as accumulator (`.vv` FMA).
    BinaryAcc,
}

impl VArithOp {
    /// The instruction mnemonic used in recorded [`crate::record::VecEvent`]s.
    pub fn name(self) -> &'static str {
        match self {
            VArithOp::Broadcast => "vbroadcast",
            VArithOp::Mv => "vmv",
            VArithOp::MaccVf => "vfmacc.vf",
            VArithOp::MaccVv => "vfmacc.vv",
            VArithOp::NmsacVv => "vfnmsac.vv",
            VArithOp::MulVf => "vfmul.vf",
            VArithOp::MulVv => "vfmul.vv",
            VArithOp::AddVf => "vfadd.vf",
            VArithOp::AddVv => "vfadd.vv",
            VArithOp::SubVv => "vfsub.vv",
            VArithOp::MaxVf => "vfmax.vf",
            VArithOp::MaxVv => "vfmax.vv",
            VArithOp::DivVv => "vfdiv.vv",
            VArithOp::Sqrt => "vfsqrt",
        }
    }

    /// Operand shape (see [`ArithShape`]).
    pub fn shape(self) -> ArithShape {
        match self {
            VArithOp::Broadcast => ArithShape::Nullary,
            VArithOp::Mv | VArithOp::MulVf | VArithOp::AddVf | VArithOp::MaxVf | VArithOp::Sqrt => {
                ArithShape::Unary
            }
            VArithOp::MaccVf => ArithShape::UnaryAcc,
            VArithOp::MulVv
            | VArithOp::AddVv
            | VArithOp::SubVv
            | VArithOp::MaxVv
            | VArithOp::DivVv => ArithShape::Binary,
            VArithOp::MaccVv | VArithOp::NmsacVv => ArithShape::BinaryAcc,
        }
    }

    /// FLOPs charged per active lane.
    pub fn flops_per_elem(self) -> u64 {
        match self {
            VArithOp::Broadcast | VArithOp::Mv => 0,
            VArithOp::MaccVf | VArithOp::MaccVv | VArithOp::NmsacVv => 2,
            _ => 1,
        }
    }

    /// Whether the op takes the unpipelined 8× chime (div / sqrt).
    pub fn is_slow(self) -> bool {
        matches!(self, VArithOp::DivVv | VArithOp::Sqrt)
    }
}

/// Reduction micro-op (front end waits for the scalar result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `vfredsum`.
    Sum,
    /// `vfredmax`.
    Max,
}

impl ReduceOp {
    /// The instruction mnemonic used in recorded events.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "vfredsum",
            ReduceOp::Max => "vfredmax",
        }
    }
}

/// Indexed-access micro-op family (gather/scatter, element or group-of-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedOp {
    /// `vgather` — per-element indexed load.
    Gather,
    /// `vscatter` — per-element indexed store.
    Scatter,
    /// `vgather4` — structured group-of-4 load (SVE tuples + permutes).
    Gather4,
    /// `vscatter4` — structured group-of-4 store.
    Scatter4,
}

/// A slice of the trace's shared `u32` index pool (`off..off + len`),
/// holding an indexed op's lane indices verbatim — including `u32::MAX`
/// inactive-lane sentinels, in original lane order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRange {
    /// Start offset into [`ReplayTrace::idx_pool`].
    pub off: u32,
    /// Number of lanes (the op's `vl`).
    pub len: u32,
}

/// One recorded semantic operation. 16 bytes; addresses are stored as `u32`
/// (the simulated arena is far below 4 GiB — recording asserts it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayOp {
    /// `setvl(rvl)`.
    Setvl { rvl: u32 },
    /// `whilelt(i, n)`.
    Whilelt { i: u32, n: u32 },
    /// `vle(vd, addr, vl)`.
    VLoad { vd: u8, vl: u16, addr: u32 },
    /// `vse(vs, addr, vl)`.
    VStore { vs: u8, vl: u16, addr: u32 },
    /// `vlse(vd, addr, stride, vl)`.
    VLoadStrided { vd: u8, vl: u16, addr: u32, stride: u32 },
    /// `vsse(vs, addr, stride, vl)`.
    VStoreStrided { vs: u8, vl: u16, addr: u32, stride: u32 },
    /// `vgather`/`vscatter`/`vgather4`/`vscatter4` with indices in the pool.
    VIndexed { op: IndexedOp, reg: u8, base: u32, idx: PoolRange },
    /// Any vector arithmetic op (see [`VArithOp`]).
    VArith { op: VArithOp, vd: u8, a: u8, b: u8, vl: u16 },
    /// `vfredsum`/`vfredmax`.
    Reduce { op: ReduceOp, vs: u8, vl: u16 },
    /// `prefetch(addr, target)`.
    Prefetch { addr: u32, target: PrefetchTarget },
    /// One `charge_scalar_ops(n)` call (one fractional-cycle addition).
    ScalarOps { n: u32 },
    /// One `charge_scalar_flops(n)` call.
    ScalarFlops { n: u32 },
    /// `scalar_read(addr)`.
    ScalarRead { addr: u32 },
    /// `scalar_write(addr, _)`.
    ScalarWrite { addr: u32 },
    /// `scalar_stream(addr, words, kind)`.
    ScalarStream { addr: u32, words: u32, write: bool },
    /// `phase(p, ..)` opened.
    PhaseBegin { phase: KernelPhase },
    /// `phase(p, ..)` closed.
    PhaseEnd { phase: KernelPhase },
    /// A network layer opened (`desc` indexes [`ReplayTrace::descs`]).
    LayerBegin { index: u32, desc: u32 },
    /// The innermost open layer closed.
    LayerEnd,
    /// `note_spill()`.
    Spill,
    /// `reset_timing()` — segment boundary (setup/measure, frame/frame).
    ResetTiming,
}

/// A captured semantic trace: the op stream plus the side pools ops
/// reference. One trace plus the capture-time functional run's static
/// metadata is sufficient to re-time the run at any certified design point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayTrace {
    /// The semantic op stream, in program order.
    pub ops: Vec<ReplayOp>,
    /// Shared pool of indexed-access lane indices (see [`PoolRange`]).
    pub idx_pool: Vec<u32>,
    /// Layer description strings referenced by [`ReplayOp::LayerBegin`].
    pub descs: Vec<String>,
}

impl ReplayTrace {
    /// Approximate heap footprint in bytes (capacity-based), for memory
    /// accounting in trace stores.
    pub fn approx_bytes(&self) -> usize {
        self.ops.capacity() * std::mem::size_of::<ReplayOp>()
            + self.idx_pool.capacity() * 4
            + self.descs.iter().map(|d| d.len() + 24).sum::<usize>()
    }

    /// Copy `idx` into the pool and return its range. Panics if the pool
    /// would exceed `u32` addressing (≈ 16 GiB of indices — unreachable).
    pub fn push_idx(&mut self, idx: &[u32]) -> PoolRange {
        let off = u32::try_from(self.idx_pool.len()).expect("replay idx pool exceeds u32 range");
        self.idx_pool.extend_from_slice(idx);
        PoolRange { off, len: idx.len() as u32 }
    }

    /// Intern a layer description string, returning its pool index.
    pub fn push_desc(&mut self, desc: &str) -> u32 {
        self.descs.push(desc.to_string());
        (self.descs.len() - 1) as u32
    }
}

/// Stats snapshot and probe-cursor position at the end of one
/// `reset_timing()`-delimited segment of a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeSegment {
    /// Exclusive end of this segment in [`ProbeTape::levels`].
    pub probe_end: usize,
    /// `MemSystem::stats()` at the segment's end, exactly as the full
    /// simulator reported them (cache statistics are design-point-invariant
    /// for a fixed state geometry — idealization and latency knobs never
    /// touch them).
    pub stats: MemSystemStats,
}

/// The serving level of every cache probe of a run, in probe order, plus
/// per-segment statistics snapshots. Recorded during a capture or a live
/// replay; valid for refits at any config whose
/// [`lva_sim::MemSystemConfig::state_fingerprint`] equals [`Self::geometry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeTape {
    /// State-geometry fingerprint of the memory system that produced the
    /// tape (the refit validity condition).
    pub geometry: String,
    /// One [`lva_sim::MemLevel`] (as `u8`) per demand probe.
    pub levels: Vec<u8>,
    /// One entry per segment, in order; the last covers the run's tail.
    pub segments: Vec<TapeSegment>,
}

impl ProbeTape {
    /// Approximate heap footprint in bytes (capacity-based).
    pub fn approx_bytes(&self) -> usize {
        self.levels.capacity() + self.segments.capacity() * std::mem::size_of::<TapeSegment>()
    }
}

/// Per-layer dynamic results of one replayed segment; combined with the
/// capture run's static layer metadata (desc, flops, mnk, algo, shape) this
/// reconstructs a full `LayerReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReplay {
    /// Layer index as recorded by `lva-nn`.
    pub index: usize,
    /// Layer description (from the trace's desc pool).
    pub desc: String,
    /// Cycles spent in the layer.
    pub cycles: u64,
    /// Stall attribution delta over the layer.
    pub stalls: StallBreakdown,
    /// Vector instructions issued in the layer.
    pub d_instrs: u64,
    /// Active vector elements processed in the layer.
    pub d_elems: u64,
}

/// Complete timing results of one `reset_timing()`-delimited segment of a
/// replay — everything the full simulator would have reported for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReplay {
    /// Final cycle count of the segment.
    pub cycles: u64,
    /// Stall-cycle attribution.
    pub stalls: StallBreakdown,
    /// Kernel-phase timer.
    pub phases: PhaseTimer,
    /// VPU statistics.
    pub vpu: VpuStats,
    /// Memory-system statistics (live counters, or the tape snapshot when
    /// refitting).
    pub mem: MemSystemStats,
    /// Per-layer dynamic deltas, in traversal order.
    pub layers: Vec<LayerReplay>,
}

/// Tape recorder state (installed on a capturing or live-replaying machine).
#[derive(Debug, Default)]
pub(crate) struct TapeRecorder {
    pub(crate) tape: ProbeTape,
}

impl TapeRecorder {
    pub(crate) fn end_segment(&mut self, stats: MemSystemStats) {
        self.tape.segments.push(TapeSegment { probe_end: self.tape.levels.len(), stats });
    }
}

/// Tape playback cursor (installed on a refitting machine).
#[derive(Debug)]
pub(crate) struct TapePlayer {
    pub(crate) tape: std::sync::Arc<ProbeTape>,
    pub(crate) cursor: usize,
    pub(crate) seg: usize,
}

impl TapePlayer {
    /// Next probe's serving level. Running off the tape's end means the
    /// replayed op stream diverged from the capture — a bug, not a
    /// recoverable condition.
    #[inline]
    pub(crate) fn next_level(&mut self) -> lva_sim::MemLevel {
        let lvl = self.tape.levels.get(self.cursor).copied().unwrap_or_else(|| {
            panic!("probe tape exhausted at probe {} — trace/tape mismatch", self.cursor)
        });
        self.cursor += 1;
        lva_sim::MemLevel::from_u8(lvl)
    }

    /// Advance to the next segment at a `ResetTiming` boundary, asserting
    /// probe-count alignment with the capture.
    pub(crate) fn next_segment(&mut self) {
        let seg = &self.tape.segments[self.seg];
        assert_eq!(
            self.cursor, seg.probe_end,
            "probe tape segment {} ended at probe {}, replay consumed {}",
            self.seg, seg.probe_end, self.cursor
        );
        self.seg += 1;
    }

    /// Stats snapshot for the segment currently being replayed.
    pub(crate) fn segment_stats(&self) -> MemSystemStats {
        self.tape.segments[self.seg].stats
    }

    /// The next `n` probe levels, without consuming them (memo keying).
    #[inline]
    pub(crate) fn peek(&self, n: u64) -> &[u8] {
        &self.tape.levels[self.cursor..self.cursor + n as usize]
    }

    /// Advance past `n` probes without reading them (memoized-layer apply).
    #[inline]
    pub(crate) fn skip(&mut self, n: u64) {
        self.cursor += n as usize;
    }
}

/// Convert a recorded `u64` quantity (address, stride, count) to the `u32`
/// the compact op encoding stores. The simulated arena and per-call scalar
/// batches are orders of magnitude below 4 Gi; a capture that violates this
/// fails loudly rather than truncating.
#[inline]
pub(crate) fn r32(v: u64, what: &'static str) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| panic!("replay log: {what} {v} exceeds u32"))
}
