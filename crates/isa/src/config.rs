//! Machine configuration: ISA profiles, vector unit, scalar core, and the
//! platform presets matching Table I of the paper.

use lva_sim::{
    l2_latency_cycles, CacheConfig, IdealSpec, LatencyModel, MemSystemConfig,
    StridePrefetcherConfig, VpuPath,
};

/// Default L1 data cache capacity (Table I: 64 kB, 4-way).
pub const DEFAULT_L1_BYTES: usize = 64 * 1024;
/// Default simulated L2 capacity (Table I: 1 MB, 8-way).
pub const DEFAULT_L2_BYTES: usize = 1 << 20;
/// A64FX L2 capacity (Table I: 8 MB, 16-way).
pub const A64FX_L2_BYTES: usize = 8 << 20;

/// Vector ISA family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaKind {
    /// RISC-V Vector extension: MVL 16384 bits, `vsetvl` semantics.
    Rvv,
    /// ARM Scalable Vector Extension: MVL 2048 bits, predicate-driven tails.
    Sve,
}

impl IsaKind {
    /// Architectural maximum vector length in bits.
    pub fn max_vlen_bits(self) -> usize {
        match self {
            IsaKind::Rvv => 16384,
            IsaKind::Sve => 2048,
        }
    }
}

/// Vector processing unit parameters.
#[derive(Debug, Clone, Copy)]
pub struct VpuConfig {
    pub isa: IsaKind,
    /// Hardware vector register length in bits (a hardware design parameter
    /// under a VLA ISA; the co-design sweeps vary it).
    pub vlen_bits: usize,
    /// On-chip parallelism: single-precision elements processed per cycle.
    pub lanes: usize,
    /// Fixed pipeline depth contributing to start-up time.
    pub pipe_depth: u32,
    /// Memory-level parallelism: outstanding line fills that overlap within
    /// one vector memory instruction.
    pub mlp: u32,
    /// Register-file fill bandwidth in bytes per cycle (unit-stride ops
    /// charge `bytes_moved / bus_bytes` occupancy; misses are charged per
    /// line on top).
    pub bus_bytes: u32,
    /// Per-element cost of indexed (gather/scatter) accesses, in cycles.
    pub gather_elem_cycles: u32,
    /// Dead cycles between consecutive vector instructions on the unit
    /// (issue/queue/start-up overhead that pipelining cannot hide). This is
    /// the §V start-up overhead that "becomes minimal" with longer vectors:
    /// short vector lengths need many more instructions and pay it often.
    pub inter_instr_gap: u32,
}

impl VpuConfig {
    /// Register length in single-precision elements.
    #[inline]
    pub fn vlen_elems(&self) -> usize {
        self.vlen_bits / 32
    }

    /// Start-up overhead of a vector instruction: pipeline depth plus lane
    /// fill (§V: "adding more pipelines increases the start-up overhead").
    #[inline]
    pub fn startup(&self) -> u64 {
        self.pipe_depth as u64 + self.lanes as u64
    }

    /// Execution chime: cycles the unit is occupied computing `n` elements.
    #[inline]
    pub fn chime(&self, n: usize) -> u64 {
        n.div_ceil(self.lanes).max(1) as u64
    }

    fn validate(&self) {
        assert!(self.vlen_bits.is_power_of_two(), "vector length must be a power of two");
        assert!(self.vlen_bits >= 128, "vector length below 128 bits");
        assert!(
            self.vlen_bits <= self.isa.max_vlen_bits(),
            "vlen {} exceeds MVL {} of {:?}",
            self.vlen_bits,
            self.isa.max_vlen_bits(),
            self.isa
        );
        assert!(self.lanes >= 1 && self.lanes <= 64, "lane count out of range");
        assert!(self.mlp >= 1);
    }
}

/// Scalar core parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Out-of-order cores (A64FX) hide dependency stalls within a window of
    /// this many cycles; in-order cores (gem5 MinorCPU) use 0.
    pub ooo_window: u64,
    /// Average cycles charged per scalar arithmetic/control operation unit
    /// in bulk-charged scalar code (the `-fno-vectorize` baseline).
    pub scalar_cpi: f64,
    /// Cycles per scalar load/store issued *inside vector kernels* (the A
    /// operand broadcasts and address bookkeeping of the micro-kernels).
    /// These dual-issue with vector work on real cores, so they are cheaper
    /// than stand-alone scalar code.
    pub kernel_scalar_cpi: f64,
    /// Front-end cycles consumed per vector instruction issued (1.0 on the
    /// single-issue in-order gem5 cores; below 1 on the wide-decode A64FX).
    pub issue_cycles: f64,
    /// Fraction of a scalar miss latency actually exposed (models limited
    /// scalar MLP / store buffering).
    pub scalar_miss_exposure: f64,
}

/// Platform identity used by reports and presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// RISC-V Vector on the gem5 fork: in-order, decoupled VPU at L2.
    RvvGem5,
    /// ARM-SVE on public gem5: in-order, vector accesses through L1,
    /// prefetch instructions are no-ops, lanes proportional to vector length.
    SveGem5,
    /// Fujitsu A64FX: out-of-order, 512-bit SVE, HW + SW prefetch, 8 MB L2.
    A64fx,
}

impl Platform {
    pub fn name(self) -> &'static str {
        match self {
            Platform::RvvGem5 => "RISC-V Vector @ gem5",
            Platform::SveGem5 => "ARM-SVE @ gem5",
            Platform::A64fx => "A64FX",
        }
    }
}

/// Complete machine description: scalar core + VPU + memory system.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub platform: Platform,
    pub core: CoreConfig,
    pub vpu: VpuConfig,
    pub mem: MemSystemConfig,
    /// Simulated memory arena capacity in MiB.
    pub arena_mib: usize,
    /// Counterfactual idealization knobs (`lva-whatif`). Timing-only; with
    /// the default [`IdealSpec::NONE`] the machine is bit-identical to one
    /// built before this field existed.
    pub ideal: IdealSpec,
}

impl MachineConfig {
    /// RISC-V Vector @ gem5 (Table I): in-order MinorCPU, VPU decoupled at
    /// the L2 behind a 2 KB vector cache, no prefetching, 64 B lines,
    /// L1 64 kB/4-way, L2 `l2_bytes`/8-way at the paper's constant 12-cycle
    /// latency, vector length `vlen_bits` (512..16384), `lanes` in 2..8.
    pub fn rvv_gem5(vlen_bits: usize, lanes: usize, l2_bytes: usize) -> Self {
        let cfg = MachineConfig {
            platform: Platform::RvvGem5,
            core: CoreConfig {
                ooo_window: 0,
                scalar_cpi: 1.6,
                kernel_scalar_cpi: 0.5,
                issue_cycles: 1.0,
                scalar_miss_exposure: 0.5,
            },
            vpu: VpuConfig {
                isa: IsaKind::Rvv,
                vlen_bits,
                lanes,
                pipe_depth: 8,
                mlp: 2,
                bus_bytes: 32,
                gather_elem_cycles: 2,
                inter_instr_gap: 3,
            },
            mem: MemSystemConfig {
                l1: CacheConfig {
                    name: "L1D",
                    bytes: DEFAULT_L1_BYTES,
                    line_bytes: 64,
                    assoc: 4,
                    hit_latency: 4,
                },
                l2: CacheConfig {
                    name: "L2",
                    bytes: l2_bytes,
                    line_bytes: 64,
                    assoc: 8,
                    hit_latency: l2_latency_cycles(l2_bytes, LatencyModel::Constant),
                },
                mem_latency: 110,
                vpu_path: VpuPath::DecoupledL2 { vcache_bytes: 2048 },
                hw_prefetch: None,
                sw_prefetch_effective: false,
            },
            arena_mib: 512,
            ideal: IdealSpec::NONE,
        };
        cfg.validate();
        cfg
    }

    /// ARM-SVE @ gem5 (Table I): in-order, vector accesses through L1,
    /// prefetch instructions dropped, serial miss handling (`mlp = 1`, an
    /// in-order core without prefetchers exposes its misses).
    ///
    /// Table I describes gem5's lanes as "proportional to vector length",
    /// but the paper's own measurement — only 1.34x from 512-bit to
    /// 2048-bit (Fig. 8) — is incompatible with per-element throughput
    /// growing 4x; this profile therefore models a fixed-width datapath,
    /// where longer vectors win by amortizing per-instruction overheads,
    /// which reproduces the measured scaling.
    pub fn sve_gem5(vlen_bits: usize, l2_bytes: usize) -> Self {
        let lanes = 8; // fixed datapath width; see doc comment
        let cfg = MachineConfig {
            platform: Platform::SveGem5,
            core: CoreConfig {
                ooo_window: 0,
                scalar_cpi: 1.6,
                kernel_scalar_cpi: 0.5,
                issue_cycles: 1.0,
                scalar_miss_exposure: 0.5,
            },
            vpu: VpuConfig {
                isa: IsaKind::Sve,
                vlen_bits,
                lanes,
                pipe_depth: 8,
                mlp: 1,
                bus_bytes: 32,
                gather_elem_cycles: 2,
                inter_instr_gap: 1,
            },
            mem: MemSystemConfig {
                l1: CacheConfig {
                    name: "L1D",
                    bytes: DEFAULT_L1_BYTES,
                    line_bytes: 64,
                    assoc: 4,
                    hit_latency: 4,
                },
                l2: CacheConfig {
                    name: "L2",
                    bytes: l2_bytes,
                    line_bytes: 64,
                    assoc: 8,
                    hit_latency: l2_latency_cycles(l2_bytes, LatencyModel::Constant),
                },
                mem_latency: 110,
                vpu_path: VpuPath::ThroughL1,
                hw_prefetch: None,
                sw_prefetch_effective: false,
            },
            arena_mib: 512,
            ideal: IdealSpec::NONE,
        };
        cfg.validate();
        cfg
    }

    /// Fujitsu A64FX (Table I): out-of-order, 512-bit SVE, 256 B lines,
    /// 8 MB/16-way L2, effective software prefetch plus a hardware stride
    /// prefetcher. Lane width chosen so single-core peak is 32 SP flops per
    /// cycle = 64 GFLOP/s @ 2 GHz, matching the paper's 62.5 GFLOP/s figure.
    pub fn a64fx() -> Self {
        let cfg = MachineConfig {
            platform: Platform::A64fx,
            core: CoreConfig {
                ooo_window: 96,
                scalar_cpi: 1.3,
                kernel_scalar_cpi: 0.2,
                issue_cycles: 0.6,
                scalar_miss_exposure: 0.35,
            },
            vpu: VpuConfig {
                isa: IsaKind::Sve,
                vlen_bits: 512,
                lanes: 16,
                pipe_depth: 9,
                mlp: 1,
                bus_bytes: 64,
                gather_elem_cycles: 2,
                inter_instr_gap: 0,
            },
            mem: MemSystemConfig {
                l1: CacheConfig {
                    name: "L1D",
                    bytes: DEFAULT_L1_BYTES,
                    line_bytes: 256,
                    assoc: 4,
                    hit_latency: 5,
                },
                l2: CacheConfig {
                    name: "L2",
                    bytes: A64FX_L2_BYTES,
                    line_bytes: 256,
                    assoc: 16,
                    hit_latency: 37,
                },
                mem_latency: 180,
                vpu_path: VpuPath::ThroughL1,
                hw_prefetch: Some(StridePrefetcherConfig { streams: 8, degree: 6, confidence: 2 }),
                sw_prefetch_effective: true,
            },
            arena_mib: 512,
            ideal: IdealSpec::NONE,
        };
        cfg.validate();
        cfg
    }

    /// Peak single-precision flops per cycle (FMA counts two).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        2.0 * self.vpu.lanes as f64
    }

    fn validate(&self) {
        self.vpu.validate();
        match self.vpu.isa {
            IsaKind::Rvv => assert!(matches!(self.mem.vpu_path, VpuPath::DecoupledL2 { .. })),
            IsaKind::Sve => assert!(matches!(self.mem.vpu_path, VpuPath::ThroughL1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mvl_limits() {
        assert_eq!(IsaKind::Rvv.max_vlen_bits(), 16384);
        assert_eq!(IsaKind::Sve.max_vlen_bits(), 2048);
    }

    #[test]
    fn rvv_preset_matches_table1() {
        let c = MachineConfig::rvv_gem5(16384, 8, DEFAULT_L2_BYTES);
        assert_eq!(c.vpu.vlen_elems(), 512);
        assert!(matches!(c.mem.vpu_path, VpuPath::DecoupledL2 { vcache_bytes: 2048 }));
        assert!(!c.mem.sw_prefetch_effective);
        assert!(c.mem.hw_prefetch.is_none());
        assert_eq!(c.mem.l2.hit_latency, 12);
    }

    #[test]
    fn sve_fixed_datapath_means_constant_per_element_throughput() {
        // See the sve_gem5 doc comment: the datapath width is fixed, so the
        // chime grows with the vector length and per-element compute time is
        // constant — longer vectors win only by amortizing per-instruction
        // overheads, which is what bounds Fig. 8's 1.34x.
        let a = MachineConfig::sve_gem5(512, DEFAULT_L2_BYTES);
        let b = MachineConfig::sve_gem5(2048, DEFAULT_L2_BYTES);
        assert_eq!(a.vpu.lanes, b.vpu.lanes);
        assert_eq!(4 * a.vpu.chime(a.vpu.vlen_elems()), b.vpu.chime(b.vpu.vlen_elems()));
    }

    #[test]
    fn a64fx_profile() {
        let c = MachineConfig::a64fx();
        assert_eq!(c.vpu.vlen_bits, 512);
        assert!(c.mem.sw_prefetch_effective);
        assert!(c.mem.hw_prefetch.is_some());
        assert_eq!(c.mem.l1.line_bytes, 256);
        // Peak ~62.5 GFLOP/s at 2 GHz in the paper => 32 flops/cycle here.
        assert_eq!(c.peak_flops_per_cycle(), 32.0);
    }

    #[test]
    fn startup_grows_with_lanes() {
        let a = MachineConfig::rvv_gem5(4096, 2, DEFAULT_L2_BYTES);
        let b = MachineConfig::rvv_gem5(4096, 8, DEFAULT_L2_BYTES);
        assert!(b.vpu.startup() > a.vpu.startup());
        assert!(b.vpu.chime(128) < a.vpu.chime(128));
    }

    #[test]
    #[should_panic(expected = "exceeds MVL")]
    fn sve_vlen_capped() {
        let _ = MachineConfig::sve_gem5(4096, DEFAULT_L2_BYTES);
    }
}
