//! # lva-isa — a vector-length-agnostic vector engine
//!
//! This crate is the reproduction's substitute for the RISC-V Vector / ARM-SVE
//! intrinsics plus the gem5 CPU models used by the paper. Kernels are written
//! against an *intrinsics-level* API ([`Machine`]): `setvl`, unit-strided and
//! strided vector loads/stores, gather/scatter, broadcast, fused multiply-add,
//! predication (`whilelt`), and software prefetch. Every operation
//!
//! 1. **executes functionally** on `f32` data in the simulated memory arena,
//!    so optimized kernels can be validated bit-for-bit (modulo reassociation)
//!    against scalar references, and
//! 2. **advances a cycle-approximate timing model**: an in-order front end, a
//!    vector unit with `lanes` elements/cycle, start-up overhead that grows
//!    with the lane count (§V of the paper), a per-register scoreboard (so
//!    loop unrolling across independent accumulators genuinely hides pipeline
//!    latency, as in Fig. 2/3), and line-granular traffic into the
//!    [`lva_sim::MemSystem`] cache hierarchy.
//!
//! The two ISA profiles mirror the paper's platforms:
//!
//! * [`IsaKind::Rvv`] — max vector length 16384 bits, decoupled VPU attached
//!   to L2 through a 2 KB vector cache, no effective prefetch instructions.
//! * [`IsaKind::Sve`] — max vector length 2048 bits, vector accesses through
//!   L1, per-lane predication; lanes proportional to the vector length on the
//!   gem5 profile, and an A64FX-like out-of-order profile with hardware +
//!   software prefetch.

#![forbid(unsafe_code)]
pub mod config;
pub mod machine;
pub mod pred;
pub mod record;
pub mod refit;
pub mod replay;
pub mod stats;

pub use config::{
    CoreConfig, IsaKind, MachineConfig, Platform, VpuConfig, A64FX_L2_BYTES, DEFAULT_L1_BYTES,
    DEFAULT_L2_BYTES,
};
pub use machine::{Machine, PipeEvent, ReplayCursor, VReg, NUM_VREGS};
pub use pred::Pred;
pub use record::{stream_hash, EventKind, EventSink, StreamHasher, VecEvent};
pub use refit::{Fold128, LayerMemo, LayerRegion, RefitGeometry, RefitPlan};
pub use replay::{
    LayerReplay, ProbeTape, ReplayOp, ReplayTrace, SegmentReplay, TapeSegment, VArithOp,
};
pub use stats::{KernelPhase, PhaseTimer, StallBreakdown, StallCause, VpuStats};

pub use lva_sim::{Buf, IdealKnob, IdealSpec, Memory, PrefetchTarget};
